"""Tests for spot markets: prices, warnings, revocations."""

import pytest

from repro.cloud.instance_types import M3_CATALOG
from repro.cloud.instances import Instance, InstanceState, Market
from repro.cloud.spot_market import SpotMarket, SpotMarketplace
from repro.cloud.zones import default_region

from tests.conftest import flat_trace, step_trace

MEDIUM = M3_CATALOG.get("m3.medium")


def make_market(env, zone, steps=None, price=0.02, warning=120.0):
    trace = step_trace(steps) if steps else flat_trace(price)
    return SpotMarket(env, MEDIUM, zone, trace, warning_period=warning)


def spot_instance(env, zone, bid):
    instance = Instance(env, MEDIUM, zone, Market.SPOT, bid=bid)
    instance._mark_running()
    return instance


class TestPrices:
    def test_current_price_follows_trace(self, env, zone):
        market = make_market(env, zone, steps=[(0, 0.02), (100, 0.09)])
        assert market.current_price() == 0.02
        env.run(until=150)
        assert market.current_price() == 0.09

    def test_price_at_before_start(self, env, zone):
        market = make_market(env, zone, steps=[(10, 0.05)])
        assert market.price_at(0.0) == 0.05

    def test_price_listeners_called(self, env, zone):
        market = make_market(env, zone, steps=[(0, 0.02), (50, 0.03)])
        seen = []
        market.on_price_change(lambda m, p: seen.append((env.now, p)))
        env.run(until=100)
        assert (50.0, 0.03) in seen

    def test_empty_trace_rejected(self, env, zone):
        import numpy as np
        from repro.traces.archive import PriceTrace
        with pytest.raises(ValueError):
            PriceTrace(np.array([]), np.array([]), "m3.medium", zone.name,
                       0.07)


class TestWarningsAndRevocation:
    def test_price_crossing_warns(self, env, zone):
        market = make_market(env, zone, steps=[(0, 0.02), (1000, 0.10)])
        instance = spot_instance(env, zone, bid=0.07)
        market.register(instance)
        env.run(until=1000)
        assert instance.state is InstanceState.MARKED_FOR_TERMINATION
        assert instance.termination_notice.triggered
        assert instance.termination_notice.value == 1000 + 120

    def test_forced_termination_after_warning(self, env, zone):
        market = make_market(env, zone, steps=[(0, 0.02), (1000, 0.10)])
        instance = spot_instance(env, zone, bid=0.07)
        market.register(instance)
        env.run(until=1121)
        assert instance.state is InstanceState.TERMINATED
        assert instance.terminated_at == 1120.0

    def test_price_below_bid_never_warns(self, env, zone):
        market = make_market(env, zone, steps=[(0, 0.02), (500, 0.06)])
        instance = spot_instance(env, zone, bid=0.07)
        market.register(instance)
        env.run(until=10000)
        assert instance.state is InstanceState.RUNNING

    def test_graceful_exit_before_deadline_survives(self, env, zone):
        market = make_market(env, zone, steps=[(0, 0.02), (1000, 0.10)])
        instance = spot_instance(env, zone, bid=0.07)
        market.register(instance)
        env.run(until=1050)
        # SpotCheck relinquishes the instance before the deadline.
        instance._mark_terminated()
        market.deregister(instance)
        env.run(until=2000)
        assert instance.terminated_at == 1050.0

    def test_register_above_price_immediately_warned(self, env, zone):
        market = make_market(env, zone, price=0.10)
        instance = spot_instance(env, zone, bid=0.07)
        market.register(instance)
        assert instance.state is InstanceState.MARKED_FOR_TERMINATION

    def test_revoke_callback_invoked(self, env, zone):
        market = make_market(env, zone, steps=[(0, 0.02), (100, 0.2)])
        revoked = []
        market.set_revoke_callback(
            lambda inst: (revoked.append(inst), inst._mark_terminated()))
        instance = spot_instance(env, zone, bid=0.07)
        market.register(instance)
        env.run(until=400)
        assert revoked == [instance]

    def test_multiple_instances_all_warned_together(self, env, zone):
        market = make_market(env, zone, steps=[(0, 0.02), (600, 0.5)])
        instances = [spot_instance(env, zone, bid=0.07) for _ in range(5)]
        for instance in instances:
            market.register(instance)
        env.run(until=601)
        assert all(i.state is InstanceState.MARKED_FOR_TERMINATION
                   for i in instances)
        assert len({i.warned_at for i in instances}) == 1

    def test_wrong_market_registration_rejected(self, env, zone, region):
        market = make_market(env, zone)
        other = Instance(env, M3_CATALOG.get("m3.large"), zone, Market.SPOT,
                         bid=0.2)
        with pytest.raises(ValueError):
            market.register(other)

    def test_on_demand_registration_rejected(self, env, zone):
        market = make_market(env, zone)
        instance = Instance(env, MEDIUM, zone, Market.ON_DEMAND)
        with pytest.raises(ValueError):
            market.register(instance)


class TestMarketplace:
    def test_add_and_lookup(self, env, zone):
        marketplace = SpotMarketplace(env)
        market = marketplace.add_market(MEDIUM, zone, flat_trace(0.02))
        assert marketplace.market("m3.medium", zone.name) is market
        assert marketplace.market(MEDIUM, zone) is market

    def test_duplicate_market_rejected(self, env, zone):
        marketplace = SpotMarketplace(env)
        marketplace.add_market(MEDIUM, zone, flat_trace(0.02))
        with pytest.raises(ValueError):
            marketplace.add_market(MEDIUM, zone, flat_trace(0.03))

    def test_missing_market_raises(self, env, zone):
        with pytest.raises(KeyError):
            SpotMarketplace(env).market("m3.medium", zone.name)

    def test_len_and_iter(self, env, region):
        marketplace = SpotMarketplace(env)
        for zone in region.zones:
            marketplace.add_market(
                MEDIUM, zone, flat_trace(0.02, zone_name=zone.name))
        assert len(marketplace) == len(region.zones)
        assert {m.zone.name for m in marketplace} == \
            {z.name for z in region.zones}
