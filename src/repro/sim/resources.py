"""Shared-resource primitives: counted resources and continuous containers."""

from collections import deque

from repro.sim.events import Event


class _Request(Event):
    """Pending acquisition of one resource slot."""

    __slots__ = ("resource",)

    def __init__(self, resource):
        super().__init__(resource.env)
        self.resource = resource

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc_value, traceback):
        self.resource.release(self)
        return False


class Resource:
    """A resource with ``capacity`` identical slots and a FIFO queue.

    Processes ``yield resource.request()`` to acquire a slot and call
    ``resource.release(request)`` (or use the request as a context
    manager) to return it.
    """

    def __init__(self, env, capacity=1):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.users = []
        self.queue = deque()

    @property
    def count(self):
        """Number of slots currently held."""
        return len(self.users)

    def request(self):
        """Return an event that triggers once a slot is granted."""
        req = _Request(self)
        if len(self.users) < self.capacity:
            self.users.append(req)
            req.succeed()
        else:
            self.queue.append(req)
        return req

    def release(self, request):
        """Return a previously granted slot and wake the next waiter."""
        if request in self.users:
            self.users.remove(request)
        elif request in self.queue:
            self.queue.remove(request)
            return
        while self.queue and len(self.users) < self.capacity:
            nxt = self.queue.popleft()
            self.users.append(nxt)
            nxt.succeed()


class Container:
    """A continuous quantity (e.g. bytes of disk) with put/get semantics."""

    def __init__(self, env, capacity=float("inf"), init=0.0):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if not 0 <= init <= capacity:
            raise ValueError(f"init {init} outside [0, {capacity}]")
        self.env = env
        self.capacity = capacity
        self._level = float(init)
        self._getters = deque()
        self._putters = deque()

    @property
    def level(self):
        """Current stored amount."""
        return self._level

    def put(self, amount):
        """Event that triggers once ``amount`` fits into the container."""
        if amount <= 0:
            raise ValueError(f"amount must be positive, got {amount}")
        event = Event(self.env)
        self._putters.append((event, amount))
        self._settle()
        return event

    def get(self, amount):
        """Event that triggers once ``amount`` can be drawn."""
        if amount <= 0:
            raise ValueError(f"amount must be positive, got {amount}")
        event = Event(self.env)
        self._getters.append((event, amount))
        self._settle()
        return event

    def _settle(self):
        progress = True
        while progress:
            progress = False
            if self._putters:
                event, amount = self._putters[0]
                if self._level + amount <= self.capacity:
                    self._putters.popleft()
                    self._level += amount
                    event.succeed()
                    progress = True
            if self._getters:
                event, amount = self._getters[0]
                if self._level >= amount:
                    self._getters.popleft()
                    self._level -= amount
                    event.succeed()
                    progress = True
