"""Tests for the memory-dirtying model, including property tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.virt.memory import DirtyBudgetInfeasible, MemoryModel, PAGE_SIZE

GiB = 1024 ** 3


def model(**overrides):
    defaults = dict(total_bytes=GiB, write_rate_pages=1000.0)
    defaults.update(overrides)
    return MemoryModel(**defaults)


memory_models = st.builds(
    MemoryModel,
    total_bytes=st.integers(min_value=PAGE_SIZE, max_value=64 * GiB),
    write_rate_pages=st.floats(min_value=0.0, max_value=1e6,
                               allow_nan=False),
    working_set_fraction=st.floats(min_value=0.01, max_value=1.0),
    cold_write_fraction=st.floats(min_value=0.0, max_value=0.5),
)


class TestValidation:
    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            model(total_bytes=0)

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            model(write_rate_pages=-1)

    def test_bad_working_set_rejected(self):
        with pytest.raises(ValueError):
            model(working_set_fraction=0.0)
        with pytest.raises(ValueError):
            model(working_set_fraction=1.5)

    def test_bad_cold_fraction_rejected(self):
        with pytest.raises(ValueError):
            model(cold_write_fraction=1.0)


class TestDirtying:
    def test_zero_interval_zero_dirty(self):
        assert model().unique_pages_dirtied(0.0) == 0.0

    def test_idle_vm_never_dirties(self):
        assert model(write_rate_pages=0.0).unique_pages_dirtied(1e6) == 0.0

    def test_short_interval_roughly_linear(self):
        m = model(write_rate_pages=100.0)
        assert m.unique_pages_dirtied(1.0) == pytest.approx(100.0, rel=0.05)

    def test_long_interval_saturates_at_working_set(self):
        m = model(working_set_fraction=0.2, cold_write_fraction=0.0)
        dirty = m.unique_pages_dirtied(1e7)
        assert dirty == pytest.approx(m.working_set_pages, rel=0.01)

    def test_cold_writes_push_past_working_set(self):
        hot_only = model(cold_write_fraction=0.0)
        with_cold = model(cold_write_fraction=0.1)
        long_s = 3e4
        assert with_cold.unique_pages_dirtied(long_s) > \
            hot_only.unique_pages_dirtied(long_s)

    @given(memory_models, st.floats(min_value=0, max_value=1e6,
                                    allow_nan=False))
    @settings(max_examples=100, deadline=None)
    def test_bounded_by_total_pages(self, memory, interval):
        assert memory.unique_pages_dirtied(interval) <= memory.total_pages

    @given(memory_models,
           st.floats(min_value=0.001, max_value=1e4, allow_nan=False),
           st.floats(min_value=1.001, max_value=10.0, allow_nan=False))
    @settings(max_examples=100, deadline=None)
    def test_monotone_in_interval(self, memory, interval, factor):
        assert memory.unique_pages_dirtied(interval * factor) >= \
            memory.unique_pages_dirtied(interval) - 1e-9

    @given(memory_models, st.floats(min_value=0.001, max_value=1e4,
                                    allow_nan=False))
    @settings(max_examples=100, deadline=None)
    def test_sublinear_in_interval(self, memory, interval):
        # Unique pages over 2t never exceed twice those over t
        # (dirtying has diminishing returns, never increasing ones).
        once = memory.unique_pages_dirtied(interval)
        twice = memory.unique_pages_dirtied(2 * interval)
        assert twice <= 2 * once + 1e-6


class TestIntervalInversion:
    def test_inverse_of_dirty_bytes(self):
        m = model(write_rate_pages=800.0, total_bytes=2 * GiB)
        budget = 50e6
        interval = m.interval_for_dirty_bytes(budget)
        assert m.dirty_bytes(interval) == pytest.approx(budget, rel=0.01)

    def test_idle_vm_infinite_interval(self):
        assert model(write_rate_pages=0.0).interval_for_dirty_bytes(1e6) \
            == float("inf")

    def test_tiny_budget_raises_infeasible(self):
        # Even a 1 ms interval dirties more than the budget: there is
        # no interval to return, and a silent floor would let planners
        # pretend the commit bound holds.
        m = model(write_rate_pages=1e6)
        with pytest.raises(DirtyBudgetInfeasible):
            m.interval_for_dirty_bytes(1.0)

    def test_unreachable_budget_returns_inf(self):
        # Dirtying saturates (working set + cold region) far below the
        # budget: every interval fits.
        m = model(write_rate_pages=10.0, total_bytes=PAGE_SIZE * 64)
        assert m.interval_for_dirty_bytes(1e12) == float("inf")

    def test_budget_validation(self):
        with pytest.raises(ValueError):
            model().interval_for_dirty_bytes(0)

    @given(memory_models.filter(lambda m: m.write_rate_pages > 1.0),
           st.floats(min_value=PAGE_SIZE, max_value=1e9, allow_nan=False))
    @settings(max_examples=60, deadline=None)
    def test_dirty_at_returned_interval_within_budget(self, memory, budget):
        try:
            interval = memory.interval_for_dirty_bytes(budget)
        except DirtyBudgetInfeasible:
            # Signalled explicitly: the budget overflows within 1 ms.
            assert memory.dirty_bytes(1e-3) > budget
            return
        if interval == float("inf"):
            # Saturated below the budget: any interval fits.
            return
        assert memory.dirty_bytes(interval) <= budget * 1.02 + PAGE_SIZE


class TestScaled:
    def test_scaled_rate(self):
        m = model(write_rate_pages=100.0)
        assert m.scaled(2.5).write_rate_pages == 250.0
        assert m.scaled(2.5).total_bytes == m.total_bytes
