"""Tests for the Section 4.4 analytical model."""

import pytest

from repro.core.analysis import (
    crossing_rate_per_hour,
    epoch_length_s,
    mean_price_below_bid,
    predict,
    predict_portfolio,
    revocation_probability,
)
from repro.traces.archive import PriceTrace

DAY = 24 * 3600.0


def make_trace(steps, od=0.07):
    times = [t for t, _ in steps]
    prices = [p for _, p in steps]
    return PriceTrace(times, prices, "m3.medium", "z", od)


@pytest.fixture
def spiky():
    # 10% of the horizon above on-demand.
    return make_trace(
        [(0, 0.014), (9 * 3600.0, 0.50), (10 * 3600.0, 0.014),
         (100 * 3600.0, 0.014)])


class TestComponents:
    def test_revocation_probability(self, spiky):
        assert revocation_probability(spiky, 0.07) == pytest.approx(0.01)

    def test_mean_price_below_bid(self, spiky):
        assert mean_price_below_bid(spiky, 0.07) == pytest.approx(0.014)

    def test_mean_price_all_above_bid(self):
        trace = make_trace([(0, 0.5), (3600.0, 0.5)])
        # Nothing below the bid: the VM would always be on-demand.
        assert mean_price_below_bid(trace, 0.07) == 0.07

    def test_crossing_rate(self, spiky):
        assert crossing_rate_per_hour(spiky, 0.07) == pytest.approx(1 / 100)

    def test_epoch_length(self, spiky):
        assert epoch_length_s(spiky) == pytest.approx(100 * 3600.0 / 3)


class TestPredict:
    def test_cost_composition(self, spiky):
        prediction = predict(spiky, backup_share_per_hour=0.007)
        expected = 0.99 * 0.014 + 0.01 * 0.07 + 0.007
        assert prediction.expected_cost_per_hour == pytest.approx(expected)

    def test_unavailability_scales_with_downtime(self, spiky):
        fast = predict(spiky, downtime_per_migration_s=10.0)
        slow = predict(spiky, downtime_per_migration_s=100.0)
        assert slow.expected_unavailability == pytest.approx(
            10 * fast.expected_unavailability)

    def test_quiet_trace_perfect(self):
        trace = make_trace([(0, 0.014), (DAY, 0.014)])
        prediction = predict(trace)
        assert prediction.expected_unavailability == 0.0
        assert prediction.expected_availability == 1.0
        assert prediction.revocation_rate_per_hour == 0.0

    def test_bid_above_spikes_removes_revocations(self, spiky):
        prediction = predict(spiky, bid=1.0)
        assert prediction.revocation_rate_per_hour == 0.0
        # But the expected cost now includes time at the spike price.
        assert prediction.expected_cost_per_hour > 0.014

    def test_default_bid_is_on_demand(self, spiky):
        assert predict(spiky).revocation_probability == \
            predict(spiky, bid=0.07).revocation_probability


class TestPortfolio:
    def test_weighted_mixture(self, spiky):
        quiet = make_trace([(0, 0.02), (100 * 3600.0, 0.02)])
        mixed = predict_portfolio([(spiky, 1.0), (quiet, 1.0)])
        solo_spiky = predict(spiky)
        solo_quiet = predict(quiet)
        assert mixed.expected_cost_per_hour == pytest.approx(
            (solo_spiky.expected_cost_per_hour
             + solo_quiet.expected_cost_per_hour) / 2)
        assert mixed.expected_unavailability == pytest.approx(
            solo_spiky.expected_unavailability / 2)

    def test_zero_weights_rejected(self, spiky):
        with pytest.raises(ValueError):
            predict_portfolio([(spiky, 0.0)])

    def test_matches_paper_shape_on_synthetic_markets(self):
        # 1P-M (all weight on the stable market) must predict both a
        # lower cost and a higher availability than 4P-ED.
        from repro.experiments.policy_grid import shared_archive
        archive = shared_archive(11, 60.0)
        medium = archive.get("m3.medium", "us-east-1a")
        pools = [archive.get(name, "us-east-1a")
                 for name in ("m3.medium", "m3.large", "m3.xlarge",
                              "m3.2xlarge")]
        one_pool = predict(medium)
        four_pool = predict_portfolio([(t, 1.0) for t in pools])
        assert one_pool.expected_availability > \
            four_pool.expected_availability
        assert one_pool.expected_cost_per_hour < 0.07 / 3
