"""An EC2-like native IaaS substrate.

SpotCheck consumes only the *contract* of the native platform: instance
types with fixed on-demand prices, per-(type, zone) spot markets whose
price moves over time, spot requests with bids, a bounded revocation
warning before forced termination, network-attached volumes, and VPC
private-IP reassignment.  This package implements exactly that contract
as a discrete-event simulation, with control-plane operation latencies
calibrated to the paper's Table 1.
"""

from repro.cloud.api import CloudApi
from repro.cloud.ebs import Volume, VolumeState
from repro.cloud.errors import (
    CapacityError,
    CloudError,
    InvalidOperation,
    NotFound,
)
from repro.cloud.instance_types import (
    DEFAULT_CATALOG,
    InstanceType,
    InstanceTypeCatalog,
)
from repro.cloud.instances import Instance, InstanceState, Market
from repro.cloud.latency import OperationLatencyModel, TABLE1_SPECS
from repro.cloud.spot_market import SpotMarket, SpotMarketplace
from repro.cloud.vpc import NetworkInterface, Vpc
from repro.cloud.zones import Region, Zone

__all__ = [
    "CapacityError",
    "CloudApi",
    "CloudError",
    "DEFAULT_CATALOG",
    "Instance",
    "InstanceState",
    "InstanceType",
    "InstanceTypeCatalog",
    "InvalidOperation",
    "Market",
    "NetworkInterface",
    "NotFound",
    "OperationLatencyModel",
    "Region",
    "SpotMarket",
    "SpotMarketplace",
    "TABLE1_SPECS",
    "Volume",
    "VolumeState",
    "Vpc",
    "Zone",
]
