"""Policy-grid benchmarks: one cell, then serial vs parallel vs warm.

Every timing starts from cleared in-memory caches so serial and
parallel runs do comparable work; the warm run keeps the on-disk cell
cache to measure the repeated-``repro report`` path (all disk hits).
Cache and worker counters come from the same
:class:`~repro.obs.MetricsRegistry` wiring the grid runner uses in
production, so the benchmark observes exactly what an instrumented run
would.
"""

import tempfile
import time

from repro.experiments import policy_grid
from repro.experiments.scenario import (
    MECHANISMS,
    POLICIES,
    PolicySimulation,
    ScenarioConfig,
)
from repro.obs import MetricsRegistry


def _counter_total(metrics, name, **labels):
    total = 0.0
    for series in metrics.find(name):
        if all(series.labels.get(k) == v for k, v in labels.items()):
            total += series.value
    return total


def _worker_plan(metrics, requested):
    """The planned worker count and reason recorded by ``run_grid``."""
    planned = None
    for series in metrics.find("grid_planned_workers"):
        planned = int(series.value)
    reason = "unplanned"
    best = 0.0
    for series in metrics.find("grid_worker_plan_total"):
        if series.value > best:
            best = series.value
            reason = series.labels.get("reason", reason)
    return {
        "requested": requested,
        "planned": requested if planned is None else planned,
        "reason": reason,
    }


def measure_cell(policy="1P-M", mechanism="spotcheck-lazy", seed=11,
                 days=7.0, vms=10):
    """Wall-clock of one cold grid cell (archive generation included).

    A second, untimed run of the same cell collects the spot-market
    drive counters (``market_drive``): trace points vs actual kernel
    wake-ups, i.e. how much work the threshold-indexed drive skipped.
    """
    policy_grid.clear_caches()
    started = time.perf_counter()
    policy_grid.run_cell(policy, mechanism, seed=seed, days=days, vms=vms)
    wall = time.perf_counter() - started

    config = ScenarioConfig(policy=policy, mechanism=mechanism, seed=seed,
                            days=days, vms=vms)
    archive = policy_grid.shared_archive(
        seed, days, zones=config.zones, market_params=config.market_params)
    _summary, controller = PolicySimulation(config, archive=archive).run(
        return_controller=True)
    drive = controller.api.marketplace.drive_stats()
    drive["event_reduction"] = (
        drive["points"] / max(drive["delivered"], 1))
    return {
        "policy": policy,
        "mechanism": mechanism,
        "seed": seed,
        "days": days,
        "vms": vms,
        "wall_s": wall,
        "market_drive": drive,
    }


def measure_grid(policies=POLICIES, mechanisms=MECHANISMS, seed=11,
                 days=7.0, vms=10, workers=4):
    """Serial vs parallel vs cache-warm timings for one full grid.

    Returns a dict with ``serial_wall_s``, ``parallel_wall_s``,
    ``warm_wall_s``, the derived ``speedup`` / ``warm_speedup`` (serial
    over parallel / warm), and the cache hit/miss/executed counters of
    the parallel and warm runs.  Parallel results are asserted equal to
    serial ones — a benchmark that silently measured a wrong answer
    would be worse than no benchmark.
    """
    policies = tuple(policies)
    mechanisms = tuple(mechanisms)

    policy_grid.clear_caches()
    started = time.perf_counter()
    serial = policy_grid.run_grid(policies=policies, mechanisms=mechanisms,
                                  seed=seed, days=days, vms=vms, workers=1)
    serial_wall = time.perf_counter() - started

    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as cache:
        policy_grid.clear_caches()
        cold_metrics = MetricsRegistry()
        started = time.perf_counter()
        parallel = policy_grid.run_grid(
            policies=policies, mechanisms=mechanisms, seed=seed, days=days,
            vms=vms, workers=workers, cache_dir=cache, metrics=cold_metrics)
        parallel_wall = time.perf_counter() - started
        if parallel != serial:
            raise AssertionError(
                "parallel grid summaries diverged from the serial path")

        policy_grid.clear_caches()
        warm_metrics = MetricsRegistry()
        started = time.perf_counter()
        policy_grid.run_grid(
            policies=policies, mechanisms=mechanisms, seed=seed, days=days,
            vms=vms, workers=workers, cache_dir=cache, metrics=warm_metrics)
        warm_wall = time.perf_counter() - started

    return {
        "cells": len(policies) * len(mechanisms),
        "policies": list(policies),
        "mechanisms": list(mechanisms),
        "seed": seed,
        "days": days,
        "vms": vms,
        "workers": workers,
        "serial_wall_s": serial_wall,
        "parallel_wall_s": parallel_wall,
        "warm_wall_s": warm_wall,
        "speedup": serial_wall / parallel_wall,
        "warm_speedup": serial_wall / warm_wall,
        "parallel_plan": _worker_plan(cold_metrics, workers),
        "cache": {
            "memory_hits": _counter_total(
                cold_metrics, "grid_cache_hits_total", tier="memory"),
            "disk_hits": _counter_total(
                cold_metrics, "grid_cache_hits_total", tier="disk"),
            "misses": _counter_total(
                cold_metrics, "grid_cache_misses_total"),
            "executed": _counter_total(
                cold_metrics, "grid_cells_executed_total"),
            "warm_disk_hits": _counter_total(
                warm_metrics, "grid_cache_hits_total", tier="disk"),
            "warm_misses": _counter_total(
                warm_metrics, "grid_cache_misses_total"),
        },
    }
