"""Open-loop arrival patterns with closed-form interval integrals.

A pattern is a deterministic request-rate function ``rate_at(t)``
(requests per second of simulated time) whose *integral* over any
window is available in closed form: ``requests_between(t0, t1)``
returns the exact expected number of arrivals in ``[t0, t1)`` without
generating a single per-request event.  That integral is what lets the
:class:`~repro.traffic.engine.TrafficEngine` batch-account millions of
users at the cost of a handful of segment boundaries.

Patterns are frozen dataclasses so they compose into hashable,
``asdict``-able trees (a :class:`~repro.experiments.scenario.ScenarioConfig`
carries them straight into the grid cache's config hash):

* :class:`ConstantRate` — a flat baseline;
* :class:`DiurnalRate` — a day/night sinusoid (integral via cosine);
* :class:`FlashCrowd` — a piecewise-linear ramp/hold/decay burst,
  with its corner times exposed as *breakpoints* so the engine can
  wake exactly there and nowhere else;
* :class:`ScaledRate` — per-customer mixes ("two million users at
  0.05 rps each" is ``ScaledRate(per_user, 2e6)``);
* :class:`CompositeRate` — the sum of any of the above (``a + b``).
"""

import math
from dataclasses import dataclass, field


@dataclass(frozen=True)
class RatePattern:
    """Base class: a deterministic open-loop arrival-rate function."""

    def rate_at(self, t):
        """Instantaneous arrival rate at time ``t``, in requests/s."""
        raise NotImplementedError

    def _cumulative(self, t):
        """Closed-form integral of the rate from time 0 to ``t``."""
        raise NotImplementedError

    def requests_between(self, t0, t1):
        """Exact number of arrivals in ``[t0, t1)`` (closed form)."""
        if t1 < t0:
            raise ValueError(f"window end {t1} precedes start {t0}")
        return self._cumulative(t1) - self._cumulative(t0)

    def breakpoints(self):
        """Times where the rate function is non-smooth, sorted.

        The engine wakes at each of these (and only these, plus its
        own reporting epochs); smooth patterns return ``()`` because
        their integrals need no interior evaluation points.
        """
        return ()

    def __add__(self, other):
        if not isinstance(other, RatePattern):
            return NotImplemented
        mine = self.parts if isinstance(self, CompositeRate) else (self,)
        theirs = other.parts if isinstance(other, CompositeRate) \
            else (other,)
        return CompositeRate(mine + theirs)

    def scaled(self, factor):
        """This pattern multiplied by ``factor`` (e.g. a user count)."""
        return ScaledRate(self, float(factor))


@dataclass(frozen=True)
class ConstantRate(RatePattern):
    """A flat ``rps`` arrival rate."""

    rps: float = 1.0

    def __post_init__(self):
        if self.rps < 0:
            raise ValueError("rate must be non-negative")

    def rate_at(self, t):
        return self.rps

    def _cumulative(self, t):
        return self.rps * t


@dataclass(frozen=True)
class DiurnalRate(RatePattern):
    """A day/night sinusoid around ``base_rps``.

    ``rate(t) = base_rps * (1 + amplitude * sin(2pi (t - phase_s) /
    period_s))`` — amplitude 1 swings between 0 and twice the base.
    The interval integral is closed-form via the cosine antiderivative,
    and the pattern is smooth, so it contributes no breakpoints.
    """

    base_rps: float = 1.0
    amplitude: float = 0.5
    period_s: float = 86400.0
    phase_s: float = 0.0

    def __post_init__(self):
        if self.base_rps < 0:
            raise ValueError("base rate must be non-negative")
        if not 0.0 <= self.amplitude <= 1.0:
            raise ValueError("amplitude must lie in [0, 1]")
        if self.period_s <= 0:
            raise ValueError("period must be positive")

    def _omega(self):
        return 2.0 * math.pi / self.period_s

    def rate_at(self, t):
        return self.base_rps * (
            1.0 + self.amplitude * math.sin(self._omega() * (t - self.phase_s)))

    def _cumulative(self, t):
        omega = self._omega()
        return self.base_rps * (
            t - (self.amplitude / omega)
            * math.cos(omega * (t - self.phase_s)))


@dataclass(frozen=True)
class FlashCrowd(RatePattern):
    """A triangular-plateau burst: ramp up, hold, decay back to zero.

    Zero outside ``[start_s, start_s + ramp_s + hold_s + decay_s)``;
    linear from 0 to ``peak_rps`` over ``ramp_s``, flat for ``hold_s``,
    linear back to 0 over ``decay_s``.  The four corner times are the
    pattern's breakpoints.
    """

    start_s: float = 0.0
    peak_rps: float = 100.0
    ramp_s: float = 600.0
    hold_s: float = 3600.0
    decay_s: float = 1200.0

    def __post_init__(self):
        if self.peak_rps < 0:
            raise ValueError("peak rate must be non-negative")
        if min(self.ramp_s, self.hold_s, self.decay_s) < 0:
            raise ValueError("phase durations must be non-negative")

    @property
    def end_s(self):
        return self.start_s + self.ramp_s + self.hold_s + self.decay_s

    def rate_at(self, t):
        dt = t - self.start_s
        if dt < 0 or dt >= self.ramp_s + self.hold_s + self.decay_s:
            return 0.0
        if dt < self.ramp_s:
            return self.peak_rps * dt / self.ramp_s
        if dt < self.ramp_s + self.hold_s:
            return self.peak_rps
        if self.decay_s == 0:
            return 0.0
        remaining = self.ramp_s + self.hold_s + self.decay_s - dt
        return self.peak_rps * remaining / self.decay_s

    def _cumulative(self, t):
        dt = t - self.start_s
        if dt <= 0:
            return 0.0
        total = 0.0
        # Ramp: area of the growing triangle.
        up = min(dt, self.ramp_s)
        if self.ramp_s > 0:
            total += 0.5 * self.peak_rps * up * up / self.ramp_s
        dt -= self.ramp_s
        if dt <= 0:
            return total
        # Hold: flat plateau.
        total += self.peak_rps * min(dt, self.hold_s)
        dt -= self.hold_s
        if dt <= 0:
            return total
        # Decay: plateau area minus the still-missing triangle tail.
        down = min(dt, self.decay_s)
        if self.decay_s > 0:
            total += self.peak_rps * down * (1.0 - 0.5 * down / self.decay_s)
        return total

    def breakpoints(self):
        corners = (self.start_s,
                   self.start_s + self.ramp_s,
                   self.start_s + self.ramp_s + self.hold_s,
                   self.end_s)
        return tuple(sorted(set(corners)))


@dataclass(frozen=True)
class ScaledRate(RatePattern):
    """``pattern`` multiplied by a constant ``factor`` (user count)."""

    pattern: RatePattern = field(default_factory=ConstantRate)
    factor: float = 1.0

    def __post_init__(self):
        if self.factor < 0:
            raise ValueError("scale factor must be non-negative")

    def rate_at(self, t):
        return self.factor * self.pattern.rate_at(t)

    def _cumulative(self, t):
        return self.factor * self.pattern._cumulative(t)

    def breakpoints(self):
        return self.pattern.breakpoints()


@dataclass(frozen=True)
class CompositeRate(RatePattern):
    """The sum of several patterns (built by ``a + b``)."""

    parts: tuple = ()

    def __post_init__(self):
        for part in self.parts:
            if not isinstance(part, RatePattern):
                raise TypeError(f"not a RatePattern: {part!r}")

    def rate_at(self, t):
        return sum(part.rate_at(t) for part in self.parts)

    def _cumulative(self, t):
        return sum(part._cumulative(t) for part in self.parts)

    def breakpoints(self):
        merged = set()
        for part in self.parts:
            merged.update(part.breakpoints())
        return tuple(sorted(merged))
