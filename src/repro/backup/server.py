"""The backup-server resource model."""

from dataclasses import dataclass

from repro.sim.resources import Container


@dataclass(frozen=True)
class BackupServerSpec:
    """Capacity model of one backup server (m3.xlarge by default).

    The write-path numbers reflect the paper's ext4 tuning (write-back
    journalling, ``noatime``, high ``dirty_ratio``): the page cache
    absorbs write bursts, so the sustained write path is close to the
    device limit.  The read-path numbers express the three regimes of
    Figure 8: tuned sequential reads (optimized full restore), untuned
    reads (unoptimized full restore), and random demand-paged reads
    whose aggregate throughput collapses under concurrency unless the
    ``fadvise`` hints are issued.

    Attributes
    ----------
    itype_name:
        Native type used for backup servers.
    hourly_price:
        On-demand price of the backup server ($0.28 for m3.xlarge).
    net_bps:
        NIC bandwidth (bytes/s).
    disk_write_bps:
        Sustained checkpoint-ingest bandwidth (bytes/s).
    seq_read_bps:
        Sequential image-read bandwidth with readahead hints.
    untuned_read_factor:
        Fraction of ``seq_read_bps`` achieved without the hints.
    rand_read_bps:
        Aggregate random-read bandwidth at concurrency 1 (page faults
        during lazy restore).
    rand_interference:
        Quadratic seek-interference coefficient: aggregate random
        throughput at concurrency n is ``rand_read_bps / (1 + c(n-1)^2)``.
    fadvise_rand_read_bps:
        Aggregate demand-paging bandwidth when the RANDOM ``fadvise``
        hint plus background prefetch is enabled (flat in n).
    max_checkpoint_vms:
        Assignment cap SpotCheck enforces per backup server ("assigns
        at most 35-40 VMs per backup server").
    page_cache_bytes:
        Page cache available to absorb write storms.
    """

    itype_name: str = "m3.xlarge"
    hourly_price: float = 0.28
    net_bps: float = 125e6
    disk_write_bps: float = 110e6
    seq_read_bps: float = 90e6
    untuned_read_factor: float = 0.55
    rand_read_bps: float = 45e6
    rand_interference: float = 0.02
    fadvise_rand_read_bps: float = 70e6
    max_checkpoint_vms: int = 40
    page_cache_bytes: float = 8 * 1024 ** 3

    def __post_init__(self):
        if self.net_bps <= 0 or self.disk_write_bps <= 0:
            raise ValueError("bandwidths must be positive")
        if not 0 < self.untuned_read_factor <= 1:
            raise ValueError("untuned_read_factor must lie in (0, 1]")
        if self.max_checkpoint_vms < 1:
            raise ValueError("max_checkpoint_vms must be at least 1")

    @property
    def write_path_bps(self):
        """Sustained checkpoint-ingest capacity (network or disk bound)."""
        return min(self.net_bps, self.disk_write_bps)

    def full_restore_aggregate_bps(self, optimized):
        """Aggregate sequential read throughput for full restores."""
        rate = self.seq_read_bps if optimized \
            else self.seq_read_bps * self.untuned_read_factor
        return min(rate, self.net_bps)

    def lazy_restore_aggregate_bps(self, concurrent, optimized):
        """Aggregate demand-paging throughput at ``concurrent`` restores."""
        if concurrent < 1:
            raise ValueError("concurrency must be at least 1")
        if optimized:
            rate = self.fadvise_rand_read_bps
        else:
            rate = self.rand_read_bps / (
                1.0 + self.rand_interference * (concurrent - 1) ** 2)
        return min(rate, self.net_bps)

    def amortized_cost_per_vm(self, vms):
        """Backup cost share per nested VM ($/hour)."""
        if vms < 1:
            raise ValueError("need at least one VM")
        return self.hourly_price / vms


class BackupServer:
    """One backup server: assigned checkpoint streams + restore load.

    Used analytically by the figure benches (utilization, degradation)
    and as a stateful entity by the controller (assignment bookkeeping,
    storm accounting).
    """

    _ids = iter(range(1, 10 ** 9))

    def __init__(self, env, spec=None):
        self.env = env
        self.spec = spec or BackupServerSpec()
        self.id = f"bak-{next(self._ids):04d}"
        #: vm.id -> stream rate (bytes/s).
        self.streams = {}
        #: Restores in flight right now.
        self.active_restores = 0
        #: Disk occupancy for stored images.
        self.store_bytes = Container(env, capacity=float("inf"))
        self.created_at = env.now
        #: Set when the server dies (failure injection); a failed
        #: server accepts no assignments and serves no restores.
        self.failed_at = None

    @property
    def failed(self):
        return self.failed_at is not None

    def mark_failed(self):
        """The server (and the images it held) are gone."""
        if self.failed_at is None:
            self.failed_at = self.env.now

    # -- checkpoint write path -------------------------------------------

    @property
    def assigned_vms(self):
        return len(self.streams)

    @property
    def has_capacity(self):
        return self.assigned_vms < self.spec.max_checkpoint_vms

    def assign_stream(self, vm_id, rate_bps):
        """Register a nested VM's checkpoint stream."""
        if self.failed:
            raise ValueError(f"{self.id} has failed")
        if vm_id in self.streams:
            raise ValueError(f"{vm_id} already assigned to {self.id}")
        self.streams[vm_id] = float(rate_bps)
        self._observe_write_path("backup.stream_assigned", vm_id)

    def release_stream(self, vm_id):
        if self.streams.pop(vm_id, None) is not None:
            self._observe_write_path("backup.stream_released", vm_id)

    def _observe_write_path(self, event_name, vm_id):
        """Publish the stream change and the resulting write pressure.

        A ``backup.throttled`` event additionally marks the moment
        aggregate checkpoint demand exceeds the write path (the
        post-knee regime of Figure 7) — the per-VM streams are being
        throttled below their requested rates from here on.
        """
        obs = getattr(self.env, "obs", None)
        if obs is None:
            return
        utilization = self.write_utilization()
        obs.emit(event_name, server=self.id, vm=vm_id,
                 assigned=self.assigned_vms, utilization=utilization)
        obs.metrics.gauge(
            "backup_write_utilization", server=self.id).set(utilization)
        obs.metrics.gauge(
            "backup_assigned_vms", server=self.id).set(self.assigned_vms)
        if utilization > 1.0 and event_name == "backup.stream_assigned":
            obs.emit("backup.throttled", server=self.id,
                     utilization=utilization,
                     overload=self.overload_fraction())
            obs.metrics.counter("backup_throttle_events_total",
                                server=self.id).inc()

    def write_utilization(self):
        """Aggregate stream demand / write-path capacity."""
        return sum(self.streams.values()) / self.spec.write_path_bps

    def overload_fraction(self):
        """Fraction of checkpoint demand the write path cannot absorb.

        Positive once aggregate streams exceed capacity; drives the
        post-knee performance drop of Figure 7.
        """
        util = self.write_utilization()
        return max(0.0, 1.0 - 1.0 / util) if util > 0 else 0.0

    # -- restore read path -------------------------------------------------

    def per_restore_bps(self, kind, optimized, concurrent=None):
        """Per-restore bandwidth for ``concurrent`` simultaneous restores.

        ``kind`` is ``"full"`` or ``"lazy"``.
        """
        n = self.active_restores if concurrent is None else concurrent
        n = max(n, 1)
        if kind == "full":
            aggregate = self.spec.full_restore_aggregate_bps(optimized)
        elif kind == "lazy":
            aggregate = self.spec.lazy_restore_aggregate_bps(n, optimized)
        else:
            raise ValueError(f"unknown restore kind {kind!r}")
        return aggregate / n

    def __repr__(self):
        return (f"<BackupServer {self.id} vms={self.assigned_vms}"
                f"/{self.spec.max_checkpoint_vms} "
                f"restores={self.active_restores}>")
