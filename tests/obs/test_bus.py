"""Tests for the observability event bus."""

import pytest

from repro.obs.bus import EventBus


class TestSubscriptions:
    def test_exact_subscription_receives_matching_events(self):
        bus = EventBus()
        seen = []
        bus.subscribe("spot.warning", seen.append)
        bus.publish("spot.warning", 1.0, instance="i-1")
        bus.publish("spot.price", 2.0, price=0.07)
        assert [e.name for e in seen] == ["spot.warning"]
        assert seen[0].fields == {"instance": "i-1"}
        assert seen[0].time == 1.0

    def test_prefix_subscription_matches_hierarchy(self):
        bus = EventBus()
        seen = []
        bus.subscribe("spot.*", seen.append)
        bus.publish("spot.warning", 1.0)
        bus.publish("spot.price", 2.0)
        bus.publish("backup.throttled", 3.0)
        assert [e.name for e in seen] == ["spot.warning", "spot.price"]

    def test_star_subscription_sees_everything(self):
        bus = EventBus()
        seen = []
        bus.subscribe("*", seen.append)
        bus.publish("a", 0.0)
        bus.publish("b.c", 1.0)
        assert [e.name for e in seen] == ["a", "b.c"]

    def test_cancel_stops_delivery(self):
        bus = EventBus()
        seen = []
        sub = bus.subscribe("x", seen.append)
        bus.publish("x", 0.0)
        sub.cancel()
        bus.publish("x", 1.0)
        assert len(seen) == 1
        assert not bus.has_subscribers("x")

    def test_multiple_subscribers_all_receive(self):
        bus = EventBus()
        a, b = [], []
        bus.subscribe("x", a.append)
        bus.subscribe("x*", b.append)
        bus.publish("x", 0.0)
        assert len(a) == 1 and len(b) == 1


class TestPublishing:
    def test_publish_without_subscribers_returns_none(self):
        bus = EventBus()
        assert bus.publish("spot.price", 0.0, price=1.0) is None
        assert bus.published == 0

    def test_sequence_numbers_are_monotonic(self):
        bus = EventBus()
        seen = []
        bus.subscribe("*", seen.append)
        bus.publish("a", 0.0)
        bus.publish("b", 0.0)
        bus.publish("c", 0.0)
        assert [e.seq for e in seen] == [0, 1, 2]

    def test_has_subscribers_reflects_patterns(self):
        bus = EventBus()
        assert not bus.has_subscribers()
        bus.subscribe("spot.*", lambda e: None)
        assert bus.has_subscribers("spot.warning")
        assert not bus.has_subscribers("backup.throttled")

    def test_reserved_field_names_rejected_at_export(self):
        bus = EventBus()
        seen = []
        bus.subscribe("*", seen.append)
        bus.publish("x", 0.0, name="collision")
        with pytest.raises(ValueError):
            seen[0].to_dict()

    def test_event_to_dict_is_flat(self):
        bus = EventBus()
        seen = []
        bus.subscribe("*", seen.append)
        bus.publish("spot.warning", 12.5, instance="i-1", bid=0.07)
        record = seen[0].to_dict()
        assert record == {"name": "spot.warning", "t": 12.5, "seq": 0,
                          "instance": "i-1", "bid": 0.07}
