"""FaultPlan: validation, matching, JSON round-trip."""

import pytest

from repro.faults import (
    BackupCrash,
    CapacityEpisode,
    FaultPlan,
    LatencyTail,
    ThrottleWindow,
)


class TestValidation:
    def test_error_rate_bounds(self):
        with pytest.raises(ValueError):
            FaultPlan(error_rates={"attach_volume": 1.5})
        with pytest.raises(ValueError):
            FaultPlan(error_rates={"attach_volume": -0.1})

    def test_terminal_fraction_bounds(self):
        with pytest.raises(ValueError):
            FaultPlan(terminal_fraction=2.0)

    def test_throttle_window_ordering(self):
        with pytest.raises(ValueError):
            ThrottleWindow(start_s=100.0, end_s=100.0)
        with pytest.raises(ValueError):
            ThrottleWindow(start_s=0.0, end_s=10.0, rate=0.0)

    def test_capacity_episode_market_kind(self):
        with pytest.raises(ValueError):
            CapacityEpisode("m3.medium", "us-east-1a", 0.0, 1.0,
                            market="reserved")

    def test_latency_tail_multiplier(self):
        with pytest.raises(ValueError):
            LatencyTail(rate=0.1, multiplier=0.5)

    def test_stuck_detach_bounds(self):
        with pytest.raises(ValueError):
            FaultPlan(stuck_detach_rate=1.1)
        with pytest.raises(ValueError):
            FaultPlan(stuck_detach_extra_s=-1.0)


class TestMatching:
    def test_throttle_window_half_open(self):
        window = ThrottleWindow(start_s=10.0, end_s=20.0)
        assert not window.matches(9.9, "attach_volume")
        assert window.matches(10.0, "attach_volume")
        assert not window.matches(20.0, "attach_volume")

    def test_throttle_window_operation_filter(self):
        window = ThrottleWindow(start_s=0.0, end_s=10.0,
                                operation="detach_volume")
        assert window.matches(5.0, "detach_volume")
        assert not window.matches(5.0, "attach_volume")

    def test_capacity_episode_matching(self):
        episode = CapacityEpisode("m3.medium", "us-east-1a", 0.0, 100.0,
                                  market="on-demand")
        assert episode.matches(50.0, "m3.medium", "us-east-1a", "on-demand")
        assert not episode.matches(50.0, "m3.medium", "us-east-1a", "spot")
        assert not episode.matches(50.0, "m3.large", "us-east-1a",
                                   "on-demand")
        assert not episode.matches(150.0, "m3.medium", "us-east-1a",
                                   "on-demand")

    def test_capacity_episode_any_market(self):
        episode = CapacityEpisode("m3.medium", "us-east-1a", 0.0, 100.0)
        assert episode.matches(50.0, "m3.medium", "us-east-1a", "spot")
        assert episode.matches(50.0, "m3.medium", "us-east-1a", "on-demand")


class TestEnabled:
    def test_empty_plan_disabled(self):
        assert not FaultPlan().enabled

    def test_zero_rates_disabled(self):
        plan = FaultPlan(error_rates={"attach_volume": 0.0},
                         latency_tails={"detach_volume": LatencyTail(0.0, 2.0)})
        assert not plan.enabled

    def test_each_knob_enables(self):
        assert FaultPlan(error_rates={"attach_volume": 0.1}).enabled
        assert FaultPlan(
            throttle_windows=(ThrottleWindow(0.0, 1.0),)).enabled
        assert FaultPlan(
            latency_tails={"detach_volume": LatencyTail(0.1, 2.0)}).enabled
        assert FaultPlan(capacity_episodes=(
            CapacityEpisode("m3.medium", "us-east-1a", 0.0, 1.0),)).enabled
        assert FaultPlan(stuck_detach_rate=0.1).enabled
        assert FaultPlan(backup_crashes=(BackupCrash(at_s=10.0),)).enabled


class TestRoundTrip:
    def _full_plan(self):
        return FaultPlan(
            error_rates={"attach_volume": 0.1, "detach_volume": 0.2},
            terminal_fraction=0.25,
            throttle_windows=(
                ThrottleWindow(10.0, 20.0, rate=0.5, operation="a"),),
            latency_tails={"detach_volume": LatencyTail(0.1, 3.0)},
            capacity_episodes=(
                CapacityEpisode("m3.medium", "us-east-1a", 0.0, 50.0,
                                market="spot"),),
            stuck_detach_rate=0.05,
            stuck_detach_extra_s=90.0,
            backup_crashes=(BackupCrash(at_s=100.0, server_index=1),))

    def test_dict_round_trip(self):
        plan = self._full_plan()
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_json_round_trip(self, tmp_path):
        plan = self._full_plan()
        path = tmp_path / "faults.json"
        plan.save_json(path)
        assert FaultPlan.from_json(path) == plan

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown fault-plan keys"):
            FaultPlan.from_dict({"error_rate": 0.1})

    def test_default_chaos_plan_round_trips(self):
        from repro.experiments.chaos import default_chaos_plan
        plan = default_chaos_plan()
        assert plan.enabled
        assert FaultPlan.from_dict(plan.to_dict()) == plan
