"""Batch trace generation for whole market sets."""

from repro.sim.rng import RngRegistry
from repro.traces.archive import PriceTrace, TraceArchive
from repro.traces.model import SpotPriceModel

#: Six months in seconds — the span of the paper's price study
#: (April to October 2014).
SIX_MONTHS_S = 183 * 24 * 3600.0


class TraceGenerator:
    """Generates an archive of independent traces, one per market.

    Each market draws from its own RNG stream named after the market
    key, so traces are mutually independent (the Fig 6c/6d property)
    and any single market's trace is reproducible in isolation.
    """

    def __init__(self, seed=0):
        self.seed = seed
        self._registry = RngRegistry(seed)

    def generate_market(self, type_name, zone_name, params,
                        duration_s=SIX_MONTHS_S, start_time=0.0,
                        quantize_decimals=4):
        """Generate one market's trace."""
        rng = self._registry.stream(f"trace.{type_name}.{zone_name}")
        model = SpotPriceModel(params)
        times, prices = model.generate(rng, duration_s, start_time=start_time)
        trace = PriceTrace(times, prices, type_name, zone_name,
                           params.on_demand_price)
        if quantize_decimals is not None:
            trace = trace.quantize(quantize_decimals)
        return trace

    def generate_archive(self, market_params, duration_s=SIX_MONTHS_S,
                         start_time=0.0, quantize_decimals=4):
        """Generate traces for a whole market set.

        Parameters
        ----------
        market_params:
            Mapping of ``(type_name, zone_name)`` -> :class:`MarketParams`.
        """
        archive = TraceArchive()
        for (type_name, zone_name), params in sorted(market_params.items()):
            archive.add(self.generate_market(
                type_name, zone_name, params, duration_s=duration_s,
                start_time=start_time, quantize_decimals=quantize_decimals))
        return archive
