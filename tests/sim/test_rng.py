"""Tests for the named seeded RNG registry."""

from hypothesis import given, strategies as st

from repro.sim.rng import RngRegistry, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(7, "alpha") == derive_seed(7, "alpha")

    def test_name_sensitivity(self):
        assert derive_seed(7, "alpha") != derive_seed(7, "beta")

    def test_master_sensitivity(self):
        assert derive_seed(7, "alpha") != derive_seed(8, "alpha")

    @given(st.integers(min_value=0, max_value=2 ** 31), st.text(max_size=40))
    def test_always_64_bit(self, master, name):
        seed = derive_seed(master, name)
        assert 0 <= seed < 2 ** 64


class TestRegistry:
    def test_stream_is_cached(self):
        registry = RngRegistry(0)
        assert registry.stream("a") is registry.stream("a")

    def test_streams_are_independent(self):
        registry = RngRegistry(0)
        a_alone = RngRegistry(0).stream("a").random(10)
        registry.stream("b").random(100)  # consuming b must not move a
        a_after = registry.stream("a").random(10)
        assert list(a_alone) == list(a_after)

    def test_reset_single_stream(self):
        registry = RngRegistry(0)
        first = registry.stream("a").random(5)
        registry.reset("a")
        again = registry.stream("a").random(5)
        assert list(first) == list(again)

    def test_reset_all(self):
        registry = RngRegistry(0)
        first = registry.stream("a").random(3)
        registry.stream("b")
        registry.reset()
        assert registry.names() == []
        assert list(registry.stream("a").random(3)) == list(first)

    def test_callable_shorthand(self):
        registry = RngRegistry(0)
        assert registry("x") is registry.stream("x")

    def test_names_sorted(self):
        registry = RngRegistry(0)
        for name in ("zeta", "alpha", "mid"):
            registry.stream(name)
        assert registry.names() == ["alpha", "mid", "zeta"]
