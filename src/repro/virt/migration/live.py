"""Live (pre-copy) VM migration.

Pre-copy transfers the whole memory image while the VM keeps running,
then iterates over the pages dirtied during each round until the
residual dirty set is small enough to move in a brief stop-and-copy
pause [Clark et al., NSDI'05].  Total latency is therefore proportional
to memory size (and inflated by the dirtying rate), which is exactly
why live migration alone cannot be trusted inside a 120 s revocation
warning: "if the latency to live migrate a VM exceeds the warning
period ... the IaaS platform will terminate the spot server and any
resident nested VMs before their migrations complete".
"""

from dataclasses import dataclass, field

from repro.virt.memory import PAGE_SIZE


@dataclass
class LiveMigrationPlan:
    """The outcome of planning a pre-copy migration.

    Attributes
    ----------
    total_time_s:
        Wall-clock length of the whole migration.
    downtime_s:
        Final stop-and-copy pause.
    transferred_bytes:
        Total bytes moved across all rounds.
    rounds:
        Number of pre-copy rounds (excluding the stop-and-copy).
    converged:
        False if the writable working set outpaced the link and the
        migration had to force a large stop-and-copy.
    round_bytes:
        Bytes moved in each round, for inspection.
    """

    total_time_s: float
    downtime_s: float
    transferred_bytes: float
    rounds: int
    converged: bool
    round_bytes: list = field(default_factory=list)


class PreCopyMigration:
    """Plans/executes pre-copy migrations against a memory model.

    Parameters
    ----------
    bandwidth_bps:
        Bytes/s available to the migration stream.
    stop_copy_threshold_bytes:
        Residual dirty size at which the final pause is taken
        (default: 256 pages, ~1 MiB — sub-second at typical rates).
    switchover_s:
        Fixed cost of the final handoff (vCPU state, device re-attach
        at the hypervisor level; the *cloud* control-plane costs are
        accounted separately by the controller).
    max_rounds:
        Bound on pre-copy rounds before forcing stop-and-copy.
    """

    def __init__(self, bandwidth_bps, stop_copy_threshold_bytes=256 * PAGE_SIZE,
                 switchover_s=0.05, max_rounds=30):
        if bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        self.bandwidth = float(bandwidth_bps)
        self.threshold = float(stop_copy_threshold_bytes)
        self.switchover_s = switchover_s
        self.max_rounds = max_rounds

    def plan(self, memory):
        """Compute the rounds for migrating ``memory``."""
        to_send = float(memory.total_bytes)
        total_time = 0.0
        transferred = 0.0
        round_bytes = []
        converged = False
        for _round in range(self.max_rounds):
            round_time = to_send / self.bandwidth
            total_time += round_time
            transferred += to_send
            round_bytes.append(to_send)
            dirtied = memory.dirty_bytes(round_time)
            if dirtied <= self.threshold:
                to_send = dirtied
                converged = True
                break
            if dirtied >= to_send * 0.95:
                # Dirtying outpaces the link: further rounds cannot
                # shrink the residual — cut to stop-and-copy.
                to_send = dirtied
                break
            to_send = dirtied
        downtime = to_send / self.bandwidth + self.switchover_s
        total_time += to_send / self.bandwidth
        transferred += to_send
        return LiveMigrationPlan(
            total_time_s=total_time,
            downtime_s=downtime,
            transferred_bytes=transferred,
            rounds=len(round_bytes),
            converged=converged,
            round_bytes=round_bytes,
        )

    def fits_within(self, memory, deadline_s):
        """Whether the migration reliably completes inside ``deadline_s``.

        SpotCheck uses this test to decide whether a "small" nested VM
        can ride out a revocation with a plain live migration instead
        of needing a backup server (Section 3.5).
        """
        plan = self.plan(memory)
        return plan.converged and plan.total_time_s <= deadline_s

    def run(self, env, vm, link=None):
        """DES process: execute the plan against a shared link.

        The VM is MIGRATING for the pre-copy rounds and SUSPENDED for
        the stop-and-copy pause.  Returns the realized plan.
        """
        from repro.virt.vm import VMState

        def _migrate():
            obs = getattr(env, "obs", None)
            plan = self.plan(vm.memory)
            vm.set_state(VMState.MIGRATING)
            if link is not None:
                for index, size in enumerate(plan.round_bytes, 1):
                    yield link.transfer(size)
                    if obs is not None:
                        obs.emit("live.precopy_round", vm=vm.id,
                                 round=index, bytes=size)
                vm.set_state(VMState.SUSPENDED)
                final = plan.downtime_s * self.bandwidth
                if final > 0:
                    yield link.transfer(max(final, 1.0))
            else:
                yield env.timeout(plan.total_time_s - plan.downtime_s)
                vm.set_state(VMState.SUSPENDED)
                yield env.timeout(plan.downtime_s)
            if obs is not None:
                obs.emit("live.stop_and_copy", vm=vm.id,
                         downtime_s=plan.downtime_s,
                         rounds=plan.rounds, converged=plan.converged)
            vm.set_state(VMState.RUNNING)
            return plan

        return env.process(_migrate())
