"""Cost-variance study: do index-tracking portfolios deliver a price?

SpotCheck's Table 3 scores allocation policies by mean cost and
downtime.  A derivative IaaS operator selling a flat $/VM-hour rate
cares about a third axis the paper leaves implicit: **cost variance**.
A policy whose realized cost swings with every spot spike forces the
operator to price against the tail; one that tracks a target index
lets them price against the mean.

This study runs the classic single-minded policies (1P-M, 4P-COST,
4P-ST) against the portfolio family (IT-*, OC-*) on one shared trace
archive, samples each fleet's blended $/VM-hour on an hourly probe,
and digests mean/variance, downtime, and the market-drive counters.
Everything is seeded and closed-form, so the digest is bit-stable and
CI pins it (``repro index --check-golden``) along with the study's
three invariants:

* every IT-* policy has strictly lower sampled cost variance than
  4P-COST (the tentpole claim),
* at comparable downtime (within two percentage points), and
* the portfolio policies' crossing-driven rebalancing stays lazy —
  the fraction of trace points delivered as kernel events remains a
  small minority, i.e. no per-point drive sneaks back in.
"""

import statistics

#: Classic policies vs the portfolio family.  IT-0.125 targets the
#: calibrated medium-market ratio; IT-0.14 sits between medium and
#: large, forcing the risk-adjusted straddle; OC-2 splits across the
#: two best score-ranked pools.
DEFAULT_POLICIES = ("1P-M", "4P-COST", "4P-ST", "IT-0.125", "IT-0.14",
                    "OC-2")

HOUR = 3600.0


def fleet_rate(controller):
    """The fleet's blended $/VM-hour at this instant.

    Spot residents are priced at their pool's current per-slot rate;
    everything else running (on-demand parking) at the VM's on-demand
    price — the same convention the portfolio trackers accrue with.
    Returns ``None`` while nothing is running.
    """
    total = 0.0
    count = 0
    for customer in controller.customers.values():
        spot = {vm.id: pool
                for vm, pool in controller.spot_residents(customer)}
        for vm in customer.vms:
            if not vm.is_running:
                continue
            pool = spot.get(vm.id)
            if pool is not None:
                total += pool.price_per_slot()
            else:
                total += vm.itype.on_demand_price
            count += 1
    if count == 0:
        return None
    return total / count


def make_rate_sampler(samples, interval_s=HOUR):
    """A ``probes=`` entry appending hourly blended rates to ``samples``."""
    def probe(env, controller):
        def _loop():
            while True:
                rate = fleet_rate(controller)
                if rate is not None:
                    samples.append(rate)
                yield env.timeout(interval_s)
        env.process(_loop())
    return probe


def _drive_totals(controller):
    totals = {"points": 0, "wakes": 0, "delivered": 0}
    for pool in controller.pools.all_spot_pools():
        stats = pool.market.drive_stats()
        for key in totals:
            totals[key] += stats[key]
    return totals


def run_index(seed=11, days=14.0, vms=12, policies=DEFAULT_POLICIES,
              interval_s=HOUR):
    """Run the study; returns ``(results, digest)``.

    ``results`` maps policy name to ``{"summary", "samples",
    "tracking", "policy_stats", "drive"}``; ``digest`` is the
    golden-comparable extract from :func:`index_digest`.
    """
    from repro.experiments.scenario import PolicySimulation, ScenarioConfig

    results = {}
    archive = None
    for policy in policies:
        config = ScenarioConfig(policy=policy, seed=seed, days=days,
                                vms=vms)
        simulation = PolicySimulation(config, archive=archive)
        if archive is None:
            # Every policy must see identical prices, as in the grid.
            archive = simulation.build_archive(seed, config.duration_s,
                                               config.market_params)
            simulation = PolicySimulation(config, archive=archive)
        samples = []
        summary, controller = simulation.run(
            return_controller=True,
            probes=(make_rate_sampler(samples, interval_s),))
        allocation = controller.allocation
        results[policy] = {
            "summary": summary,
            "samples": samples,
            "tracking": (allocation.tracking_report()
                         if hasattr(allocation, "tracking_report") else None),
            "policy_stats": (dict(allocation.stats)
                             if hasattr(allocation, "stats") else None),
            "band": (allocation.band() if hasattr(allocation, "band")
                     else None),
            "drive": _drive_totals(controller),
        }
    return results, index_digest(results)


def index_digest(results):
    """Golden-comparable extract: rounded per-policy cost statistics.

    Floats are rounded (rates to 8 decimal places, percentages to 6)
    so the digest survives platform libm differences while pinning
    every meaningful drift.
    """
    digest = {"policies": {}}
    for policy, row in sorted(results.items()):
        summary = row["summary"]
        samples = row["samples"]
        entry = {
            "cost_mean": round(statistics.fmean(samples), 8),
            "cost_std": round(statistics.pstdev(samples), 8),
            "samples": len(samples),
            "cost_per_vm_hour": round(summary["cost_per_vm_hour"], 6),
            "unavailability_pct": round(summary["unavailability_pct"], 6),
            "migrations": int(summary["migrations"]),
        }
        drive = row["drive"]
        entry["drive_points"] = drive["points"]
        entry["drive_delivered"] = drive["delivered"]
        entry["delivered_fraction"] = round(
            drive["delivered"] / max(1, drive["points"]), 6)
        stats = row["policy_stats"]
        if stats is not None:
            entry["crossings"] = stats.get("crossings", 0)
            entry["reweighs"] = stats.get("reweighs", 0)
            entry["rebalance_moves"] = stats.get("moves_planned", 0)
        band = row["band"]
        tracking = row["tracking"]
        if band is not None and tracking is not None:
            lo, hi = band
            rates = [t["realized_per_vm_hour"] for t in tracking.values()
                     if t["realized_per_vm_hour"] is not None]
            realized = statistics.fmean(rates) if rates else None
            entry["band_lo"] = round(lo, 8)
            entry["band_hi"] = round(hi, 8)
            entry["realized_per_vm_hour"] = (
                None if realized is None else round(realized, 8))
            entry["realized_in_band"] = (
                realized is not None and lo <= realized <= hi)
            entry["in_band_fraction"] = round(statistics.fmean(
                [t["in_band_fraction"] for t in tracking.values()]), 6)
        digest["policies"][policy] = entry
    digest["variance_order"] = sorted(
        digest["policies"],
        key=lambda p: (digest["policies"][p]["cost_std"], p))
    return digest


#: Portfolio rebalancing must stay crossing-driven: across a run, the
#: spot markets may deliver at most this fraction of their trace
#: points as kernel events.  A per-point drive would sit at 1.0.
MAX_DELIVERED_FRACTION = 0.25

#: "Comparable downtime": IT-* may exceed 4P-COST's unavailability by
#: at most this many percentage points.
DOWNTIME_SLACK_PP = 2.0


def check_index_digest(digest, golden):
    """Compare against a golden digest; returns mismatch lines.

    Beyond equality, asserts the study's invariants: IT-* tracks its
    band and beats 4P-COST on cost variance at comparable downtime,
    and the portfolio drive stays lazy.
    """
    problems = []

    def walk(path, want, got):
        if isinstance(want, dict) and isinstance(got, dict):
            for key in sorted(set(want) | set(got)):
                walk(f"{path}.{key}" if path else key,
                     want.get(key), got.get(key))
        elif want != got:
            problems.append(f"{path}: golden {want!r} != observed {got!r}")

    walk("", golden, digest)
    policies = digest.get("policies", {})
    baseline = policies.get("4P-COST")
    for policy, entry in sorted(policies.items()):
        if policy.startswith(("IT", "OC")):
            fraction = entry.get("delivered_fraction", 1.0)
            if fraction >= MAX_DELIVERED_FRACTION:
                problems.append(
                    f"{policy}: delivered_fraction {fraction} >= "
                    f"{MAX_DELIVERED_FRACTION} — rebalancing is no longer "
                    f"crossing-driven")
        if not policy.startswith("IT"):
            continue
        if entry.get("realized_in_band") is not True:
            problems.append(
                f"{policy}: realized {entry.get('realized_per_vm_hour')} "
                f"outside band [{entry.get('band_lo')}, "
                f"{entry.get('band_hi')}]")
        if baseline is None:
            continue
        if not entry["cost_std"] < baseline["cost_std"]:
            problems.append(
                f"{policy}: cost_std {entry['cost_std']} not strictly "
                f"below 4P-COST's {baseline['cost_std']}")
        slack = entry["unavailability_pct"] - baseline["unavailability_pct"]
        if slack > DOWNTIME_SLACK_PP:
            problems.append(
                f"{policy}: unavailability {entry['unavailability_pct']} "
                f"exceeds 4P-COST's {baseline['unavailability_pct']} by "
                f"{slack:.3f}pp > {DOWNTIME_SLACK_PP}pp")
    return problems
