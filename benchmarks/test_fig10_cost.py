"""Figure 10: average cost per VM under the Table 2 policies.

Paper shapes: all policies land near $0.015/hr for an m3.medium
equivalent — almost 5x below the $0.07 on-demand price; 1P-M is
cheapest; spreading over two/four pools costs marginally more (about
+$0.002 for 4P-ED); pure live migration (no backup servers) is cheaper
still but risks losing VM state.
"""

import pytest

from repro.experiments.policy_grid import figure10_rows, run_grid
from repro.experiments.reporting import format_table
from repro.experiments.scenario import MECHANISMS, POLICIES

ON_DEMAND_PRICE = 0.07


def test_fig10_average_cost(benchmark, report, bench_days, bench_vms):
    results = benchmark.pedantic(
        lambda: run_grid(seed=11, days=bench_days, vms=bench_vms),
        rounds=1, iterations=1)
    mechanisms, rows = figure10_rows(results)

    cost = {(p, m): results[(p, m)]["cost_per_vm_hour"]
            for p in POLICIES for m in MECHANISMS}

    # ~5x savings: every SpotCheck variant far below on-demand.
    for policy in POLICIES:
        spotcheck = cost[(policy, "spotcheck-lazy")]
        assert spotcheck < ON_DEMAND_PRICE / 3
    # The headline: 1P-M near $0.015/hr (4-6x below $0.07).
    assert cost[("1P-M", "spotcheck-lazy")] == pytest.approx(0.015, abs=0.005)

    # "Each of SpotCheck's policies provide similar cost savings":
    # the whole policy spread stays within a narrow band.  (The paper's
    # specific ordering — 1P-M cheapest — reflects which market drifted
    # cheapest in *their* six months; on synthetic traces a different
    # pool can win, but the band and the 1P-M level reproduce.)
    lazy_costs = [cost[(policy, "spotcheck-lazy")] for policy in POLICIES]
    assert max(lazy_costs) - min(lazy_costs) < 0.009
    # Distribution costs more but stays in the same savings class
    # (paper saw +$0.002 for 4P-ED; our synthetic volatile pools spike
    # more often, so the on-demand parking premium is larger).
    assert cost[("4P-ED", "spotcheck-lazy")] - \
        cost[("1P-M", "spotcheck-lazy")] < 0.009

    # Live-only (no backup server) is cheaper than any backup variant.
    for policy in POLICIES:
        assert cost[(policy, "xen-live")] < cost[(policy, "spotcheck-lazy")]

    table_rows = [
        [row["policy"]] + [f"${row[m]:.4f}" for m in mechanisms]
        for row in rows]
    text = format_table(
        ["policy"] + list(mechanisms), table_rows,
        title=(f"Figure 10 — average cost per VM-hour over "
               f"{bench_days:.0f} days, {bench_vms} VMs "
               f"(on-demand m3.medium: ${ON_DEMAND_PRICE}/hr; paper "
               f"SpotCheck ~ $0.015/hr)"))
    report("fig10_cost", text)
