"""Tests for the Table 1 latency model."""

import numpy as np
import pytest

from repro.cloud.latency import (
    ClippedLognormal,
    LatencySpec,
    OperationLatencyModel,
    SplitPowerLatency,
    TABLE1_SPECS,
    fit_latency_sampler,
)
from repro.sim.rng import RngRegistry


@pytest.fixture
def rng():
    return RngRegistry(7).stream("latency-tests")


class TestLatencySpec:
    def test_inconsistent_spec_rejected(self):
        with pytest.raises(ValueError):
            LatencySpec("bad", median=5, mean=20, max=10, min=1)

    def test_table1_values_verbatim(self):
        spec = TABLE1_SPECS["start_spot_instance"]
        assert (spec.median, spec.mean, spec.max, spec.min) == \
            (227, 224, 409, 100)
        spec = TABLE1_SPECS["detach_volume"]
        assert (spec.median, spec.mean, spec.max, spec.min) == \
            (10.3, 10.3, 11.3, 9.6)


class TestClippedLognormal:
    @pytest.mark.parametrize("operation", sorted(TABLE1_SPECS))
    def test_samples_within_bounds(self, rng, operation):
        spec = TABLE1_SPECS[operation]
        sampler = fit_latency_sampler(spec)
        draws = sampler.sample(rng, size=2000)
        assert draws.min() >= spec.min - 1e-9
        assert draws.max() <= spec.max + 1e-9

    @pytest.mark.parametrize("operation", sorted(TABLE1_SPECS))
    def test_median_calibrated(self, rng, operation):
        spec = TABLE1_SPECS[operation]
        draws = fit_latency_sampler(spec).sample(rng, size=4000)
        assert np.median(draws) == pytest.approx(spec.median, rel=0.08)

    @pytest.mark.parametrize("operation", sorted(TABLE1_SPECS))
    def test_mean_calibrated(self, rng, operation):
        spec = TABLE1_SPECS[operation]
        draws = fit_latency_sampler(spec).sample(rng, size=4000)
        assert np.mean(draws) == pytest.approx(spec.mean, rel=0.10)

    def test_skewed_spec_uses_split_power(self):
        # The ENI detach stats (median 2, mean 3.5, max 12) cannot be
        # matched by a single clipped lognormal.
        sampler = fit_latency_sampler(TABLE1_SPECS["detach_network_interface"])
        assert isinstance(sampler, SplitPowerLatency)
        assert sampler.mean() == pytest.approx(3.5, rel=0.02)
        assert sampler.median() == pytest.approx(2.0, rel=0.02)

    def test_left_skewed_spec_uses_split_power(self):
        # Spot starts have mean < median (a lognormal is right-skewed)
        # yet a wide observed range; the fit must not collapse.
        sampler = fit_latency_sampler(TABLE1_SPECS["start_spot_instance"])
        assert isinstance(sampler, SplitPowerLatency)
        rng = RngRegistry(5).stream("spread")
        draws = sampler.sample(rng, size=5000)
        assert draws.min() < 150 and draws.max() > 350  # spans the range

    def test_degenerate_spec(self, rng):
        spec = LatencySpec("const", median=5, mean=5, max=5, min=5)
        sampler = ClippedLognormal(spec)
        assert sampler.sample(rng) == 5
        assert list(sampler.sample(rng, size=3)) == [5.0, 5.0, 5.0]


class TestOperationLatencyModel:
    def test_unknown_operation_raises(self, rng):
        with pytest.raises(KeyError):
            OperationLatencyModel(rng).sample("reboot_the_moon")

    def test_scale_multiplies(self, rng):
        fast = OperationLatencyModel(rng, scale=0.5)
        assert fast.mean("terminate_instance") == pytest.approx(
            0.5 * OperationLatencyModel(rng).mean("terminate_instance"))

    def test_invalid_scale(self, rng):
        with pytest.raises(ValueError):
            OperationLatencyModel(rng, scale=0.0)

    def test_migration_downtime_matches_paper(self, rng):
        # Paper: the detach/attach operations "cause an average
        # downtime of 22.65 seconds".
        model = OperationLatencyModel(rng)
        assert model.migration_downtime_mean() == pytest.approx(22.65, abs=0.7)

    def test_sampled_migration_downtime_plausible(self, rng):
        model = OperationLatencyModel(rng)
        draws = [model.sample_migration_downtime() for _ in range(300)]
        assert 15.0 < np.mean(draws) < 30.0

    def test_operations_cover_table1(self, rng):
        assert set(OperationLatencyModel(rng).operations()) == \
            set(TABLE1_SPECS)
