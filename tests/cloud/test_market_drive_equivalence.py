"""Equivalence of the event-skipping drive with the per-step drive.

The threshold-indexed market drive claims bit-identical observable
behaviour to the legacy point-by-point loop: same scenario summaries,
same lazily reconstructed price windows, same predictor state.  These
tests pin each of those claims directly, so an optimization that
subtly changes *values* (not just wall-clock) fails loudly.
"""

from repro.cloud.instance_types import M3_CATALOG
from repro.cloud.spot_market import SpotMarket
from repro.core.policies.prediction import RevocationPredictor
from repro.core.pools import SpotPool
from repro.experiments.scenario import PolicySimulation, ScenarioConfig

from tests.conftest import step_trace

MEDIUM = M3_CATALOG.get("m3.medium")

SCENARIOS = [
    dict(policy="1P-M", mechanism="spotcheck-lazy"),
    dict(policy="4P-ED", mechanism="spotcheck-lazy", proactive=True,
         bid_policy="multiple"),
    dict(policy="4P-COST", mechanism="xen-live"),
]


def _run(config, archive, force_step, monkeypatch):
    if force_step:
        monkeypatch.setattr(SpotMarket, "_step_mode", lambda self: True)
    summary = PolicySimulation(config, archive=archive).run()
    monkeypatch.undo()
    return summary


class TestScenarioEquivalence:
    def test_skipping_drive_matches_per_step_summaries(self, monkeypatch):
        """Every scenario summary is equal — floats bitwise, not approx."""
        for kwargs in SCENARIOS:
            config = ScenarioConfig(seed=7, days=2.0, vms=4, **kwargs)
            archive = PolicySimulation.build_archive(
                config.seed, config.duration_s,
                market_params=config.market_params, zones=config.zones)
            stepped = _run(config, archive, True, monkeypatch)
            indexed = _run(config, archive, False, monkeypatch)
            assert stepped == indexed, kwargs

    def test_skipping_drive_delivers_fewer_points(self, monkeypatch):
        config = ScenarioConfig(policy="1P-M", mechanism="spotcheck-lazy",
                                seed=7, days=2.0, vms=4)
        archive = PolicySimulation.build_archive(
            config.seed, config.duration_s,
            market_params=config.market_params)
        _summary, controller = PolicySimulation(
            config, archive=archive).run(return_controller=True)
        stats = controller.api.marketplace.drive_stats()
        assert stats["points"] > 0
        assert stats["delivered"] < stats["points"] / 5


class TestPriceWindowEquivalence:
    def _market(self, env, zone, steps):
        trace = step_trace(steps)
        return SpotMarket(env, MEDIUM, zone, trace)

    def test_lazy_window_matches_per_step_recording(self, env, zone):
        steps = [(float(i * 60), 0.02 + 0.0001 * ((i * 7) % 13))
                 for i in range(600)]
        market = self._market(env, zone, steps)
        lazy = SpotPool(MEDIUM, zone, MEDIUM, market,
                        bid=MEDIUM.on_demand_price)
        eager = SpotPool(MEDIUM, zone, MEDIUM, market,
                         bid=MEDIUM.on_demand_price)
        market.on_price_change(
            lambda m, price: eager.record_price(m.env.now, price))
        env.run(until=500 * 60.0 + 1)
        # Bitwise equality: same values, same order, same float fold.
        assert lazy.recent_mean_price_per_slot() == \
            eager.recent_mean_price_per_slot()

    def test_late_attach_sees_only_subsequent_points(self, env, zone):
        steps = [(float(i * 60), 0.01 + 0.001 * (i % 9)) for i in range(200)]
        market = self._market(env, zone, steps)
        # Attach strictly between two points: at an exact point time the
        # same-timestamp delivery order is heap-dependent either way.
        env.run(until=100 * 60.0 + 30.0)
        lazy = SpotPool(MEDIUM, zone, MEDIUM, market,
                        bid=MEDIUM.on_demand_price)
        eager = SpotPool(MEDIUM, zone, MEDIUM, market,
                         bid=MEDIUM.on_demand_price)
        market.on_price_change(
            lambda m, price: eager.record_price(m.env.now, price))
        env.run()
        assert lazy.recent_mean_price_per_slot() == \
            eager.recent_mean_price_per_slot()

    def test_empty_window_falls_back_to_current_price(self, env, zone):
        market = self._market(env, zone, [(0, 0.02)])
        pool = SpotPool(MEDIUM, zone, MEDIUM, market,
                        bid=MEDIUM.on_demand_price)
        assert pool.recent_mean_price_per_slot() == pool.price_per_slot()


class TestPredictorSeriesEquivalence:
    PRICES = [0.010, 0.012, 0.030, 0.055, 0.020, 0.015, 0.080, 0.050,
              0.049, 0.011, 0.010, 0.058, 0.059, 0.012]

    def _series(self):
        times = [float(i * 900) for i in range(len(self.PRICES))]
        return times, list(self.PRICES)

    def test_observe_series_matches_per_point_observe(self):
        times, prices = self._series()
        bid = MEDIUM.on_demand_price
        loop = RevocationPredictor(holdoff_s=1800.0)
        batch = RevocationPredictor(holdoff_s=1800.0)
        fired_loop = [i for i, (when, price) in enumerate(zip(times, prices))
                      if loop.observe("pool", when, price, bid)]
        fired_batch = batch.observe_series("pool", times, prices, bid)
        assert fired_loop == fired_batch
        assert fired_loop  # The series is built to fire at least once.
        assert loop._ewma == batch._ewma
        assert loop._last_signal == batch._last_signal
        assert loop.stats.signals == batch.stats.signals

    def test_observe_series_resumes_existing_state(self):
        times, prices = self._series()
        bid = MEDIUM.on_demand_price
        loop = RevocationPredictor()
        batch = RevocationPredictor()
        split = 5
        for i in range(split):
            loop.observe("pool", times[i], prices[i], bid)
            batch.observe("pool", times[i], prices[i], bid)
        fired_loop = [i for i in range(split, len(times))
                      if loop.observe("pool", times[i], prices[i], bid)]
        fired_batch = [split + j for j in batch.observe_series(
            "pool", times[split:], prices[split:], bid)]
        assert fired_loop == fired_batch
        assert loop._ewma == batch._ewma

    def test_observe_series_rejects_ragged_input(self):
        predictor = RevocationPredictor()
        try:
            predictor.observe_series("pool", [0.0, 1.0], [0.01], 0.1)
        except ValueError:
            pass
        else:
            raise AssertionError("ragged series accepted")
