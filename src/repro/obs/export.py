"""Exporters: JSONL event logs, Prometheus text metrics, trace trees.

Every export is deterministic — fields sorted, floats rendered by
:func:`repr` via :mod:`json` — so the same simulation (same seed, same
config, fresh process) produces byte-identical output.  That property
is part of the simulator's reproducibility contract and is guarded by
a test.
"""

import json
import os


# -- events ------------------------------------------------------------


def event_to_json(event):
    """One event as a compact, key-sorted JSON line (no newline)."""
    return json.dumps(event.to_dict(), sort_keys=True,
                      separators=(",", ":"))


def events_to_jsonl(events):
    """A full JSONL document for an iterable of events."""
    return "".join(event_to_json(event) + "\n" for event in events)


class JsonlEventWriter:
    """Bus subscriber that streams matching events to a file.

    Events are written as they are published, so a multi-month
    simulation never holds its event log in memory.
    """

    def __init__(self, bus, path, pattern="*"):
        self._handle = open(path, "w")
        self._subscription = bus.subscribe(pattern, self._write)
        self.written = 0

    def _write(self, event):
        self._handle.write(event_to_json(event) + "\n")
        self.written += 1

    def close(self):
        self._subscription.cancel()
        self._handle.close()


# -- metrics -----------------------------------------------------------


def _format_labels(labels, extra=None):
    items = sorted(labels.items())
    if extra:
        items = items + list(extra)
    if not items:
        return ""
    body = ",".join(f'{key}="{value}"' for key, value in items)
    return "{" + body + "}"


def _format_value(value):
    if value is None:
        return "NaN"
    value = float(value)
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def render_prometheus(registry):
    """The registry in Prometheus text exposition format.

    Counters and gauges export one sample; histograms export as
    summaries (per-quantile samples plus ``_sum``/``_count``/``_min``/
    ``_max``).
    """
    from repro.obs.metrics import Counter, Gauge, Histogram

    lines = []
    typed = set()
    for series in registry.series():
        kind = ("counter" if isinstance(series, Counter)
                else "gauge" if isinstance(series, Gauge)
                else "summary")
        if series.name not in typed:
            typed.add(series.name)
            lines.append(f"# TYPE {series.name} {kind}")
        labels = _format_labels(series.labels)
        if isinstance(series, Histogram):
            for q, value in series.quantiles.items():
                qlabels = _format_labels(
                    series.labels, extra=[("quantile", _format_value(q))])
                lines.append(
                    f"{series.name}{qlabels} {_format_value(value)}")
            lines.append(
                f"{series.name}_sum{labels} {_format_value(series.sum)}")
            lines.append(
                f"{series.name}_count{labels} {_format_value(series.count)}")
            lines.append(
                f"{series.name}_min{labels} {_format_value(series.min)}")
            lines.append(
                f"{series.name}_max{labels} {_format_value(series.max)}")
        else:
            lines.append(f"{series.name}{labels} {_format_value(series.value)}")
    return "\n".join(lines) + ("\n" if lines else "")


# -- traces ------------------------------------------------------------


def render_span(span, indent=0):
    """One span (and its subtree) as indented human-readable lines."""
    pad = "  " * indent
    attrs = " ".join(f"{key}={value}"
                     for key, value in sorted(span.attrs.items()))
    duration = (f"{span.duration_s:10.3f}s" if span.end is not None
                else "      open")
    line = (f"{pad}{span.name:<20s} {span.start:12.3f} -> "
            f"{span.end if span.end is not None else float('nan'):12.3f} "
            f"[{duration}]")
    if attrs:
        line += f"  {attrs}"
    lines = [line]
    for child in span.children:
        lines.extend(render_span(child, indent + 1))
    return lines


def render_trace_tree(traces):
    """All traces as one text document, separated by blank lines."""
    blocks = []
    for index, trace in enumerate(traces, 1):
        header = [f"trace #{index} ({trace.name})"]
        blocks.append("\n".join(header + render_span(trace, indent=1)))
    return "\n\n".join(blocks) + ("\n" if blocks else "")


# -- directory output --------------------------------------------------

EVENTS_FILE = "events.jsonl"
METRICS_FILE = "metrics.prom"
TRACES_FILE = "traces.txt"


def write_obs_dir(obs, path):
    """Write events.jsonl, metrics.prom, and traces.txt under ``path``.

    The events file is only (re)written here if the observability
    facade recorded events in memory; a streaming
    :class:`JsonlEventWriter` pointed at the same path wins otherwise.
    """
    os.makedirs(path, exist_ok=True)
    events_path = os.path.join(path, EVENTS_FILE)
    if obs.events is not None:
        with open(events_path, "w") as handle:
            handle.write(events_to_jsonl(obs.events))
    with open(os.path.join(path, METRICS_FILE), "w") as handle:
        handle.write(render_prometheus(obs.metrics))
    with open(os.path.join(path, TRACES_FILE), "w") as handle:
        handle.write(render_trace_tree(obs.tracer.finished()))
    return path


# -- summarize (the `repro obs summarize` subcommand) -------------------


def load_events(path):
    """Parse an events.jsonl file back into a list of dicts."""
    events = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events


def summarize_obs_dir(path):
    """A human-readable digest of one --obs-dir output directory."""
    lines = []
    events_path = os.path.join(path, EVENTS_FILE)
    if os.path.exists(events_path):
        events = load_events(events_path)
        lines.append(f"events: {len(events)} "
                     f"({os.path.basename(events_path)})")
        if events:
            span = events[-1]["t"] - events[0]["t"]
            lines.append(f"  time span: {events[0]['t']:.1f}s .. "
                         f"{events[-1]['t']:.1f}s ({span / 3600.0:.1f}h)")
        by_name = {}
        for event in events:
            by_name[event["name"]] = by_name.get(event["name"], 0) + 1
        for name in sorted(by_name):
            lines.append(f"  {name:<28s} {by_name[name]}")
    else:
        lines.append("events: (no events.jsonl)")
    metrics_path = os.path.join(path, METRICS_FILE)
    if os.path.exists(metrics_path):
        with open(metrics_path) as handle:
            samples = [line for line in handle.read().splitlines()
                       if line and not line.startswith("#")]
        lines.append(f"metrics: {len(samples)} samples "
                     f"({os.path.basename(metrics_path)})")
        interesting = [s for s in samples
                       if s.startswith("migration_downtime_seconds")]
        for sample in interesting:
            lines.append(f"  {sample}")
    else:
        lines.append("metrics: (no metrics.prom)")
    traces_path = os.path.join(path, TRACES_FILE)
    if os.path.exists(traces_path):
        with open(traces_path) as handle:
            text = handle.read()
        roots = sum(1 for line in text.splitlines()
                    if line.startswith("trace #"))
        lines.append(f"traces: {roots} ({os.path.basename(traces_path)})")
    else:
        lines.append("traces: (no traces.txt)")
    return "\n".join(lines) + "\n"
