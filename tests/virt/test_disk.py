"""Tests for local-disk mirroring (the DRBD option)."""

import pytest

from repro.virt.disk import (
    DiskModel,
    LocalDiskMirror,
    MirrorConfig,
    migration_downtime_comparison,
)

GiB = 1024 ** 3


def disk(write_mbps=2.0, **kwargs):
    return DiskModel(total_bytes=32 * GiB,
                     write_rate_bps=write_mbps * 1e6, **kwargs)


class TestValidation:
    def test_disk_model(self):
        with pytest.raises(ValueError):
            DiskModel(total_bytes=0, write_rate_bps=1.0)
        with pytest.raises(ValueError):
            DiskModel(total_bytes=1, write_rate_bps=-1.0)
        with pytest.raises(ValueError):
            DiskModel(total_bytes=1, write_rate_bps=1.0, burst_factor=0.5)

    def test_mirror_config(self):
        with pytest.raises(ValueError):
            MirrorConfig(bandwidth_bps=0)
        with pytest.raises(ValueError):
            MirrorConfig(buffer_delay_s=-1)


class TestFeasibility:
    def test_light_writer_feasible(self):
        mirror = LocalDiskMirror(disk(write_mbps=2.0))
        assert mirror.feasible
        assert mirror.fits_warning(120.0)

    def test_heavy_writer_infeasible(self):
        mirror = LocalDiskMirror(disk(write_mbps=20.0))
        assert not mirror.feasible
        assert mirror.final_sync_s() == float("inf")
        assert not mirror.fits_warning(120.0)

    def test_idle_disk_instant_sync(self):
        mirror = LocalDiskMirror(disk(write_mbps=0.0))
        assert mirror.steady_backlog_bytes() == 0.0
        assert mirror.final_sync_s() == 0.0


class TestBacklogAndSync:
    def test_backlog_grows_with_write_rate(self):
        light = LocalDiskMirror(disk(write_mbps=1.0))
        heavy = LocalDiskMirror(disk(write_mbps=5.0))
        assert heavy.steady_backlog_bytes() > light.steady_backlog_bytes()

    def test_sync_time_within_warning_for_typical_rates(self):
        # "EC2's warning period permits asynchronous mirroring ...
        # without significant performance degradation."
        for write_mbps in (0.5, 1.0, 2.0, 5.0):
            mirror = LocalDiskMirror(disk(write_mbps=write_mbps))
            assert mirror.final_sync_s() < 120.0, write_mbps

    def test_more_bandwidth_faster_sync(self):
        slow = LocalDiskMirror(disk(5.0), MirrorConfig(bandwidth_bps=8e6))
        fast = LocalDiskMirror(disk(5.0), MirrorConfig(bandwidth_bps=40e6))
        assert fast.final_sync_s() < slow.final_sync_s()

    def test_stream_consumption_capped(self):
        mirror = LocalDiskMirror(disk(20.0), MirrorConfig(bandwidth_bps=8e6))
        assert mirror.mirror_stream_bps() == 8e6


class TestComparison:
    def test_local_disk_skips_ebs_ops(self):
        from repro.cloud.latency import OperationLatencyModel
        from repro.sim.rng import RngRegistry
        from repro.virt.migration.checkpoint import CheckpointStream
        from repro.workloads import TpcwWorkload
        stream = CheckpointStream(
            TpcwWorkload().memory_model(int(1.7 * GiB)))
        mirror = LocalDiskMirror(disk(write_mbps=1.0))
        latency = OperationLatencyModel(RngRegistry(1).stream("x"))
        result = migration_downtime_comparison(stream, mirror, latency)
        # Same memory commit on both sides.
        assert result["memory_commit_s"] < 2.0
        # EBS pays ~22.65 s of control-plane ops...
        assert result["ebs"]["ops_s"] == pytest.approx(22.65, abs=0.8)
        # ...local disk pays only the ENI ops plus a short sync,
        assert result["local"]["ops_s"] < 9.0
        assert result["local"]["feasible"]
        # which makes the locally-mirrored migration faster overall
        # for a light disk writer.
        assert result["local"]["total_s"] < result["ebs"]["total_s"]

    def test_heavy_writer_prefers_ebs(self):
        from repro.cloud.latency import OperationLatencyModel
        from repro.sim.rng import RngRegistry
        from repro.virt.migration.checkpoint import CheckpointStream
        from repro.workloads import TpcwWorkload
        stream = CheckpointStream(
            TpcwWorkload().memory_model(int(1.7 * GiB)))
        mirror = LocalDiskMirror(disk(write_mbps=11.9))
        latency = OperationLatencyModel(RngRegistry(1).stream("x"))
        result = migration_downtime_comparison(stream, mirror, latency)
        assert result["local"]["total_s"] > result["ebs"]["total_s"]
