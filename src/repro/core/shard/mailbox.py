"""Deterministic message transport between shards and the coordinator.

The determinism problem: N shard processes emit event messages
concurrently, and the order they *arrive* in depends on scheduling —
which worker replied first, how the pipe buffered.  If the coordinator
acted on arrival order, a 2-shard run and a 4-shard run would diverge.

The fix is a logical-clock total order.  Every message is stamped
``(time, market, seq)`` — the emitting market's simulated time, the
market's index in the coordinator's *sorted* market list, and a
per-market emission counter.  Two messages from one market are ordered
by emission; messages from different markets are ordered by simulated
time, ties broken by market index.  None of those three components
depends on which process hosted the market, so merging any partition
of the markets yields the same sequence — the coordinator always
replays one canonical stream.
"""

from repro.core.shard.messages import Stamp


class Outbox:
    """Per-market event buffer with monotone stamp enforcement.

    A market's own event sequence is totally ordered by construction
    (one simulation, one thread); the outbox asserts it — a
    non-monotone stamp means a tap fired outside the simulation's
    clock, which would silently break the merge rule.
    """

    def __init__(self, market_index):
        self.market_index = market_index
        self._seq = 0
        self._last = None
        self._messages = []

    def stamp(self, time):
        """Mint the next stamp for an event at simulated ``time``."""
        stamp = Stamp(time=time, market=self.market_index, seq=self._seq)
        self._seq += 1
        if self._last is not None and stamp < self._last:
            raise AssertionError(
                f"non-monotone stamp {stamp} after {self._last} "
                f"in market {self.market_index}")
        self._last = stamp
        return stamp

    def put(self, message):
        self._messages.append(message)

    def drain(self):
        """Take every buffered message, oldest first."""
        messages, self._messages = self._messages, []
        return messages

    def __len__(self):
        return len(self._messages)


def merge_messages(streams):
    """Merge per-market event streams into the canonical total order.

    ``streams`` is an iterable of message lists (each already ordered
    by its market's emission sequence).  The result is sorted by
    ``Stamp`` — ``(time, market, seq)`` — and therefore independent of
    how the markets were partitioned into processes and of the order
    the partitions replied in.
    """
    merged = [message for stream in streams for message in stream]
    merged.sort(key=lambda message: message.stamp)
    return merged


class Mailbox:
    """Coordinator-side accumulator over one run's event messages."""

    def __init__(self):
        self._messages = []

    def deliver(self, streams):
        """Merge one epoch's per-shard streams into the history.

        Returns the epoch's merged batch (what a rebalance policy sees).
        """
        batch = merge_messages(streams)
        self._messages.extend(batch)
        return batch

    @property
    def messages(self):
        """The full history in canonical stamp order.

        Batches arrive round by round, and one market's Apply flow can
        outrun another market's Run window, so concatenation order is
        not stamp order; the global re-sort restores the one canonical
        stream regardless of round boundaries.
        """
        return sorted(self._messages, key=lambda message: message.stamp)

    def __len__(self):
        return len(self._messages)


__all__ = ["Mailbox", "Outbox", "merge_messages"]
