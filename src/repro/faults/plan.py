"""Declarative, trace-deterministic fault plans.

A :class:`FaultPlan` describes *what* can go wrong on the simulated
control plane — API error rates, request throttling windows, latency
tail inflation, per-(type, zone) ``InsufficientInstanceCapacity``
episodes, stuck volume detaches, and scheduled backup-server crashes.
The plan itself is pure data: all randomness is drawn by the
:class:`~repro.faults.injector.FaultInjector` from its own named RNG
stream, so two runs with the same master seed and the same plan inject
bit-identical fault sequences, and a run with no plan draws nothing.

Plans round-trip through JSON (``FaultPlan.from_json`` /
``FaultPlan.to_dict``) so chaos scenarios can be checked into the repo
and passed to the CLI via ``--faults config.json``.
"""

import json
from dataclasses import dataclass, field, fields


@dataclass(frozen=True)
class ThrottleWindow:
    """A wall of ``RequestLimitExceeded`` between two simulated times.

    During ``[start_s, end_s)`` every control-plane call (optionally
    restricted to one operation) is throttled with probability
    ``rate``.
    """

    start_s: float
    end_s: float
    rate: float = 1.0
    operation: str = None

    def __post_init__(self):
        if self.end_s <= self.start_s:
            raise ValueError("throttle window must have end_s > start_s")
        if not 0.0 < self.rate <= 1.0:
            raise ValueError("throttle rate must lie in (0, 1]")

    def matches(self, now, operation):
        if not self.start_s <= now < self.end_s:
            return False
        return self.operation is None or self.operation == operation


@dataclass(frozen=True)
class CapacityEpisode:
    """An ``InsufficientInstanceCapacity`` episode in one market.

    While active, launches of ``type_name`` in ``zone_name`` fail with
    the typed capacity error.  ``market`` restricts the episode to
    ``"spot"``, ``"on-demand"``, or ``"any"`` launches.
    """

    type_name: str
    zone_name: str
    start_s: float
    end_s: float
    market: str = "any"

    def __post_init__(self):
        if self.end_s <= self.start_s:
            raise ValueError("capacity episode must have end_s > start_s")
        if self.market not in ("spot", "on-demand", "any"):
            raise ValueError(f"unknown market kind {self.market!r}")

    def matches(self, now, type_name, zone_name, market_kind):
        if not self.start_s <= now < self.end_s:
            return False
        if self.type_name != type_name or self.zone_name != zone_name:
            return False
        return self.market == "any" or self.market == market_kind


@dataclass(frozen=True)
class LatencyTail:
    """Occasional latency inflation for one operation.

    With probability ``rate`` a call's sampled latency is multiplied
    by ``multiplier`` — the control-plane stall the paper's suspend
    scheduling has to absorb with its safety margin.
    """

    rate: float
    multiplier: float

    def __post_init__(self):
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError("tail rate must lie in [0, 1]")
        if self.multiplier < 1.0:
            raise ValueError("tail multiplier must be at least 1")


@dataclass(frozen=True)
class BackupCrash:
    """A scheduled backup-server failure.

    At ``at_s`` the ``server_index``-th (modulo the live count)
    healthy backup server is killed through
    :meth:`~repro.core.controller.SpotCheckController.fail_backup_server`.
    """

    at_s: float
    server_index: int = 0


@dataclass(frozen=True)
class FaultPlan:
    """Everything a chaos run injects into the control plane.

    Attributes
    ----------
    error_rates:
        operation name -> probability that one call fails with an
        :class:`~repro.cloud.errors.ApiError` before taking effect.
    terminal_fraction:
        Fraction of injected API errors that are terminal
        (``retryable=False``) rather than transient.
    throttle_windows:
        :class:`ThrottleWindow` episodes of request-rate throttling.
    latency_tails:
        operation name -> :class:`LatencyTail` inflating a fraction of
        calls' sampled latencies.
    capacity_episodes:
        :class:`CapacityEpisode` spans of per-(type, zone)
        ``InsufficientInstanceCapacity``.
    stuck_detach_rate / stuck_detach_extra_s:
        Probability that a volume detach wedges, and the extra seconds
        it hangs before completing.
    backup_crashes:
        Scheduled :class:`BackupCrash` events driving the controller's
        ``fail_backup_server`` hook.
    """

    error_rates: dict = field(default_factory=dict)
    terminal_fraction: float = 0.0
    throttle_windows: tuple = ()
    latency_tails: dict = field(default_factory=dict)
    capacity_episodes: tuple = ()
    stuck_detach_rate: float = 0.0
    stuck_detach_extra_s: float = 120.0
    backup_crashes: tuple = ()

    def __post_init__(self):
        for operation, rate in self.error_rates.items():
            if not 0.0 <= rate <= 1.0:
                raise ValueError(
                    f"error rate for {operation!r} must lie in [0, 1]")
        if not 0.0 <= self.terminal_fraction <= 1.0:
            raise ValueError("terminal_fraction must lie in [0, 1]")
        if not 0.0 <= self.stuck_detach_rate <= 1.0:
            raise ValueError("stuck_detach_rate must lie in [0, 1]")
        if self.stuck_detach_extra_s < 0:
            raise ValueError("stuck_detach_extra_s must be non-negative")
        object.__setattr__(
            self, "throttle_windows", tuple(self.throttle_windows))
        object.__setattr__(
            self, "capacity_episodes", tuple(self.capacity_episodes))
        object.__setattr__(
            self, "backup_crashes", tuple(self.backup_crashes))

    @property
    def enabled(self):
        """Whether this plan can inject anything at all."""
        return bool(
            any(self.error_rates.values())
            or self.throttle_windows
            or any(tail.rate for tail in self.latency_tails.values())
            or self.capacity_episodes
            or self.stuck_detach_rate
            or self.backup_crashes)

    # -- (de)serialization ----------------------------------------------

    def to_dict(self):
        """JSON-ready dict; inverse of :meth:`from_dict`."""
        return {
            "error_rates": dict(self.error_rates),
            "terminal_fraction": self.terminal_fraction,
            "throttle_windows": [
                {"start_s": w.start_s, "end_s": w.end_s, "rate": w.rate,
                 "operation": w.operation}
                for w in self.throttle_windows],
            "latency_tails": {
                op: {"rate": t.rate, "multiplier": t.multiplier}
                for op, t in self.latency_tails.items()},
            "capacity_episodes": [
                {"type_name": e.type_name, "zone_name": e.zone_name,
                 "start_s": e.start_s, "end_s": e.end_s, "market": e.market}
                for e in self.capacity_episodes],
            "stuck_detach_rate": self.stuck_detach_rate,
            "stuck_detach_extra_s": self.stuck_detach_extra_s,
            "backup_crashes": [
                {"at_s": c.at_s, "server_index": c.server_index}
                for c in self.backup_crashes],
        }

    @classmethod
    def from_dict(cls, data):
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown fault-plan keys: {', '.join(sorted(unknown))}")
        kwargs = dict(data)
        kwargs["throttle_windows"] = tuple(
            ThrottleWindow(**w) for w in data.get("throttle_windows", ()))
        kwargs["latency_tails"] = {
            op: LatencyTail(**t)
            for op, t in data.get("latency_tails", {}).items()}
        kwargs["capacity_episodes"] = tuple(
            CapacityEpisode(**e) for e in data.get("capacity_episodes", ()))
        kwargs["backup_crashes"] = tuple(
            BackupCrash(**c) for c in data.get("backup_crashes", ()))
        return cls(**kwargs)

    @classmethod
    def from_json(cls, path):
        """Load a plan from a ``--faults`` JSON config file."""
        with open(path, encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))

    def save_json(self, path):
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2)
            handle.write("\n")
