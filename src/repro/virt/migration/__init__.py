"""Migration mechanisms: live pre-copy, continuous checkpointing,
bounded-time migration, and stop-and-copy / lazy restoration."""

from repro.virt.migration.bounded import (
    BoundedMigrationConfig,
    BoundedTimeMigration,
    MigrationOutcome,
)
from repro.virt.migration.checkpoint import CheckpointConfig, CheckpointStream
from repro.virt.migration.group import GroupCheckpointScheduler
from repro.virt.migration.live import LiveMigrationPlan, PreCopyMigration
from repro.virt.migration.restore import RestorePlan, RestorePlanner

__all__ = [
    "BoundedMigrationConfig",
    "BoundedTimeMigration",
    "CheckpointConfig",
    "CheckpointStream",
    "GroupCheckpointScheduler",
    "LiveMigrationPlan",
    "MigrationOutcome",
    "PreCopyMigration",
    "RestorePlan",
    "RestorePlanner",
]
