"""SPECjbb2005: a memory-intensive server-side throughput model.

Calibration targets, from the paper's Figure 7:

* ~10,500 business operations per second (bops) unperturbed;
* "no noticeable performance degradation" when checkpointing turns on
  with a dedicated backup server;
* throughput drops past ~35 VMs per backup server, by roughly 30 % at
  50 VMs.
"""

from repro.workloads.base import Workload


class SpecJbbWorkload(Workload):
    """The SPECjbb2005 middle-tier emulation model."""

    name = "specjbb"
    #: SPECjbb is "generally more memory-intensive than TPC-W": a higher
    #: raw write rate over a tighter hot set.
    write_rate_pages = 1100.0
    working_set_fraction = 0.15
    cold_write_fraction = 0.02

    #: Unperturbed throughput, bops.
    baseline_throughput_bops = 10500.0
    #: Checkpointing alone costs nothing measurable (paper: "no
    #: noticeable performance degradation during normal operation").
    checkpoint_factor = 1.0
    #: Throughput lost per unit of backup write overload.
    overload_sensitivity = 0.80
    #: Throughput multiplier while demand paging during a lazy restore.
    restore_factor = 0.55

    def throughput_bops(self, conditions):
        """Throughput under ``conditions``, in bops."""
        throughput = self.baseline_throughput_bops
        if conditions.checkpointing:
            throughput *= self.checkpoint_factor
            throughput *= max(
                0.0,
                1.0 - self.overload_sensitivity * conditions.backup_overload)
        if conditions.restoring:
            throughput = min(
                throughput, self.baseline_throughput_bops * self.restore_factor)
        return throughput

    def performance(self, conditions):
        return self.throughput_bops(conditions)

    def degradation_fraction(self, conditions):
        baseline = self.baseline_throughput_bops
        return (baseline - self.throughput_bops(conditions)) / baseline
