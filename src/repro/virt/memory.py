"""VM memory and dirty-page behaviour.

The model every migration mechanism consumes is *unique pages dirtied
over an interval*.  Writes concentrate on a hot working set: over an
interval ``t`` at write rate ``r`` pages/s, the number of unique hot
pages touched saturates toward the working-set size ``W`` as
``W * (1 - exp(-r*t/W))`` (the classic coupon-collector saturation),
while a small fraction of writes lands uniformly in the cold remainder
of memory.  This produces the two regimes that matter to the paper:

* short checkpoint intervals see dirty volume ~ ``r * t`` (linear), so
  a tighter time bound directly shrinks the residual state;
* long intervals saturate near the working set, which is why live
  pre-copy converges at all.
"""

import math
from dataclasses import dataclass

#: Bytes per page (x86 small pages).
PAGE_SIZE = 4096


class DirtyBudgetInfeasible(ValueError):
    """No checkpoint interval keeps the dirty volume within the budget.

    Raised when even the shortest meaningful interval (1 ms) dirties
    more than the budget: the VM writes faster than the commit path can
    absorb, so no checkpoint frequency can honour the time bound and
    the caller must treat the VM's state as at risk.
    """


@dataclass(frozen=True)
class MemoryModel:
    """Memory footprint and dirtying behaviour of one VM.

    Attributes
    ----------
    total_bytes:
        Guest-visible RAM size.
    write_rate_pages:
        Page writes per second while the workload runs.
    working_set_fraction:
        Fraction of RAM forming the write-hot working set.
    cold_write_fraction:
        Fraction of writes landing uniformly outside the hot set.
    """

    total_bytes: int
    write_rate_pages: float
    working_set_fraction: float = 0.2
    cold_write_fraction: float = 0.02

    def __post_init__(self):
        if self.total_bytes <= 0:
            raise ValueError("total_bytes must be positive")
        if self.write_rate_pages < 0:
            raise ValueError("write_rate_pages must be non-negative")
        if not 0 < self.working_set_fraction <= 1:
            raise ValueError("working_set_fraction must lie in (0, 1]")
        if not 0 <= self.cold_write_fraction < 1:
            raise ValueError("cold_write_fraction must lie in [0, 1)")

    @property
    def total_pages(self):
        return max(self.total_bytes // PAGE_SIZE, 1)

    @property
    def working_set_pages(self):
        return max(int(self.total_pages * self.working_set_fraction), 1)

    def unique_pages_dirtied(self, interval_s):
        """Unique pages dirtied over ``interval_s`` seconds.

        Hot writes saturate toward the working set; cold writes add a
        slowly growing uniform component capped at the cold region size.
        """
        if interval_s <= 0 or self.write_rate_pages == 0:
            return 0.0
        hot_writes = self.write_rate_pages * (1 - self.cold_write_fraction)
        hot_set = float(self.working_set_pages)
        hot = hot_set * (1.0 - math.exp(-hot_writes * interval_s / hot_set))
        cold_region = float(self.total_pages - self.working_set_pages)
        cold_writes = self.write_rate_pages * self.cold_write_fraction
        if cold_region <= 0 or cold_writes == 0:
            cold = 0.0
        else:
            cold = cold_region * (
                1.0 - math.exp(-cold_writes * interval_s / cold_region))
        return min(hot + cold, float(self.total_pages))

    def dirty_bytes(self, interval_s):
        """Unique bytes dirtied over ``interval_s`` seconds."""
        return self.unique_pages_dirtied(interval_s) * PAGE_SIZE

    def interval_for_dirty_bytes(self, budget_bytes):
        """Longest interval whose dirty volume stays within the budget.

        This is the checkpoint-interval computation at the heart of
        bounded-time migration: the interval is chosen "such that any
        outstanding dirty pages can be safely committed upon a
        revocation within the time bound".  Solved by bisection on the
        monotone :meth:`dirty_bytes`.

        Raises :class:`DirtyBudgetInfeasible` when even a 1 ms interval
        overflows the budget — there is no interval to return, and a
        silent floor would let planners pretend the time bound holds.
        Returns ``inf`` when dirtying saturates below the budget (any
        interval fits, so checkpoints are only needed for liveness).
        """
        if budget_bytes <= 0:
            raise ValueError("budget must be positive")
        if self.write_rate_pages == 0:
            return float("inf")
        if self.dirty_bytes(1e-3) > budget_bytes:
            raise DirtyBudgetInfeasible(
                f"{self.dirty_bytes(1e-3):.0f} dirty bytes in 1 ms "
                f"exceed the {budget_bytes:.0f}-byte commit budget")
        lo, hi = 1e-3, 1.0
        while self.dirty_bytes(hi) < budget_bytes and hi < 1e7:
            hi *= 2.0
        if hi >= 1e7:
            return float("inf")
        for _ in range(60):
            mid = 0.5 * (lo + hi)
            if self.dirty_bytes(mid) < budget_bytes:
                lo = mid
            else:
                hi = mid
        return 0.5 * (lo + hi)

    def scaled(self, write_rate_factor):
        """The same memory with the write rate scaled by ``factor``."""
        return MemoryModel(
            total_bytes=self.total_bytes,
            write_rate_pages=self.write_rate_pages * write_rate_factor,
            working_set_fraction=self.working_set_fraction,
            cold_write_fraction=self.cold_write_fraction,
        )
