"""Tests for the simulation environment and run loop."""

import pytest

from repro.sim import Environment, SimulationError


class TestClock:
    def test_starts_at_zero(self):
        assert Environment().now == 0.0

    def test_starts_at_initial_time(self):
        assert Environment(initial_time=42.5).now == 42.5

    def test_advances_with_timeouts(self, env):
        env.timeout(10.0)
        env.run()
        assert env.now == 10.0

    def test_run_until_number_advances_clock_exactly(self, env):
        env.timeout(3.0)
        env.run(until=100.0)
        assert env.now == 100.0

    def test_run_until_past_raises(self, env):
        env.timeout(50.0)
        env.run()
        with pytest.raises(ValueError):
            env.run(until=10.0)


class TestRunLoop:
    def test_run_drains_heap(self, env):
        fired = []
        for delay in (5.0, 1.0, 3.0):
            env.timeout(delay).callbacks.append(
                lambda e, d=delay: fired.append(d))
        env.run()
        assert fired == [1.0, 3.0, 5.0]

    def test_run_until_event_returns_value(self, env):
        def proc():
            yield env.timeout(2.0)
            return "done"
        assert env.run(until=env.process(proc())) == "done"

    def test_run_until_event_reraises_failure(self, env):
        def proc():
            yield env.timeout(1.0)
            raise RuntimeError("boom")
        process = env.process(proc())
        with pytest.raises(RuntimeError, match="boom"):
            env.run(until=process)

    def test_run_until_never_triggered_event_raises(self, env):
        lonely = env.event()
        with pytest.raises(SimulationError):
            env.run(until=lonely)

    def test_step_without_events_raises(self, env):
        with pytest.raises(SimulationError):
            env.step()

    def test_run_until_number_stops_before_later_events(self, env):
        fired = []
        env.timeout(5.0).callbacks.append(lambda e: fired.append(5))
        env.timeout(15.0).callbacks.append(lambda e: fired.append(15))
        env.run(until=10.0)
        assert fired == [5]
        env.run()
        assert fired == [5, 15]

    def test_peek_reports_next_event_time(self, env):
        assert env.peek() == float("inf")
        env.timeout(7.0)
        assert env.peek() == 0.0 or env.peek() == 7.0  # heap holds trigger

    def test_same_time_events_fire_in_schedule_order(self, env):
        order = []
        for tag in "abc":
            env.timeout(1.0).callbacks.append(
                lambda e, t=tag: order.append(t))
        env.run()
        assert order == ["a", "b", "c"]


class TestDeterminism:
    def test_same_seed_same_rng_draws(self):
        a = Environment(seed=9).rng.stream("x").random(5)
        b = Environment(seed=9).rng.stream("x").random(5)
        assert list(a) == list(b)

    def test_different_seeds_differ(self):
        a = Environment(seed=9).rng.stream("x").random(5)
        b = Environment(seed=10).rng.stream("x").random(5)
        assert list(a) != list(b)
