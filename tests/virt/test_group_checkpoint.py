"""Group checkpoint scheduler: batched cohorts vs per-VM streams.

The fleet-scale contract: at any fleet size the grouped scheduler must
reproduce the per-VM steady-state streams bit-for-bit (same wake
times, same credited flush totals), while waking once per shared
interval instead of once per VM.
"""

import pytest

from repro.backup.server import BackupServer
from repro.cloud.instance_types import M3_CATALOG
from repro.sim.kernel import Environment
from repro.virt.migration.checkpoint import CheckpointConfig, CheckpointStream
from repro.virt.migration.group import GroupCheckpointScheduler
from repro.virt.testbed import MicroTestbed
from repro.virt.vm import NestedVM
from repro.workloads import SpecJbbWorkload, TpcwWorkload

MEDIUM = M3_CATALOG.get("m3.medium")


def run_testbed(vm_count, grouped, duration_s=1800.0,
                workload=TpcwWorkload, checkpoint_config=None):
    env = Environment(seed=3)
    testbed = MicroTestbed(env, vm_count=vm_count,
                           workload_factory=workload,
                           checkpoint_config=checkpoint_config,
                           grouped=grouped)
    result = testbed.run_steady(duration_s)
    return env, testbed, result


def per_vm_rates(testbed, result):
    """Flush rates in VM creation order (ids are process-global, so
    the two testbeds' VMs must be matched positionally)."""
    return [result["per_vm_bps"][vm.id] for vm in testbed.vms]


class TestEquivalence:
    @pytest.mark.parametrize("vm_count", [1, 10, 40])
    def test_bit_identical_to_per_vm_streams(self, vm_count):
        _, bed_a, per_vm = run_testbed(vm_count, grouped=False)
        _, bed_b, grouped = run_testbed(vm_count, grouped=True)
        assert per_vm_rates(bed_b, grouped) == per_vm_rates(bed_a, per_vm)
        assert grouped["aggregate_bps"] == per_vm["aggregate_bps"]

    @pytest.mark.parametrize("workload", [TpcwWorkload, SpecJbbWorkload])
    def test_bit_identical_across_workloads(self, workload):
        _, bed_a, per_vm = run_testbed(10, grouped=False, workload=workload)
        _, bed_b, grouped = run_testbed(10, grouped=True, workload=workload)
        assert per_vm_rates(bed_b, grouped) == per_vm_rates(bed_a, per_vm)

    def test_bit_identical_under_tight_throttle(self):
        config = CheckpointConfig(stream_bandwidth_bps=6e6,
                                  commit_bandwidth_bps=1.5e6)
        _, bed_a, per_vm = run_testbed(10, grouped=False,
                                       checkpoint_config=config)
        _, bed_b, grouped = run_testbed(10, grouped=True,
                                        checkpoint_config=config)
        assert per_vm_rates(bed_b, grouped) == per_vm_rates(bed_a, per_vm)

    def test_store_commits_match_per_vm_mode(self):
        _, per_vm_bed, _ = run_testbed(5, grouped=False)
        _, grouped_bed, _ = run_testbed(5, grouped=True)
        for vm_a, vm_b in zip(per_vm_bed.vms, grouped_bed.vms):
            expected = per_vm_bed.server.store.image(vm_a.id)
            actual = grouped_bed.server.store.image(vm_b.id)
            assert actual.commits == expected.commits

    def test_grouping_elides_kernel_events(self):
        env_per_vm, _, _ = run_testbed(40, grouped=False)
        env_grouped, _, _ = run_testbed(40, grouped=True)
        # One wakeup + one flow per cohort round instead of 40 of each.
        assert env_grouped.events_processed * 5 \
            < env_per_vm.events_processed


def make_scheduler(env, defer=False):
    server = BackupServer(env)
    return GroupCheckpointScheduler(env, server.ingest,
                                    defer_accounting=defer)


def make_stream(env, workload=TpcwWorkload):
    vm = NestedVM(env, MEDIUM, workload=workload())
    return vm, CheckpointStream(vm.memory, CheckpointConfig())


class TestCohorts:
    def test_same_instant_same_plan_shares_cohort(self):
        env = Environment(seed=5)
        sched = make_scheduler(env)
        _, stream_a = make_stream(env)
        _, stream_b = make_stream(env)
        cohort_a = sched.join("a", stream_a)
        cohort_b = sched.join("b", stream_b)
        assert cohort_a is cohort_b
        assert sched.cohorts_created == 1
        assert sched.member_count() == 2

    def test_later_join_starts_fresh_cohort(self):
        env = Environment(seed=5)
        sched = make_scheduler(env)
        _, stream_a = make_stream(env)
        _, stream_b = make_stream(env)
        sched.join("a", stream_a)
        env.run(until=1.0)  # mid-interval
        cohort_b = sched.join("b", stream_b)
        assert cohort_b is not sched.cohort_of("a")
        assert sched.cohorts_created == 2

    def test_duplicate_join_rejected(self):
        env = Environment(seed=5)
        sched = make_scheduler(env)
        _, stream = make_stream(env)
        sched.join("a", stream)
        with pytest.raises(ValueError, match="already enrolled"):
            sched.join("a", stream)

    def test_empty_cohort_stops_immediately(self):
        env = Environment(seed=5)
        sched = make_scheduler(env)
        _, stream = make_stream(env)
        cohort = sched.join("a", stream)
        env.run(until=1.0)
        sched.leave("a")
        assert cohort.stop.triggered
        env.run(until=2.0)
        assert not cohort.proc.is_alive
        assert sched.stats()["cohorts_active"] == 0

    def test_leaver_misses_rounds_after_departure(self):
        env = Environment(seed=5)
        sched = make_scheduler(env)
        _, stream_a = make_stream(env)
        _, stream_b = make_stream(env)
        cohort = sched.join("a", stream_a)
        sched.join("b", stream_b)
        interval = cohort.plan[0]
        env.run(until=2.5 * interval)
        sched.leave("a")
        env.run(until=6.5 * interval)
        sched.settle_now()
        # "a" saw two completed rounds, "b" six.
        dirty = cohort.plan[1]
        assert sched.flushed["a"] == pytest.approx(2 * dirty)
        assert sched.flushed["b"] == pytest.approx(6 * dirty)

    def test_defer_mode_matches_eager_totals(self):
        results = {}
        for defer in (False, True):
            env = Environment(seed=7)
            sched = make_scheduler(env, defer=defer)
            for index in range(5):
                _, stream = make_stream(env)
                sched.join(f"vm{index}", stream)
            interval = sched.cohort_of("vm0").plan[0]
            env.run(until=3.5 * interval)
            sched.leave("vm4")
            env.run(until=10.5 * interval)
            env.run(until=env.process(sched.settle()))
            results[defer] = dict(sched.flushed)
        assert results[True] == results[False]

    def test_settle_now_credits_only_completed_rounds(self):
        env = Environment(seed=7)
        sched = make_scheduler(env, defer=True)
        _, stream = make_stream(env)
        cohort = sched.join("a", stream)
        interval, dirty, _cap = cohort.plan
        env.run(until=4.5 * interval)
        flushed = sched.settle_now()
        # Four rounds armed and (by mid-interval) long since flushed.
        assert flushed["a"] == pytest.approx(4 * dirty)
        # Settling is idempotent.
        assert sched.settle_now() is flushed


class _SteppedMemory:
    """Time-varying double: the steady interval doubles at ``switch_t``.

    ``dirty_bytes`` stays a pure function of the interval, so per-VM
    streams (which evaluate it at wake time) and cohort plans (which
    capture it at sleep time) agree; only the *interval* moves, which
    is exactly the divergence the cohort must detect and split on.
    Deliberately not a ``MemoryModel`` so the plan cache is bypassed.
    """

    def __init__(self, env, rate_bps=2e6, base_interval_s=20.0,
                 switch_t=100.0, new_interval_s=None):
        self.env = env
        self.rate_bps = rate_bps
        self.base_interval_s = base_interval_s
        self.switch_t = switch_t
        self.new_interval_s = (new_interval_s if new_interval_s is not None
                               else 2 * base_interval_s)
        self.total_bytes = 4e9

    def interval_for_dirty_bytes(self, budget_bytes):
        if self.env.now < self.switch_t:
            return self.base_interval_s
        return self.new_interval_s

    def dirty_bytes(self, interval_s):
        return self.rate_bps * min(interval_s, 3600.0)


class TestDivergenceFallback:
    def _run_per_vm(self, duration_s):
        env = Environment(seed=9)
        server = BackupServer(env)
        flushed = {}
        stops = []
        for index in range(3):
            stream = CheckpointStream(_SteppedMemory(env),
                                      CheckpointConfig())
            stop = env.event()
            stops.append(stop)
            member = f"vm{index}"
            flushed[member] = 0.0

            def _account(nbytes, member=member):
                flushed[member] += nbytes

            stream.run(env, server.ingest, stop, on_flush=_account)
        env.run(until=duration_s)
        for stop in stops:
            stop.succeed()
        env.run(until=duration_s + 30.0)
        return flushed

    def _run_grouped(self, duration_s):
        env = Environment(seed=9)
        server = BackupServer(env)
        sched = GroupCheckpointScheduler(env, server.ingest)
        for index in range(3):
            stream = CheckpointStream(_SteppedMemory(env),
                                      CheckpointConfig())
            sched.join(f"vm{index}", stream)
        env.run(until=duration_s)
        env.run(until=env.process(sched.settle()))
        env.run(until=duration_s + 30.0)
        return sched, dict(sched.flushed)

    def test_split_reproduces_per_vm_results(self):
        per_vm = self._run_per_vm(310.0)
        sched, grouped = self._run_grouped(310.0)
        assert grouped == per_vm
        # All three members diverged at t=100 and were split off into
        # one fresh cohort (same instant, same new plan).
        assert sched.splits == 3
        assert sched.cohorts_created == 2

    def test_cross_cohort_divergence_to_one_plan_shares_cohort(self):
        """Members of *different* cohorts converging on one new plan at
        the same round boundary must land in one shared cohort, not one
        fresh singleton per origin cohort."""
        env = Environment(seed=9)
        server = BackupServer(env)
        sched = GroupCheckpointScheduler(env, server.ingest)
        # Base intervals 20 and 25 both hit a round boundary at t=100,
        # where every member switches to the same interval (60) at the
        # same dirty rate — i.e. the identical new plan.
        for index, base in enumerate((20.0, 20.0, 25.0, 25.0)):
            memory = _SteppedMemory(env, base_interval_s=base,
                                    switch_t=100.0, new_interval_s=60.0)
            sched.join(f"vm{index}", CheckpointStream(memory,
                                                      CheckpointConfig()))
        assert sched.cohorts_created == 2
        env.run(until=130.0)
        cohorts = {sched.cohort_of(f"vm{index}") for index in range(4)}
        assert len(cohorts) == 1
        assert sched.splits == 4
        assert sched.cohorts_created == 3
        env.run(until=env.process(sched.settle()))


class TestInFlightHygiene:
    def test_long_lived_cohort_sheds_dead_flows(self):
        """A cohort must not accumulate references to completed flush
        processes — under fleet-length runs that is a slow leak."""
        env = Environment(seed=5)
        sched = make_scheduler(env)
        _, stream_a = make_stream(env)
        _, stream_b = make_stream(env)
        cohort = sched.join("a", stream_a)
        sched.join("b", stream_b)
        interval = cohort.plan[0]
        env.run(until=12.5 * interval)
        dead = [p for p in cohort.in_flight if not p.is_alive]
        assert len(dead) <= 1
        assert len(cohort.in_flight) < 5
