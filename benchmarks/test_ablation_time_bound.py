"""Ablation: the bounded-time migration time bound.

The paper fixes a conservative 30 s bound (vs EC2's 120 s warning) and
notes the results would improve "if using a more liberal time bound".
Sweeping the bound shows the trade: a larger bound lets checkpoints be
less frequent (lower background stream rate, less overhead), but the
final Yank-style commit pause grows toward the bound.
"""

from repro.experiments.reporting import format_table
from repro.virt.migration.checkpoint import CheckpointConfig, CheckpointStream
from repro.workloads import TpcwWorkload

GUEST = TpcwWorkload().memory_model(int(1.7 * 1024 ** 3))

BOUNDS = (10.0, 30.0, 60.0, 120.0)


def sweep():
    rows = []
    for bound in BOUNDS:
        stream = CheckpointStream(GUEST, CheckpointConfig(time_bound_s=bound))
        rows.append({
            "bound_s": bound,
            "interval_s": stream.interval_s(),
            "stream_mbps": stream.stream_rate_bps() / 1e6,
            "yank_commit_s": stream.final_commit_downtime_s(ramped=False),
            "ramped_commit_s": stream.final_commit_downtime_s(ramped=True),
        })
    return rows


def test_ablation_time_bound(benchmark, report):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    intervals = [row["interval_s"] for row in rows]
    streams = [row["stream_mbps"] for row in rows]
    commits = [row["yank_commit_s"] for row in rows]
    # Larger bound -> longer checkpoint interval, lower stream rate...
    assert all(b >= a for a, b in zip(intervals, intervals[1:]))
    assert all(b <= a * 1.01 for a, b in zip(streams, streams[1:]))
    # ...but a bigger un-ramped commit pause, tracking the bound.
    assert all(b >= a for a, b in zip(commits, commits[1:]))
    for row in rows:
        assert row["yank_commit_s"] <= row["bound_s"] * 1.05
        # The warning ramp keeps the pause tiny at every bound.
        assert row["ramped_commit_s"] < 2.0

    text = format_table(
        ["bound (s)", "ckpt interval (s)", "stream (MB/s)",
         "commit, no ramp (s)", "commit, ramped (s)"],
        [(row["bound_s"], f"{row['interval_s']:.1f}",
          f"{row['stream_mbps']:.2f}", f"{row['yank_commit_s']:.1f}",
          f"{row['ramped_commit_s']:.2f}") for row in rows],
        title=("Ablation — bounded-time migration time bound "
               "(TPC-W guest; paper uses 30 s)"))
    report("ablation_time_bound", text)
