"""The observability event bus.

Components publish structured, sim-timestamped events — spot price
crossings, revocation warnings, checkpoint rounds, pool rebids, backup
stream throttling — and consumers subscribe by event name, by
hierarchical prefix (``"spot."`` matches ``"spot.warning"``), or to
everything (``"*"``).

The bus is built for the simulator's hot paths: publishing with no
matching subscriber is a single dict lookup plus a boolean test, and a
bus is only consulted at all when one is attached to the environment
(``env.obs is not None``), so an uninstrumented simulation pays nothing.
"""

from itertools import count


class ObsEvent:
    """One published event: a name, a sim timestamp, and fields.

    ``seq`` is a bus-wide monotonic sequence number that makes the
    total order of same-timestamp events explicit (and the exported
    JSONL log reproducible).
    """

    __slots__ = ("name", "time", "seq", "fields")

    def __init__(self, name, time, seq, fields):
        self.name = name
        self.time = time
        self.seq = seq
        self.fields = fields

    def to_dict(self):
        """A JSON-serializable flat dict (field keys must not collide
        with ``name``/``t``/``seq``)."""
        record = {"name": self.name, "t": self.time, "seq": self.seq}
        for key, value in self.fields.items():
            if key in record:
                raise ValueError(f"event field {key!r} shadows a "
                                 f"reserved key")
            record[key] = value
        return record

    def __repr__(self):
        return (f"<ObsEvent #{self.seq} {self.name} t={self.time:.3f} "
                f"{self.fields}>")


class Subscription:
    """Handle returned by :meth:`EventBus.subscribe`; cancellable."""

    __slots__ = ("bus", "pattern", "callback", "active")

    def __init__(self, bus, pattern, callback):
        self.bus = bus
        self.pattern = pattern
        self.callback = callback
        self.active = True

    def cancel(self):
        if self.active:
            self.active = False
            self.bus._remove(self)


class EventBus:
    """Publish/subscribe hub for :class:`ObsEvent`.

    Subscription patterns
    ---------------------
    * an exact event name (``"spot.warning"``),
    * a dotted prefix ending in ``"*"`` (``"spot.*"`` matches every
      event whose name starts with ``"spot."``), or
    * ``"*"`` alone, matching every event.
    """

    def __init__(self):
        self._exact = {}
        self._prefix = []
        self._all = []
        self._seq = count()
        #: Count of delivered events, for cheap introspection.
        self.published = 0

    # -- subscription --------------------------------------------------

    def subscribe(self, pattern, callback):
        """Deliver matching events to ``callback(event)``."""
        sub = Subscription(self, pattern, callback)
        if pattern == "*":
            self._all.append(sub)
        elif pattern.endswith("*"):
            self._prefix.append((pattern[:-1], sub))
        else:
            self._exact.setdefault(pattern, []).append(sub)
        return sub

    def _remove(self, sub):
        if sub.pattern == "*":
            self._all.remove(sub)
        elif sub.pattern.endswith("*"):
            self._prefix.remove((sub.pattern[:-1], sub))
        else:
            subs = self._exact.get(sub.pattern, [])
            if sub in subs:
                subs.remove(sub)
            if not subs:
                self._exact.pop(sub.pattern, None)

    def has_subscribers(self, name=None):
        """Whether any subscription would see an event named ``name``
        (or, with no name, whether any subscription exists at all)."""
        if self._all:
            return True
        if name is None:
            return bool(self._exact or self._prefix)
        if name in self._exact:
            return True
        return any(name.startswith(prefix) for prefix, _ in self._prefix)

    # -- publishing ----------------------------------------------------

    def publish(self, name, time, /, **fields):
        """Publish one event; returns it, or ``None`` if nobody cares.

        The event object is only constructed when at least one
        subscription matches, so publishing into a quiet bus stays
        cheap.
        """
        targets = None
        exact = self._exact.get(name)
        if exact:
            targets = list(exact)
        for prefix, sub in self._prefix:
            if name.startswith(prefix):
                targets = (targets or [])
                targets.append(sub)
        if self._all:
            targets = (targets or []) + list(self._all)
        if not targets:
            return None
        event = ObsEvent(name, time, next(self._seq), fields)
        self.published += 1
        for sub in targets:
            if sub.active:
                sub.callback(event)
        return event
