"""Test package."""
