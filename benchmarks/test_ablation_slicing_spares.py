"""Ablations: slicing large instances, hot spares, staging servers.

* Slicing (Section 4.2): packing two m3.medium nested VMs onto one
  m3.large host halves the native-instance count for the large pool;
  without slicing a whole large server backs each nested VM.
* Hot spares / staging (Section 4.3): spares buy an always-ready
  migration destination for extra money; staging reuses spare slots in
  other pools for free at the cost of a second migration.
"""

from repro.experiments.policy_grid import run_cell, shared_archive
from repro.experiments.reporting import format_table

DAYS = 45.0
VMS = 16
SEED = 23


def sweep_slicing():
    archive = shared_archive(SEED, DAYS)
    sliced = run_cell("2P-ML", "spotcheck-lazy", seed=SEED, days=DAYS,
                      vms=VMS, archive=archive, slicing=True)
    unsliced = run_cell("2P-ML", "spotcheck-lazy", seed=SEED, days=DAYS,
                        vms=VMS, archive=archive, slicing=False)
    return sliced, unsliced


def sweep_spares():
    archive = shared_archive(SEED, DAYS)
    rows = {}
    rows["baseline"] = run_cell(
        "4P-ED", "spotcheck-lazy", seed=SEED, days=DAYS, vms=VMS,
        archive=archive)
    rows["2 hot spares"] = run_cell(
        "4P-ED", "spotcheck-lazy", seed=SEED, days=DAYS, vms=VMS,
        archive=archive, hot_spares=2)
    rows["staging"] = run_cell(
        "4P-ED", "spotcheck-lazy", seed=SEED, days=DAYS, vms=VMS,
        archive=archive, use_staging=True)
    return rows


def test_ablation_slicing(benchmark, report):
    sliced, unsliced = benchmark.pedantic(
        sweep_slicing, rounds=1, iterations=1)

    # Slicing pays for half of the large pool's native servers.
    assert sliced["cost_per_vm_hour"] < unsliced["cost_per_vm_hour"] * 0.85
    assert sliced["state_loss_events"] == 0
    assert unsliced["state_loss_events"] == 0

    text = format_table(
        ["variant", "cost/VM-hr", "unavailability", "migrations"],
        [("sliced (2 mediums / m3.large)",
          f"${sliced['cost_per_vm_hour']:.4f}",
          f"{sliced['unavailability_pct']:.4f}%", sliced["migrations"]),
         ("unsliced (1 medium / m3.large)",
          f"${unsliced['cost_per_vm_hour']:.4f}",
          f"{unsliced['unavailability_pct']:.4f}%", unsliced["migrations"])],
        title=(f"Ablation — slicing large native instances "
               f"(2P-ML, {VMS} VMs, {DAYS:.0f} days)"))
    report("ablation_slicing", text)


def test_ablation_spares_and_staging(benchmark, report):
    rows = benchmark.pedantic(sweep_spares, rounds=1, iterations=1)

    baseline = rows["baseline"]
    spares = rows["2 hot spares"]
    staging = rows["staging"]
    # Spares cost money (idle on-demand hosts kept running).
    assert spares["cost_per_vm_hour"] >= baseline["cost_per_vm_hour"]
    # Neither variant loses state; availability stays in the same class.
    for summary in rows.values():
        assert summary["state_loss_events"] == 0
        assert summary["availability"] > 0.995

    text = format_table(
        ["variant", "cost/VM-hr", "unavailability", "migrations"],
        [(name, f"${summary['cost_per_vm_hour']:.4f}",
          f"{summary['unavailability_pct']:.4f}%", summary["migrations"])
         for name, summary in rows.items()],
        title=(f"Ablation — hot spares and staging servers "
               f"(4P-ED, {VMS} VMs, {DAYS:.0f} days)"))
    report("ablation_spares_staging", text)
