"""Figure 1: spot price of a small server type spiking far above its
on-demand price.

Paper shape: the m1.small spot price hovers well below $0.06/hr and
spikes to multiple dollars per hour (tens of times the on-demand
price).
"""

from repro.experiments import fig1
from repro.experiments.reporting import format_series


def test_fig1_price_trace(benchmark, report):
    result = benchmark.pedantic(
        lambda: fig1.run(seed=1, days=30), rounds=1, iterations=1)

    # Shape assertions: spike well above on-demand, base well below.
    assert result["peak_multiple"] > 10.0
    base = min(result["prices"])
    assert base < result["on_demand_price"]

    # Render a decimated series (every ~2 hours) like the figure.
    xs, ys = result["times_h"], result["prices"]
    step = max(len(xs) // 40, 1)
    text = format_series(
        xs[::step], ys[::step], "hour", "price $/hr",
        title=(f"Figure 1 — m1.small spot price over "
               f"{result['window_days']} days (on-demand $0.06/hr, "
               f"peak ${result['peak_price']:.2f} = "
               f"{result['peak_multiple']:.0f}x)"))
    report("fig1_price_trace", text)
