"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.policy == "1P-M"
        assert args.mechanism == "spotcheck-lazy"
        assert args.days == 60.0

    def test_bad_bid_policy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--bid-policy", "magic"])

    def test_version_flag(self, capsys):
        from repro import __version__
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--version"])
        assert excinfo.value.code == 0
        assert f"repro {__version__}" in capsys.readouterr().out


class TestSimulateCommand:
    def test_plain_output(self, capsys):
        code = main(["simulate", "--days", "3", "--vms", "2",
                     "--seed", "4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "cost" in out and "availability" in out

    def test_json_output(self, capsys):
        code = main(["simulate", "--days", "3", "--vms", "2",
                     "--seed", "4", "--json"])
        assert code == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["policy"] == "1P-M"
        assert summary["state_loss_events"] == 0

    def test_knee_bid_policy_runs(self, capsys):
        code = main(["simulate", "--days", "3", "--vms", "2",
                     "--bid-policy", "knee"])
        assert code == 0

    def test_obs_dir_writes_and_summarizes(self, tmp_path, capsys):
        out = str(tmp_path / "obs")
        code = main(["simulate", "--days", "3", "--vms", "2",
                     "--seed", "4", "--obs-dir", out])
        assert code == 0
        for name in ("events.jsonl", "metrics.prom", "traces.txt"):
            assert (tmp_path / "obs" / name).exists()
        capsys.readouterr()
        code = main(["obs", "summarize", "--dir", out])
        assert code == 0
        digest = capsys.readouterr().out
        assert "events:" in digest
        assert "spot.price" in digest


class TestTracesCommand:
    def test_stats_output(self, capsys):
        code = main(["traces", "--days", "10", "--types", "m3.medium"])
        assert code == 0
        assert "m3.medium" in capsys.readouterr().out

    def test_archive_roundtrip(self, tmp_path, capsys):
        out_dir = str(tmp_path / "archive")
        code = main(["traces", "--days", "5", "--types", "m3.medium",
                     "--out", out_dir])
        assert code == 0
        from repro.traces.archive import TraceArchive
        archive = TraceArchive.load(out_dir)
        assert ("m3.medium", "us-east-1a") in archive


class TestExperimentCommand:
    def test_fast_experiment(self, capsys):
        code = main(["experiment", "fig9"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 9" in out and "29.0" in out

    def test_unknown_experiment(self, capsys):
        code = main(["experiment", "fig99"])
        assert code == 2
