"""Tests for the JSONL / Prometheus / trace-tree exporters."""

import json

from repro.obs import Observability
from repro.obs.bus import EventBus
from repro.obs.export import (
    JsonlEventWriter,
    events_to_jsonl,
    load_events,
    render_prometheus,
    render_trace_tree,
    summarize_obs_dir,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import SpanTracer


def collect_events(publishes):
    bus = EventBus()
    events = []
    bus.subscribe("*", events.append)
    for name, time, fields in publishes:
        bus.publish(name, time, **fields)
    return events


class TestJsonl:
    def test_round_trip(self):
        events = collect_events([
            ("spot.warning", 1.5, {"instance": "i-1", "bid": 0.07}),
            ("migration.completed", 2.0, {"vm": "nvm-1"}),
        ])
        text = events_to_jsonl(events)
        lines = text.strip().split("\n")
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first["name"] == "spot.warning"
        assert first["bid"] == 0.07

    def test_keys_are_sorted_for_determinism(self):
        events = collect_events([("e", 0.0, {"zebra": 1, "alpha": 2})])
        line = events_to_jsonl(events).strip()
        assert line.index('"alpha"') < line.index('"zebra"')

    def test_streaming_writer(self, tmp_path):
        bus = EventBus()
        path = tmp_path / "events.jsonl"
        writer = JsonlEventWriter(bus, str(path))
        bus.publish("a", 0.0, x=1)
        bus.publish("b", 1.0)
        writer.close()
        bus.publish("c", 2.0)  # after close: not written
        loaded = load_events(str(path))
        assert [e["name"] for e in loaded] == ["a", "b"]
        assert writer.written == 2


class TestPrometheus:
    def test_counter_and_gauge_format(self):
        registry = MetricsRegistry()
        registry.counter("vms_created_total").inc(3)
        registry.gauge("parked_vms").set(2.5)
        text = render_prometheus(registry)
        assert "# TYPE vms_created_total counter" in text
        assert "vms_created_total 3" in text
        assert "# TYPE parked_vms gauge" in text
        assert "parked_vms 2.5" in text

    def test_histogram_renders_as_summary(self):
        registry = MetricsRegistry()
        hist = registry.histogram("migration_downtime_seconds",
                                  mechanism="spotcheck-lazy")
        for value in (20.0, 22.0, 24.0):
            hist.observe(value)
        text = render_prometheus(registry)
        assert "# TYPE migration_downtime_seconds summary" in text
        assert ('migration_downtime_seconds{mechanism="spotcheck-lazy",'
                'quantile="0.5"} 22' in text)
        assert ('migration_downtime_seconds_count'
                '{mechanism="spotcheck-lazy"} 3' in text)
        assert ('migration_downtime_seconds_sum'
                '{mechanism="spotcheck-lazy"} 66' in text)

    def test_label_order_is_stable(self):
        registry = MetricsRegistry()
        registry.counter("m", zone="us-east-1a", type="m3.medium").inc()
        text = render_prometheus(registry)
        assert 'm{type="m3.medium",zone="us-east-1a"} 1' in text

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == ""


class TestTraceTree:
    def test_renders_nesting_and_durations(self):
        tracer = SpanTracer()
        root = tracer.start_trace("migration", time=0.0, vm="nvm-1")
        child = tracer.start_span(root, "final-commit", time=1.0)
        tracer.end(child, time=2.5)
        tracer.end(root, time=3.0)
        text = render_trace_tree(tracer.finished())
        assert "trace #1 (migration)" in text
        assert "vm=nvm-1" in text
        assert "final-commit" in text
        assert "1.500s" in text

    def test_empty_traces_render_empty(self):
        assert render_trace_tree([]) == ""


class TestObsDir:
    def test_write_and_summarize(self, tmp_path):
        obs = Observability()

        class FakeEnv:
            now = 0.0
        env = FakeEnv()
        obs.attach(env)
        obs.emit("spot.warning", instance="i-1")
        env.now = 10.0
        obs.emit("migration.completed", vm="nvm-1")
        obs.metrics.histogram(
            "migration_downtime_seconds",
            mechanism="bounded-lazy").observe(22.65)
        trace = obs.tracer.start_trace("migration")
        obs.tracer.end(trace)
        out = tmp_path / "obs"
        obs.write_dir(str(out))
        assert (out / "events.jsonl").exists()
        assert (out / "metrics.prom").exists()
        assert (out / "traces.txt").exists()
        digest = summarize_obs_dir(str(out))
        assert "events: 2" in digest
        assert "spot.warning" in digest
        assert "migration_downtime_seconds" in digest
        assert "traces: 1" in digest
