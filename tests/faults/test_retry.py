"""RetryPolicy and retry_call: backoff, budgets, deadlines, obs."""

import pytest

from repro.cloud.errors import ApiError
from repro.faults.retry import (
    BACKOFF_STREAM,
    RetryExhausted,
    RetryPolicy,
    retry_call,
)
from repro.obs import Observability
from repro.sim.kernel import Environment

from tests.conftest import run_process


class TestPolicy:
    def test_backoff_caps_double_then_saturate(self):
        policy = RetryPolicy(base_delay_s=2.0, multiplier=2.0,
                             max_delay_s=60.0)
        assert policy.backoff_cap_s(1) == 2.0
        assert policy.backoff_cap_s(2) == 4.0
        assert policy.backoff_cap_s(5) == 32.0
        assert policy.backoff_cap_s(6) == 60.0
        assert policy.backoff_cap_s(100) == 60.0

    def test_backoff_cap_huge_attempt_no_overflow(self):
        # A patient loop riding out a day-long outage reaches attempt
        # counts where ``multiplier ** attempt`` overflows a float.
        policy = RetryPolicy()
        assert policy.backoff_cap_s(100_000) == policy.max_delay_s

    def test_backoff_jitter_within_cap(self):
        policy = RetryPolicy(base_delay_s=2.0, multiplier=2.0)
        env = Environment(seed=7)
        rng = env.rng.stream(BACKOFF_STREAM)
        draws = [policy.backoff_s(3, rng) for _ in range(200)]
        cap = policy.backoff_cap_s(3)
        assert all(0.0 <= d <= cap for d in draws)
        assert max(draws) > 0.5 * cap  # full jitter, not a constant

    def test_backoff_without_rng_returns_cap(self):
        policy = RetryPolicy(base_delay_s=2.0)
        assert policy.backoff_s(1, rng=None) == 2.0

    def test_allows_budget(self):
        policy = RetryPolicy(max_attempts=3)
        assert policy.allows(2)
        assert not policy.allows(3)

    def test_allows_deadline_margin(self):
        policy = RetryPolicy(max_attempts=10, deadline_margin_s=5.0)
        # now + delay + margin must stay clear of the deadline.
        assert policy.allows(1, now=0.0, deadline=100.0, delay=10.0)
        assert not policy.allows(1, now=90.0, deadline=100.0, delay=10.0)
        assert not policy.allows(1, now=94.0, deadline=100.0, delay=1.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay_s=-1.0)


def _failing_process(env, failures, exc_factory=None, value="done"):
    """A factory whose process fails ``failures`` times, then succeeds."""
    state = {"calls": 0}

    def _factory():
        def _body():
            state["calls"] += 1
            yield env.timeout(1.0)
            if state["calls"] <= failures:
                raise (exc_factory or (lambda: ApiError("boom")))()
            return value
        return env.process(_body())

    return _factory, state


class TestRetryCall:
    def test_success_first_try_no_rng(self):
        env = Environment(seed=3)
        factory, state = _failing_process(env, failures=0)
        result = run_process(env, retry_call(
            env, factory, RetryPolicy(), "op"))
        assert result == "done"
        assert state["calls"] == 1
        # Fault-free calls must not create the jitter stream at all.
        assert BACKOFF_STREAM not in env.rng.names()

    def test_transient_retried_until_success(self):
        env = Environment(seed=3)
        factory, state = _failing_process(env, failures=3)
        result = run_process(env, retry_call(
            env, factory, RetryPolicy(), "op"))
        assert result == "done"
        assert state["calls"] == 4

    def test_terminal_error_propagates_immediately(self):
        env = Environment(seed=3)
        factory, state = _failing_process(
            env, failures=5,
            exc_factory=lambda: ApiError("fatal", retryable=False))
        with pytest.raises(ApiError) as excinfo:
            run_process(env, retry_call(env, factory, RetryPolicy(), "op"))
        assert not excinfo.value.retryable
        assert state["calls"] == 1

    def test_budget_exhaustion_raises_retry_exhausted(self):
        env = Environment(seed=3)
        factory, state = _failing_process(env, failures=100)
        policy = RetryPolicy(max_attempts=3)
        with pytest.raises(RetryExhausted) as excinfo:
            run_process(env, retry_call(env, factory, policy, "op"))
        assert state["calls"] == 3
        assert excinfo.value.attempts == 3
        assert isinstance(excinfo.value.__cause__, ApiError)
        # Exhaustion is terminal: an outer retry loop must not re-retry.
        assert not excinfo.value.retryable

    def test_deadline_vetoes_late_retry(self):
        env = Environment(seed=3)
        factory, state = _failing_process(env, failures=100)
        policy = RetryPolicy(max_attempts=100, base_delay_s=10.0,
                             multiplier=1.0, max_delay_s=10.0,
                             deadline_margin_s=5.0)
        with pytest.raises(RetryExhausted):
            run_process(env, retry_call(
                env, factory, policy, "op", deadline=30.0))
        # The loop stopped well before the 100-attempt budget, and the
        # simulation clock never passed the deadline.
        assert state["calls"] < 5
        assert env.now < 30.0

    def test_backoff_advances_clock(self):
        env = Environment(seed=3)
        factory, _state = _failing_process(env, failures=2)
        run_process(env, retry_call(env, factory, RetryPolicy(), "op"))
        # 3 calls x 1s latency, plus two nonzero jittered backoffs.
        assert env.now > 3.0

    def test_obs_events_and_metrics(self):
        obs = Observability()
        env = Environment(seed=3, obs=obs)
        factory, _state = _failing_process(env, failures=2)
        run_process(env, retry_call(env, factory, RetryPolicy(), "op"))
        retried = [e for e in obs.events if e.name == "retry.backoff"]
        assert len(retried) == 2
        assert retried[0].fields["operation"] == "op"
        [counter] = obs.metrics.find("retries_total")
        assert counter.value == 2
        [hist] = obs.metrics.find("retry_backoff_seconds")
        assert hist.count == 2

    def test_non_api_errors_propagate(self):
        env = Environment(seed=3)
        factory, state = _failing_process(
            env, failures=5, exc_factory=lambda: ValueError("not api"))
        with pytest.raises(ValueError):
            run_process(env, retry_call(env, factory, RetryPolicy(), "op"))
        assert state["calls"] == 1
