"""Regression tests for the policy-layer fixes that shipped with the
portfolio family: the 4P-ST clock, the knee bid floor plumbing, the
4P-COST price-series freshness, and the predictor's batch-observe
equivalence."""

import pytest

from repro.cloud.instance_types import M3_CATALOG
from repro.cloud.spot_market import SpotMarket
from repro.core.config import SpotCheckConfig
from repro.core.controller import SpotCheckController
from repro.core.policies.allocation import (
    StabilityWeightedPolicy,
    make_allocation_policy,
)
from repro.core.policies.bidding import make_bid_policy
from repro.core.policies.prediction import (
    PredictionStats,
    RevocationPredictor,
)
from repro.core.pools import SpotPool
from repro.obs import Observability
from repro.sim.kernel import Environment

from tests.conftest import flat_trace, step_trace

MEDIUM = M3_CATALOG.get("m3.medium")
DAY = 24 * 3600.0


def medium_pool(env, zone, trace=None):
    trace = trace or flat_trace(0.01)
    market = SpotMarket(env, MEDIUM, zone, trace)
    return SpotPool(MEDIUM, zone, MEDIUM, market, bid=0.07)


class TestStabilityClock:
    """4P-ST historically weighed *all* revocations since t=0 when
    built outside the controller (no clock attached)."""

    def test_windowed_vs_all_time_divergence(self, env, zone):
        pool = medium_pool(env, zone)
        # Twenty revocations, all ancient history (first simulated day).
        for i in range(20):
            pool.record_revocation(float(i), 1, 5)

        unclocked = StabilityWeightedPolicy()
        clocked = StabilityWeightedPolicy()
        clocked.attach_clock(lambda: 30 * DAY)

        # The bug: an unclocked weigh still counts all twenty events.
        assert unclocked.weight(pool) == pytest.approx(1.0 / 21.0)
        # The 7-day window has long forgotten them.
        assert clocked.weight(pool) == pytest.approx(1.0)

    def test_unclocked_weigh_fires_hook_once(self, env, zone):
        pool = medium_pool(env, zone)
        fired = []
        policy = StabilityWeightedPolicy()
        policy.on_unclocked = lambda: fired.append(True)
        policy.weight(pool)
        policy.weight(pool)
        assert fired == [True]

    def test_clocked_weigh_never_fires_hook(self, env, zone):
        pool = medium_pool(env, zone)
        fired = []
        policy = StabilityWeightedPolicy()
        policy.on_unclocked = lambda: fired.append(True)
        policy.attach_clock(lambda: 100.0)
        policy.weight(pool)
        assert fired == []

    def test_factory_attaches_clock(self, env, zone):
        pool = medium_pool(env, zone)
        for i in range(20):
            pool.record_revocation(float(i), 1, 5)
        policy = make_allocation_policy("4P-ST", now=lambda: 30 * DAY)
        assert policy.weight(pool) == pytest.approx(1.0)

    def test_controller_builds_clocked_and_hooked_policy(self, env, api):
        controller = SpotCheckController(
            env, api, SpotCheckConfig(allocation_policy="4P-ST"))
        assert controller.allocation._now() == env.now
        assert controller.allocation.on_unclocked is not None

    def test_unclocked_weigh_is_observable(self, api, zone):
        obs = Observability()
        env = Environment(seed=1234, obs=obs)
        controller = SpotCheckController(
            env, api, SpotCheckConfig(allocation_policy="4P-ST"))
        policy = controller.allocation
        # Graft the policy into an unclocked state (an externally built
        # policy would arrive like this) and weigh.
        policy._now = lambda: None
        policy.weight(medium_pool(env, zone))
        names = [event.name for event in obs.events]
        assert "policy.unclocked" in names


class TestKneeFloor:
    """``make_bid_policy`` never plumbed ``floor_fraction`` through to
    KneeBidPolicy, so the thrash floor was stuck at its default."""

    def test_floor_fraction_reaches_policy(self):
        policy = make_bid_policy("knee", floor_fraction=0.6)
        assert policy.floor_fraction == pytest.approx(0.6)

    def test_knee_below_floor_is_clamped(self):
        # A market trading at 10% of on-demand puts the availability
        # knee near ratio 0.1 — under the default 0.3 floor.
        trace = flat_trace(0.1 * MEDIUM.on_demand_price)
        clamped = make_bid_policy("knee", floor_fraction=0.3)
        assert clamped.bid_for(MEDIUM, trace) == \
            pytest.approx(0.3 * MEDIUM.on_demand_price)
        # With the floor below the knee, the knee itself wins.
        loose = make_bid_policy("knee", floor_fraction=0.05)
        assert loose.bid_for(MEDIUM, trace) < 0.3 * MEDIUM.on_demand_price
        assert loose.bid_for(MEDIUM, trace) >= \
            0.05 * MEDIUM.on_demand_price

    def test_config_plumbs_floor_to_controller(self, env, api):
        controller = SpotCheckController(env, api, SpotCheckConfig(
            bid_policy="knee", knee_floor_fraction=0.8))
        assert controller.bid_policy.floor_fraction == pytest.approx(0.8)

    @pytest.mark.parametrize("bad", [0.0, -0.1, 1.5])
    def test_config_validates_floor(self, bad):
        with pytest.raises(ValueError):
            SpotCheckConfig(knee_floor_fraction=bad)


class TestPriceSeriesFreshness:
    """4P-COST's mean permanently ignored the lazy market window once
    any manual sample existed, freezing weights on stale prices."""

    def _stepped_pool(self, env, zone):
        # 11 points at 0.01; a step listener pins the per-point drive,
        # so delivered_count advances over every point.
        trace = step_trace([(i * 100.0, 0.01) for i in range(11)])
        market = SpotMarket(env, MEDIUM, zone, trace)
        market.on_price_change(lambda market, price: None)
        return SpotPool(MEDIUM, zone, MEDIUM, market, bid=0.07)

    def test_fresher_market_series_wins(self, env, zone):
        pool = self._stepped_pool(env, zone)
        # One early manual sample at a very different price.
        pool.record_price(5.0, 0.05)
        env.run(until=2000.0)
        # The market window (newest point t=1000) outranks the t=5
        # manual sample; the pre-fix behaviour returned 0.05 forever.
        assert pool.recent_mean_price_per_slot() == pytest.approx(0.01)

    def test_fresher_manual_sample_wins(self, env, zone):
        pool = self._stepped_pool(env, zone)
        env.run(until=2000.0)
        pool.record_price(3000.0, 0.05)
        assert pool.recent_mean_price_per_slot() == pytest.approx(0.05)

    def test_all_manual_runs_unchanged(self, env, zone):
        # No market delivery at all: the manual series is the only one.
        pool = medium_pool(env, zone)
        pool.record_price(1.0, 0.02)
        pool.record_price(2.0, 0.04)
        assert pool.recent_mean_price_per_slot() == pytest.approx(0.03)


class TestPredictorSeries:
    """``observe_series`` must be bit-equivalent to per-point
    ``observe``, including a signal holdoff spanning the series split."""

    BID = 0.07

    def _series(self):
        times = [i * 600.0 for i in range(40)]
        prices = []
        for i in range(40):
            if i in (6, 8, 25):  # Spikes: momentum + level signals.
                prices.append(0.06)
            else:
                prices.append(0.01)
        return times, prices

    def test_split_series_equivalent_to_per_point(self):
        times, prices = self._series()
        serial = RevocationPredictor()
        fired_serial = [i for i, (t, p) in enumerate(zip(times, prices))
                        if serial.observe("pool", t, p, self.BID)]

        batch = RevocationPredictor()
        # Split right after the first spike: the i=8 spike sits inside
        # the holdoff of the i=6 signal and must stay suppressed
        # across the chunk boundary.
        split = 7
        fired_batch = batch.observe_series(
            "pool", times[:split], prices[:split], self.BID)
        fired_batch += [split + i for i in batch.observe_series(
            "pool", times[split:], prices[split:], self.BID)]

        assert fired_serial == fired_batch
        assert batch.stats.signals == serial.stats.signals
        # Identical internal state: the next point decides identically.
        assert batch.observe("pool", 40 * 600.0, 0.06, self.BID) == \
            serial.observe("pool", 40 * 600.0, 0.06, self.BID)

    def test_holdoff_suppresses_second_spike(self):
        times, prices = self._series()
        predictor = RevocationPredictor(holdoff_s=3600.0)
        fired = predictor.observe_series("pool", times, prices, self.BID)
        assert 6 in fired
        assert 8 not in fired  # 1200 s after the first signal.
        assert 25 in fired

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            RevocationPredictor().observe_series("pool", [0.0], [], self.BID)


class TestPredictionStatsEdges:
    def test_precision_with_no_judged_signals(self):
        assert PredictionStats().precision == 0.0

    def test_recall_with_no_actual_crossings(self):
        assert PredictionStats().recall == 0.0

    def test_all_false_positives(self):
        stats = PredictionStats(signals=3, false_positives=3)
        assert stats.precision == 0.0
        assert stats.recall == 0.0

    def test_all_missed(self):
        stats = PredictionStats(missed=2)
        assert stats.recall == 0.0

    def test_mixed_outcomes(self):
        stats = PredictionStats(signals=4, true_positives=3,
                                false_positives=1, missed=1)
        assert stats.precision == pytest.approx(0.75)
        assert stats.recall == pytest.approx(0.75)
