"""Fleet mixes: deterministic heterogeneous workload populations."""

import pytest

from repro.workloads import (
    FleetMix,
    MixClass,
    WriteScaledWorkload,
    default_fleet_mix,
)
from repro.workloads.mix import FLEET_BASE_WRITE_RATE_PAGES


class TestWriteScaledWorkload:
    def test_base_class_matches_default_profile(self):
        workload = WriteScaledWorkload()
        assert workload.write_rate_pages == FLEET_BASE_WRITE_RATE_PAGES
        assert workload.working_set_fraction == 0.2
        assert workload.cold_write_fraction == 0.02

    def test_factor_scales_write_rate_only(self):
        base = WriteScaledWorkload()
        scaled = WriteScaledWorkload(factor=0.25)
        assert scaled.write_rate_pages == base.write_rate_pages / 4
        assert scaled.working_set_fraction == base.working_set_fraction

    def test_flat_performance(self):
        workload = WriteScaledWorkload(factor=0.5)
        assert workload.performance(None) == 1.0
        assert workload.degradation_fraction(None) == 0.0

    def test_non_positive_factor_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            WriteScaledWorkload(factor=0.0)


class TestFleetMix:
    def test_counts_apportion_exactly(self):
        mix = default_fleet_mix(classes=8)
        counts = mix.counts(100)
        assert sum(counts) == 100
        assert len(counts) == 8

    def test_counts_respect_weights(self):
        mix = FleetMix(classes=(MixClass(1.0, weight=3.0),
                                MixClass(0.5, weight=1.0)))
        assert mix.counts(40) == [30, 10]

    def test_counts_deterministic_largest_remainder(self):
        mix = FleetMix(classes=tuple(MixClass(1.0) for _ in range(3)))
        # 10 over 3 equal classes: 3.33 each, first remainder (by
        # index) takes the leftover.
        assert mix.counts(10) == [4, 3, 3]
        assert mix.counts(10) == mix.counts(10)

    def test_factory_hands_out_class_blocks(self):
        mix = FleetMix(classes=(MixClass(1.0), MixClass(0.5)))
        factory = mix.workload_factory(4)
        factors = [factory().factor for _ in range(4)]
        assert factors == [1.0, 1.0, 0.5, 0.5]

    def test_factory_overrun_repeats_last_class(self):
        mix = FleetMix(classes=(MixClass(1.0), MixClass(0.5)))
        factory = mix.workload_factory(2)
        factors = [factory().factor for _ in range(3)]
        assert factors == [1.0, 0.5, 0.5]

    def test_default_mix_round_rate_stays_under_double(self):
        mix = default_fleet_mix(classes=8)
        # Checkpoint rounds scale ~linearly in the write factor, so
        # the summed round rate over the geometric classes is the
        # geometric series — ~1.5x the base class, the headroom the
        # heterogeneity ratchet relies on.
        assert sum(c.factor for c in mix.classes) < 2.0
        assert mix.classes[0].factor == 1.0

    def test_empty_mix_rejected(self):
        with pytest.raises(ValueError, match="at least one class"):
            FleetMix(classes=())

    def test_non_mixclass_entries_rejected(self):
        with pytest.raises(TypeError, match="MixClass"):
            FleetMix(classes=(0.5,))

    def test_invalid_class_params_rejected(self):
        with pytest.raises(ValueError, match="factor"):
            MixClass(factor=-1.0)
        with pytest.raises(ValueError, match="weight"):
            MixClass(factor=1.0, weight=0.0)

    def test_default_mix_validates_shape(self):
        with pytest.raises(ValueError, match="at least one"):
            default_fleet_mix(classes=0)
        with pytest.raises(ValueError, match="ratio"):
            default_fleet_mix(ratio=1.0)
