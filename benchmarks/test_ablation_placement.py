"""Ablation: greedy cheapest-first vs conservative stability-first.

Section 4.2's placement strategies: greedy exploits the non-uniform
size-to-price ratio (slicing a cheap large server into mediums),
stability-first pays more for the market with the calmest recent
prices.  The trade is cost versus migration frequency.
"""

from repro.experiments.policy_grid import run_cell, shared_archive
from repro.experiments.reporting import format_table

DAYS = 45.0
VMS = 16
SEED = 37

VARIANTS = ("1P-M", "greedy", "stability")


def sweep():
    archive = shared_archive(SEED, DAYS)
    return {
        variant: run_cell(variant, "spotcheck-lazy", seed=SEED, days=DAYS,
                          vms=VMS, archive=archive)
        for variant in VARIANTS
    }


def test_ablation_placement_policies(benchmark, report):
    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    for summary in results.values():
        assert summary["state_loss_events"] == 0
        assert summary["availability"] > 0.99
        # Everything stays far below on-demand.
        assert summary["cost_per_vm_hour"] < 0.07 / 2

    # The stability policy may pay more but must not migrate more than
    # the cost chaser.
    assert results["stability"]["revocation_events"] <= \
        results["greedy"]["revocation_events"] * 1.5 + 5

    rows = [(variant,
             f"${results[variant]['cost_per_vm_hour']:.4f}",
             f"{100 * results[variant]['availability']:.4f}%",
             results[variant]["revocation_events"],
             results[variant]["migrations"])
            for variant in VARIANTS]
    text = format_table(
        ["placement", "cost/VM-hr", "availability", "revocation events",
         "migrations"],
        rows,
        title=(f"Ablation — placement policies ({VMS} VMs, "
               f"{DAYS:.0f} days): fixed pool vs greedy cheapest-first "
               f"vs stability-first"))
    report("ablation_placement", text)
