"""Controller configuration."""

from dataclasses import dataclass, field

from repro.backup.server import BackupServerSpec
from repro.faults.retry import RetryPolicy
from repro.virt.migration.bounded import BoundedMigrationConfig


@dataclass
class SpotCheckConfig:
    """All the knobs of a SpotCheck deployment.

    Attributes
    ----------
    allocation_policy:
        Customer-to-pool mapping policy name (Table 2): ``"1P-M"``,
        ``"2P-ML"``, ``"4P-ED"``, ``"4P-COST"``, ``"4P-ST"`` — or
        ``"greedy"`` / ``"stability"`` for the Section 4.2 placement
        strategies that pick the currently cheapest / most stable
        market, with slicing.
    bid_policy:
        ``"on-demand"`` bids exactly the on-demand price; ``"multiple"``
        bids ``bid_multiple`` times it.
    bid_multiple:
        k for the k-times-on-demand bid policy.
    knee_floor_fraction:
        The ``"knee"`` bid policy's thrash floor: never bid below this
        fraction of the on-demand price, even when the availability
        knee of a quiet market sits lower.
    portfolio:
        Optional keyword overrides for the IT/OC portfolio allocation
        family (``target_ratio``, ``band_fraction``, ``top_k``,
        ``migration_budget``, ...); ignored for other policies.
    mechanism:
        Migration mechanism variant (the four bars of Figures 10-12).
    live_migration_only:
        Model the paper's impractical "Xen live migration" baseline: no
        backup servers; revocations handled by an in-warning live
        migration that risks state loss.
    backup_spec:
        Backup-server capacity model.
    vms_per_backup:
        Assignment cap per backup server (the paper uses 35-40).
    hot_spares:
        Number of idle on-demand hosts kept as immediate migration
        destinations (0 disables; acquisition is then lazy).
    use_staging:
        Whether free slots in other pools may stage displaced VMs while
        a final destination starts.
    proactive_migration:
        Live-migrate off a spot pool as soon as its price exceeds the
        on-demand price but is still below the bid (only meaningful
        with ``bid_policy="multiple"``).
    predictive_migration:
        Live-migrate off a spot pool when the price *trend* predicts an
        imminent bid crossing (EWMA level/momentum predictor, Section
        3.2's "predictive approaches").  Works with any bid policy;
        false positives cost extra migrations, false negatives fall
        back to the bounded-time path, so state is never at risk.
    prediction_level_fraction / prediction_jump_factor:
        Tuning of the revocation predictor (see
        :class:`~repro.core.policies.prediction.RevocationPredictor`).
    slicing:
        Whether large native instances may be sliced into several
        nested VMs when that is cheaper per slot.
    return_to_spot:
        Whether VMs parked on on-demand servers migrate back once the
        spot price drops below the on-demand price again.
    return_holddown_s:
        How long the spot price must stay below the on-demand price
        before a return migration is triggered (hysteresis against
        flapping around a spike's edges).
    live_safety_factor:
        Fraction of the warning period a live migration plan must fit
        inside before SpotCheck trusts it for a revocation (small-VM
        exception, Section 3.5).
    live_migration_bps:
        Conservative bandwidth assumed for live migration planning.
    retry:
        :class:`~repro.faults.retry.RetryPolicy` governing every
        control-plane retry: placement attempts, transient API errors,
        and the deadline-aware revocation-path detaches.
    steady_checkpoint_flush:
        Run the steady-state checkpoint streams of every backed-up VM
        as DES flows through the group checkpoint scheduler (one
        cohort wakeup per shared interval, aggregated flows on the
        backup datapath).  Off by default: the scenario goldens
        predate steady flush simulation and price only final commits,
        so enabling it is an explicit opt-in for fleet cells.
    defer_flush_accounting:
        With ``steady_checkpoint_flush``, credit members O(1) per
        round and settle per-VM totals at finalize (fleet mode)
        instead of eagerly every round.
    soa_checkpoint_flush:
        With ``steady_checkpoint_flush``, run the steady flushes
        through the struct-of-arrays cohort core
        (:class:`~repro.virt.migration.soa.SoaCheckpointScheduler`):
        one vectorized runner per backup datapath batching every
        plan-group's wakeups, sized for heterogeneous fleets where
        distinct workload classes would otherwise each cost their own
        cohort process.  Bit-identical to the per-cohort scheduler and
        the per-VM streams.
    """

    allocation_policy: str = "1P-M"
    bid_policy: str = "on-demand"
    bid_multiple: float = 1.5
    knee_floor_fraction: float = 0.3
    portfolio: dict = None
    mechanism: BoundedMigrationConfig = field(
        default_factory=BoundedMigrationConfig.spotcheck_lazy)
    live_migration_only: bool = False
    backup_spec: BackupServerSpec = field(default_factory=BackupServerSpec)
    vms_per_backup: int = 40
    hot_spares: int = 0
    use_staging: bool = False
    proactive_migration: bool = False
    predictive_migration: bool = False
    prediction_level_fraction: float = 0.75
    prediction_jump_factor: float = 2.0
    slicing: bool = True
    return_to_spot: bool = True
    return_holddown_s: float = 600.0
    live_safety_factor: float = 0.5
    live_migration_bps: float = 22e6
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    steady_checkpoint_flush: bool = False
    defer_flush_accounting: bool = False
    soa_checkpoint_flush: bool = False

    def __post_init__(self):
        if self.soa_checkpoint_flush and not self.steady_checkpoint_flush:
            raise ValueError(
                "soa_checkpoint_flush batches the steady checkpoint "
                "flushes and so requires steady_checkpoint_flush")
        if self.bid_policy not in ("on-demand", "multiple", "knee"):
            raise ValueError(f"unknown bid policy {self.bid_policy!r}")
        if self.bid_multiple < 1.0:
            raise ValueError("bid_multiple must be at least 1")
        if not 0 < self.knee_floor_fraction <= 1:
            raise ValueError("knee_floor_fraction must lie in (0, 1]")
        if self.vms_per_backup < 1:
            raise ValueError("vms_per_backup must be at least 1")
        if self.hot_spares < 0:
            raise ValueError("hot_spares must be non-negative")
        if not 0 < self.live_safety_factor <= 1:
            raise ValueError("live_safety_factor must lie in (0, 1]")
        if self.proactive_migration and self.bid_policy != "multiple":
            raise ValueError(
                "proactive migration requires the k-times-on-demand bid "
                "policy (with bid == on-demand there is no price band to "
                "react inside)")
