"""The virtualization substrate.

SpotCheck's migration strategies are built from four mechanisms, all
modelled here:

* **live (pre-copy) migration** — iterative rounds of dirty-page
  transfer converging to a brief stop-and-copy (:mod:`.migration.live`),
* **continuous checkpointing** — a background stream of dirty pages to
  a backup server that keeps the residual dirty state bounded
  (:mod:`.migration.checkpoint`),
* **bounded-time migration** — the guarantee that a revoked VM's state
  is safe on the backup server before the warning period expires
  (:mod:`.migration.bounded`), and
* **restoration** — stop-and-copy (full) restore versus lazy restore
  from a ~5 MB skeleton with demand paging (:mod:`.migration.restore`).

The memory-dirtying model (:mod:`.memory`) drives all four: migration
behaviour in the paper is a function of memory size, page dirty rate,
and the bandwidth available to move pages.
"""

from repro.virt.hypervisor import HostVM, NestedHypervisor
from repro.virt.memory import MemoryModel, PAGE_SIZE
from repro.virt.network import FairShareLink
from repro.virt.testbed import MicroTestbed
from repro.virt.vm import NestedVM, VMState

__all__ = [
    "FairShareLink",
    "HostVM",
    "MemoryModel",
    "MicroTestbed",
    "NestedHypervisor",
    "NestedVM",
    "PAGE_SIZE",
    "VMState",
]
