"""Tests for SpotCheckConfig and the bidding/allocation/placement
policies."""

import pytest

from repro.cloud.instance_types import M3_CATALOG
from repro.core.config import SpotCheckConfig
from repro.core.policies.allocation import (
    ALLOCATION_POLICIES,
    make_allocation_policy,
)
from repro.core.policies.bidding import BidPolicy, make_bid_policy
from repro.core.policies.placement import GreedyCheapestFirst, StabilityFirst
from repro.core.pools import SpotPool
from repro.cloud.spot_market import SpotMarket
from repro.cloud.zones import default_region
from repro.sim.rng import RngRegistry

from tests.conftest import flat_trace, step_trace

MEDIUM = M3_CATALOG.get("m3.medium")
LARGE = M3_CATALOG.get("m3.large")


class TestConfig:
    def test_defaults_valid(self):
        config = SpotCheckConfig()
        assert config.allocation_policy == "1P-M"
        assert config.mechanism.restore_kind == "lazy"

    def test_bad_bid_policy(self):
        with pytest.raises(ValueError):
            SpotCheckConfig(bid_policy="yolo")

    def test_bad_bid_multiple(self):
        with pytest.raises(ValueError):
            SpotCheckConfig(bid_multiple=0.5)

    def test_proactive_requires_multiple_bid(self):
        with pytest.raises(ValueError):
            SpotCheckConfig(proactive_migration=True)
        SpotCheckConfig(proactive_migration=True, bid_policy="multiple")

    def test_safety_factor_bounds(self):
        with pytest.raises(ValueError):
            SpotCheckConfig(live_safety_factor=0.0)


class TestBidPolicy:
    def test_on_demand_bid(self):
        policy = make_bid_policy("on-demand")
        assert policy.bid_for(MEDIUM) == pytest.approx(0.07)
        assert not policy.allows_proactive

    def test_multiple_bid(self):
        policy = make_bid_policy("multiple", multiple=2.0)
        assert policy.bid_for(MEDIUM) == pytest.approx(0.14)
        assert policy.allows_proactive

    def test_below_one_rejected(self):
        with pytest.raises(ValueError):
            BidPolicy(0.9)

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_bid_policy("magic")


def make_pools(env, zone, prices=None):
    prices = prices or {}
    pools = []
    for itype in M3_CATALOG:
        trace = flat_trace(prices.get(itype.name, 0.1 * itype.on_demand_price),
                           type_name=itype.name,
                           on_demand_price=itype.on_demand_price)
        market = SpotMarket(env, itype, zone, trace)
        pools.append(SpotPool(itype, zone, MEDIUM, market,
                              bid=itype.on_demand_price))
    return pools


class TestAllocationPolicies:
    @pytest.fixture
    def rng(self):
        return RngRegistry(3).stream("alloc")

    def test_registry_covers_table2(self):
        assert {"1P-M", "2P-ML", "4P-ED", "4P-COST", "4P-ST"} <= \
            set(ALLOCATION_POLICIES)

    def test_unknown_policy(self):
        with pytest.raises(ValueError):
            make_allocation_policy("5P-XYZ")

    def test_1pm_always_medium(self, env, zone, rng):
        policy = make_allocation_policy("1P-M")
        pools = make_pools(env, zone)
        for _ in range(10):
            assert policy.choose(pools, rng).itype.name == "m3.medium"

    def test_2pml_alternates(self, env, zone, rng):
        policy = make_allocation_policy("2P-ML")
        pools = make_pools(env, zone)
        chosen = [policy.choose(pools, rng).itype.name for _ in range(4)]
        assert chosen == ["m3.medium", "m3.large"] * 2

    def test_4ped_spreads_equally(self, env, zone, rng):
        policy = make_allocation_policy("4P-ED")
        pools = make_pools(env, zone)
        chosen = [policy.choose(pools, rng).itype.name for _ in range(8)]
        assert chosen.count("m3.medium") == 2
        assert chosen.count("m3.2xlarge") == 2

    def test_4pcost_prefers_cheap_pools(self, env, zone, rng):
        # Make m3.large dirt cheap per slot and 2xlarge expensive.
        policy = make_allocation_policy("4P-COST")
        pools = make_pools(env, zone, prices={
            "m3.large": 0.002, "m3.2xlarge": 0.50})
        for pool in pools:
            pool.record_price(0.0, pool.market.current_price())
        counts = {}
        for _ in range(400):
            name = policy.choose(pools, rng).itype.name
            counts[name] = counts.get(name, 0) + 1
        assert counts.get("m3.large", 0) > counts.get("m3.2xlarge", 0)

    def test_4pst_prefers_stable_pools(self, env, zone, rng):
        policy = make_allocation_policy("4P-ST")
        policy.attach_clock(lambda: 1000.0)
        pools = make_pools(env, zone)
        for pool in pools:
            if pool.itype.name != "m3.medium":
                for i in range(20):
                    pool.record_revocation(float(i), 1, 5)
        counts = {}
        for _ in range(400):
            name = policy.choose(pools, rng).itype.name
            counts[name] = counts.get(name, 0) + 1
        assert counts["m3.medium"] > 200

    def test_missing_pools_raise(self, env, zone, rng):
        policy = make_allocation_policy("1P-M")
        with pytest.raises(ValueError):
            policy.choose([], rng)


class TestPlacement:
    def _markets(self, env, zone, prices):
        markets = {}
        for itype in M3_CATALOG:
            trace = flat_trace(prices[itype.name], type_name=itype.name,
                               on_demand_price=itype.on_demand_price)
            markets[(itype.name, zone.name)] = SpotMarket(
                env, itype, zone, trace)
        return markets

    def test_greedy_exploits_slicing_arbitrage(self, env, zone):
        # An m3.large at 0.01 holds two mediums at 0.005/slot — cheaper
        # than a medium at 0.008 (the paper's arbitrage example).
        markets = self._markets(env, zone, {
            "m3.medium": 0.008, "m3.large": 0.010,
            "m3.xlarge": 0.100, "m3.2xlarge": 0.200})
        choice = GreedyCheapestFirst(M3_CATALOG).choose(MEDIUM, markets)
        assert choice.itype.name == "m3.large"
        assert choice.slots == 2
        assert choice.sliced
        assert choice.price_per_slot == pytest.approx(0.005)

    def test_greedy_prefers_direct_when_cheapest(self, env, zone):
        markets = self._markets(env, zone, {
            "m3.medium": 0.004, "m3.large": 0.010,
            "m3.xlarge": 0.100, "m3.2xlarge": 0.200})
        choice = GreedyCheapestFirst(M3_CATALOG).choose(MEDIUM, markets)
        assert choice.itype.name == "m3.medium"
        assert not choice.sliced

    def test_greedy_no_markets_raises(self):
        with pytest.raises(ValueError):
            GreedyCheapestFirst(M3_CATALOG).choose(MEDIUM, {})

    def test_stability_prefers_quiet_market(self, env, zone):
        markets = {}
        volatile = step_trace(
            [(i * 600.0, 0.01 + 0.009 * (i % 2)) for i in range(200)],
            type_name="m3.medium")
        quiet = step_trace(
            [(i * 600.0, 0.02) for i in range(200)], type_name="m3.large",
            on_demand_price=0.14)
        markets[("m3.medium", zone.name)] = SpotMarket(
            env, MEDIUM, zone, volatile)
        markets[("m3.large", zone.name)] = SpotMarket(
            env, LARGE, zone, quiet)
        env.run(until=200 * 600.0)
        choice = StabilityFirst(M3_CATALOG).choose(
            MEDIUM, markets, now=env.now)
        assert choice.itype.name == "m3.large"
