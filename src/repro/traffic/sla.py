"""Per-customer SLA ledgers: latency quantiles and error budgets.

A :class:`SlaLedger` receives *batched* request accounting from the
traffic engine — "N requests over ``[t0, t1)`` at lognormal latency
around ``mean_ms``", or "N requests failed, the VM was down" — and
maintains:

* a **request-weighted latency distribution** on a fixed log-spaced
  bucket grid.  Each batch adds its closed-form lognormal bucket mass
  (one vectorized ``erf`` over the edges), so p50/p95/p99 are exact up
  to bucket resolution and a million-request batch costs the same as a
  ten-request one;
* a stream of **representative samples** into the existing
  :class:`repro.obs.metrics.Histogram` P2 estimators
  (``sla_latency_ms{customer=...}``), so the standard exporters and
  ``repro obs summarize`` see SLA latency series without any new
  plumbing — a bounded number of equal-mass quantile draws per batch,
  deterministic (no RNG);
* a **monthly-style error budget** per SLO window: a request is *good*
  when it succeeds within ``latency_ms``; the window's budget is
  ``(1 - availability)`` of the window's expected request volume
  (closed-form from the arrival pattern), burn is bad-requests over
  budget, and the first moment a window's burn crosses 1.0 emits an
  ``sla.breach`` event on the obs bus.
"""

import math
from dataclasses import dataclass

import numpy as np
from scipy.special import erf, ndtri

_SQRT2 = math.sqrt(2.0)


@dataclass(frozen=True)
class SlaTarget:
    """One customer's service-level objective.

    A request is *good* when it succeeds and responds within
    ``latency_ms``; the SLO asks that at least ``availability`` of the
    requests in each ``window_s`` window be good.
    """

    latency_ms: float = 100.0
    availability: float = 0.999
    window_s: float = 30 * 24 * 3600.0

    def __post_init__(self):
        if self.latency_ms <= 0:
            raise ValueError("latency_ms must be positive")
        if not 0.0 < self.availability < 1.0:
            raise ValueError("availability must lie in (0, 1)")
        if self.window_s <= 0:
            raise ValueError("window_s must be positive")

    @property
    def budget_fraction(self):
        """The fraction of requests allowed to be bad per window."""
        return 1.0 - self.availability


def lognormal_params(mean_ms, latency_cov):
    """``(mu, sigma)`` of a lognormal with given mean and CoV."""
    sigma2 = math.log(1.0 + latency_cov ** 2)
    return math.log(mean_ms) - sigma2 / 2.0, math.sqrt(sigma2)


class SlaLedger:
    """Streaming SLA accounting for one customer.

    Parameters
    ----------
    name:
        Customer label, used for obs metric/event labels.
    target:
        The :class:`SlaTarget` this ledger is scored against.
    obs:
        Optional :class:`repro.obs.Observability`; when set, the ledger
        feeds ``sla_latency_ms`` P2 histograms, publishes
        ``sla.breach`` events, and updates budget gauges.
    latency_cov:
        Coefficient of variation of each batch's lognormal.
    grid_size / grid_lo_ms / grid_hi_ms:
        The shared log-spaced latency bucket grid.  600 s is far above
        any modeled response time; mass beyond the top edge (none in
        practice) is clamped into the last bucket.
    p2_samples_per_batch:
        Representative equal-mass quantile draws fed to the P2
        histograms per accounted batch (0 disables the feed).  Bounded
        per batch, so the obs cost is O(segments), never O(requests).
    """

    def __init__(self, name, target=None, obs=None, latency_cov=0.35,
                 grid_size=512, grid_lo_ms=1.0, grid_hi_ms=600000.0,
                 p2_samples_per_batch=8):
        if latency_cov <= 0:
            raise ValueError("latency_cov must be positive")
        self.name = name
        self.target = target or SlaTarget()
        self.obs = obs
        self.latency_cov = latency_cov
        self._edges = np.geomspace(grid_lo_ms, grid_hi_ms, grid_size + 1)
        self._log_edges = np.log(self._edges)
        self._mass = np.zeros(grid_size)
        self.p2_samples_per_batch = p2_samples_per_batch
        if p2_samples_per_batch > 0:
            # Midpoints of equal-probability strata: deterministic
            # standard-normal draws shared by every batch.
            probs = (np.arange(p2_samples_per_batch) + 0.5) \
                / p2_samples_per_batch
            self._sample_z = ndtri(probs)
        else:
            self._sample_z = None

        # Lifetime totals.
        self.total_requests = 0.0
        self.failed_requests = 0.0
        #: Successful requests slower than the SLA threshold.
        self.slow_requests = 0.0
        self.accounted_s = 0.0
        self.down_s = 0.0
        self.degraded_s = 0.0
        #: Seconds spent in segments burning faster than the budget
        #: rate (the SRE notion of "time in violation").
        self.violation_s = 0.0

        # Current-window state (engine drives the window lifecycle).
        self.window_index = -1
        self.window_start = None
        self.window_end = None
        self.window_budget = 0.0
        self.window_requests = 0.0
        self.window_bad = 0.0
        self.window_breached = False
        #: Closed windows: dicts with start/end/requests/bad/burn/breached.
        self.windows = []
        self.breaches = 0

    # -- window lifecycle ----------------------------------------------

    def begin_window(self, start, end, expected_requests):
        """Open an SLO window with its closed-form expected volume."""
        self.window_index += 1
        self.window_start = start
        self.window_end = end
        self.window_budget = self.target.budget_fraction * expected_requests
        self.window_requests = 0.0
        self.window_bad = 0.0
        self.window_breached = False

    def roll_window(self):
        """Close the current window; returns its summary dict."""
        burn = self.window_burn
        record = {
            "index": self.window_index,
            "start": self.window_start,
            "end": self.window_end,
            "requests": self.window_requests,
            "bad": self.window_bad,
            "budget": self.window_budget,
            "burn": burn,
            "breached": self.window_breached,
        }
        self.windows.append(record)
        return record

    @property
    def window_burn(self):
        """Fraction of the current window's error budget consumed."""
        if self.window_budget <= 0:
            return 0.0 if self.window_bad <= 0 else float("inf")
        return self.window_bad / self.window_budget

    # -- accounting -----------------------------------------------------

    def account_down(self, t0, t1, requests):
        """``requests`` arrivals over ``[t0, t1)`` all failed."""
        duration = t1 - t0
        self.total_requests += requests
        self.failed_requests += requests
        self.accounted_s += duration
        self.down_s += duration
        self.violation_s += duration
        self._note_bad(requests, requests)

    def account_latency(self, t0, t1, requests, mean_ms, degraded=False):
        """``requests`` arrivals over ``[t0, t1)`` at lognormal
        latency around ``mean_ms``; counts the slow tail against the
        SLA threshold in closed form."""
        duration = t1 - t0
        self.total_requests += requests
        self.accounted_s += duration
        if degraded:
            self.degraded_s += duration
        if requests <= 0:
            return
        mu, sigma = lognormal_params(mean_ms, self.latency_cov)
        # Bucket mass: P(edge_k < X <= edge_{k+1}) via the lognormal
        # CDF at every edge, vectorized.  Mass above the top edge is
        # clamped into the last bucket (none lands there in practice).
        cdf = 0.5 * (1.0 + erf((self._log_edges - mu) / (sigma * _SQRT2)))
        cdf[0] = 0.0
        cdf[-1] = 1.0
        self._mass += requests * np.diff(cdf)
        z_sla = (math.log(self.target.latency_ms) - mu) / (sigma * _SQRT2)
        slow = requests * (1.0 - 0.5 * (1.0 + erf(z_sla)))
        self.slow_requests += slow
        if slow / requests > self.target.budget_fraction:
            self.violation_s += duration
        self._note_bad(requests, slow)
        self._feed_p2(mu, sigma)

    def _note_bad(self, requests, bad):
        """Window bookkeeping shared by the down and latency paths."""
        self.window_requests += requests
        self.window_bad += bad
        obs = self.obs
        if obs is not None:
            obs.metrics.counter(
                "traffic_requests_total", customer=self.name).inc(requests)
            if bad > 0:
                obs.metrics.counter(
                    "sla_bad_requests_total", customer=self.name).inc(bad)
            obs.metrics.gauge(
                "sla_budget_burn", customer=self.name).set(self.window_burn)
        if not self.window_breached and self.window_budget > 0 and \
                self.window_bad > self.window_budget:
            self.window_breached = True
            self.breaches += 1
            if obs is not None:
                obs.emit("sla.breach", customer=self.name,
                         window=self.window_index,
                         bad=self.window_bad, budget=self.window_budget)
                obs.metrics.counter(
                    "sla_breaches_total", customer=self.name).inc()

    def _feed_p2(self, mu, sigma):
        """Representative samples into the obs P2 latency histogram."""
        obs = self.obs
        if obs is None or self._sample_z is None:
            return
        histogram = obs.metrics.histogram("sla_latency_ms",
                                          customer=self.name)
        for z in self._sample_z:
            histogram.observe(math.exp(mu + sigma * z))

    # -- reporting ------------------------------------------------------

    def quantile(self, q):
        """Request-weighted latency quantile from the bucket grid.

        Log-linear interpolation inside the bucket; ``nan`` before any
        successful request is accounted.
        """
        if not 0.0 < q < 1.0:
            raise ValueError("quantile must lie in (0, 1)")
        total = float(self._mass.sum())
        if total <= 0:
            return float("nan")
        cumulative = np.cumsum(self._mass)
        rank = q * total
        index = int(np.searchsorted(cumulative, rank))
        index = min(index, len(self._mass) - 1)
        below = cumulative[index - 1] if index > 0 else 0.0
        bucket = cumulative[index] - below
        frac = (rank - below) / bucket if bucket > 0 else 0.5
        lo, hi = self._log_edges[index], self._log_edges[index + 1]
        return float(math.exp(lo + frac * (hi - lo)))

    @property
    def bad_requests(self):
        return self.failed_requests + self.slow_requests

    @property
    def attainment(self):
        """Lifetime fraction of good requests (1.0 when idle)."""
        if self.total_requests <= 0:
            return 1.0
        return 1.0 - self.bad_requests / self.total_requests

    @property
    def error_rate(self):
        if self.total_requests <= 0:
            return 0.0
        return self.failed_requests / self.total_requests

    def snapshot(self):
        """A plain-dict summary (picklable, JSON-able)."""
        return {
            "customer": self.name,
            "sla_latency_ms": self.target.latency_ms,
            "sla_availability": self.target.availability,
            "total_requests": self.total_requests,
            "failed_requests": self.failed_requests,
            "slow_requests": self.slow_requests,
            "error_rate": self.error_rate,
            "attainment": self.attainment,
            "p50_ms": self.quantile(0.50),
            "p95_ms": self.quantile(0.95),
            "p99_ms": self.quantile(0.99),
            "accounted_s": self.accounted_s,
            "down_s": self.down_s,
            "degraded_s": self.degraded_s,
            "violation_s": self.violation_s,
            "breaches": self.breaches,
            "windows": list(self.windows),
            "window_burn": self.window_burn,
        }
