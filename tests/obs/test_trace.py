"""Tests for span tracing."""

import pytest

from repro.obs.trace import NULL_TRACER, SpanTracer


def make_tracer():
    clock = {"now": 0.0}
    tracer = SpanTracer(clock=lambda: clock["now"])
    return tracer, clock


class TestSpans:
    def test_nested_spans_form_a_tree(self):
        tracer, clock = make_tracer()
        root = tracer.start_trace("migration", vm="nvm-1")
        clock["now"] = 1.0
        commit = tracer.start_span(root, "final-commit")
        clock["now"] = 2.0
        tracer.end(commit)
        detach = tracer.start_span(root, "ebs-detach")
        clock["now"] = 5.0
        tracer.end(detach)
        tracer.end(root)
        assert [c.name for c in root.children] == \
            ["final-commit", "ebs-detach"]
        assert root.duration_s == 5.0
        assert root.child("final-commit").duration_s == 1.0
        assert root.child("ebs-detach").duration_s == 3.0
        assert root.child("missing") is None

    def test_walk_is_depth_first(self):
        tracer, clock = make_tracer()
        root = tracer.start_trace("a")
        b = tracer.start_span(root, "b")
        tracer.start_span(b, "c")
        tracer.start_span(root, "d")
        assert [s.name for s in root.walk()] == ["a", "b", "c", "d"]

    def test_root_span_filed_on_end(self):
        tracer, clock = make_tracer()
        root = tracer.start_trace("migration")
        assert tracer.finished() == []
        tracer.end(root)
        assert tracer.finished("migration") == [root]
        assert tracer.finished("other") == []

    def test_child_spans_share_trace_id(self):
        tracer, clock = make_tracer()
        a = tracer.start_trace("t1")
        b = tracer.start_trace("t2")
        child = tracer.start_span(a, "phase")
        assert child.trace_id == a.trace_id
        assert a.trace_id != b.trace_id

    def test_double_end_rejected(self):
        tracer, clock = make_tracer()
        root = tracer.start_trace("t")
        tracer.end(root)
        with pytest.raises(ValueError):
            tracer.end(root)

    def test_backwards_span_rejected(self):
        tracer, clock = make_tracer()
        clock["now"] = 5.0
        root = tracer.start_trace("t")
        clock["now"] = 1.0
        with pytest.raises(ValueError):
            tracer.end(root)

    def test_explicit_times_without_clock(self):
        tracer = SpanTracer()
        root = tracer.start_trace("t", time=10.0)
        tracer.end(root, time=15.0)
        assert root.duration_s == 5.0
        with pytest.raises(ValueError):
            tracer.start_trace("no-clock")


class TestNullTracer:
    def test_null_tracer_is_inert(self):
        root = NULL_TRACER.start_trace("migration", vm="x")
        child = NULL_TRACER.start_span(root, "phase")
        NULL_TRACER.end(child)
        NULL_TRACER.end(root)
        assert NULL_TRACER.finished() == []
        assert root.child("phase") is None
        assert list(root.walk()) == []
