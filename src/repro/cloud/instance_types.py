"""The instance-type catalog.

On-demand prices are the US-East EC2 prices the paper quotes for 2014:
m3.medium $0.070/hr, m3.xlarge $0.280/hr (used for backup servers), and
the m1.small $0.06/hr on-demand price referenced under Figure 1.  The
remaining types fill out the 15-type catalog used for the Figure 6(d)
cross-type correlation study.
"""

from dataclasses import dataclass

from repro.cloud.errors import NotFound

#: Bytes in one GiB.
GiB = 1024 ** 3


@dataclass(frozen=True)
class InstanceType:
    """A rentable server type.

    Attributes
    ----------
    name:
        EC2-style type name, e.g. ``"m3.medium"``.
    vcpus:
        Number of virtual CPUs.
    memory_gib:
        RAM allotment in GiB.
    on_demand_price:
        Fixed price in $/hour for a non-revocable server.
    network_gbps:
        Usable network bandwidth in Gbit/s (drives migration and
        checkpoint transfer times).
    hvm:
        Whether the type supports hardware virtual machines.  The
        XenBlanket nested hypervisor — and therefore SpotCheck — can
        only use HVM-capable types.
    """

    name: str
    vcpus: int
    memory_gib: float
    on_demand_price: float
    network_gbps: float = 1.0
    hvm: bool = True

    @property
    def memory_bytes(self):
        """RAM allotment in bytes."""
        return int(self.memory_gib * GiB)

    def unit_price(self):
        """On-demand price per GiB of RAM — the arbitrage yardstick."""
        return self.on_demand_price / self.memory_gib

    def __str__(self):
        return self.name


#: The m3 family (April 2014 US-East prices) used in all experiments.
M3_FAMILY = (
    InstanceType("m3.medium", 1, 3.75, 0.070, 0.5),
    InstanceType("m3.large", 2, 7.5, 0.140, 0.7),
    InstanceType("m3.xlarge", 4, 15.0, 0.280, 1.0),
    InstanceType("m3.2xlarge", 8, 30.0, 0.560, 1.0),
)

#: Wider catalog for the Figure 6(d) 15-type correlation study.  Prices
#: are the contemporary (2014) US-East on-demand prices.
EXTENDED_FAMILIES = (
    InstanceType("m1.small", 1, 1.7, 0.060, 0.3, hvm=False),
    InstanceType("m1.medium", 1, 3.75, 0.087, 0.5, hvm=False),
    InstanceType("m1.large", 2, 7.5, 0.175, 0.7, hvm=False),
    InstanceType("c3.large", 2, 3.75, 0.105, 0.7),
    InstanceType("c3.xlarge", 4, 7.5, 0.210, 1.0),
    InstanceType("c3.2xlarge", 8, 15.0, 0.420, 1.0),
    InstanceType("c3.4xlarge", 16, 30.0, 0.840, 2.0),
    InstanceType("r3.large", 2, 15.0, 0.175, 0.7),
    InstanceType("r3.xlarge", 4, 30.5, 0.350, 1.0),
    InstanceType("r3.2xlarge", 8, 61.0, 0.700, 1.0),
    InstanceType("m2.xlarge", 2, 17.1, 0.245, 0.7, hvm=False),
)


class InstanceTypeCatalog:
    """A lookup table of instance types, keyed by name."""

    def __init__(self, types):
        self._types = {}
        for itype in types:
            if itype.name in self._types:
                raise ValueError(f"duplicate instance type {itype.name}")
            self._types[itype.name] = itype

    def get(self, name):
        """Return the :class:`InstanceType` called ``name``."""
        try:
            return self._types[name]
        except KeyError:
            raise NotFound(f"unknown instance type {name!r}") from None

    def __contains__(self, name):
        return name in self._types

    def __iter__(self):
        return iter(self._types.values())

    def __len__(self):
        return len(self._types)

    def names(self):
        """All type names, in catalog order."""
        return list(self._types)

    def hvm_types(self):
        """Types usable by the nested hypervisor (HVM-capable)."""
        return [t for t in self if t.hvm]

    def slicing_options(self, requested, max_factor=4):
        """Types a request for ``requested`` could be carved out of.

        Returns ``(type, slots)`` pairs: every catalog type whose memory
        and vCPU allotments fit an integer number ``slots`` in
        ``[1, max_factor]`` of the requested type.  This feeds the greedy
        cheapest-first placement policy, which exploits the fact that a
        large spot server is sometimes cheaper than the equivalent
        number of small ones.
        """
        options = []
        for itype in self:
            if not itype.hvm:
                continue
            slots = int(min(itype.memory_gib // requested.memory_gib,
                            itype.vcpus // requested.vcpus))
            if 1 <= slots <= max_factor:
                options.append((itype, slots))
        return options


#: Catalog holding every type above.
DEFAULT_CATALOG = InstanceTypeCatalog(M3_FAMILY + EXTENDED_FAMILIES)

#: Catalog restricted to the m3 family the paper's evaluation uses.
M3_CATALOG = InstanceTypeCatalog(M3_FAMILY)
