#!/usr/bin/env python
"""A day in the life of a SpotCheck operator.

Drives the operational surface a derivative-cloud operator relies on:
the controller's global state snapshot ("stores this information in a
database"), the consistency checker, live failure drills — killing a
backup server mid-flight — and the books at the end of the day.

Run:  python examples/operator_drill.py
"""

import json

from repro.cloud.api import CloudApi
from repro.cloud.instance_types import M3_CATALOG
from repro.cloud.zones import default_region
from repro.core import SpotCheckConfig, SpotCheckController
from repro.core.inspection import check_invariants, state_snapshot
from repro.experiments.scenario import PolicySimulation
from repro.sim import Environment
from repro.workloads import SpecJbbWorkload, TpcwWorkload

DAYS = 7
VMS = 10


def checkpoint(label, controller):
    violations = check_invariants(controller)
    status = "consistent" if not violations else f"BROKEN: {violations}"
    snapshot = state_snapshot(controller)
    hosts = sum(len(p["hosts"]) for p in snapshot["pools"])
    print(f"[{label:24s}] t={snapshot['time_s']:9.0f}s  "
          f"hosts={hosts:2d}  parked={len(snapshot['parked_vm_ids'])}  "
          f"backups={len(snapshot['backup_servers'])}  state={status}")
    assert not violations
    return snapshot


def main():
    env = Environment(seed=21)
    region = default_region(1)
    zone = region.zones[0]
    api = CloudApi(env, region, M3_CATALOG)
    archive = PolicySimulation.build_archive(21, DAYS * 24 * 3600.0)
    controller = SpotCheckController(
        env, api, SpotCheckConfig(allocation_policy="4P-ED"))
    controller.install_pools(archive, zone)

    def fleet():
        customer = controller.start_customer("prod")
        for index in range(VMS):
            workload = TpcwWorkload() if index % 2 else SpecJbbWorkload()
            yield controller.request_server(customer, workload=workload)

    env.run(until=env.process(fleet()))
    checkpoint("fleet up", controller)

    env.run(until=2 * 24 * 3600.0)
    checkpoint("after two days", controller)

    # Failure drill: kill the backup server under the whole fleet.
    victim = controller.backup_pool.servers[0]
    victims = controller.fail_backup_server(victim)
    print(f"  !! backup {victim.id} failed; {len(victims)} VMs exposed, "
          f"re-seeding on {victims[0].backup_assignment.id if victims else '-'}")
    checkpoint("right after failure", controller)

    env.run(until=3 * 24 * 3600.0)
    checkpoint("re-protected", controller)
    reprotected = sum(
        1 for vm in controller.all_vms()
        if vm.backup_assignment is not None
        and vm.id in vm.backup_assignment.store
        and vm.backup_assignment.store.image(vm.id).is_complete)
    print(f"  complete images after re-seed: {reprotected}")

    env.run(until=DAYS * 24 * 3600.0)
    controller.finalize()
    snapshot = checkpoint("end of week", controller)

    summary = controller.summary(total_vms=VMS)
    print("\nweek in review:")
    print(f"  migrations ......... {summary['migrations']} "
          f"({summary['revocation_events']} revocation events)")
    print(f"  availability ....... {100 * summary['availability']:.4f}%")
    print(f"  state lost ......... {summary['state_loss_events']}")
    print(f"  backup failures .... {snapshot['backup_failures']}")
    print(f"  cost ............... ${summary['cost_per_vm_hour']:.4f}/VM-hr")
    print("\nsample of the state database (first customer, first VM):")
    print(json.dumps(snapshot["customers"][0]["vms"][0], indent=2))


if __name__ == "__main__":
    main()
