"""Property-based tests for the fair-share link."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.kernel import Environment
from repro.virt.network import FairShareLink

flow_sizes = st.lists(
    st.floats(min_value=1.0, max_value=1e6, allow_nan=False),
    min_size=1, max_size=8)


class TestConservation:
    @given(flow_sizes)
    @settings(max_examples=60, deadline=None)
    def test_total_bytes_per_second_conserved(self, sizes):
        """All simultaneous flows finish exactly when sum(bytes)/capacity
        elapses for the *last* one — no bandwidth is lost or created."""
        env = Environment()
        link = FairShareLink(env, capacity_bps=100.0)
        flows = [link.transfer(size) for size in sizes]
        env.run()
        assert max(f.value for f in flows) == \
            pytest.approx(sum(sizes) / 100.0, rel=1e-6)

    @given(flow_sizes)
    @settings(max_examples=60, deadline=None)
    def test_smaller_flows_never_finish_later(self, sizes):
        env = Environment()
        link = FairShareLink(env, capacity_bps=50.0)
        flows = [(size, link.transfer(size)) for size in sizes]
        env.run()
        ordered = sorted(flows, key=lambda pair: pair[0])
        times = [flow.value for _size, flow in ordered]
        assert all(b >= a - 1e-9 for a, b in zip(times, times[1:]))

    @given(flow_sizes, st.floats(min_value=1.0, max_value=20.0))
    @settings(max_examples=40, deadline=None)
    def test_caps_only_slow_down(self, sizes, cap):
        env_free = Environment()
        free_link = FairShareLink(env_free, capacity_bps=100.0)
        free = [free_link.transfer(size) for size in sizes]
        env_free.run()

        env_capped = Environment()
        capped_link = FairShareLink(env_capped, capacity_bps=100.0)
        capped = [capped_link.transfer(size, rate_cap=cap)
                  for size in sizes]
        env_capped.run()

        for f, c in zip(free, capped):
            assert c.value >= f.value - 1e-9

    @given(flow_sizes)
    @settings(max_examples=40, deadline=None)
    def test_staggered_arrivals_all_complete(self, sizes):
        env = Environment()
        link = FairShareLink(env, capacity_bps=100.0)
        flows = []

        def spawner():
            for size in sizes:
                flows.append(link.transfer(size))
                yield env.timeout(size / 300.0)

        env.process(spawner())
        env.run()
        assert len(flows) == len(sizes)
        assert all(flow.triggered for flow in flows)
        assert link.active_flows == 0
