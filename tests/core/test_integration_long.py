"""Long-horizon integration runs: invariants hold through months of
market turbulence, across policies, mechanisms, and feature mixes."""

import pytest

from repro.cloud.api import CloudApi
from repro.cloud.instance_types import M3_CATALOG
from repro.cloud.zones import default_region
from repro.core.config import SpotCheckConfig
from repro.core.controller import SpotCheckController
from repro.core.inspection import check_invariants
from repro.experiments.scenario import PolicySimulation, ScenarioConfig
from repro.sim.kernel import Environment
from repro.virt.migration.bounded import BoundedMigrationConfig
from repro.workloads import SpecJbbWorkload, TpcwWorkload

DAY = 24 * 3600.0


def run_with_checks(config, days=45.0, vms=12, seed=77, checks=6):
    env = Environment(seed=seed)
    region = default_region(1)
    zone = region.zones[0]
    api = CloudApi(env, region, M3_CATALOG)
    archive = PolicySimulation.build_archive(seed, days * DAY)
    controller = SpotCheckController(env, api, config)
    controller.install_pools(archive, zone)

    def fleet():
        customer = controller.start_customer("fleet")
        for index in range(vms):
            workload = TpcwWorkload() if index % 2 else SpecJbbWorkload()
            yield controller.request_server(customer, workload=workload)

    env.run(until=env.process(fleet()))
    for step in range(1, checks + 1):
        env.run(until=days * DAY * step / checks)
        violations = check_invariants(controller)
        assert violations == [], f"at check {step}: {violations}"
    controller.finalize()
    return controller


@pytest.mark.parametrize("policy", ["1P-M", "2P-ML", "4P-ED", "4P-COST",
                                    "4P-ST"])
def test_invariants_hold_for_every_policy(policy):
    controller = run_with_checks(SpotCheckConfig(allocation_policy=policy))
    summary = controller.summary(total_vms=12)
    assert summary["state_loss_events"] == 0
    assert summary["availability"] > 0.99
    assert all(vm.is_running for vm in controller.all_vms())


@pytest.mark.parametrize("mechanism", [
    BoundedMigrationConfig.yank_baseline,
    BoundedMigrationConfig.spotcheck_full,
    BoundedMigrationConfig.unoptimized_lazy,
    BoundedMigrationConfig.spotcheck_lazy,
])
def test_invariants_hold_for_every_mechanism(mechanism):
    controller = run_with_checks(SpotCheckConfig(
        allocation_policy="4P-ED", mechanism=mechanism()))
    assert controller.ledger.state_loss_events() == []


def test_invariants_with_all_features_on():
    controller = run_with_checks(SpotCheckConfig(
        allocation_policy="4P-ED",
        bid_policy="multiple", bid_multiple=2.0,
        proactive_migration=True, predictive_migration=True,
        hot_spares=1, use_staging=True))
    assert controller.ledger.state_loss_events() == []


def test_invariants_with_knee_bids_and_failures():
    controller = run_with_checks(SpotCheckConfig(
        allocation_policy="2P-ML", bid_policy="knee"))
    assert controller.ledger.state_loss_events() == []


def test_books_balance_long_run():
    controller = run_with_checks(SpotCheckConfig(allocation_policy="4P-ED"),
                                 days=60.0, vms=16)
    summary = controller.summary(total_vms=16)
    # VM-hours ~ fleet x horizon (allocation latency shaves a little).
    assert summary["vm_hours"] == pytest.approx(16 * 60 * 24, rel=0.02)
    # Every migration accounted with non-negative disruption.
    for migration in controller.ledger.migrations:
        assert migration.downtime_s >= 0.0
        assert migration.degraded_s >= 0.0
    # Total cost = breakdown sum.
    breakdown = summary["cost_breakdown"]
    total = controller.ledger.total_cost(controller.api)
    assert total == pytest.approx(sum(breakdown.values()), rel=1e-6)
