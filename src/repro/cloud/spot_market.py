"""Per-(instance type, availability zone) spot markets.

Each market replays a price trace.  Whenever the market price rises
above a registered spot instance's bid, the platform issues a
revocation warning and forcibly terminates the instance when the
warning period (120 s on EC2) elapses — unless the instance was already
relinquished.  This is exactly the contract SpotCheck's bounded-time
migration is built against.
"""

import bisect

from repro.cloud.instances import InstanceState, Market

#: EC2's spot revocation warning, seconds ("EC2 provides a warning of
#: 120 seconds before forcibly terminating a spot server").
DEFAULT_WARNING_PERIOD = 120.0


class SpotMarket:
    """One spot market: a price trace plus the instances bidding in it."""

    def __init__(self, env, itype, zone, trace,
                 warning_period=DEFAULT_WARNING_PERIOD):
        if warning_period < 0:
            raise ValueError("warning period must be non-negative")
        self.env = env
        self.itype = itype
        self.zone = zone
        self.trace = trace
        self.warning_period = warning_period
        self._instances = []
        self._price_listeners = []
        self._revoke_callback = None
        self._times, self._prices = trace.arrays()
        if len(self._times) == 0:
            raise ValueError("price trace is empty")
        self._cursor = 0
        self._driver = env.process(self._drive())

    @property
    def key(self):
        """Market key: (type name, zone name)."""
        return (self.itype.name, self.zone.name)

    def current_price(self):
        """The spot price in effect at the current simulated time."""
        return self.price_at(self.env.now)

    def price_at(self, when):
        """The spot price in effect at time ``when``."""
        idx = bisect.bisect_right(self._times, when) - 1
        if idx < 0:
            idx = 0
        return float(self._prices[idx])

    def on_price_change(self, callback):
        """Call ``callback(market, price)`` on every price change."""
        self._price_listeners.append(callback)

    def set_revoke_callback(self, callback):
        """Install the platform hook run at each forced termination.

        ``callback(instance)`` is invoked when the warning period of a
        still-running instance elapses; the API layer uses it to tear
        down volumes and interfaces.
        """
        self._revoke_callback = callback

    def register(self, instance):
        """Enter a spot instance into the market.

        If the current price already exceeds the bid the instance is
        warned immediately (EC2 would never have started it, but the
        race between allocation latency and a price spike makes this
        reachable — the platform resolves it by immediate revocation).
        """
        if instance.market is not Market.SPOT:
            raise ValueError(f"{instance.id} is not a spot instance")
        if instance.itype is not self.itype or instance.zone != self.zone:
            raise ValueError(f"{instance.id} does not belong to {self.key}")
        self._instances.append(instance)
        if self.current_price() > instance.bid:
            self._warn(instance)

    def deregister(self, instance):
        """Remove an instance (terminated or relinquished)."""
        if instance in self._instances:
            self._instances.remove(instance)

    def instances(self):
        """Spot instances currently registered in this market."""
        return list(self._instances)

    # -- internal ------------------------------------------------------

    def _drive(self):
        """Process: step through the price trace, warning on crossings."""
        times = self._times
        while self._cursor < len(times):
            when = times[self._cursor]
            if when > self.env.now:
                yield self.env.timeout(when - self.env.now)
            price = float(self._prices[self._cursor])
            self._cursor += 1
            obs = self.env.obs
            if obs is not None:
                obs.emit("spot.price", type=self.itype.name,
                         zone=self.zone.name, price=price)
            for listener in list(self._price_listeners):
                listener(self, price)
            for instance in list(self._instances):
                if (instance.state is InstanceState.RUNNING
                        and price > instance.bid):
                    self._warn(instance)

    def _warn(self, instance):
        instance._mark_warned()
        deadline = self.env.now + self.warning_period
        obs = self.env.obs
        if obs is not None:
            obs.emit("spot.warning", type=self.itype.name,
                     zone=self.zone.name, instance=instance.id,
                     bid=instance.bid, deadline=deadline)
            obs.metrics.counter("spot_warnings_total",
                                type=self.itype.name,
                                zone=self.zone.name).inc()
        if not instance.termination_notice.triggered:
            instance.termination_notice.succeed(deadline)
        self.env.process(self._terminate_after_warning(instance))

    def _terminate_after_warning(self, instance):
        yield self.env.timeout(self.warning_period)
        if instance.state is InstanceState.MARKED_FOR_TERMINATION:
            obs = self.env.obs
            if obs is not None:
                obs.emit("spot.termination", type=self.itype.name,
                         zone=self.zone.name, instance=instance.id)
            if self._revoke_callback is not None:
                self._revoke_callback(instance)
            else:
                instance._mark_terminated()
            self.deregister(instance)


class SpotMarketplace:
    """All spot markets of the platform, keyed by (type name, zone name)."""

    def __init__(self, env, warning_period=DEFAULT_WARNING_PERIOD):
        self.env = env
        self.warning_period = warning_period
        self._markets = {}

    def add_market(self, itype, zone, trace):
        key = (itype.name, zone.name)
        if key in self._markets:
            raise ValueError(f"market {key} already exists")
        market = SpotMarket(self.env, itype, zone, trace,
                            warning_period=self.warning_period)
        self._markets[key] = market
        return market

    def market(self, itype, zone):
        """The market for ``(itype, zone)`` (names or objects accepted)."""
        type_name = itype if isinstance(itype, str) else itype.name
        zone_name = zone if isinstance(zone, str) else zone.name
        try:
            return self._markets[(type_name, zone_name)]
        except KeyError:
            raise KeyError(f"no spot market for ({type_name}, {zone_name})") \
                from None

    def __contains__(self, key):
        return key in self._markets

    def __iter__(self):
        return iter(self._markets.values())

    def __len__(self):
        return len(self._markets)

    def keys(self):
        return list(self._markets)
