"""Cost, availability, and storm accounting (Section 4.4).

The ledger records three event families during a simulation —

* nested-VM lifetimes,
* per-migration disruption (downtime and degraded seconds, with the
  cause and mechanism), and
* revocation events (how many VMs one market crossing displaced at
  once, and how they were spread over backup servers) —

and reduces them to the metrics of the paper's evaluation: average
cost per VM-hour (Figure 10), unavailability percentage (Figure 11),
performance-degradation percentage (Figure 12), and the
concurrent-revocation probabilities of Table 3.
"""

from dataclasses import dataclass, field

from repro.cloud.instances import Market


@dataclass
class MigrationRecord:
    """One nested-VM migration's disruption."""

    when: float
    vm_id: str
    cause: str  # "revocation" | "proactive" | "return-to-spot" | "rebalance"
    mechanism: str  # "live" | "bounded-full" | "bounded-lazy"
    downtime_s: float
    degraded_s: float
    source_pool: tuple
    dest_pool: tuple
    concurrent: int = 1
    state_safe: bool = True
    #: Table 1 decomposition of the downtime: phase name -> seconds.
    #: When present, the phase durations sum to ``downtime_s``.
    phases: dict = field(default_factory=dict)


@dataclass
class RevocationEvent:
    """One market crossing: the storm it caused."""

    when: float
    pool_key: tuple
    hosts_lost: int
    vms_displaced: int
    #: backup server id -> VMs it had to restore concurrently.
    backup_load: dict = field(default_factory=dict)


@dataclass
class VmLifetime:
    vm_id: str
    start: float
    end: float = None


class AccountingLedger:
    """Event log + metric reduction for one simulation run."""

    def __init__(self, env):
        self.env = env
        self.migrations = []
        self.revocations = []
        self.lifetimes = {}
        #: Extra dollar costs not metered by the cloud billing ledger
        #: (backup servers billed directly), as (label, dollars).
        self.extra_costs = []
        self._finalized_at = None

    # -- recording -------------------------------------------------------

    def vm_created(self, vm):
        self.lifetimes[vm.id] = VmLifetime(vm_id=vm.id, start=self.env.now)

    def vm_terminated(self, vm):
        record = self.lifetimes.get(vm.id)
        if record is not None and record.end is None:
            record.end = self.env.now

    def record_migration(self, **kwargs):
        self.migrations.append(MigrationRecord(when=self.env.now, **kwargs))

    def record_revocation(self, pool_key, hosts_lost, vms_displaced,
                          backup_load=None):
        self.revocations.append(RevocationEvent(
            when=self.env.now, pool_key=pool_key, hosts_lost=hosts_lost,
            vms_displaced=vms_displaced, backup_load=dict(backup_load or {})))

    def add_cost(self, label, dollars):
        self.extra_costs.append((label, float(dollars)))

    def finalize(self, when=None):
        """Close all open lifetimes at ``when`` (default: now)."""
        self._finalized_at = self.env.now if when is None else when
        for record in self.lifetimes.values():
            if record.end is None:
                record.end = self._finalized_at

    # -- reductions --------------------------------------------------------

    def total_vm_seconds(self):
        end_default = self._finalized_at if self._finalized_at is not None \
            else self.env.now
        return sum(
            (r.end if r.end is not None else end_default) - r.start
            for r in self.lifetimes.values())

    def total_downtime_s(self):
        return sum(m.downtime_s for m in self.migrations)

    def total_degraded_s(self):
        return sum(m.degraded_s for m in self.migrations)

    def unavailability(self):
        """Fraction of VM lifetime spent down (Figure 11's metric)."""
        vm_seconds = self.total_vm_seconds()
        return self.total_downtime_s() / vm_seconds if vm_seconds else 0.0

    def availability(self):
        return 1.0 - self.unavailability()

    def degradation(self):
        """Fraction of VM lifetime spent degraded (Figure 12's metric)."""
        vm_seconds = self.total_vm_seconds()
        return self.total_degraded_s() / vm_seconds if vm_seconds else 0.0

    def state_loss_events(self):
        """Migrations that lost VM state (must be empty for SpotCheck)."""
        return [m for m in self.migrations if not m.state_safe]

    def migration_count(self, cause=None):
        if cause is None:
            return len(self.migrations)
        return sum(1 for m in self.migrations if m.cause == cause)

    def phase_totals(self):
        """Aggregate seconds of downtime by Table 1 phase name."""
        totals = {}
        for migration in self.migrations:
            for phase, seconds in migration.phases.items():
                totals[phase] = totals.get(phase, 0.0) + seconds
        return totals

    # -- cost -----------------------------------------------------------

    def total_cost(self, api, include_open=True):
        """All dollars spent: native instances + extra (backup) costs."""
        total = api.billing.total_cost()
        if include_open:
            for instance in api.instances.values():
                record = api.billing.records.get(instance.id)
                if record is None or record.end is not None:
                    continue
                if instance.is_spot:
                    market = api.marketplace.market(
                        instance.itype, instance.zone)
                    total += api.billing.accrued_cost(instance, market)
                else:
                    total += api.billing.accrued_cost(instance)
        total += sum(dollars for _label, dollars in self.extra_costs)
        return total

    def cost_per_vm_hour(self, api):
        """Average cost per nested-VM hour (Figure 10's metric)."""
        vm_hours = self.total_vm_seconds() / 3600.0
        if vm_hours == 0:
            return 0.0
        return self.total_cost(api) / vm_hours

    def cost_breakdown(self, api, include_open=True):
        """Dollars by source: spot, on-demand, backup/extra.

        Open records (instances still running) accrue to "now", so the
        breakdown always sums to :meth:`total_cost`.
        """
        totals = {Market.SPOT: 0.0, Market.ON_DEMAND: 0.0}
        for instance_id, record in api.billing.records.items():
            if record.end is not None:
                totals[record.market] += record.cost
            elif include_open:
                instance = api.instances[instance_id]
                if instance.is_spot:
                    market = api.marketplace.market(
                        instance.itype, instance.zone)
                    totals[Market.SPOT] += api.billing.accrued_cost(
                        instance, market)
                else:
                    totals[Market.ON_DEMAND] += api.billing.accrued_cost(
                        instance)
        extra = sum(dollars for _label, dollars in self.extra_costs)
        return {"spot": totals[Market.SPOT],
                "on-demand": totals[Market.ON_DEMAND],
                "backup": extra}

    # -- storms (Table 3) -------------------------------------------------

    def storm_histogram(self, total_vms, buckets=(0.25, 0.5, 0.75, 1.0)):
        """Probability of concurrent revocations by size bucket.

        For each bucket fraction b, estimates the per-hour probability
        that a revocation event displaced at least ``b * total_vms``
        VMs concurrently (but less than the next bucket) — the Table 3
        quantity.  Returns ``{fraction: probability}``.
        """
        if total_vms <= 0:
            raise ValueError("total_vms must be positive")
        horizon_s = (self._finalized_at if self._finalized_at is not None
                     else self.env.now)
        hours = max(horizon_s / 3600.0, 1e-9)
        edges = sorted(buckets)
        histogram = {b: 0 for b in edges}
        for event in self.revocations:
            fraction = event.vms_displaced / total_vms
            bucket = None
            for edge in edges:
                if fraction >= edge - 1e-12:
                    bucket = edge
            if bucket is not None:
                histogram[bucket] += 1
        return {bucket: count / hours
                for bucket, count in histogram.items()}

    def max_concurrent_revocation(self):
        """Largest single-event displacement observed."""
        if not self.revocations:
            return 0
        return max(event.vms_displaced for event in self.revocations)

    def summary(self, api, total_vms=None):
        """One-dictionary report used by the benches."""
        report = {
            "vm_hours": self.total_vm_seconds() / 3600.0,
            "cost_per_vm_hour": self.cost_per_vm_hour(api),
            "availability": self.availability(),
            "unavailability_pct": 100.0 * self.unavailability(),
            "degradation_pct": 100.0 * self.degradation(),
            "migrations": len(self.migrations),
            "revocation_events": len(self.revocations),
            "state_loss_events": len(self.state_loss_events()),
            "cost_breakdown": self.cost_breakdown(api),
        }
        if total_vms:
            report["storm_histogram"] = self.storm_histogram(total_vms)
            report["max_concurrent_revocation"] = \
                self.max_concurrent_revocation()
        return report
