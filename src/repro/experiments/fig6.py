"""Figure 6: spot-price dynamics across EC2 markets.

(a) the availability CDF — spot/on-demand ratio vs fraction of time a
    bid at that ratio keeps the server;
(b) the CDF of hourly percentage price jumps (increases/decreases);
(c) near-zero price correlation across availability zones;
(d) near-zero price correlation across instance types.
"""

import numpy as np

from repro.cloud.instance_types import DEFAULT_CATALOG, M3_FAMILY
from repro.cloud.zones import Region
from repro.traces import stats
from repro.traces.calibration import market_params_for, paper_market_set
from repro.traces.generator import TraceGenerator

SIX_MONTHS_S = 183 * 24 * 3600.0


def availability_cdfs(seed=6, duration_s=SIX_MONTHS_S):
    """Fig 6a: one availability CDF per m3 type."""
    generator = TraceGenerator(seed=seed)
    curves = {}
    for itype in M3_FAMILY:
        trace = generator.generate_market(
            itype.name, "us-east-1a", market_params_for(itype),
            duration_s=duration_s)
        ratios, availability = stats.availability_cdf(trace)
        curves[itype.name] = {
            "ratios": ratios,
            "availability": availability,
            "availability_at_od": stats.availability_at_bid(
                trace, itype.on_demand_price),
            "mean_ratio": stats.mean_price(trace) / itype.on_demand_price,
        }
    return curves


def price_jumps(seed=6, duration_s=SIX_MONTHS_S, type_name="m3.large"):
    """Fig 6b: hourly percentage jump CDFs for one volatile market."""
    generator = TraceGenerator(seed=seed)
    itype = DEFAULT_CATALOG.get(type_name)
    trace = generator.generate_market(
        type_name, "us-east-1a", market_params_for(itype),
        duration_s=duration_s)
    increases, decreases = stats.price_jump_cdf(trace)
    return {
        "increases_pct": increases,
        "decreases_pct": decreases,
        "max_increase_pct": float(increases.max()) if len(increases) else 0.0,
        "orders_of_magnitude": float(
            np.log10(max(increases.max(), 1.0))) if len(increases) else 0.0,
    }


def zone_correlations(seed=6, zones=18, type_name="m3.medium",
                      duration_s=SIX_MONTHS_S / 6):
    """Fig 6c: correlation matrix of one type across many zones."""
    region = Region.with_zones("us-east-1", zones)
    itype = DEFAULT_CATALOG.get(type_name)
    params = paper_market_set([itype], region.zones)
    generator = TraceGenerator(seed=seed)
    archive = generator.generate_archive(params, duration_s=duration_s)
    keys, matrix = stats.correlation_matrix(list(archive))
    return {"keys": keys, "matrix": matrix,
            "max_offdiag": _max_offdiag(matrix)}


def type_correlations(seed=6, duration_s=SIX_MONTHS_S / 6, max_types=15):
    """Fig 6d: correlation matrix across instance types in one zone."""
    region = Region.with_zones("us-east-1", 1)
    types = list(DEFAULT_CATALOG)[:max_types]
    params = paper_market_set(types, region.zones, zone_jitter=0.0)
    generator = TraceGenerator(seed=seed)
    archive = generator.generate_archive(params, duration_s=duration_s)
    keys, matrix = stats.correlation_matrix(list(archive))
    return {"keys": keys, "matrix": matrix,
            "max_offdiag": _max_offdiag(matrix)}


def _max_offdiag(matrix):
    matrix = np.asarray(matrix)
    off = matrix - np.eye(len(matrix))
    return float(np.abs(off).max())
