#!/usr/bin/env python
"""Pool policies as portfolio management.

The paper's analogy: "allocating customer requests to server pools is
analogous to managing a financial portfolio where funds are spread
across multiple asset classes to reduce volatility and market risk."
This example runs the five Table 2 policies over the same two months of
synthetic m3 spot prices with a 40-VM fleet and prints the resulting
cost / availability / mass-revocation trade-off.

Run:  python examples/policy_portfolio.py        (~1 minute)
"""

from repro.experiments.policy_grid import run_cell, shared_archive
from repro.experiments.reporting import format_table
from repro.experiments.scenario import POLICIES

DAYS = 60.0
VMS = 40
SEED = 11


def main():
    archive = shared_archive(SEED, DAYS)
    rows = []
    for policy in POLICIES:
        summary = run_cell(policy, "spotcheck-lazy", seed=SEED, days=DAYS,
                           vms=VMS, archive=archive)
        storm = summary["storm_histogram"]
        rows.append((
            policy,
            f"${summary['cost_per_vm_hour']:.4f}",
            f"{100 * summary['availability']:.4f}%",
            f"{summary['degradation_pct']:.3f}%",
            summary["revocation_events"],
            summary["max_concurrent_revocation"],
            "yes" if storm[1.0] > 0 else "no",
        ))
        print(f"  simulated {policy} "
              f"(cost ${summary['cost_per_vm_hour']:.4f}/VM-hr)")

    print()
    print(format_table(
        ["policy", "cost/VM-hr", "availability", "degraded",
         "revocation events", "max storm", "full-fleet storms?"],
        rows,
        title=(f"Table 2 policies over {DAYS:.0f} days, {VMS} VMs "
               f"(on-demand equivalent: $0.07/hr)")))
    print(
        "\nReading it like the paper does: 1P-M is cheapest and most\n"
        "available because the m3.medium market is stable — but every\n"
        "revocation takes out the WHOLE fleet at once.  Spreading over\n"
        "uncorrelated pools (4P-*) costs a few tenths of a cent more\n"
        "and migrates more often, but mass revocations disappear.")


if __name__ == "__main__":
    main()
