"""Server pools: spot pools, the on-demand pool, and the backup pool.

SpotCheck "maintains multiple pools of servers ... for each server
type, separate spot and on-demand pools".  A pool groups the native
hosts of one (market, type, zone) and tracks the statistics the
allocation policies weigh: historical cost per nested-VM slot and
revocation/migration counts.
"""

import heapq
from collections import deque
from itertools import count

#: How many trailing price samples feed ``recent_mean_price_per_slot``
#: (the bound the per-step deque historically had).
PRICE_SAMPLE_WINDOW = 512

#: Per-host record fields inside ``ServerPool._hosts``.
_SEQ, _VMS, _OFFERED, _HOOK = range(4)


class _HostsView:
    """Live, ordered, sequence-like view over a pool's host set.

    The pool stores hosts in an insertion-ordered dict (O(1) removal);
    this view preserves the old ``pool.hosts`` list surface — iteration,
    ``len``, ``in``, indexing — without materializing a list on every
    access.  Indexing is O(n) but only test/inspection code indexes.
    """

    __slots__ = ("_records",)

    def __init__(self, records):
        self._records = records

    def __iter__(self):
        return iter(self._records)

    def __len__(self):
        return len(self._records)

    def __contains__(self, host):
        return host in self._records

    def __bool__(self):
        return bool(self._records)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return list(self._records)[index]
        n = len(self._records)
        if index < 0:
            index += n
        if not 0 <= index < n:
            raise IndexError("host index out of range")
        for i, host in enumerate(self._records):
            if i == index:
                return host
        raise IndexError("host index out of range")

    def __repr__(self):
        return repr(list(self._records))


class ServerPool:
    """Base pool: the native hosts of one (market, type, zone).

    Hot state is kept in aggregate form so fleet-scale controllers never
    scan the host list: an insertion-ordered host dict (O(1) add and
    remove), a running nested-VM total maintained by per-host
    :attr:`~repro.virt.hypervisor.NestedHypervisor.on_change` hooks
    (O(1) ``vm_count``), and a min-seq heap of placement candidates so
    ``host_with_free_slot`` is amortized O(log n) while still returning
    the *first* eligible host in insertion order, exactly as the old
    linear scan did.
    """

    market_kind = "abstract"

    def __init__(self, itype, zone, slot_itype):
        self.itype = itype
        self.zone = zone
        self.slot_itype = slot_itype
        #: host -> [seq, last_vm_count, offered, hook]
        self._hosts = {}
        self._seq = count()
        self._vm_total = 0
        #: (seq, host) placement candidates; entries go stale when a
        #: host leaves, fills up, or stops running, and are discarded
        #: lazily on lookup.  ``offered`` on the record keeps each live
        #: membership represented at most once.
        self._free_heap = []
        self.hosts = _HostsView(self._hosts)

    @property
    def key(self):
        return (self.market_kind, self.itype.name, self.zone.name)

    def add_host(self, host):
        if host in self._hosts:
            return
        record = [next(self._seq), len(host.vms), False, None]
        record[_HOOK] = lambda h=host: self._host_changed(h)
        self._hosts[host] = record
        self._vm_total += record[_VMS]
        host._pool = self
        host.hypervisor.on_change = record[_HOOK]
        state = host.instance.state.value
        if state == "pending":
            # Rare: a host registered before its instance finished
            # launching.  Offer it once the instance reaches RUNNING.
            started = host.instance.started
            if started.callbacks is not None:
                started.callbacks.append(
                    lambda _event, h=host: self._host_changed(h))
        self._offer(host, record)

    def remove_host(self, host):
        record = self._hosts.pop(host, None)
        if record is None:
            return
        self._vm_total -= record[_VMS]
        if getattr(host, "_pool", None) is self:
            host._pool = None
        if host.hypervisor.on_change is record[_HOOK]:
            host.hypervisor.on_change = None

    def _offer(self, host, record):
        """Push an eligible host into the placement heap (idempotent)."""
        if record[_OFFERED]:
            return
        if host.free_slots > 0 and host.instance.state.value == "running":
            record[_OFFERED] = True
            heapq.heappush(self._free_heap, (record[_SEQ], host))

    def _host_changed(self, host):
        """Slot-occupancy hook: refresh aggregates for one host."""
        record = self._hosts.get(host)
        if record is None:
            return
        n = len(host.vms)
        self._vm_total += n - record[_VMS]
        record[_VMS] = n
        self._offer(host, record)

    def host_with_free_slot(self):
        """A healthy host with a free nested-VM slot, or None.

        Hosts that have received a revocation warning stay in the pool
        until the platform actually terminates them (their VMs are
        still draining), but they are never offered for placement.
        Warned and terminated entries are dropped permanently (instance
        states never return to RUNNING); full hosts re-enter the heap
        via the hypervisor change hook when a slot frees.
        """
        heap = self._free_heap
        records = self._hosts
        while heap:
            seq, host = heap[0]
            record = records.get(host)
            if record is None or record[_SEQ] != seq:
                heapq.heappop(heap)  # host left the pool; entry is stale
                continue
            if host.instance.state.value != "running":
                heapq.heappop(heap)
                record[_OFFERED] = False
                continue
            if host.free_slots <= 0:
                heapq.heappop(heap)
                record[_OFFERED] = False
                continue
            return host
        return None

    def vms(self):
        """All nested VMs across the pool's hosts (materialized)."""
        return [vm for host in self._hosts for vm in host.vms]

    def iter_vms(self):
        """Iterate nested VMs without building a list."""
        for host in self._hosts:
            yield from host.vms

    @property
    def vm_count(self):
        return self._vm_total

    @property
    def host_count(self):
        return len(self._hosts)

    def __repr__(self):
        return (f"<{type(self).__name__} {self.key} hosts={self.host_count} "
                f"vms={self.vm_count}>")


class SpotPool(ServerPool):
    """A pool of spot hosts sharing one market and one bid price."""

    market_kind = "spot"

    def __init__(self, itype, zone, slot_itype, market, bid):
        super().__init__(itype, zone, slot_itype)
        self.market = market
        self.bid = bid
        #: Revocation-event history: (time, hosts_lost, vms_displaced).
        self.revocations = []
        #: Explicitly recorded (time, price) samples.  Normally empty:
        #: the window is reconstructed lazily from the market's trace
        #: arrays (see ``_market_price_window``), so the market drive
        #: does not need to wake at every point just to feed it.  A
        #: caller that records samples by hand overrides the lazy path.
        self._price_samples = deque(maxlen=PRICE_SAMPLE_WINDOW)
        #: Trace points already delivered when this pool attached —
        #: the start of its sample series, exactly as if it had been
        #: hearing per-point callbacks from that moment on.
        counter = getattr(market, "delivered_count", None)
        self._series_start = counter() if counter is not None else 0

    def record_revocation(self, when, hosts_lost, vms_displaced):
        self.revocations.append((when, hosts_lost, vms_displaced))

    def record_price(self, when, price):
        self._price_samples.append((when, price))

    @property
    def slots_per_host(self):
        """Nested-VM slots one host of this pool carries (memory-bound)."""
        return max(int(self.itype.memory_gib // self.slot_itype.memory_gib), 1)

    def price_per_slot(self):
        """Current spot price divided by nested-VM slots per host."""
        return self.market.current_price() / self.slots_per_host

    def _market_price_window(self):
        """The last <= 512 prices the step drive would have fed us.

        Reconstructed from the trace arrays via the market's delivered
        count: same values, same order, same left-to-right float sum as
        the per-step deque accumulation it replaces.
        """
        counter = getattr(self.market, "delivered_count", None)
        if counter is None:
            return []
        end = counter()
        start = max(self._series_start, end - PRICE_SAMPLE_WINDOW)
        if end <= start:
            return []
        _times, prices = self.market.trace.arrays()
        return prices[start:end].tolist()

    def _last_market_sample_time(self):
        """Timestamp of the newest lazily-delivered trace point, or None."""
        counter = getattr(self.market, "delivered_count", None)
        if counter is None:
            return None
        end = counter()
        if end <= self._series_start:
            return None
        times, _prices = self.market.trace.arrays()
        return float(times[end - 1])

    def recent_mean_price_per_slot(self):
        """Historical mean price per slot (4P-COST's weight input).

        Two sample series can exist: explicitly recorded samples (the
        predictive step-listener path) and the lazily reconstructed
        market window.  Whichever series saw a price more recently
        wins, so weights never freeze on stale manual samples after
        manual recording stops; ties prefer the manual series, which
        preserves the exact float sums of all-manual runs.
        """
        manual_t = self._price_samples[-1][0] if self._price_samples else None
        market_t = self._last_market_sample_time()
        if manual_t is not None and (market_t is None or manual_t >= market_t):
            prices = [price for _when, price in self._price_samples]
        else:
            prices = self._market_price_window()
            if not prices and self._price_samples:
                prices = [price for _when, price in self._price_samples]
        if not prices:
            return self.price_per_slot()
        return (sum(prices) / len(prices)) / self.slots_per_host

    def recent_migration_count(self, since=None):
        """Revocation events in the window (4P-ST's weight input)."""
        if since is None:
            return len(self.revocations)
        return sum(1 for when, _h, _v in self.revocations if when >= since)

    # -- portfolio cost/risk accessors ---------------------------------

    def mean_price_per_slot_between(self, start, end):
        """Exact time-weighted per-slot price over ``[start, end)``.

        Computed from the trace itself (not from delivered samples), so
        realized-cost folds are subdivision-invariant: folding a window
        in one call or in many yields the same integral.
        """
        if end <= start:
            return self.price_per_slot()
        window = self.market.trace.slice(start, end)
        return window.time_weighted_mean(horizon=end) / self.slots_per_host

    def slot_cost_between(self, start, end):
        """Dollars one nested-VM slot costs over ``[start, end)``."""
        if end <= start:
            return 0.0
        hours = (end - start) / 3600.0
        return self.mean_price_per_slot_between(start, end) * hours

    def eviction_rate(self, now=None, window_s=7 * 24 * 3600.0):
        """Revocation events per hour over the trailing window.

        The eviction-risk input of the optimal-combination scorer; with
        ``now=None`` the whole recorded history counts (rate over the
        series so far is then undefined, so the raw count over one
        window is returned).
        """
        if now is None:
            return len(self.revocations) / (window_s / 3600.0)
        since = now - window_s
        events = sum(1 for when, _h, _v in self.revocations if when >= since)
        return events / (window_s / 3600.0)


class OnDemandPool(ServerPool):
    """The non-revocable pool VMs fail over to."""

    market_kind = "on-demand"


class BackupPool:
    """The pool of backup servers, with round-robin VM assignment.

    "SpotCheck employs a simple round-robin policy to map nested VMs
    within each pool across the set of backup servers.  Once every
    backup server becomes fully utilized, SpotCheck provisions a native
    VM from the IaaS platform to serve as a new backup server."
    """

    def __init__(self, provision):
        self._provision = provision
        self.servers = []
        self._cursor = 0

    def assign(self, vm_id, stream_rate_bps, cap=None):
        """Assign a VM's checkpoint stream round-robin; grow if full.

        Returns the chosen :class:`~repro.backup.server.BackupServer`.
        """
        chosen = self._next_with_capacity(cap)
        if chosen is None:
            chosen = self._provision()
            self.servers.append(chosen)
        chosen.assign_stream(vm_id, stream_rate_bps)
        return chosen

    def _next_with_capacity(self, cap):
        if not self.servers:
            return None
        n = len(self.servers)
        for offset in range(n):
            server = self.servers[(self._cursor + offset) % n]
            if getattr(server, "failed", False):
                continue
            limit = cap if cap is not None else server.spec.max_checkpoint_vms
            if server.assigned_vms < limit:
                self._cursor = (self._cursor + offset + 1) % n
                return server
        return None

    def release(self, vm_id, server):
        server.release_stream(vm_id)

    @property
    def server_count(self):
        return len(self.servers)

    def total_assigned(self):
        return sum(server.assigned_vms for server in self.servers)


class PoolManager:
    """Registry of every pool the controller manages."""

    def __init__(self):
        self.spot_pools = {}
        self.on_demand_pools = {}

    def add_spot_pool(self, pool):
        if pool.key in self.spot_pools:
            raise ValueError(f"duplicate spot pool {pool.key}")
        self.spot_pools[pool.key] = pool

    def add_on_demand_pool(self, pool):
        if pool.key in self.on_demand_pools:
            raise ValueError(f"duplicate on-demand pool {pool.key}")
        self.on_demand_pools[pool.key] = pool

    def spot_pool(self, type_name, zone_name):
        return self.spot_pools[("spot", type_name, zone_name)]

    def on_demand_pool(self, type_name, zone_name):
        return self.on_demand_pools[("on-demand", type_name, zone_name)]

    def all_spot_pools(self):
        return list(self.spot_pools.values())

    def all_pools(self):
        return list(self.spot_pools.values()) + \
            list(self.on_demand_pools.values())

    def pool_of_host(self, host):
        """The registered pool holding ``host``, or None.

        O(1): pools stamp a ``_pool`` backref on membership changes; the
        stamp is validated against this manager's registry so hosts from
        foreign managers (or hosts that already left) return None.
        """
        pool = getattr(host, "_pool", None)
        if pool is None:
            return None
        registry = (self.spot_pools if pool.market_kind == "spot"
                    else self.on_demand_pools)
        if registry.get(pool.key) is not pool:
            return None
        return pool
