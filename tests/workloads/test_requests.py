"""Tests for the request-level SLA analyzer."""

import pytest

from repro.cloud.instance_types import M3_CATALOG
from repro.virt.vm import NestedVM, VMState
from repro.workloads import Conditions, TpcwWorkload
from repro.workloads.requests import (
    ConditionSegment,
    RequestAnalyzer,
    timeline_from_vm,
)


@pytest.fixture
def analyzer():
    return RequestAnalyzer(TpcwWorkload())


def normal_segment(start, end):
    return ConditionSegment(start, end, Conditions(checkpointing=True))


def restore_segment(start, end):
    return ConditionSegment(
        start, end, Conditions(restoring=True, restore_concurrency=1))


def down_segment(start, end):
    return ConditionSegment(start, end, Conditions(), down=True)


class TestAnalyze:
    def test_steady_state_latency(self, analyzer):
        stats = analyzer.analyze([normal_segment(0, 3600)], rate_rps=10.0)
        assert stats.total_requests == pytest.approx(36000)
        assert stats.error_rate == 0.0
        # Mean at the checkpointing-on response (~33.3 ms); the median
        # of the lognormal sits slightly below the mean.
        assert stats.mean_ms == pytest.approx(33.3, abs=0.2)
        assert stats.p50_ms < stats.mean_ms
        assert stats.p50_ms < stats.p95_ms < stats.p99_ms

    def test_downtime_becomes_errors(self, analyzer):
        stats = analyzer.analyze(
            [normal_segment(0, 990), down_segment(990, 1000)], rate_rps=5.0)
        assert stats.error_rate == pytest.approx(0.01)
        assert stats.failed_requests == pytest.approx(50.0)

    def test_restore_window_fattens_tail(self, analyzer):
        quiet = analyzer.analyze([normal_segment(0, 1000)], rate_rps=10.0)
        disturbed = analyzer.analyze(
            [normal_segment(0, 900), restore_segment(900, 1000)],
            rate_rps=10.0)
        assert disturbed.p99_ms > quiet.p99_ms
        # 10% of requests at ~60 ms: the p95 moves, the p50 barely.
        assert disturbed.p50_ms == pytest.approx(quiet.p50_ms, rel=0.10)

    def test_sla_violations_counted(self, analyzer):
        stats = analyzer.analyze(
            [normal_segment(0, 1000)], rate_rps=1.0, sla_threshold_ms=29.0)
        # Threshold below the mean: a large share violates.
        assert stats.sla_violation_rate > 0.3
        relaxed = analyzer.analyze(
            [normal_segment(0, 1000)], rate_rps=1.0, sla_threshold_ms=500.0)
        assert relaxed.sla_violation_rate < 0.01

    def test_all_down_is_nan_latency(self, analyzer):
        stats = analyzer.analyze([down_segment(0, 100)], rate_rps=1.0)
        assert stats.error_rate == 1.0

    def test_validation(self, analyzer):
        with pytest.raises(ValueError):
            analyzer.analyze([normal_segment(0, 10)], rate_rps=0.0)
        with pytest.raises(ValueError):
            RequestAnalyzer(TpcwWorkload(), latency_cov=0.0)


class TestTimeline:
    def test_vm_state_log_to_segments(self, env):
        vm = NestedVM(env, M3_CATALOG.get("m3.medium"),
                      workload=TpcwWorkload())
        vm.set_state(VMState.RUNNING)
        env._now = 100.0
        vm.set_state(VMState.SUSPENDED)
        env._now = 123.0
        vm.set_state(VMState.RESTORING)
        env._now = 180.0
        vm.set_state(VMState.RUNNING)
        segments = timeline_from_vm(vm, 0.0, 1000.0)
        kinds = [(s.down, s.conditions.restoring, round(s.duration))
                 for s in segments if s.duration > 0]
        assert (True, False, 23) in kinds     # the suspend window
        assert (False, True, 57) in kinds     # the restore window
        assert sum(s.duration for s in segments) == pytest.approx(1000.0)

    def test_analyze_vm_end_to_end(self, env):
        vm = NestedVM(env, M3_CATALOG.get("m3.medium"),
                      workload=TpcwWorkload())
        vm.set_state(VMState.RUNNING)
        env._now = 3600.0
        analyzer = RequestAnalyzer(TpcwWorkload())
        stats = analyzer.analyze_vm(vm, 0.0, 3600.0, rate_rps=20.0)
        assert stats.total_requests == pytest.approx(72000)
        assert stats.error_rate == 0.0
