"""Span tracing: every migration becomes a tree of timed phases.

A *trace* is a root :class:`Span` (e.g. one bounded-time migration)
with nested child spans — warning wait, checkpoint ramp, final commit,
EBS/VPC detach and attach, restore, demand-page tail — reproducing the
paper's Table 1 downtime decomposition *per migration* instead of only
in aggregate.

Spans are timed on the simulated clock.  The tracer is handed a clock
callable when the :class:`~repro.obs.Observability` facade is attached
to an environment; all ``start``/``end`` calls then default to
``env.now``.  :data:`NULL_TRACER` is a no-op stand-in so
instrumentation can run unconditionally without per-call ``if obs``
checks on rarely-hit paths.
"""

from itertools import count


class Span:
    """One timed phase, possibly nested under a parent span."""

    __slots__ = ("name", "trace_id", "span_id", "parent", "start", "end",
                 "attrs", "children")

    def __init__(self, name, trace_id, span_id, parent, start, attrs):
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent = parent
        self.start = start
        self.end = None
        self.attrs = attrs
        self.children = []

    @property
    def duration_s(self):
        """Span length (``None`` while the span is open)."""
        if self.end is None:
            return None
        return self.end - self.start

    @property
    def is_open(self):
        return self.end is None

    def walk(self):
        """Yield this span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def child(self, name):
        """The first direct child named ``name`` (or ``None``)."""
        for child in self.children:
            if child.name == name:
                return child
        return None

    def __repr__(self):
        dur = f"{self.duration_s:.3f}s" if self.end is not None else "open"
        return f"<Span {self.name} [{dur}] children={len(self.children)}>"


class SpanTracer:
    """Creates and finishes spans; retains completed root spans.

    Parameters
    ----------
    clock:
        Zero-argument callable returning the current (simulated) time.
        Optional — every ``start``/``end`` accepts an explicit ``time``.
    """

    def __init__(self, clock=None):
        self.clock = clock
        self.traces = []
        self._trace_ids = count(1)
        self._span_ids = count(1)

    def _now(self, time):
        if time is not None:
            return time
        if self.clock is None:
            raise ValueError("no clock attached; pass time= explicitly")
        return self.clock()

    def start_trace(self, name, time=None, **attrs):
        """Open a new root span; it is retained once ended."""
        span = Span(name, next(self._trace_ids), next(self._span_ids),
                    None, self._now(time), attrs)
        return span

    def start_span(self, parent, name, time=None, **attrs):
        """Open a child span under ``parent``."""
        span = Span(name, parent.trace_id, next(self._span_ids), parent,
                    self._now(time), attrs)
        parent.children.append(span)
        return span

    def end(self, span, time=None):
        """Close ``span``; closing a root span files its trace."""
        if span.end is not None:
            raise ValueError(f"span {span.name} already ended")
        span.end = self._now(time)
        if span.end < span.start:
            raise ValueError(
                f"span {span.name} ends before it starts "
                f"({span.end} < {span.start})")
        if span.parent is None:
            self.traces.append(span)
        return span

    def finished(self, name=None):
        """Completed traces, optionally filtered by root-span name."""
        if name is None:
            return list(self.traces)
        return [t for t in self.traces if t.name == name]


class _NullSpan:
    """Inert span handed out by :data:`NULL_TRACER`."""

    __slots__ = ()
    name = "null"
    children = ()
    attrs = {}
    start = end = None
    duration_s = None

    def child(self, name):
        return None

    def walk(self):
        return iter(())


class NullTracer:
    """A tracer that does nothing, for uninstrumented runs."""

    _SPAN = _NullSpan()

    def start_trace(self, name, time=None, **attrs):
        return self._SPAN

    def start_span(self, parent, name, time=None, **attrs):
        return self._SPAN

    def end(self, span, time=None):
        return span

    def finished(self, name=None):
        return []


#: Shared no-op tracer: ``tracer = obs.tracer if obs else NULL_TRACER``.
NULL_TRACER = NullTracer()
