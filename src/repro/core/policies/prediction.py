"""Revocation prediction (the paper's predictive-migration option).

Section 3.2: "SpotCheck may also perform proactive migrations from a
spot server if it predicts that a revocation is imminent ... e.g., by
tracking and predicting a rise in market prices of spot servers that
causes revocations.  However, such optimizations incur significant
risk of losing VM state unless they are able to predict an imminent
revocation with high confidence."

The predictor tracks each market with an exponentially weighted moving
average and fires on two signals:

* **level** — the price has climbed into the top band below the bid
  (``level_fraction * bid``), so one more step of the same size
  crosses it; and
* **momentum** — the price jumped by more than ``jump_factor`` relative
  to its EWMA, the signature of the spike onsets in Figure 6(b).

Predictions trade a planned live migration (sub-second downtime)
against false positives (needless migrations) and false negatives
(the bounded-time machinery still catches those — state is never at
risk as long as backup servers stay assigned).
"""

from dataclasses import dataclass


@dataclass
class PredictionStats:
    """Outcome counters for evaluating a predictor."""

    signals: int = 0
    #: Signals followed by an actual bid crossing within the horizon.
    true_positives: int = 0
    #: Signals with no crossing within the horizon.
    false_positives: int = 0
    #: Crossings that arrived with no preceding signal.
    missed: int = 0

    @property
    def precision(self):
        judged = self.true_positives + self.false_positives
        return self.true_positives / judged if judged else 0.0

    @property
    def recall(self):
        actual = self.true_positives + self.missed
        return self.true_positives / actual if actual else 0.0


class RevocationPredictor:
    """Online price-trend predictor for one or more spot pools.

    Parameters
    ----------
    level_fraction:
        Fraction of the bid at which the level signal fires.
    jump_factor:
        Price / EWMA ratio at which the momentum signal fires.
    ewma_alpha:
        Smoothing factor of the moving average.
    holdoff_s:
        Minimum time between signals for the same pool (a fired pool
        is presumably already drained).
    """

    def __init__(self, level_fraction=0.75, jump_factor=2.0,
                 ewma_alpha=0.05, holdoff_s=3600.0):
        if not 0 < level_fraction <= 1:
            raise ValueError("level_fraction must lie in (0, 1]")
        if jump_factor <= 1:
            raise ValueError("jump_factor must exceed 1")
        if not 0 < ewma_alpha <= 1:
            raise ValueError("ewma_alpha must lie in (0, 1]")
        self.level_fraction = level_fraction
        self.jump_factor = jump_factor
        self.ewma_alpha = ewma_alpha
        self.holdoff_s = holdoff_s
        self._ewma = {}
        self._last_signal = {}
        self.stats = PredictionStats()

    def observe(self, pool_key, when, price, bid):
        """Feed one price sample; returns True if a signal fires.

        ``pool_key`` identifies the market; ``bid`` is the pool's
        standing bid (the revocation boundary).
        """
        previous = self._ewma.get(pool_key, price)
        ewma = (1 - self.ewma_alpha) * previous + self.ewma_alpha * price
        self._ewma[pool_key] = ewma

        if price > bid:
            return False  # Already revoked; nothing to predict.

        last = self._last_signal.get(pool_key)
        if last is not None and when - last < self.holdoff_s:
            return False

        level = price >= self.level_fraction * bid
        momentum = previous > 0 and price / previous >= self.jump_factor
        if level or momentum:
            self._last_signal[pool_key] = when
            self.stats.signals += 1
            return True
        return False

    def observe_series(self, pool_key, times, prices, bid):
        """Feed a whole price series at once; returns the fired indices.

        Batch form of :meth:`observe` for offline evaluation (tuning
        ``level_fraction``/``jump_factor`` against an archived trace)
        — equivalent to calling :meth:`observe` once per point, and
        leaves the predictor in the identical state.  The EWMA is
        inherently sequential so it stays a Python fold, but the
        per-point signal gates are precomputed as vector masks.
        """
        if len(times) != len(prices):
            raise ValueError("times and prices must be equal-length")
        alpha = self.ewma_alpha
        over_bid = [price > bid for price in prices]
        level_at = [price >= self.level_fraction * bid for price in prices]
        fired = []
        ewma = self._ewma.get(pool_key)
        last = self._last_signal.get(pool_key)
        for i, price in enumerate(prices):
            previous = price if ewma is None else ewma
            ewma = (1 - alpha) * previous + alpha * price
            if over_bid[i]:
                continue
            if last is not None and times[i] - last < self.holdoff_s:
                continue
            if level_at[i] or \
                    (previous > 0 and price / previous >= self.jump_factor):
                last = times[i]
                fired.append(i)
        self._ewma[pool_key] = ewma
        if last is not None:
            self._last_signal[pool_key] = last
        self.stats.signals += len(fired)
        return fired

    def record_outcome(self, crossed_within_horizon, had_signal=True):
        """Book-keep a signal's (or a miss's) outcome for evaluation."""
        if had_signal:
            if crossed_within_horizon:
                self.stats.true_positives += 1
            else:
                self.stats.false_positives += 1
        elif crossed_within_horizon:
            self.stats.missed += 1
