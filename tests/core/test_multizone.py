"""Tests for multi-zone operation and the zone-spread policy."""

import pytest

from repro.cloud.api import CloudApi
from repro.cloud.instance_types import M3_CATALOG
from repro.cloud.instances import Market
from repro.cloud.zones import default_region
from repro.core.config import SpotCheckConfig
from repro.core.controller import SpotCheckController
from repro.sim.kernel import Environment
from repro.traces.archive import PriceTrace, TraceArchive
from repro.virt.vm import VMState
from repro.workloads import TpcwWorkload

DAY = 24 * 3600.0
SPIKE_START = 50000.0
SPIKE_END = 58000.0


def zone_trace(zone_name, spiky=False, od=0.07, duration=10 * DAY):
    if spiky:
        times = [0.0, SPIKE_START, SPIKE_END, duration]
        prices = [0.2 * od, 10 * od, 0.2 * od, 0.2 * od]
    else:
        times = [0.0, duration]
        prices = [0.2 * od, 0.2 * od]
    return PriceTrace(times, prices, "m3.medium", zone_name, od)


def build_multizone(config=None, zone_count=2, spiky_zone=0):
    env = Environment(seed=5)
    region = default_region(zone_count)
    api = CloudApi(env, region, M3_CATALOG)
    archive = TraceArchive()
    for index, zone in enumerate(region.zones):
        archive.add(zone_trace(zone.name, spiky=(index == spiky_zone)))
    controller = SpotCheckController(
        env, api, config or SpotCheckConfig(allocation_policy="Z-M"))
    controller.install_pools(archive, list(region.zones))
    return env, api, controller, region


def launch(env, controller, count):
    def flow():
        customer = controller.start_customer("multi")
        vms = []
        for _ in range(count):
            vms.append((yield controller.request_server(
                customer, workload=TpcwWorkload())))
        return vms
    return env.run(until=env.process(flow()))


class TestInstallation:
    def test_pools_per_zone(self):
        env, api, controller, region = build_multizone(zone_count=3)
        assert len(controller.pools.all_spot_pools()) == 3
        assert len(controller.pools.on_demand_pools) == 3
        assert len(controller.zones) == 3

    def test_empty_zone_list_rejected(self):
        env = Environment(seed=5)
        region = default_region(1)
        api = CloudApi(env, region, M3_CATALOG)
        controller = SpotCheckController(env, api, SpotCheckConfig())
        with pytest.raises(ValueError):
            controller.install_pools(TraceArchive(), [])


class TestZoneSpread:
    def test_vms_spread_across_zones(self):
        env, api, controller, region = build_multizone(zone_count=2)
        vms = launch(env, controller, 4)
        zones = {vm.host.zone.name for vm in vms}
        assert len(zones) == 2
        per_zone = [sum(1 for vm in vms if vm.host.zone.name == z.name)
                    for z in region.zones]
        assert per_zone == [2, 2]

    def test_zone_spike_displaces_only_that_zone(self):
        env, api, controller, region = build_multizone(
            SpotCheckConfig(allocation_policy="Z-M", return_to_spot=False),
            zone_count=2, spiky_zone=0)
        vms = launch(env, controller, 4)
        env.run(until=SPIKE_START + 600.0)
        displaced = [m for m in controller.ledger.migrations
                     if m.cause == "revocation"]
        assert len(displaced) == 2  # only zone-a VMs
        assert controller.ledger.max_concurrent_revocation() == 2

    def test_failover_stays_in_volume_zone(self):
        env, api, controller, region = build_multizone(
            SpotCheckConfig(allocation_policy="Z-M", return_to_spot=False),
            zone_count=2, spiky_zone=0)
        vms = launch(env, controller, 4)
        spiky_zone_vms = [vm for vm in vms
                          if vm.host.zone.name == region.zones[0].name]
        env.run(until=SPIKE_START + 600.0)
        for vm in spiky_zone_vms:
            assert vm.host.instance.market is Market.ON_DEMAND
            # EBS is zone-locked: the failover host shares the zone.
            assert vm.host.zone == vm.volume.zone
            assert vm.volume.attached_to is vm.host.instance

    def test_return_to_spot_goes_home_zone(self):
        env, api, controller, region = build_multizone(
            SpotCheckConfig(allocation_policy="Z-M",
                            return_holddown_s=600.0),
            zone_count=2, spiky_zone=0)
        vms = launch(env, controller, 2)
        env.run(until=SPIKE_END + 5000.0)
        for vm in vms:
            assert vm.state is VMState.RUNNING
            assert vm.host.instance.market is Market.SPOT
        zones = {vm.host.zone.name for vm in vms}
        assert len(zones) == 2  # back to one VM per zone

    def test_no_state_loss_multizone(self):
        env, api, controller, region = build_multizone(zone_count=2)
        launch(env, controller, 4)
        env.run(until=9 * DAY)
        controller.finalize()
        assert controller.ledger.state_loss_events() == []
