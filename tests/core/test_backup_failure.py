"""Tests for backup-server failure injection and re-protection."""

import pytest

from repro.core.config import SpotCheckConfig

from tests.core.test_controller import (
    SPIKE_START,
    build,
    launch_fleet,
    quiet_trace,
)


def build_quiet(config=None, count=3):
    env, api, controller = build(
        config or SpotCheckConfig(),
        traces={"m3.medium": quiet_trace("m3.medium", 0.07)})
    vms = launch_fleet(env, controller, count=count)
    return env, api, controller, vms


class TestFailureInjection:
    def test_victims_reassigned(self):
        env, api, controller, vms = build_quiet()
        failed = vms[0].backup_assignment
        assert all(vm.backup_assignment is failed for vm in vms)
        victims = controller.fail_backup_server(failed)
        assert set(victims) == set(vms)
        assert controller.backup_failures == 1
        # Re-protection starts immediately on a fresh server.
        assert all(vm.backup_assignment is not None and
                   vm.backup_assignment is not failed for vm in vms)

    def test_reseed_completes_over_time(self):
        env, api, controller, vms = build_quiet()
        controller.fail_backup_server(vms[0].backup_assignment)
        vm = vms[0]
        record = vm.backup_assignment.store.image(vm.id)
        assert not record.is_complete  # full copy still streaming
        env.run(until=env.now + 3600.0)
        assert record.is_complete

    def test_failed_server_not_reused(self):
        env, api, controller, vms = build_quiet()
        failed = vms[0].backup_assignment
        controller.fail_backup_server(failed)
        with pytest.raises(ValueError):
            failed.assign_stream("new-vm", 1e6)
        assert all(vm.backup_assignment.id != failed.id for vm in vms)

    def test_double_failure_idempotent_billing(self):
        env, api, controller, vms = build_quiet()
        server = vms[0].backup_assignment
        env.run(until=env.now + 7200.0)
        controller.fail_backup_server(server)
        failed_at = server.failed_at
        server.mark_failed()  # idempotent
        assert server.failed_at == failed_at
        env.run(until=env.now + 7200.0)
        controller.finalize()
        backup_costs = {label: cost for label, cost
                        in controller.ledger.extra_costs}
        # The failed server bills only until its failure.
        assert backup_costs[f"backup:{server.id}"] == pytest.approx(
            (failed_at - server.created_at) / 3600.0 * 0.28)


class TestRevocationDuringReseed:
    def test_exposed_vm_falls_back_to_live(self):
        # A spike hits while the re-seeded image is still incomplete:
        # the VM must ride the warning with a live migration (risk
        # recorded) instead of restoring from a half-copied image.
        env, api, controller = build(SpotCheckConfig(return_to_spot=False))
        vms = launch_fleet(env, controller, count=1)
        vm = vms[0]
        env.run(until=SPIKE_START - 100.0)
        controller.fail_backup_server(vm.backup_assignment)
        env.run(until=SPIKE_START + 600.0)
        [migration] = [m for m in controller.ledger.migrations
                       if m.cause == "revocation"]
        assert migration.mechanism == "live"
        assert vm.state.value == "running"

    def test_completed_reseed_uses_bounded_path(self):
        env, api, controller = build(SpotCheckConfig(return_to_spot=False))
        vms = launch_fleet(env, controller, count=1)
        vm = vms[0]
        # Fail early: the re-seed has tens of ks to finish pre-spike.
        env.run(until=5000.0)
        controller.fail_backup_server(vm.backup_assignment)
        env.run(until=SPIKE_START + 600.0)
        [migration] = [m for m in controller.ledger.migrations
                       if m.cause == "revocation"]
        assert migration.mechanism == "bounded-lazy"
        assert migration.state_safe
