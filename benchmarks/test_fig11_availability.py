"""Figure 11: nested-VM unavailability under the Table 2 policies.

Paper shapes: live migration has the lowest unavailability but risks
state loss; unavailability stays below 0.25% for every policy even
with full restoration; lazy restore brings SpotCheck close to live
migration; the stable single-pool policy 1P-M reaches 99.999%-class
availability (paper: 99.9989%).
"""

from repro.experiments.policy_grid import figure11_rows, run_grid
from repro.experiments.reporting import format_table
from repro.experiments.scenario import MECHANISMS, POLICIES


def test_fig11_unavailability(benchmark, report, bench_days, bench_vms):
    results = benchmark.pedantic(
        lambda: run_grid(seed=11, days=bench_days, vms=bench_vms),
        rounds=1, iterations=1)
    mechanisms, rows = figure11_rows(results)

    unavail = {(p, m): results[(p, m)]["unavailability_pct"]
               for p in POLICIES for m in MECHANISMS}

    for policy in POLICIES:
        # Small even without lazy restoration.  (The paper reports
        # <0.25% here; our restore model charges storm-concurrency-
        # scaled read times where the paper seeded a constant 23 s per
        # migration, so the full-restore bars run slightly higher.)
        assert unavail[(policy, "spotcheck-full")] < 0.60
        assert unavail[(policy, "unoptimized-full")] < 1.20
        # Optimizations increase availability.
        assert unavail[(policy, "spotcheck-full")] <= \
            unavail[(policy, "unoptimized-full")] + 1e-9
        # Lazy restore close to live migration (well under full).
        assert unavail[(policy, "spotcheck-lazy")] < \
            0.5 * unavail[(policy, "spotcheck-full")] + 1e-6

    # The headline: 1P-M availability ~ five nines (paper 99.9989%).
    one_pool = results[("1P-M", "spotcheck-lazy")]
    assert one_pool["availability"] > 0.99995
    # And no mechanism ever loses VM state except possibly live-only.
    for policy in POLICIES:
        for mechanism in MECHANISMS:
            if mechanism != "xen-live":
                assert results[(policy, mechanism)]["state_loss_events"] == 0

    table_rows = [
        [row["policy"]] + [f"{row[m]:.4f}%" for m in mechanisms]
        for row in rows]
    availability = f"{100 * one_pool['availability']:.4f}%"
    text = format_table(
        ["policy"] + list(mechanisms), table_rows,
        title=(f"Figure 11 — unavailability (%) over {bench_days:.0f} "
               f"days; 1P-M SpotCheck availability {availability} "
               f"(paper 99.9989%)"))
    report("fig11_availability", text)
