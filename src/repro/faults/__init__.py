"""``repro.faults`` — control-plane fault injection and retry policy.

Three parts:

``repro.faults.plan``
    :class:`FaultPlan` and its episode types — a declarative, JSON
    round-trippable description of what a chaos run injects: API error
    rates, throttling windows, latency tails, capacity episodes, stuck
    detaches, scheduled backup-server crashes.

``repro.faults.injector``
    :class:`FaultInjector` — executes a plan against the simulated
    control plane from its own named RNG stream, so fault sequences
    are trace-deterministic and a disabled plan draws nothing.

``repro.faults.retry``
    :class:`RetryPolicy` and :func:`retry_call` — budgeted exponential
    backoff with full jitter and deadline awareness, the single retry
    loop every control-plane caller threads through.

See ``docs/robustness.md`` for the fault model, the retry semantics,
and the chaos-scenario walkthrough.
"""

from repro.faults.injector import INJECTOR_STREAM, FaultInjector
from repro.faults.plan import (
    BackupCrash,
    CapacityEpisode,
    FaultPlan,
    LatencyTail,
    ThrottleWindow,
)
from repro.faults.retry import (
    BACKOFF_STREAM,
    RetryExhausted,
    RetryPolicy,
    retry_call,
)

__all__ = [
    "BACKOFF_STREAM",
    "BackupCrash",
    "CapacityEpisode",
    "FaultInjector",
    "FaultPlan",
    "INJECTOR_STREAM",
    "LatencyTail",
    "RetryExhausted",
    "RetryPolicy",
    "ThrottleWindow",
    "retry_call",
]
