"""SLA ledgers: bucket-grid quantiles, budgets, breach events."""

import math

import pytest

from repro.obs import Observability
from repro.traffic import SlaLedger, SlaTarget, lognormal_params


class TestTarget:
    def test_budget_fraction(self):
        assert SlaTarget(availability=0.999).budget_fraction == \
            pytest.approx(0.001)

    def test_validation(self):
        with pytest.raises(ValueError):
            SlaTarget(latency_ms=0.0)
        with pytest.raises(ValueError):
            SlaTarget(availability=1.0)
        with pytest.raises(ValueError):
            SlaTarget(window_s=-1.0)


class TestLognormalParams:
    def test_mean_preserved(self):
        mu, sigma = lognormal_params(29.0, 0.35)
        assert math.exp(mu + sigma ** 2 / 2.0) == pytest.approx(29.0)

    def test_cov_preserved(self):
        mu, sigma = lognormal_params(29.0, 0.35)
        assert math.sqrt(math.exp(sigma ** 2) - 1.0) == \
            pytest.approx(0.35)


class TestLatencyAccounting:
    def test_quantiles_match_closed_form(self):
        ledger = SlaLedger("c", latency_cov=0.35)
        ledger.account_latency(0.0, 100.0, 1e6, mean_ms=29.0)
        mu, sigma = lognormal_params(29.0, 0.35)
        from scipy.special import ndtri
        for q in (0.5, 0.95, 0.99):
            want = math.exp(mu + sigma * ndtri(q))
            assert ledger.quantile(q) == pytest.approx(want, rel=0.01)

    def test_batch_size_does_not_change_quantiles(self):
        small = SlaLedger("a")
        big = SlaLedger("b")
        small.account_latency(0.0, 1.0, 10.0, mean_ms=40.0)
        big.account_latency(0.0, 1.0, 1e9, mean_ms=40.0)
        assert small.quantile(0.95) == pytest.approx(big.quantile(0.95))

    def test_slow_tail_counted_in_closed_form(self):
        target = SlaTarget(latency_ms=29.0, availability=0.999)
        ledger = SlaLedger("c", target, latency_cov=0.35)
        ledger.account_latency(0.0, 10.0, 1000.0, mean_ms=29.0)
        # Threshold at the mean of a lognormal: a bit under half of
        # the requests land above it (median < mean).
        assert 300.0 < ledger.slow_requests < 500.0
        assert ledger.violation_s == 10.0
        assert ledger.attainment == pytest.approx(
            1.0 - ledger.slow_requests / 1000.0)

    def test_fast_traffic_no_violation(self):
        target = SlaTarget(latency_ms=500.0, availability=0.99)
        ledger = SlaLedger("c", target)
        ledger.account_latency(0.0, 10.0, 1000.0, mean_ms=29.0)
        assert ledger.slow_requests / 1000.0 < 0.01
        assert ledger.violation_s == 0.0

    def test_degraded_time_tracked(self):
        ledger = SlaLedger("c")
        ledger.account_latency(0.0, 10.0, 100.0, mean_ms=29.0)
        ledger.account_latency(10.0, 15.0, 50.0, mean_ms=60.0,
                               degraded=True)
        assert ledger.accounted_s == 15.0
        assert ledger.degraded_s == 5.0

    def test_empty_quantile_is_nan(self):
        assert math.isnan(SlaLedger("c").quantile(0.5))
        with pytest.raises(ValueError):
            SlaLedger("c").quantile(1.5)


class TestDownAccounting:
    def test_down_requests_all_fail(self):
        ledger = SlaLedger("c")
        ledger.account_down(0.0, 30.0, 600.0)
        assert ledger.failed_requests == 600.0
        assert ledger.error_rate == 1.0
        assert ledger.down_s == 30.0
        assert ledger.violation_s == 30.0
        assert ledger.attainment == 0.0

    def test_idle_ledger_is_perfect(self):
        ledger = SlaLedger("c")
        assert ledger.attainment == 1.0
        assert ledger.error_rate == 0.0


class TestWindows:
    def test_budget_from_expected_volume(self):
        target = SlaTarget(availability=0.99, window_s=100.0)
        ledger = SlaLedger("c", target)
        ledger.begin_window(0.0, 100.0, expected_requests=5000.0)
        assert ledger.window_budget == pytest.approx(50.0)
        assert ledger.window_burn == 0.0

    def test_burn_and_breach_once(self):
        from repro.sim.kernel import Environment
        obs = Observability()
        Environment(seed=1, obs=obs)
        breaches = []
        obs.bus.subscribe("sla.breach", breaches.append)
        target = SlaTarget(availability=0.99, window_s=100.0)
        ledger = SlaLedger("c", target, obs=obs)
        ledger.begin_window(0.0, 100.0, expected_requests=1000.0)
        ledger.account_down(0.0, 1.0, 5.0)   # half the budget
        assert ledger.window_burn == pytest.approx(0.5)
        assert not ledger.window_breached
        ledger.account_down(1.0, 2.0, 6.0)   # crosses it
        assert ledger.window_breached
        assert ledger.breaches == 1
        ledger.account_down(2.0, 3.0, 100.0)  # no double-count
        assert ledger.breaches == 1
        assert len(breaches) == 1
        assert breaches[0].fields["customer"] == "c"

    def test_roll_resets_window_state(self):
        target = SlaTarget(availability=0.99, window_s=100.0)
        ledger = SlaLedger("c", target)
        ledger.begin_window(0.0, 100.0, expected_requests=1000.0)
        ledger.account_down(0.0, 5.0, 500.0)
        record = ledger.roll_window()
        assert record["breached"]
        assert record["burn"] == pytest.approx(50.0)
        ledger.begin_window(100.0, 200.0, expected_requests=1000.0)
        assert ledger.window_bad == 0.0
        assert not ledger.window_breached
        assert len(ledger.windows) == 1

    def test_zero_budget_burn(self):
        ledger = SlaLedger("c")
        assert ledger.window_burn == 0.0
        ledger.window_bad = 1.0
        assert ledger.window_burn == float("inf")


class TestObsIntegration:
    def test_p2_histogram_fed(self):
        obs = Observability()
        ledger = SlaLedger("web", obs=obs)
        for i in range(50):
            ledger.account_latency(i, i + 1.0, 1e6, mean_ms=29.0)
        series = list(obs.metrics.find("sla_latency_ms"))
        assert len(series) == 1
        histogram = series[0]
        # Bounded feed: 8 representative samples per batch, never 1e6.
        assert histogram.count == 50 * 8
        assert histogram.quantile(0.5) == pytest.approx(
            ledger.quantile(0.5), rel=0.15)

    def test_counters_accumulate(self):
        obs = Observability()
        ledger = SlaLedger("web", obs=obs)
        ledger.account_latency(0.0, 1.0, 100.0, mean_ms=29.0)
        ledger.account_down(1.0, 2.0, 10.0)
        total = list(obs.metrics.find("traffic_requests_total"))[0]
        assert total.value == pytest.approx(110.0)
        bad = list(obs.metrics.find("sla_bad_requests_total"))[0]
        assert bad.value >= 10.0

    def test_snapshot_is_plain(self):
        import json
        ledger = SlaLedger("web")
        ledger.begin_window(0.0, 10.0, 100.0)
        ledger.account_latency(0.0, 10.0, 100.0, mean_ms=29.0)
        ledger.roll_window()
        snapshot = ledger.snapshot()
        assert json.dumps(snapshot)  # JSON-able
        assert snapshot["total_requests"] == 100.0
        assert snapshot["customer"] == "web"
        assert len(snapshot["windows"]) == 1
