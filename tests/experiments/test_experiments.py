"""Tests for the experiment harness (small, fast configurations).

The full-scale runs live in ``benchmarks/``; these tests check the
harness machinery and the qualitative shapes on reduced spans.
"""

import pytest

from repro.experiments import fig1, fig6, fig7, fig8, fig9, table1
from repro.experiments.reporting import format_series, format_table
from repro.experiments.scenario import (
    MECHANISMS,
    POLICIES,
    PolicySimulation,
    ScenarioConfig,
    mechanism_config,
)

DAY = 24 * 3600.0


class TestFig1:
    def test_contains_spike(self):
        result = fig1.run(seed=1, days=20)
        assert result["peak_multiple"] > 5.0
        assert result["on_demand_price"] == 0.06
        assert len(result["prices"]) == len(result["times_h"])


class TestTable1:
    def test_rows_cover_all_operations(self):
        result = table1.run()
        assert len(result["rows"]) == 7
        for row in result["rows"]:
            assert row["min"] >= row["paper"].min - 1e-9
            assert row["max"] <= row["paper"].max + 1e-9

    def test_stats_near_paper(self):
        result = table1.run(samples=200)
        for row in result["rows"]:
            assert row["mean"] == pytest.approx(row["paper"].mean, rel=0.25)


class TestFig6:
    def test_availability_curves_monotone(self):
        curves = fig6.availability_cdfs(duration_s=20 * DAY)
        for name, curve in curves.items():
            availability = curve["availability"]
            assert (availability[1:] >= availability[:-1] - 1e-12).all()

    def test_jumps_long_tail(self):
        jumps = fig6.price_jumps(duration_s=30 * DAY)
        assert jumps["max_increase_pct"] > 500.0

    def test_zone_correlation_near_zero(self):
        result = fig6.zone_correlations(zones=4, duration_s=15 * DAY)
        assert result["max_offdiag"] < 0.3

    def test_type_correlation_near_zero(self):
        result = fig6.type_correlations(duration_s=15 * DAY, max_types=5)
        assert result["max_offdiag"] < 0.3


class TestFig7:
    def test_knee_between_25_and_45(self):
        result = fig7.run()
        knee = fig7.knee_vms(result, "specjbb")
        assert knee is not None and 25 <= knee <= 45

    def test_tpcw_checkpointing_overhead_at_one_vm(self):
        result = fig7.run(vm_counts=(0, 1))
        baseline, one = result["rows"]
        assert one["tpcw"] == pytest.approx(baseline["tpcw"] * 1.15,
                                            rel=0.01)
        assert one["specjbb"] == pytest.approx(baseline["specjbb"])


class TestFig8:
    def test_optimized_beats_unoptimized_everywhere(self):
        result = fig8.run(use_des=False)
        for n in (1, 5, 10):
            for kind in ("full", "lazy"):
                assert fig8.pick(result, n, kind, True) < \
                    fig8.pick(result, n, kind, False)

    def test_unoptimized_lazy_blows_up_at_10(self):
        result = fig8.run(use_des=False)
        assert fig8.pick(result, 10, "lazy", False) > \
            2.5 * fig8.pick(result, 10, "full", False)

    def test_des_matches_analytic(self):
        result = fig8.run(concurrency=(1, 5), use_des=True)
        for row in result["rows"]:
            assert row["des_s"] == pytest.approx(row["analytic_s"], rel=0.05)


class TestFig9:
    def test_shape(self):
        result = fig9.run()
        response = {row["concurrent"]: row["response_ms"]
                    for row in result["rows"]}
        assert response[0] == 29.0
        assert 55.0 <= response[1] <= 65.0
        assert response[10] < response[1] * 1.1


class TestScenario:
    def test_mechanism_names_resolve(self):
        for name in MECHANISMS + ("unoptimized-lazy",):
            mech, live_only = mechanism_config(name)
            assert mech is not None
            assert isinstance(live_only, bool)
        with pytest.raises(ValueError):
            mechanism_config("quantum-tunnel")

    def test_policy_list_matches_table2(self):
        assert POLICIES == ("1P-M", "2P-ML", "4P-ED", "4P-COST", "4P-ST")

    def test_small_run_summary(self):
        config = ScenarioConfig(policy="1P-M", days=5.0, vms=4, seed=3)
        summary = PolicySimulation(config).run()
        assert summary["policy"] == "1P-M"
        assert summary["state_loss_events"] == 0
        assert summary["vm_hours"] == pytest.approx(4 * 5 * 24, rel=0.02)

    def test_variant_overrides(self):
        sim = PolicySimulation(ScenarioConfig(days=2.0, vms=2))
        variant = sim.variant(policy="4P-ED")
        assert variant.config.policy == "4P-ED"
        assert variant.config.days == 2.0

    def test_shared_archive_identical_prices(self):
        archive = PolicySimulation.build_archive(7, 3 * DAY)
        a = PolicySimulation(
            ScenarioConfig(days=3.0, vms=2, seed=7), archive=archive).run()
        b = PolicySimulation(
            ScenarioConfig(days=3.0, vms=2, seed=7), archive=archive).run()
        assert a["cost_per_vm_hour"] == pytest.approx(b["cost_per_vm_hour"])


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [(1, 2.5), ("x", 0.0001)],
                            title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_format_series(self):
        text = format_series([1.0, 2.0], [10.0, 20.0], "x", "y")
        assert "10" in text and "20" in text
