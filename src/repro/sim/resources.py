"""Shared-resource primitives: counted resources, continuous containers,
and the multi-path processor-sharing bandwidth resource."""

from collections import deque

from repro.sim.events import Event


def fair_share_rates(demands, capacity):
    """Max-min fair (water-filling) allocation of one capacity.

    ``demands`` are the per-flow requested rates; the returned grants
    never exceed them, sum to at most ``capacity``, and are max-min
    fair: no grant can be raised without lowering a smaller one.
    """
    grants = [0.0] * len(demands)
    remaining = float(capacity)
    unfixed = list(range(len(demands)))
    while unfixed:
        level = remaining / len(unfixed)
        capped = [i for i in unfixed if demands[i] <= level]
        if not capped:
            for i in unfixed:
                grants[i] = level
            break
        for i in capped:
            grants[i] = float(demands[i])
            remaining -= grants[i]
            unfixed.remove(i)
    return grants


class _FairFlow:
    """One in-flight transfer on a :class:`FairShareResource`."""

    __slots__ = ("remaining", "size_bytes", "paths", "rate_cap", "kind",
                 "rate", "done", "started_at", "done_epsilon")

    def __init__(self, env, size_bytes, paths, rate_cap, kind):
        self.remaining = float(size_bytes)
        self.size_bytes = float(size_bytes)
        self.paths = paths
        self.rate_cap = rate_cap
        self.kind = kind
        self.rate = 0.0
        self.done = env.event()
        self.started_at = env.now
        # Progress arithmetic leaves float residues proportional to the
        # transfer size; treating them as unfinished would re-plan a
        # completion below the clock's resolution.
        self.done_epsilon = max(1e-6, 1e-12 * self.size_bytes)


class FairShareResource:
    """A processor-sharing bandwidth resource with multiple coupled paths.

    Models a device whose flows traverse one or more internal
    bottlenecks — e.g. a backup server whose restore reads cross both
    the disk read path and the NIC, while checkpoint commits cross the
    disk write path and the same NIC.  Each flow declares the paths it
    occupies; rates are the multi-path max-min fair (progressive
    filling) allocation, recomputed at every arrival and departure from
    the flows' *remaining* bytes, so early finishers release their
    bandwidth to the survivors mid-transfer.

    Parameters
    ----------
    env:
        Simulation environment.
    capacities:
        Mapping of path name to capacity in bytes/s.  A capacity may be
        a callable taking the list of flows currently on that path and
        returning the aggregate bytes/s — this expresses regimes whose
        throughput depends on the traffic mix (e.g. random demand-paged
        reads collapsing under concurrency).
    on_rebalance:
        Optional callback invoked with the resource after every rate
        recomputation (metrics/invariant hooks).

    Invariant: between events every flow's rate is constant and, on
    every path, the active flows' rates sum to at most the path's
    capacity (up to float rounding).
    """

    def __init__(self, env, capacities, on_rebalance=None):
        if not capacities:
            raise ValueError("need at least one path")
        for path, capacity in capacities.items():
            if not callable(capacity) and capacity <= 0:
                raise ValueError(f"capacity of path {path!r} must be positive")
        self.env = env
        self.capacities = dict(capacities)
        self.on_rebalance = on_rebalance
        self.flows = []
        #: Number of rate recomputations performed so far.
        self.rebalances = 0
        self._last_update = env.now
        self._wakeup = None

    # -- public API -------------------------------------------------------

    def transfer(self, size_bytes, paths=None, rate_cap=None, kind=None):
        """Start a transfer; returns an event firing on completion.

        ``paths`` selects the subset of configured paths the flow
        occupies (default: all of them); ``rate_cap`` bounds the flow's
        rate (the per-VM ``tc`` throttle); ``kind`` is an opaque tag
        capacity callables and metrics may inspect.  The completion
        event's value is the transfer's elapsed time.
        """
        if size_bytes <= 0:
            raise ValueError("size must be positive")
        if rate_cap is not None and rate_cap <= 0:
            raise ValueError("rate cap must be positive")
        if paths is None:
            paths = tuple(self.capacities)
        else:
            paths = tuple(paths)
            if not paths:
                raise ValueError("flow must occupy at least one path")
            unknown = [p for p in paths if p not in self.capacities]
            if unknown:
                raise ValueError(f"unknown paths {unknown!r}")
        self._advance()
        flow = _FairFlow(self.env, size_bytes, paths, rate_cap, kind)
        self.flows.append(flow)
        self._rebalance()
        return flow.done

    def flow_count(self, kind=None):
        """Active flows, optionally only those with the given kind tag."""
        if kind is None:
            return len(self.flows)
        return sum(1 for flow in self.flows if flow.kind == kind)

    def snapshot(self):
        """Per-path ``{"capacity", "rate_sum", "flows"}`` right now."""
        stats = {}
        for path in self.capacities:
            members = [f for f in self.flows if path in f.paths]
            stats[path] = {
                "capacity": self._capacity(path, members),
                "rate_sum": sum(f.rate for f in members),
                "flows": len(members),
            }
        return stats

    def utilization(self, path):
        """Allocated fraction of one path's current capacity."""
        members = [f for f in self.flows if path in f.paths]
        capacity = self._capacity(path, members)
        if capacity <= 0:
            return 0.0
        return sum(f.rate for f in members) / capacity

    # -- internals --------------------------------------------------------

    def _capacity(self, path, members):
        capacity = self.capacities[path]
        if callable(capacity):
            capacity = capacity(members)
        return float(capacity)

    def _advance(self):
        """Credit progress since the last event; complete finished flows."""
        elapsed = self.env.now - self._last_update
        self._last_update = self.env.now
        if not self.flows:
            return
        if elapsed > 0:
            for flow in self.flows:
                flow.remaining -= flow.rate * elapsed
        finished = [flow for flow in self.flows
                    if flow.remaining <= flow.done_epsilon]
        for flow in finished:
            self.flows.remove(flow)
            flow.done.succeed(self.env.now - flow.started_at)

    def _rebalance(self):
        """Recompute every flow's rate and re-plan the next completion."""
        rates = self._compute_rates(self.flows)
        for flow, rate in zip(self.flows, rates):
            flow.rate = rate
        self.rebalances += 1
        if self.on_rebalance is not None:
            self.on_rebalance(self)
        self._replan()

    def _compute_rates(self, flows):
        """Multi-path max-min fair allocation (progressive filling).

        Repeatedly: compute each path's equal-share water level over
        its still-unfixed flows; freeze flows whose rate cap sits below
        their attainable level at the cap, otherwise freeze the most
        constrained path's flows at its level, charging every path they
        cross.  Each round fixes at least one flow, and a fixed flow's
        rate never exceeds any of its paths' remaining capacity.
        """
        if not flows:
            return []
        members = {}
        remaining = {}
        for path in self.capacities:
            on_path = [f for f in flows if path in f.paths]
            if on_path:
                members[path] = on_path
                remaining[path] = max(self._capacity(path, on_path), 0.0)
        rates = {}
        unfixed = set(flows)
        while unfixed:
            levels = {}
            for path, on_path in members.items():
                open_count = sum(1 for f in on_path if f in unfixed)
                if open_count:
                    levels[path] = max(remaining[path], 0.0) / open_count

            def attainable(flow):
                return min(levels[p] for p in flow.paths if p in levels)

            capped = [f for f in unfixed
                      if f.rate_cap is not None
                      and f.rate_cap < attainable(f)]
            if capped:
                for flow in capped:
                    rates[flow] = flow.rate_cap
                    for path in flow.paths:
                        remaining[path] -= flow.rate_cap
                    unfixed.discard(flow)
                continue
            bottleneck = min(levels, key=levels.get)
            level = levels[bottleneck]
            for flow in members[bottleneck]:
                if flow not in unfixed:
                    continue
                rates[flow] = level
                for path in flow.paths:
                    remaining[path] -= level
                unfixed.discard(flow)
        return [rates.get(flow, 0.0) for flow in flows]

    def _replan(self):
        """Schedule a wakeup at the earliest flow-completion time."""
        if self._wakeup is not None and self._wakeup.is_alive:
            self._wakeup.interrupt()
            self._wakeup = None
        times = [flow.remaining / flow.rate
                 for flow in self.flows if flow.rate > 0]
        if not times:
            # Either idle, or every flow is rate-starved (a zero-capacity
            # regime); starved flows wait for the next arrival/departure.
            return
        # Never plan a wakeup below the clock's float resolution.
        next_done = max(min(times), 1e-9 * max(self.env.now, 1.0))
        self._wakeup = self.env.process(self._sleep_then_settle(next_done))

    def _sleep_then_settle(self, delay):
        from repro.sim.errors import Interrupt
        try:
            yield self.env.timeout(delay)
        except Interrupt:
            return
        self._advance()
        self._rebalance()


class _Request(Event):
    """Pending acquisition of one resource slot."""

    __slots__ = ("resource",)

    def __init__(self, resource):
        super().__init__(resource.env)
        self.resource = resource

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc_value, traceback):
        self.resource.release(self)
        return False


class Resource:
    """A resource with ``capacity`` identical slots and a FIFO queue.

    Processes ``yield resource.request()`` to acquire a slot and call
    ``resource.release(request)`` (or use the request as a context
    manager) to return it.
    """

    def __init__(self, env, capacity=1):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.users = []
        self.queue = deque()

    @property
    def count(self):
        """Number of slots currently held."""
        return len(self.users)

    def request(self):
        """Return an event that triggers once a slot is granted."""
        req = _Request(self)
        if len(self.users) < self.capacity:
            self.users.append(req)
            req.succeed()
        else:
            self.queue.append(req)
        return req

    def release(self, request):
        """Return a previously granted slot and wake the next waiter."""
        if request in self.users:
            self.users.remove(request)
        elif request in self.queue:
            self.queue.remove(request)
            return
        while self.queue and len(self.users) < self.capacity:
            nxt = self.queue.popleft()
            self.users.append(nxt)
            nxt.succeed()


class Container:
    """A continuous quantity (e.g. bytes of disk) with put/get semantics."""

    def __init__(self, env, capacity=float("inf"), init=0.0):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if not 0 <= init <= capacity:
            raise ValueError(f"init {init} outside [0, {capacity}]")
        self.env = env
        self.capacity = capacity
        self._level = float(init)
        self._getters = deque()
        self._putters = deque()

    @property
    def level(self):
        """Current stored amount."""
        return self._level

    def put(self, amount):
        """Event that triggers once ``amount`` fits into the container."""
        if amount <= 0:
            raise ValueError(f"amount must be positive, got {amount}")
        event = Event(self.env)
        self._putters.append((event, amount))
        self._settle()
        return event

    def get(self, amount):
        """Event that triggers once ``amount`` can be drawn."""
        if amount <= 0:
            raise ValueError(f"amount must be positive, got {amount}")
        event = Event(self.env)
        self._getters.append((event, amount))
        self._settle()
        return event

    def _settle(self):
        progress = True
        while progress:
            progress = False
            if self._putters:
                event, amount = self._putters[0]
                if self._level + amount <= self.capacity:
                    self._putters.popleft()
                    self._level += amount
                    event.succeed()
                    progress = True
            if self._getters:
                event, amount = self._getters[0]
                if self._level >= amount:
                    self._getters.popleft()
                    self._level -= amount
                    event.succeed()
                    progress = True
