"""Exception types raised by the cloud substrate."""


class CloudError(Exception):
    """Base class for errors raised by the native cloud."""


class NotFound(CloudError):
    """A referenced resource (instance, volume, interface) does not exist."""


class InvalidOperation(CloudError):
    """The operation is not valid in the resource's current state."""


class CapacityError(CloudError):
    """The platform has no capacity to satisfy the request.

    The paper notes that native platforms "occasionally run out of
    on-demand servers if the demand for them exceeds their supply";
    SpotCheck's hot-spare and staging-server policies exist to absorb
    exactly this failure.
    """


class InsufficientInstanceCapacity(CapacityError):
    """EC2-style typed capacity failure during a capacity episode.

    Raised by fault injection when a per-(type, zone) capacity episode
    is active; subclasses :class:`CapacityError` so every existing
    degradation path (hot spares, staging slots, on-demand fallback)
    absorbs it unchanged.
    """


class BidTooLow(CloudError):
    """A spot request's bid is below the current market price."""


class ApiError(CloudError):
    """A control-plane call failed at the platform (``InternalError``).

    ``retryable`` distinguishes transient faults (worth a backoff and a
    retry) from terminal ones (the caller must degrade).
    """

    def __init__(self, message, operation=None, retryable=True):
        super().__init__(message)
        self.operation = operation
        self.retryable = retryable


class ThrottlingError(ApiError):
    """``RequestLimitExceeded``: the caller is sending requests too
    fast.  Always transient — the canonical exponential-backoff case.
    """

    def __init__(self, message, operation=None):
        super().__init__(message, operation=operation, retryable=True)


def is_transient(exc):
    """Whether ``exc`` is a control-plane error worth retrying."""
    return isinstance(exc, ApiError) and exc.retryable
