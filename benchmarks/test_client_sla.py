"""Beyond the paper: the client-visible SLA under each mechanism.

The paper reports system-level availability and degradation windows;
this bench translates them into what an end user measures — latency
percentiles and failed requests — by overlaying a request stream on
every VM's state history for each migration mechanism.
"""

import math

from repro.experiments.reporting import format_table
from repro.experiments.scenario import (
    MECHANISMS,
    PolicySimulation,
    ScenarioConfig,
)
from repro.workloads import RequestAnalyzer, TpcwWorkload

DAYS = 45.0
VMS = 12
SEED = 11
RATE_RPS = 25.0


def sweep():
    archive = PolicySimulation.build_archive(SEED, DAYS * 24 * 3600.0)
    analyzer = RequestAnalyzer(TpcwWorkload())
    horizon = DAYS * 24 * 3600.0
    rows = {}
    for mechanism in MECHANISMS:
        config = ScenarioConfig(policy="4P-ED", mechanism=mechanism,
                                seed=SEED, days=DAYS, vms=VMS)
        summary, controller = PolicySimulation(
            config, archive=archive).run(return_controller=True)
        stats = [analyzer.analyze_vm(vm, 0.0, horizon, rate_rps=RATE_RPS)
                 for vm in controller.all_vms()]
        total = sum(s.total_requests for s in stats)
        failed = sum(s.failed_requests for s in stats)
        valid = [s for s in stats if not math.isnan(s.p99_ms)]
        rows[mechanism] = {
            "p50": max(s.p50_ms for s in valid),
            "p99": max(s.p99_ms for s in valid),
            "error_ppm": 1e6 * failed / total,
            "summary": summary,
        }
    return rows


def test_client_sla_per_mechanism(benchmark, report):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    # Full restores translate their long downtime into failed requests:
    # the lazy mechanisms must lose at least 5x fewer requests.
    assert rows["spotcheck-lazy"]["error_ppm"] * 5 < \
        rows["unoptimized-full"]["error_ppm"]
    assert rows["spotcheck-full"]["error_ppm"] < \
        rows["unoptimized-full"]["error_ppm"]
    # Median latency is mechanism-independent (normal operation
    # dominates); the p99 stays interactive (< 100 ms) everywhere.
    for mechanism, row in rows.items():
        assert row["p50"] < 40.0, mechanism
        assert row["p99"] < 100.0, mechanism

    table_rows = [
        (mechanism, f"{row['p50']:.0f} ms", f"{row['p99']:.0f} ms",
         f"{row['error_ppm']:.0f}",
         f"{row['summary']['unavailability_pct']:.4f}%")
        for mechanism, row in rows.items()]
    text = format_table(
        ["mechanism", "p50", "p99", "failed req/M", "unavailability"],
        table_rows,
        title=(f"Client-visible SLA by mechanism (4P-ED, {VMS} VMs, "
               f"{DAYS:.0f} days, {RATE_RPS:.0f} req/s per server)"))
    report("client_sla", text)
