"""SpotCheck vs the non-derivative alternatives.

The headline comparison behind the paper's abstract: against directly
using spot servers, SpotCheck "provide[s] more than four 9's
availability to its customers, which is more than 10x that provided by
the native spot servers", while costing "nearly 5x less than the
equivalent on-demand servers" — and unlike naive spot usage it never
loses in-memory state.
"""

from repro.experiments.baselines import compare
from repro.experiments.policy_grid import run_cell, shared_archive
from repro.experiments.reporting import format_table


def test_baseline_comparison(benchmark, report, bench_days, bench_vms):
    def sweep():
        archive = shared_archive(11, bench_days)
        summary = run_cell("4P-ED", "spotcheck-lazy", seed=11,
                           days=bench_days, vms=bench_vms, archive=archive)
        # Compare on the most volatile market the fleet actually uses.
        trace = archive.get("m3.2xlarge", "us-east-1a")
        return compare(trace, summary), summary

    comparison, summary = benchmark.pedantic(sweep, rounds=1, iterations=1)

    naive = comparison["baselines"][0]
    on_demand = comparison["baselines"][2]
    spotcheck = comparison["spotcheck"]

    # Paper: direct spot availability sits between ~90% and ~99.99%.
    assert 0.90 <= naive.availability <= 0.9999
    # SpotCheck's availability improvement is an order of magnitude+.
    assert comparison["availability_improvement_vs_spot"] > 10.0
    # And the cost still beats on-demand by a wide margin.
    assert spotcheck["cost_per_hour"] < on_demand.cost_per_hour / 3
    # Naive spot loses work at every revocation; SpotCheck loses none.
    assert naive.lost_work_s > 0
    assert summary["state_loss_events"] == 0

    rows = []
    for result in comparison["baselines"]:
        rows.append((result.name, f"${result.cost_per_hour:.4f}",
                     f"{100 * result.availability:.4f}%",
                     result.revocations,
                     f"{result.lost_work_s / 3600.0:.1f} h"))
    rows.append(("SpotCheck (4P-ED, lazy)",
                 f"${spotcheck['cost_per_hour']:.4f}",
                 f"{100 * spotcheck['availability']:.4f}%",
                 summary["revocation_events"], "0 h"))
    text = format_table(
        ["approach", "cost/hr", "availability", "revocations",
         "lost work"],
        rows,
        title=(f"SpotCheck vs baselines on the m3.2xlarge market "
               f"({bench_days:.0f} days; availability improvement vs "
               f"naive spot: "
               f"{comparison['availability_improvement_vs_spot']:.0f}x, "
               f"paper claims ~10x)"))
    report("baseline_comparison", text)
