"""One (type, zone) market as an isolated, relocatable simulation.

The unit of sharding is the *market*, not the process: each
:class:`MarketSimulation` owns a private event kernel, a single-market
region, a :class:`~repro.core.controller.SpotCheckController` with its
pools, group-checkpoint cohorts, and spare replenishment — everything
the fleet needs for that market and nothing shared.  Its RNG seeds
derive from the cell seed and the market *key* alone
(``derive_seed(seed, "market:<type>/<zone>")``), so the simulation
unfolds identically no matter which process hosts it.  That is the
first half of the bit-identity guarantee; the mailbox's logical-clock
merge (see :mod:`repro.core.shard.mailbox`) is the second.

A :class:`MarketShard` is just the set of market simulations one
worker process hosts, with a command dispatch loop the coordinator
drives over a pipe (or calls inline for ``shards=1``).
"""

import math
from dataclasses import dataclass

from repro.backup.server import BackupServerSpec
from repro.cloud.api import CloudApi
from repro.cloud.instance_types import M3_CATALOG
from repro.cloud.spot_market import PriceWatch
from repro.cloud.zones import Region, Zone
from repro.core.config import SpotCheckConfig
from repro.core.controller import SpotCheckController
from repro.core.shard.mailbox import Outbox
from repro.core.shard.messages import (
    ApplyCommand,
    FinalizeCommand,
    MigrateAck,
    MigrateRequest,
    ParkRequest,
    PriceCrossing,
    ProvisionRequest,
    RevocationWarning,
    RunCommand,
    ShardReply,
    ShardReport,
    SlaSegment,
    StormReport,
)
from repro.sim.kernel import Environment
from repro.sim.rng import derive_seed
from repro.traces.archive import PriceTrace, TraceArchive
from repro.traces.generator import TraceGenerator
from repro.virt.migration.checkpoint import CheckpointStream
from repro.virt.vm import NestedVM

#: Calm-market spot price for flat-trace markets, far under the
#: on-demand bid, so no revocation machinery ever wakes.
CALM_PRICE = 0.08

#: Ingest-path utilization target when sizing the consolidated backup
#: server: leave headroom so steady flushes never queue behind each
#: other (a saturated datapath measures backlog, not scheduling).
INGEST_UTILIZATION = 0.8


def steady_rate_bps(env, config):
    """Sustained steady-flush rate of one nested VM (class-level fact)."""
    probe = NestedVM(env, M3_CATALOG.get("m3.medium"))
    return CheckpointStream(
        probe.memory, config.mechanism.checkpoint).stream_rate_bps()


def fleet_backup_spec(n_vms, rate_bps):
    """One backup server scaled to the shard count the fleet needs."""
    base = BackupServerSpec()
    shards = max(math.ceil(
        n_vms * rate_bps
        / (INGEST_UTILIZATION * base.write_path_bps)), 1)
    return BackupServerSpec(
        net_bps=base.net_bps * shards,
        disk_write_bps=base.disk_write_bps * shards,
        seq_read_bps=base.seq_read_bps * shards,
        rand_read_bps=base.rand_read_bps * shards,
        fadvise_rand_read_bps=base.fadvise_rand_read_bps * shards,
        max_checkpoint_vms=n_vms,
        page_cache_bytes=base.page_cache_bytes * shards,
    ), shards


@dataclass(frozen=True)
class MarketSpec:
    """One (type, zone) market of the sharded cell.

    ``market_params`` (a :class:`~repro.traces.model.MarketParams`)
    selects a generated price trace — the PR 5 bench scenario; ``None``
    selects a flat calm trace at ``calm_price`` (the fleet-scaling
    cell).  ``region_name`` must prefix ``zone_name`` in the usual
    EC2 shape (``us-east-1`` / ``us-east-1a``).
    """

    type_name: str = "m3.2xlarge"
    zone_name: str = "us-east-1a"
    region_name: str = "us-east-1"
    calm_price: float = CALM_PRICE
    market_params: object = None

    @property
    def key(self):
        return (self.type_name, self.zone_name)


@dataclass(frozen=True)
class ShardConfig:
    """Cell-wide knobs shared by every market simulation."""

    seed: int = 11
    days: float = 14.0
    hot_spares: int = 2
    #: ``None``: consolidate each market's fleet onto one scaled backup
    #: server (the fleet bench's worst-case single cohort).
    vms_per_backup: int = None
    steady_checkpoint_flush: bool = True
    defer_flush_accounting: bool = True
    #: Serve steady flushes from the struct-of-arrays cohort core (one
    #: vectorized runner per backup datapath) — the heterogeneous-fleet
    #: path, bit-identical to the per-cohort scheduler.
    soa_checkpoint_flush: bool = False
    #: Optional :class:`~repro.workloads.mix.FleetMix`: provision each
    #: market's fleet as that deterministic population of workload
    #: classes instead of the homogeneous default.  Applied per market
    #: (blocks of each class in boot order), so the population is
    #: independent of the shard count.
    workload_mix: object = None
    #: Optional :class:`~repro.faults.FaultPlan` applied inside every
    #: market (its injector draws from the market's own kernel RNG, so
    #: chaos runs stay per-market deterministic).
    faults: object = None

    @property
    def duration_s(self):
        return self.days * 24 * 3600.0


class MarketSimulation:
    """The full SpotCheck stack for one market, behind an outbox."""

    def __init__(self, spec, config, market_index, n_vms):
        self.spec = spec
        self.config = config
        self.market_index = market_index
        self.n_vms = n_vms
        self.outbox = Outbox(market_index)

        seed = derive_seed(
            config.seed, f"market:{spec.type_name}/{spec.zone_name}")
        self.env = env = Environment(seed=seed)
        zone = Zone(spec.zone_name, spec.region_name)
        region = Region(name=spec.region_name, zones=[zone])
        self.zone = zone

        injector = None
        if config.faults is not None and config.faults.enabled:
            from repro.faults import FaultInjector
            injector = FaultInjector(env, config.faults)
        self.api = api = CloudApi(env, region, M3_CATALOG, faults=injector)

        itype = M3_CATALOG.get(spec.type_name)
        archive = TraceArchive()
        if spec.market_params is not None:
            archive.add(TraceGenerator(seed=config.seed).generate_market(
                spec.type_name, spec.zone_name, spec.market_params,
                duration_s=config.duration_s))
        else:
            archive.add(PriceTrace(
                [0.0, config.duration_s],
                [spec.calm_price, spec.calm_price],
                spec.type_name, spec.zone_name, itype.on_demand_price))

        controller_config = SpotCheckConfig(
            hot_spares=config.hot_spares,
            vms_per_backup=(config.vms_per_backup
                            if config.vms_per_backup is not None
                            else max(n_vms, 1)),
            steady_checkpoint_flush=config.steady_checkpoint_flush,
            defer_flush_accounting=config.defer_flush_accounting,
            soa_checkpoint_flush=config.soa_checkpoint_flush,
        )
        rate_bps = steady_rate_bps(env, controller_config)
        spec_backup, self.backup_shards = fleet_backup_spec(
            max(n_vms, 1), rate_bps)
        controller_config.backup_spec = spec_backup

        self.controller = SpotCheckController(env, api, controller_config)
        self.controller.install_pools(archive, zone,
                                      type_names=[spec.type_name])
        if injector is not None:
            injector.install_backup_crashes(self.controller)
        self.pool = self.controller.pools.spot_pool(
            spec.type_name, spec.zone_name)
        #: The market's workload factory: one deterministic block
        #: schedule over this market's whole fleet (class populations
        #: must not depend on how provisioning requests are batched).
        self._workload_factory = (
            config.workload_mix.workload_factory(max(n_vms, 1))
            if config.workload_mix is not None else None)
        self.customers = {}
        self._parked_total = 0
        self._finalized = False
        self._wire_taps()

    # -- event taps ----------------------------------------------------

    def _wire_taps(self):
        """Attach shard event taps without disturbing the market drive.

        Warnings and storms ride passive hooks (``on_warning`` /
        ``on_storm``); the on-demand boundary crossings ride a pair of
        gated :class:`PriceWatch` bands, mirroring the controller's own
        crossing-driven style — the drive still skips every point no
        tap cares about.
        """
        market = self.pool.market
        market.on_warning(self._tap_warning)
        self.controller.on_storm = self._tap_storm
        od_price = self.pool.itype.on_demand_price
        self._expensive = market.price_at(0.0) > od_price
        market.add_watch(PriceWatch(
            self._tap_expensive, lo=od_price,
            active=lambda: not self._expensive))
        market.add_watch(PriceWatch(
            self._tap_recovered, hi=od_price,
            active=lambda: self._expensive))

    def _tap_warning(self, market, instance, deadline):
        self.outbox.put(RevocationWarning(
            stamp=self.outbox.stamp(self.env.now),
            market_key=self.spec.key, bid=instance.bid, deadline=deadline))

    def _tap_storm(self, pool, storm):
        self.outbox.put(StormReport(
            stamp=self.outbox.stamp(self.env.now),
            market_key=self.spec.key, hosts_lost=len(storm.hosts),
            vms_displaced=len(storm.vms)))

    def _tap_expensive(self, market, price):
        self._expensive = True
        self.outbox.put(PriceCrossing(
            stamp=self.outbox.stamp(self.env.now),
            market_key=self.spec.key, price=price, band="expensive"))

    def _tap_recovered(self, market, price):
        self._expensive = False
        self.outbox.put(PriceCrossing(
            stamp=self.outbox.stamp(self.env.now),
            market_key=self.spec.key, price=price, band="recovered"))

    # -- request application -------------------------------------------

    def apply(self, request):
        """Apply one coordinator request; returns an ack or ``None``.

        Flows run to completion on the local kernel (the clock advances
        by their real migration/API latencies before the next epoch's
        ``run_until``), mirroring how the single-process controller
        interleaves them with market time.
        """
        if isinstance(request, ProvisionRequest):
            if request.count > 0:
                customer = self._customer(request.customer)
                self.env.run(until=self.controller.provision_fleet(
                    customer, request.count, pool=self.pool,
                    workload_factory=self._workload_factory))
            return None
        if isinstance(request, ParkRequest):
            self.env.run(until=self.env.process(
                self._park_flow(request.count)))
            return None
        if isinstance(request, MigrateRequest):
            released = self._release_for_migration(request.count)
            ack = MigrateAck(
                stamp=self.outbox.stamp(self.env.now),
                market_key=self.spec.key, released=released,
                dest_market=request.dest_market)
            # Also publish the ack into the event history: the
            # coordinator acts on the reply copy, but cross-market
            # moves should be visible (and digested) in the merged
            # stream like every other event.
            self.outbox.put(ack)
            return ack
        raise TypeError(f"unknown shard request {type(request).__name__}")

    def _customer(self, name):
        customer = self.customers.get(name)
        if customer is None:
            customer = self.controller.start_customer(name)
            self.customers[name] = customer
        return customer

    def _park_flow(self, count):
        """Live-migrate up to ``count`` VMs to on-demand (stay parked).

        Mirrors the controller's proactive drain: concurrent bounded
        live migrations, losers caught by the normal warning path.
        """
        pool = self.pool
        controller = self.controller
        drains = []
        for host in list(pool.hosts):
            for vm in list(host.vms):
                if len(drains) >= count:
                    break
                if not vm.is_running:
                    continue
                drains.append((vm, controller.migrations.live_migrate(
                    vm, host, cause="shard-park", exclude_pool=pool)))
            if len(drains) >= count:
                break
        parked = 0
        for vm, drain in drains:
            moved = yield drain
            if moved is None:
                continue
            controller.release_backup(vm)
            controller.note_parked(vm, pool, "pool")
            parked += 1
        self._parked_total += parked

    def _release_for_migration(self, count):
        """Relinquish up to ``count`` spot-resident VMs, newest first.

        Cross-market moves are restore-from-backup in SpotCheck terms:
        the source frees its slots and the coordinator reprovisions in
        the destination market, so no VM state crosses the boundary.
        Victim order is customer insertion order (never id sort — ids
        are process-dependent).
        """
        victims = []
        for customer in self.customers.values():
            for vm in reversed(customer.vms):
                if len(victims) >= count:
                    break
                if vm.is_running and not self.controller.is_parked(vm):
                    victims.append(vm)
            if len(victims) >= count:
                break
        for vm in victims:
            self.env.run(until=self.controller.relinquish(vm))
        return len(victims)

    # -- time ----------------------------------------------------------

    def run_until(self, until):
        """Advance the market's kernel to simulated time ``until``."""
        if until > self.env.now:
            self.env.run(until=until)

    def finalize(self):
        """Close the books; returns this market's :class:`ShardReport`."""
        if self._finalized:
            raise RuntimeError("market already finalized")
        self._finalized = True
        controller = self.controller
        controller.finalize()
        ledger = controller.ledger
        summary = {
            "vm_seconds": ledger.total_vm_seconds(),
            "downtime_s": ledger.total_downtime_s(),
            "degraded_s": ledger.total_degraded_s(),
            "total_cost": ledger.total_cost(self.api),
            "migrations": len(ledger.migrations),
            "revocation_events": len(ledger.revocations),
            "state_loss_events": len(ledger.state_loss_events()),
            "cost_breakdown": ledger.cost_breakdown(self.api),
            "max_concurrent_revocation":
                ledger.max_concurrent_revocation(),
            "backup_servers": controller.backup_pool.server_count,
        }
        vm_hours = summary["vm_seconds"] / 3600.0
        for name, customer in sorted(self.customers.items()):
            self.outbox.put(SlaSegment(
                stamp=self.outbox.stamp(self.env.now),
                market_key=self.spec.key, customer=name,
                vm_hours=vm_hours,
                availability=ledger.availability(),
                unavailability_pct=100.0 * ledger.unavailability(),
                degradation_pct=100.0 * ledger.degradation()))
        return ShardReport(
            stamp=self.outbox.stamp(self.env.now),
            market=self.market_index,
            market_key=self.spec.key,
            vms=sum(len(c.vms) for c in self.customers.values()),
            hosts=self.pool.host_count,
            parked=self._parked_total,
            events_processed=self.env.events_processed,
            summary=summary,
            drive=self.pool.market.drive_stats(),
            flush=controller.migrations.flush_drive_stats(),
            spares=controller.spares_drive_stats(),
        )


class MarketShard:
    """The market simulations one worker hosts, behind a command loop."""

    def __init__(self, assignments, config):
        """``assignments``: list of ``(market_index, spec, n_vms)``."""
        self.sims = {}
        for market_index, spec, n_vms in assignments:
            self.sims[market_index] = MarketSimulation(
                spec, config, market_index, n_vms)

    def _drain(self):
        messages = []
        for index in sorted(self.sims):
            messages.extend(self.sims[index].outbox.drain())
        return tuple(messages)

    def execute(self, command):
        """Dispatch one coordinator command; returns a ShardReply."""
        if isinstance(command, ApplyCommand):
            acks = []
            for request in command.requests:
                sim = self.sims.get(request.market)
                if sim is None:
                    raise KeyError(
                        f"market {request.market} is not on this shard")
                ack = sim.apply(request)
                if ack is not None:
                    acks.append(ack)
            return ShardReply(messages=self._drain(), acks=tuple(acks))
        if isinstance(command, RunCommand):
            for index in sorted(self.sims):
                self.sims[index].run_until(command.until)
            return ShardReply(messages=self._drain())
        if isinstance(command, FinalizeCommand):
            reports = tuple(self.sims[index].finalize()
                            for index in sorted(self.sims))
            return ShardReply(messages=self._drain(), reports=reports)
        raise TypeError(f"unknown shard command {type(command).__name__}")


__all__ = [
    "CALM_PRICE",
    "INGEST_UTILIZATION",
    "MarketShard",
    "MarketSimulation",
    "MarketSpec",
    "ShardConfig",
    "fleet_backup_spec",
    "steady_rate_bps",
]
