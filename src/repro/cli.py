"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``simulate``
    Run one policy simulation and print its summary.
``traces``
    Generate a price-trace archive, or print market statistics.
``experiment``
    Regenerate one paper table/figure (or ``all``) as text.
``obs``
    Summarize an ``--obs-dir`` observability output directory.
``report``
    Run the full evaluation and write EXPERIMENTS.md.
``bench``
    Time the kernel and the policy grid (serial vs parallel vs
    cache-warm) and write a schema-stable ``BENCH_<label>.json``.
``chaos``
    Run the fault-injection scenario (see docs/robustness.md) and
    check/record its golden fault and retry metrics.
``storm``
    Run the overlapping restore-storm smoke and assert the backup
    datapath's fair-share invariant and analytic cross-check.
``sla``
    Run the chaos fault plan under diurnal + flash-crowd traffic and
    report per-policy SLA attainment (Figure 12 in error-budget units),
    with a golden digest check for CI.
``index``
    Run the cost-variance study comparing the classic allocation
    policies with the index-tracking / optimal-combination portfolios
    (realized $/VM-hour mean and variance, downtime, drive laziness),
    with a golden digest check for CI.
"""

import argparse
import json
import sys


def _cmd_simulate(args):
    from repro.experiments.scenario import PolicySimulation, ScenarioConfig
    faults = None
    if args.faults:
        from repro.faults import FaultPlan
        faults = FaultPlan.from_json(args.faults)
    config = ScenarioConfig(
        policy=args.policy, mechanism=args.mechanism, seed=args.seed,
        days=args.days, vms=args.vms, workload=args.workload,
        bid_policy=args.bid_policy, bid_multiple=args.bid_multiple,
        hot_spares=args.hot_spares, proactive=args.proactive,
        predictive=args.predictive, slicing=not args.no_slicing,
        zones=args.zones, faults=faults)
    obs = None
    if args.obs_dir:
        from repro.obs import Observability
        obs = Observability()
    summary = PolicySimulation(config).run(obs=obs)
    if obs is not None:
        obs.write_dir(args.obs_dir)
        print(f"wrote events.jsonl, metrics.prom, traces.txt to "
              f"{args.obs_dir}/", file=sys.stderr)
    if args.json:
        print(json.dumps(summary, indent=2, default=float))
        return 0
    print(f"policy {summary['policy']}  mechanism {summary['mechanism']}  "
          f"({args.days:.0f} days, {args.vms} VMs, seed {args.seed})")
    print(f"  cost ............. ${summary['cost_per_vm_hour']:.4f}/VM-hr "
          f"(on-demand m3.medium: $0.07)")
    print(f"  availability ..... {100 * summary['availability']:.4f}%")
    print(f"  degraded time .... {summary['degradation_pct']:.4f}%")
    print(f"  migrations ....... {summary['migrations']} "
          f"({summary['revocation_events']} revocation events)")
    print(f"  state lost ....... {summary['state_loss_events']}")
    if "faults_injected" in summary:
        print(f"  faults injected .. {summary['faults_injected']}")
    return 0


def _cmd_chaos(args):
    from repro.experiments.chaos import check_digest, run_chaos
    from repro.faults import FaultPlan
    plan = FaultPlan.from_json(args.faults) if args.faults else None
    summary, digest = run_chaos(seed=args.seed, days=args.days,
                                vms=args.vms, policy=args.policy, plan=plan)
    if args.write_golden:
        with open(args.write_golden, "w", encoding="utf-8") as handle:
            json.dump(digest, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote golden digest to {args.write_golden}")
        return 0
    if args.json:
        print(json.dumps({"summary": summary, "digest": digest},
                         indent=2, default=float))
    else:
        print(f"chaos run survived: {digest['faults_injected_total']} "
              f"faults injected, {digest['retries_total']} retries, "
              f"{digest['fault_degradations_total']} degradations, "
              f"{digest['state_loss_events']} state-loss events")
    if args.check_golden:
        with open(args.check_golden, encoding="utf-8") as handle:
            golden = json.load(handle)
        problems = check_digest(digest, golden)
        if problems:
            for problem in problems:
                print(f"GOLDEN MISMATCH {problem}", file=sys.stderr)
            return 1
        print("golden fault/retry metrics match")
    return 0


def _cmd_sla(args):
    from repro.experiments.sla_chaos import check_sla_digest, run_sla
    results, digest = run_sla(seed=args.seed, days=args.days, vms=args.vms,
                              policies=tuple(args.policies))
    if args.write_golden:
        with open(args.write_golden, "w", encoding="utf-8") as handle:
            json.dump(digest, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote golden digest to {args.write_golden}")
        return 0
    if args.json:
        print(json.dumps({"digest": digest,
                          "sla": {p: s["sla"] for p, s in results.items()}},
                         indent=2, default=float))
    else:
        print(f"SLA under chaos ({args.days:.0f} days, {args.vms} VMs, "
              f"seed {args.seed})")
        for policy in args.policies:
            entry = digest["policies"][policy]
            print(f"  {policy:8s} attainment {100 * entry['attainment']:.4f}%"
                  f"  (downtime {entry['unavailability_pct']:.3f}%, "
                  f"degraded {entry['degradation_pct']:.3f}%)")
            for name, cust in sorted(entry["customers"].items()):
                print(f"    {name:6s} {cust['requests']:>12,d} requests  "
                      f"p99 {cust['p99_ms']:6.1f} ms  "
                      f"breaches {cust['breaches']}")
        print(f"  ranking by attainment: "
              f"{' > '.join(digest['attainment_order'])}")
    if args.check_golden:
        with open(args.check_golden, encoding="utf-8") as handle:
            golden = json.load(handle)
        problems = check_sla_digest(digest, golden)
        if problems:
            for problem in problems:
                print(f"GOLDEN MISMATCH {problem}", file=sys.stderr)
            return 1
        print("golden SLA digest matches; policy ordering preserved")
    return 0


def _cmd_index(args):
    from repro.experiments.cost_index import check_index_digest, run_index
    _results, digest = run_index(seed=args.seed, days=args.days,
                                 vms=args.vms,
                                 policies=tuple(args.policies))
    if args.write_golden:
        with open(args.write_golden, "w", encoding="utf-8") as handle:
            json.dump(digest, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote golden digest to {args.write_golden}")
        return 0
    if args.json:
        print(json.dumps(digest, indent=2, default=float))
    else:
        print(f"cost-variance study ({args.days:.0f} days, {args.vms} VMs, "
              f"seed {args.seed})")
        for policy in args.policies:
            entry = digest["policies"][policy]
            line = (f"  {policy:9s} mean ${entry['cost_mean']:.5f}/VM-hr  "
                    f"std ${entry['cost_std']:.5f}  "
                    f"downtime {entry['unavailability_pct']:.3f}%  "
                    f"migr {entry['migrations']:4d}  "
                    f"drive {100 * entry['delivered_fraction']:.2f}%")
            if "realized_per_vm_hour" in entry:
                mark = "in" if entry["realized_in_band"] else "OUT OF"
                line += (f"  realized ${entry['realized_per_vm_hour']:.5f} "
                         f"({mark} band)")
            print(line)
        print(f"  ranking by cost variance: "
              f"{' < '.join(digest['variance_order'])}")
    if args.check_golden:
        with open(args.check_golden, encoding="utf-8") as handle:
            golden = json.load(handle)
        problems = check_index_digest(digest, golden)
        if problems:
            for problem in problems:
                print(f"GOLDEN MISMATCH {problem}", file=sys.stderr)
            return 1
        # stderr so that ``--json | tee`` captures pure JSON.
        print("golden index digest matches; IT beats 4P-COST on variance",
              file=sys.stderr)
    return 0


def _cmd_storm(args):
    from repro.experiments.fig8 import storm_smoke
    ok, _lines = storm_smoke(echo=print)
    if not ok:
        print("storm smoke failed: fair-share invariant or analytic "
              "cross-check violated", file=sys.stderr)
        return 1
    print("fair-share invariant held at every rebalance")
    return 0


def _cmd_traces(args):
    from repro.traces import stats
    from repro.traces.calibration import M3_MARKET_PARAMS
    from repro.traces.generator import TraceGenerator
    if args.import_json or args.import_csv:
        return _import_traces(args)
    generator = TraceGenerator(seed=args.seed)
    duration_s = args.days * 24 * 3600.0
    traces = [
        generator.generate_market(name, args.zone, params,
                                  duration_s=duration_s)
        for name, params in sorted(M3_MARKET_PARAMS.items())
        if args.types is None or name in args.types
    ]
    if args.out:
        from repro.traces.archive import TraceArchive
        TraceArchive(traces).save(args.out)
        print(f"wrote {len(traces)} traces to {args.out}/")
        return 0
    for trace in traces:
        summary = stats.summarize(trace)
        print(f"{trace.type_name:12s} mean ratio "
              f"{summary['mean_ratio']:.3f}  availability@od "
              f"{100 * summary['availability_at_od']:.3f}%  spikes "
              f"{summary['spikes_above_od']}")
    return 0


def _import_traces(args):
    """Import real price history and print (or archive) the markets."""
    from repro.cloud.instance_types import DEFAULT_CATALOG
    from repro.traces import stats
    from repro.traces.importer import load_aws_json, load_csv
    on_demand = {itype.name: itype.on_demand_price
                 for itype in DEFAULT_CATALOG}
    if args.import_json:
        archive, skipped = load_aws_json(args.import_json, on_demand)
    else:
        archive, skipped = load_csv(args.import_csv, on_demand)
    for type_name, zone_name in skipped:
        print(f"skipped ({type_name}, {zone_name}): unknown on-demand "
              f"price", file=sys.stderr)
    if args.out:
        archive.save(args.out)
        print(f"wrote {len(archive)} imported traces to {args.out}/")
        return 0
    for trace in archive:
        summary = stats.summarize(trace)
        print(f"{trace.type_name:12s} {trace.zone_name:12s} mean ratio "
              f"{summary['mean_ratio']:.3f}  availability@od "
              f"{100 * summary['availability_at_od']:.3f}%")
    return 0


def _cmd_experiment(args):
    from repro.experiments.render import RENDERERS
    names = list(RENDERERS) if args.name == "all" else [args.name]
    for name in names:
        if name not in RENDERERS:
            print(f"unknown experiment {name!r}; choose from "
                  f"{', '.join(RENDERERS)} or 'all'", file=sys.stderr)
            return 2
    for name in names:
        renderer = RENDERERS[name]
        if name in ("fig10", "fig11", "fig12", "table3"):
            title, text, notes = renderer(
                seed=args.seed, days=args.days, vms=args.vms)
        else:
            title, text, notes = renderer()
        print(title)
        print(text)
        print(notes)
        print()
    return 0


def _cmd_obs(args):
    from repro.obs.export import summarize_obs_dir
    if args.obs_command == "summarize":
        print(summarize_obs_dir(args.dir), end="")
        return 0
    return 2


def _cmd_report(args):
    from repro.experiments.runner import generate_report
    print(f"running the full evaluation "
          f"({args.days:.0f} days, {args.vms} VMs, "
          f"{args.workers} worker{'s' if args.workers != 1 else ''})...")
    generate_report(path=args.out, seed=args.seed, days=args.days,
                    vms=args.vms, workers=args.workers,
                    cache_dir=args.cache_dir)
    print(f"wrote {args.out}")
    return 0


def _cmd_bench(args):
    from repro.benchmarking import run_bench, write_bench
    fleet_vms = args.fleet_vms
    fleet_days = args.fleet_days
    if args.fleet:
        # The full-size fleet cell (100k VMs, 14 days), even when the
        # rest of the run is the smoke preset.
        if fleet_vms is None:
            fleet_vms = 100_000
        if fleet_days is None:
            fleet_days = 14.0
    payload = run_bench(label=args.label, smoke=args.smoke, seed=args.seed,
                        workers=args.workers, days=args.days, vms=args.vms,
                        kernel_events=args.kernel_events,
                        fleet_vms=fleet_vms, fleet_days=fleet_days,
                        shards=args.shards,
                        fleet_mix_classes=args.fleet_mix, echo=print)
    path = write_bench(payload, out_dir=args.out_dir)
    kernel = payload["kernel"]
    market = payload["market"]
    grid = payload["grid"]
    plan = grid["parallel_plan"]
    print(f"kernel ........... {kernel['events_per_sec']:.0f} events/sec")
    print(f"market drive ..... {market['events_eliminated']} of "
          f"{market['trace_points']} events eliminated "
          f"(x{market['event_reduction']:.0f}, wall x{market['speedup']:.1f})")
    traffic = payload["traffic"]
    print(f"traffic engine ... {traffic['high']['requests']:.2e} requests "
          f"in {traffic['high']['wakes']} wakes "
          f"(x{traffic['request_ratio']:.0f} volume, wake ratio "
          f"{traffic['wake_ratio']:.2f})")
    fleet = payload["fleet"]
    print(f"fleet cell ....... {fleet['large']['vms']} VMs in "
          f"{fleet['large']['events']} events "
          f"({fleet['large']['events_per_vm_hour']:.3f}/VM-hour, event "
          f"ratio {fleet['event_ratio']:.2f}, wall "
          f"x{fleet['wall_ratio']:.2f})")
    fleet_mix = payload["fleet_mix"]
    print(f"fleet mix ........ {fleet_mix['classes']} classes at "
          f"{fleet_mix['vms']} VMs: {fleet_mix['mixed']['events']} events "
          f"over {fleet_mix['mixed']['flush_cohorts']} plan-groups (event "
          f"ratio {fleet_mix['event_ratio']:.2f}, wall "
          f"x{fleet_mix['wall_ratio']:.2f}), bit-identical: "
          f"{fleet_mix['bit_identical']}")
    shard = payload["shard"]
    print(f"sharded fleet .... {shard['vms']} VMs / {shard['markets']} "
          f"markets at {shard['sharded']['shards']} shards: "
          f"x{shard['speedup']:.2f} vs single-process, bit-identical: "
          f"{shard['bit_identical']}")
    print(f"grid serial ...... {grid['serial_wall_s']:.2f}s "
          f"({grid['cells']} cells)")
    print(f"grid parallel .... {grid['parallel_wall_s']:.2f}s "
          f"(x{grid['speedup']:.2f}, planned {plan['planned']} of "
          f"{plan['requested']} workers: {plan['reason']})")
    print(f"grid warm cache .. {grid['warm_wall_s']:.2f}s "
          f"(x{grid['warm_speedup']:.2f}, "
          f"{grid['cache']['warm_disk_hits']:.0f} disk hits)")
    print(f"wrote {path}")
    return 0


def build_parser():
    from repro import __version__
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SpotCheck (EuroSys'15) reproduction toolkit")
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    sim = sub.add_parser("simulate", help="run one policy simulation")
    sim.add_argument("--policy", default="1P-M")
    sim.add_argument("--mechanism", default="spotcheck-lazy")
    sim.add_argument("--days", type=float, default=60.0)
    sim.add_argument("--vms", type=int, default=40)
    sim.add_argument("--seed", type=int, default=11)
    sim.add_argument("--workload", default="tpcw",
                     choices=("tpcw", "specjbb"))
    sim.add_argument("--bid-policy", default="on-demand",
                     choices=("on-demand", "multiple", "knee"))
    sim.add_argument("--bid-multiple", type=float, default=1.5)
    sim.add_argument("--hot-spares", type=int, default=0)
    sim.add_argument("--proactive", action="store_true")
    sim.add_argument("--predictive", action="store_true")
    sim.add_argument("--no-slicing", action="store_true")
    sim.add_argument("--zones", type=int, default=1,
                     help="availability zones to operate across")
    sim.add_argument("--faults", default=None, metavar="FILE",
                     help="inject control-plane faults from a FaultPlan "
                          "JSON config (see docs/robustness.md)")
    sim.add_argument("--json", action="store_true")
    sim.add_argument("--obs-dir", default=None, metavar="DIR",
                     help="instrument the run and write events.jsonl, "
                          "metrics.prom, and traces.txt to DIR")
    sim.set_defaults(func=_cmd_simulate)

    traces = sub.add_parser("traces",
                            help="generate or summarize price traces")
    traces.add_argument("--seed", type=int, default=0)
    traces.add_argument("--days", type=float, default=183.0)
    traces.add_argument("--zone", default="us-east-1a")
    traces.add_argument("--types", nargs="*", default=None)
    traces.add_argument("--out", default=None,
                        help="write a CSV archive to this directory")
    traces.add_argument("--import-json", default=None, metavar="FILE",
                        help="import aws describe-spot-price-history JSON")
    traces.add_argument("--import-csv", default=None, metavar="FILE",
                        help="import a price-history CSV")
    traces.set_defaults(func=_cmd_traces)

    experiment = sub.add_parser(
        "experiment", help="regenerate one paper table/figure")
    experiment.add_argument("name")
    experiment.add_argument("--seed", type=int, default=11)
    experiment.add_argument("--days", type=float, default=183.0)
    experiment.add_argument("--vms", type=int, default=40)
    experiment.set_defaults(func=_cmd_experiment)

    obs = sub.add_parser(
        "obs", help="inspect an --obs-dir output directory")
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)
    summarize = obs_sub.add_parser(
        "summarize", help="digest events.jsonl / metrics.prom / traces.txt")
    summarize.add_argument("--dir", default="out",
                           help="observability output directory")
    obs.set_defaults(func=_cmd_obs)

    report = sub.add_parser("report", help="write EXPERIMENTS.md")
    report.add_argument("--out", default="EXPERIMENTS.md")
    report.add_argument("--seed", type=int, default=11)
    report.add_argument("--days", type=float, default=183.0)
    report.add_argument("--vms", type=int, default=40)
    report.add_argument("--workers", type=int, default=1,
                        help="processes for the policy grid (Figs 10-12)")
    report.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="persist completed grid cells under DIR so "
                             "repeated reports skip them")
    report.set_defaults(func=_cmd_report)

    bench = sub.add_parser(
        "bench", help="benchmark the kernel and grid; write BENCH_*.json")
    bench.add_argument("--label", default="local",
                       help="artifact name: BENCH_<label>.json")
    bench.add_argument("--smoke", action="store_true",
                       help="seconds-scale preset for CI")
    bench.add_argument("--seed", type=int, default=11)
    bench.add_argument("--workers", type=int, default=None,
                       help="parallel grid workers (preset default: 4, "
                            "smoke: 2)")
    bench.add_argument("--days", type=float, default=None,
                       help="override the preset's simulated span")
    bench.add_argument("--vms", type=int, default=None,
                       help="override the preset's fleet size")
    bench.add_argument("--kernel-events", type=int, default=None,
                       help="override the kernel benchmark's event count")
    bench.add_argument("--fleet", action="store_true",
                       help="run the fleet cell at full size "
                            "(100k VMs, 14 days) even with --smoke")
    bench.add_argument("--fleet-vms", type=int, default=None,
                       help="override the fleet cell's large VM count")
    bench.add_argument("--fleet-days", type=float, default=None,
                       help="override the fleet cell's duration "
                            "(also the sharded cell's)")
    bench.add_argument("--shards", type=int, default=None,
                       help="widest shard count for the sharded fleet "
                            "cell (runs shards=1 and shards=N; N >= 2)")
    bench.add_argument("--fleet-mix", type=int, default=None,
                       help="workload classes in the heterogeneous "
                            "fleet cell (default: the preset's 8)")
    bench.add_argument("--out-dir", default=".",
                       help="directory for BENCH_<label>.json")
    bench.set_defaults(func=_cmd_bench)

    chaos = sub.add_parser(
        "chaos", help="run the fault-injection scenario "
                      "(docs/robustness.md)")
    chaos.add_argument("--seed", type=int, default=11)
    chaos.add_argument("--days", type=float, default=42.0)
    chaos.add_argument("--vms", type=int, default=20)
    chaos.add_argument("--policy", default="4P-COST",
                       help="allocation policy for the chaos fleet")
    chaos.add_argument("--faults", default=None, metavar="FILE",
                       help="FaultPlan JSON overriding the default plan")
    chaos.add_argument("--json", action="store_true")
    chaos.add_argument("--write-golden", default=None, metavar="FILE",
                       help="record this run's digest as the golden file")
    chaos.add_argument("--check-golden", default=None, metavar="FILE",
                       help="fail (exit 1) unless the digest matches FILE")
    chaos.set_defaults(func=_cmd_chaos)

    storm = sub.add_parser(
        "storm", help="smoke the overlapping restore-storm scenario "
                      "(fair-share invariant)")
    storm.set_defaults(func=_cmd_storm)

    sla = sub.add_parser(
        "sla", help="run the chaos plan under live traffic and report "
                    "per-policy SLA attainment (docs/traffic.md)")
    sla.add_argument("--seed", type=int, default=11)
    sla.add_argument("--days", type=float, default=14.0)
    sla.add_argument("--vms", type=int, default=12)
    sla.add_argument("--policies", nargs="*", default=["1P-M", "4P-COST"])
    sla.add_argument("--json", action="store_true")
    sla.add_argument("--write-golden", default=None, metavar="FILE",
                     help="record this run's digest as the golden file")
    sla.add_argument("--check-golden", default=None, metavar="FILE",
                     help="fail (exit 1) unless the digest matches FILE")
    sla.set_defaults(func=_cmd_sla)

    index = sub.add_parser(
        "index", help="run the cost-variance study: classic policies vs "
        "index-tracking / optimal-combination portfolios")
    index.add_argument("--seed", type=int, default=11)
    index.add_argument("--days", type=float, default=14.0)
    index.add_argument("--vms", type=int, default=12)
    index.add_argument("--policies", nargs="*",
                       default=["1P-M", "4P-COST", "4P-ST", "IT-0.125",
                                "IT-0.14", "OC-2"])
    index.add_argument("--json", action="store_true")
    index.add_argument("--write-golden", default=None, metavar="FILE",
                       help="write the digest as the new golden and exit")
    index.add_argument("--check-golden", default=None, metavar="FILE",
                       help="compare the digest against a golden file")
    index.set_defaults(func=_cmd_index)
    return parser


def main(argv=None):
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
