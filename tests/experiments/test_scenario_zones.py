"""Multi-zone scenario support."""

import pytest

from repro.experiments.scenario import PolicySimulation, ScenarioConfig


class TestMultiZoneScenario:
    def test_archive_covers_every_zone(self):
        archive = PolicySimulation.build_archive(5, 3 * 24 * 3600.0,
                                                 zones=3)
        zones = {zone for _type, zone in archive.keys()}
        assert zones == {"us-east-1a", "us-east-1b", "us-east-1c"}
        assert len(archive) == 12  # 4 types x 3 zones

    def test_zone_spread_scenario_runs(self):
        summary = PolicySimulation(ScenarioConfig(
            policy="Z-M", days=4.0, vms=4, seed=9, zones=2)).run()
        assert summary["state_loss_events"] == 0
        assert summary["vm_hours"] == pytest.approx(4 * 4 * 24, rel=0.05)

    def test_single_zone_unchanged(self):
        a = PolicySimulation(ScenarioConfig(days=3.0, vms=2, seed=7)).run()
        b = PolicySimulation(ScenarioConfig(days=3.0, vms=2, seed=7,
                                            zones=1)).run()
        assert a["cost_per_vm_hour"] == pytest.approx(b["cost_per_vm_hour"])
