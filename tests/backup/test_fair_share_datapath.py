"""Storm-fidelity tests for the shared fair-share backup datapath.

The acceptance bar for the DES datapath: isolated equal-size batches
must reproduce the closed-form ``n * image / aggregate`` estimates to
1e-6 relative error, overlapping batches must rebalance against each
other (the old scheduler froze ``concurrent`` at its own batch size),
early finishers must release bandwidth to survivors, and the fair-share
invariant must hold at every event time.
"""

import pytest

from repro.backup.scheduler import RestoreScheduler
from repro.backup.server import BackupServer, BackupUnavailable
from repro.cloud.instance_types import M3_CATALOG
from repro.experiments.fig8 import run_storm
from repro.sim.kernel import Environment
from repro.virt.memory import MemoryModel
from repro.virt.migration.bounded import BoundedTimeMigration
from repro.virt.migration.checkpoint import CheckpointStream
from repro.virt.vm import NestedVM, VMState
from repro.workloads import TpcwWorkload

GiB = 1024 ** 3
MB = 1e6


def make_vms(env, count):
    itype = M3_CATALOG.get("m3.medium")
    return [NestedVM(env, itype, workload=TpcwWorkload())
            for _ in range(count)]


class TestAnalyticEquivalence:
    """Isolated equal-size batches must match the closed forms exactly."""

    @pytest.mark.parametrize("optimized", [True, False])
    def test_full_batch_matches_analytic(self, env, optimized):
        server = BackupServer(env)
        scheduler = RestoreScheduler(server)
        vms = make_vms(env, 4)
        batch = scheduler.run_batch(
            env, [(vm, GiB) for vm in vms], "full", optimized)
        results = env.run(until=batch)
        expected = scheduler.full_restore_downtime_s(GiB, 4, optimized)
        for downtime, degraded in results:
            assert downtime == pytest.approx(expected, rel=1e-6)
            assert degraded == 0.0

    @pytest.mark.parametrize("optimized", [True, False])
    def test_lazy_batch_matches_analytic(self, env, optimized):
        server = BackupServer(env)
        scheduler = RestoreScheduler(server)
        vms = make_vms(env, 3)
        batch = scheduler.run_batch(
            env, [(vm, GiB) for vm in vms], "lazy", optimized)
        results = env.run(until=batch)
        want_down = scheduler.lazy_restore_downtime_s(concurrent=3)
        want_degraded = scheduler.lazy_restore_degraded_s(GiB, 3, optimized)
        for downtime, degraded in results:
            assert downtime == pytest.approx(want_down, rel=1e-6)
            assert degraded == pytest.approx(want_degraded, rel=1e-6)

    def test_single_full_restore_hits_aggregate(self, env):
        server = BackupServer(env)
        done = server.restore_read_flow(GiB, "full", True)
        env.run(until=done)
        assert env.now == pytest.approx(GiB / server.spec.seq_read_bps,
                                        rel=1e-6)


class TestStaggeredBatches:
    """Regression for the frozen-concurrency bug: a batch must feel
    restores launched by later, overlapping batches."""

    def test_overlapping_batches_contend(self, env):
        server = BackupServer(env)
        scheduler = RestoreScheduler(server)
        stagger = 10.0
        aggregate = server.spec.seq_read_bps  # full:opt, disk-bound

        def delayed(count, at_s):
            yield env.timeout(at_s)
            vms = make_vms(env, count)
            rows = yield scheduler.run_batch(
                env, [(vm, GiB) for vm in vms], "full", True)
            return rows

        first = env.process(delayed(2, 0.0))
        second = env.process(delayed(2, stagger))
        env.run(until=env.all_of([first, second]))

        # Piecewise fair shares: the first batch runs at aggregate/2
        # until t=10, then all four flows share aggregate/4 until the
        # first batch drains; the link never idles, so the last byte
        # lands at total/aggregate.
        first_done = stagger + \
            (GiB - (aggregate / 2) * stagger) / (aggregate / 4)
        last_done = 4 * GiB / aggregate
        isolated = scheduler.full_restore_downtime_s(GiB, 2, True)

        for downtime, _ in first.value:
            assert downtime == pytest.approx(first_done, rel=1e-6)
            assert downtime > isolated  # the old code reported exactly this
        for downtime, _ in second.value:
            assert downtime == pytest.approx(last_done - stagger, rel=1e-6)

    def test_overlap_raises_recorded_peak_concurrency(self, env):
        server = BackupServer(env)
        early = server.begin_restore()
        late = server.begin_restore()
        assert early.peak == 2 and late.peak == 2
        server.end_restore(late)
        third = server.begin_restore()
        # A restore spanning several overlaps reports the worst sharing.
        assert early.peak == 2
        server.end_restore(early)
        server.end_restore(third)
        assert server.active_restores == 0


class TestEarlyFinisher:
    def test_heterogeneous_sizes_release_bandwidth(self, env):
        # 450 MB and 900 MB images: equal shares until the small one
        # drains at 2*S/aggregate, then the big one takes the whole
        # read path and the last byte lands at (S1+S2)/aggregate.
        server = BackupServer(env)
        aggregate = server.spec.seq_read_bps
        small_bytes, big_bytes = 450 * MB, 900 * MB
        small = server.restore_read_flow(small_bytes, "full", True)
        big = server.restore_read_flow(big_bytes, "full", True)
        env.run(until=small)
        assert env.now == pytest.approx(2 * small_bytes / aggregate,
                                        rel=1e-6)
        env.run(until=big)
        assert env.now == pytest.approx(
            (small_bytes + big_bytes) / aggregate, rel=1e-6)


class TestFig7Knee:
    """The write-path knee under fair sharing, cross-checked two ways."""

    def test_below_knee_every_stream_gets_its_demand(self, env):
        server = BackupServer(env)
        for i in range(30):
            server.assign_stream(f"vm-{i}", 2.9 * MB)
        assert server.write_throttle_fraction() == 0.0
        assert all(rate == pytest.approx(2.9 * MB)
                   for rate in server.stream_fair_rates().values())

    def test_knee_position_matches_spec(self, env):
        # 2.9 MB/s TPC-W-class streams saturate the 110 MB/s write path
        # at floor(110/2.9) = 37 VMs — inside the paper's 35-40 band.
        server = BackupServer(env)
        demand = 2.9 * MB
        knee = int(server.spec.write_path_bps // demand)
        assert 35 <= knee <= 40
        for i in range(knee):
            server.assign_stream(f"vm-{i}", demand)
        assert server.write_throttle_fraction() == 0.0
        server.assign_stream("vm-over", demand)
        assert server.write_throttle_fraction() > 0.0

    def test_throttle_fraction_agrees_with_overload(self, env):
        server = BackupServer(env)
        for i in range(50):
            server.assign_stream(f"vm-{i}", 2.9 * MB)
        assert server.write_throttle_fraction() == pytest.approx(
            server.overload_fraction(), rel=1e-9)
        # Past the knee the grants flatten at the equal share.
        grants = set(server.stream_fair_rates().values())
        assert len(grants) == 1
        assert grants.pop() == pytest.approx(
            server.spec.write_path_bps / 50)


class TestStormInvariant:
    def test_mixed_commit_and_restore_load(self):
        result = run_storm()
        assert result["invariant_ok"]
        assert result["rebalances"] > 0
        assert result["per_vm"]
        for row in result["per_vm"]:
            assert row["downtime_s"] > 0.0
        for path, peak in result["peak_utilization"].items():
            assert peak <= 1.0 + 1e-9, path


class TestFailedServer:
    """A failed backup server serves no estimates and no flows."""

    def test_flows_rejected(self, env):
        server = BackupServer(env)
        server.mark_failed()
        with pytest.raises(BackupUnavailable):
            server.per_restore_bps("full", True, concurrent=1)
        with pytest.raises(BackupUnavailable):
            server.commit_flow(10 * MB)
        with pytest.raises(BackupUnavailable):
            server.skeleton_flow(5 * MB)
        with pytest.raises(BackupUnavailable):
            server.restore_read_flow(GiB, "lazy", True)
        with pytest.raises(BackupUnavailable):
            server.begin_restore()

    def test_run_batch_rejected(self, env):
        server = BackupServer(env)
        scheduler = RestoreScheduler(server)
        server.mark_failed()
        batch = scheduler.run_batch(
            env, [(vm, GiB) for vm in make_vms(env, 2)], "full", True)
        with pytest.raises(BackupUnavailable):
            env.run(until=batch)

    def test_mark_failed_is_idempotent(self, env):
        server = BackupServer(env)
        server.mark_failed()
        first = server.failed_at
        env.run(until=env.timeout(5.0))
        server.mark_failed()
        assert server.failed_at == first


class TestPerEnvironmentIds:
    def test_same_process_repeat_is_deterministic(self):
        def id_sequence():
            env = Environment(seed=7)
            return [BackupServer(env).id for _ in range(3)]

        first, second = id_sequence(), id_sequence()
        assert first == second == ["bak-0001", "bak-0002", "bak-0003"]

    def test_ids_unique_within_environment(self, env):
        assert BackupServer(env).id != BackupServer(env).id


class TestInfeasibleCommitBound:
    """A VM dirtying faster than any interval can absorb has no honest
    time bound: planners must say so instead of flooring silently."""

    def hot_memory(self):
        # ~200 GB/s of page dirtying: over the 82.5 MB budget within 1 ms.
        return MemoryModel(total_bytes=GiB, write_rate_pages=5e7)

    def test_stream_reports_infeasible(self):
        stream = CheckpointStream(self.hot_memory())
        assert not stream.commit_bound_feasible()
        # Best-effort checkpointing still produces a finite interval.
        assert stream.interval_s() > 0.0

    def test_bounded_plan_marks_state_unsafe(self, env):
        server = BackupServer(env)
        outcome = BoundedTimeMigration(
            self.hot_memory(), server).plan(120.0)
        assert not outcome.state_safe

    def test_calm_vm_stays_safe(self, env):
        server = BackupServer(env)
        calm = MemoryModel(total_bytes=GiB, write_rate_pages=50.0)
        outcome = BoundedTimeMigration(calm, server).plan(120.0)
        assert outcome.state_safe
        assert outcome.within_deadline


class TestCommitBurst:
    def test_lone_final_commit_bursts(self, env):
        # A suspended VM's final commit on an idle datapath runs at the
        # full write path, far above the worst-case share the time
        # bound was provisioned for.
        server = BackupServer(env)
        done = server.commit_flow(82.5 * MB)
        env.run(until=done)
        assert env.now == pytest.approx(
            82.5 * MB / server.spec.write_path_bps, rel=1e-6)

    def test_storm_commit_degenerates_to_worst_case(self, env):
        # With a full complement of 40 committers the fair share is
        # exactly the provisioned commit_bandwidth_bps.
        server = BackupServer(env)
        for _ in range(40):
            server.commit_flow(MB)
        per_flow = {f.rate for f in server.datapath.flows}
        assert len(per_flow) == 1
        assert per_flow.pop() == pytest.approx(
            server.spec.write_path_bps / 40)
