"""Shard subsystem tests: mailbox ordering, apportionment, and the
bit-identity contract — a sharded fleet cell must replay the exact
single-process run at every shard count, calm or stormy, with or
without a chaos plan, including multi-epoch park/migrate rebalancing.
"""

import pytest

from repro.core.shard import (
    MarketSpec,
    ShardConfig,
    ShardedCell,
    ShardWorkerError,
    apportion,
)
from repro.core.shard.mailbox import Mailbox, Outbox, merge_messages
from repro.core.shard.messages import (
    MigrateAck,
    MigrateRequest,
    ParkRequest,
    PriceCrossing,
    RevocationWarning,
    SlaSegment,
    Stamp,
    StormReport,
)
from repro.experiments.chaos import default_chaos_plan
from repro.traces.model import MarketParams

#: Spot-price dynamics spiky enough that a 1-day, 8-VM cell sees
#: revocation storms, price crossings, and restore migrations — the
#: full message taxonomy — in a few seconds of wall clock.  The
#: on-demand price must match the m3.medium catalog entry (0.07):
#: the pool bids the catalog price, and a higher trace ceiling would
#: reject the bid at boot.
SPIKY_PARAMS = MarketParams(
    on_demand_price=0.07,
    base_ratio_mean=0.25,
    spike_rate_per_hour=0.3,
    spike_duration_mean_s=1800.0,
    change_interval_s=600.0,
)


def spiky_markets(zones="ab"):
    return [MarketSpec(type_name="m3.medium", zone_name=f"us-east-1{z}",
                       market_params=SPIKY_PARAMS) for z in zones]


def calm_markets(zones="abcd"):
    return [MarketSpec(type_name="m3.2xlarge", zone_name=f"us-east-1{z}")
            for z in zones]


def crossing(time, market, seq, key="m"):
    return PriceCrossing(stamp=Stamp(time, market, seq),
                         market_key=key, price=0.1, band="above")


class TestOutbox:
    def test_stamps_are_monotone_per_market(self):
        outbox = Outbox(3)
        first = outbox.stamp(5.0)
        second = outbox.stamp(5.0)
        third = outbox.stamp(9.0)
        assert first == Stamp(5.0, 3, 0)
        assert second == Stamp(5.0, 3, 1)
        assert third == Stamp(9.0, 3, 2)
        assert first < second < third

    def test_time_must_not_regress(self):
        outbox = Outbox(0)
        outbox.stamp(10.0)
        with pytest.raises(AssertionError):
            outbox.stamp(9.0)

    def test_drain_empties_the_outbox(self):
        outbox = Outbox(0)
        outbox.put(crossing(1.0, 0, 0))
        assert len(outbox) == 1
        assert [m.stamp.time for m in outbox.drain()] == [1.0]
        assert len(outbox) == 0
        assert outbox.drain() == []


class TestMerge:
    def test_merge_is_partition_independent(self):
        a = [crossing(1.0, 0, 0), crossing(3.0, 0, 1)]
        b = [crossing(1.0, 1, 0), crossing(2.0, 1, 1)]
        merged = merge_messages([a, b])
        assert merged == merge_messages([b, a])
        assert merged == merge_messages([a + b])
        assert [m.stamp for m in merged] == sorted(m.stamp for m in merged)

    def test_equal_times_break_ties_by_market_index(self):
        late_market = crossing(4.0, 7, 0)
        early_market = crossing(4.0, 2, 0)
        merged = merge_messages([[late_market], [early_market]])
        assert merged == [early_market, late_market]

    def test_mailbox_accumulates_batches_in_order(self):
        mailbox = Mailbox()
        first = mailbox.deliver([[crossing(1.0, 0, 0)]])
        second = mailbox.deliver([[crossing(2.0, 1, 0)],
                                  [crossing(2.0, 0, 1)]])
        assert len(first) == 1 and len(second) == 2
        assert [m.stamp.market for m in mailbox.messages] == [0, 0, 1]


class TestApportion:
    def test_even_split(self):
        assert apportion(100, [1.0, 1.0, 1.0, 1.0]) == [25, 25, 25, 25]

    def test_largest_remainder_gets_the_leftovers(self):
        assert apportion(10, [1.0, 1.0, 1.0]) == [4, 3, 3]
        assert apportion(7, [0.5, 0.25, 0.25]) == [3, 2, 2]

    def test_counts_sum_to_total(self):
        counts = apportion(101, [0.3, 0.21, 0.17, 0.32])
        assert sum(counts) == 101
        assert all(count >= 0 for count in counts)

    def test_invalid_inputs_are_rejected(self):
        with pytest.raises(ValueError):
            apportion(-1, [1.0])
        with pytest.raises(ValueError):
            apportion(5, [])
        with pytest.raises(ValueError):
            apportion(5, [0.0, 0.0])
        with pytest.raises(ValueError):
            apportion(5, [1.0, -1.0])


def run_digests(total_vms, markets, config, shard_counts, **kwargs):
    results = []
    for shards in shard_counts:
        cell = ShardedCell(total_vms=total_vms, markets=markets,
                           config=config)
        results.append(cell.run(shards=shards, **kwargs))
    return results


class TestBitIdentity:
    def test_calm_bench_cell_is_identical_at_1_2_4_shards(self):
        """The PR 5 fleet-bench scenario, shrunk: calm m3.2xlarge
        markets, steady flush on — digests match at every width."""
        results = run_digests(24, calm_markets("abcd"),
                              ShardConfig(seed=11, days=1.0), (1, 2, 4))
        digests = {r.digest() for r in results}
        assert len(digests) == 1
        assert results[0].shards == 1 and results[-1].shards == 4
        summary = results[0].summary
        assert summary["markets"] == 4
        assert summary["vm_hours"] == pytest.approx(24 * 24.0, rel=0.02)
        assert summary["revocation_events"] == 0

    def test_stormy_cell_is_identical_and_exercises_the_taxonomy(self):
        """Spiky markets: warnings, storms, crossings, and SLA segments
        must all merge identically across process boundaries."""
        results = run_digests(8, spiky_markets("ab"),
                              ShardConfig(seed=5, days=1.0), (1, 2))
        assert results[0].digest() == results[1].digest()
        kinds = {type(m).__name__ for m in results[0].messages}
        assert {"RevocationWarning", "StormReport", "PriceCrossing",
                "SlaSegment"} <= kinds
        assert results[0].summary["revocation_events"] > 0
        assert results[0].summary["migrations"] > 0

    def test_chaos_plan_run_is_identical_across_shards(self):
        config = ShardConfig(seed=3, days=1.0,
                             faults=default_chaos_plan())
        results = run_digests(8, spiky_markets("ab"), config, (1, 2))
        assert results[0].digest() == results[1].digest()
        assert results[0].summary["migrations"] > 0

    def test_message_stream_is_stamp_sorted(self):
        results = run_digests(8, spiky_markets("ab"),
                              ShardConfig(seed=5, days=1.0), (2,))
        stamps = [m.stamp for m in results[0].messages]
        assert stamps == sorted(stamps)


class TestEpochsAndRebalance:
    def test_park_and_migrate_round_trip(self):
        """A coordinator rebalance that parks in one market and
        migrates out of another lands identically at 1 and 2 shards."""

        def rebalance(epoch, batch, cell):
            assert epoch == 0
            return [ParkRequest(market=0, count=2),
                    MigrateRequest(market=1, count=2, dest_market=0)]

        results = run_digests(
            12, calm_markets("ab"), ShardConfig(seed=7, days=1.0),
            (1, 2), epochs=2, rebalance=rebalance)
        assert results[0].digest() == results[1].digest()
        for result in results:
            acks = [m for m in result.messages
                    if isinstance(m, MigrateAck)]
            assert [ack.released for ack in acks] == [2]
            assert acks[0].dest_market == 0
            by_market = {r.market: r for r in result.reports}
            assert by_market[0].parked == 2
            # 6 booted + 2 migrated in; the source keeps its stubs
            # on the customer roster but released the running VMs.
            assert by_market[0].vms == 8

    def test_rebalance_not_called_after_last_epoch(self):
        calls = []

        def rebalance(epoch, batch, cell):
            calls.append(epoch)
            return []

        run_digests(4, calm_markets("ab"),
                    ShardConfig(seed=7, days=0.25), (1,),
                    epochs=3, rebalance=rebalance)
        assert calls == [0, 1]


class TestValidationAndErrors:
    def test_duplicate_markets_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            ShardedCell(total_vms=4,
                        markets=calm_markets("aa"),
                        config=ShardConfig(days=0.25))

    def test_weights_must_match_markets(self):
        with pytest.raises(ValueError, match="one weight per market"):
            ShardedCell(total_vms=4, markets=calm_markets("ab"),
                        config=ShardConfig(days=0.25), weights=[1.0])

    def test_shards_clamped_to_market_count(self):
        cell = ShardedCell(total_vms=4, markets=calm_markets("ab"),
                           config=ShardConfig(seed=7, days=0.25))
        result = cell.run(shards=16)
        assert result.shards == 2

    def test_worker_failure_surfaces_the_traceback(self):
        bad = [MarketSpec(type_name="m3.medium", zone_name="us-east-1a"),
               MarketSpec(type_name="no.such.type",
                          zone_name="us-east-1b")]
        cell = ShardedCell(total_vms=4, markets=bad,
                           config=ShardConfig(days=0.25))
        with pytest.raises(ShardWorkerError, match="no.such.type"):
            cell.run(shards=2)

    def test_unknown_market_request_is_rejected(self):
        cell = ShardedCell(total_vms=4, markets=calm_markets("ab"),
                           config=ShardConfig(seed=7, days=0.25))
        with pytest.raises(KeyError, match="unknown market index"):
            cell.run(shards=1, epochs=2,
                     rebalance=lambda e, b, c: [ParkRequest(market=9,
                                                            count=1)])
