"""SLA-under-chaos: Figure 12's story told in error budgets.

Figure 12 ranks SpotCheck's pool-management policies by how much raw
downtime/degradation they inflict.  This scenario re-renders that
comparison the way a customer would see it: the chaos fault plan
(PR 3's control-plane fire) runs under live diurnal + flash-crowd
traffic, and each policy is scored by **per-customer SLA attainment**
— the fraction of requests that succeeded within their latency target
— instead of raw downtime seconds.

Everything in the pipeline is closed-form and seeded, so the digest is
bit-stable: CI pins it (``repro sla --check-golden``) and additionally
checks that the *ordering* of policies by SLA attainment matches their
ordering by raw unavailability + degradation — Figure 12's ranking
must survive the change of units.
"""

from repro.experiments.chaos import default_chaos_plan
from repro.traffic import (
    CustomerTraffic,
    DiurnalRate,
    FlashCrowd,
    SlaTarget,
    TrafficMix,
)

#: The policies the smoke compares.  1P-M sticks to one stable market;
#: 4P-COST chases the cheapest (most volatile) markets — Figure 12
#: separates them cleanly, so the ordering check has teeth.
DEFAULT_POLICIES = ("1P-M", "4P-COST")


def default_traffic_mix(days=14.0):
    """Diurnal web traffic plus a flash crowd riding on it.

    Two customer groups: an interactive "web" group with a day/night
    sinusoid and a flash crowd on day 2 (tight 100 ms / 99.5% SLO),
    and a steadier "api" group with a shallower sinusoid and a looser
    250 ms / 99% SLO.  Weekly SLO windows; both groups' patterns are
    closed-form, so expected window volumes are exact.
    """
    day = 24 * 3600.0
    window_s = min(7 * day, days * day)
    web = DiurnalRate(base_rps=80.0, amplitude=0.6, period_s=day,
                      phase_s=0.25 * day)
    crowd = FlashCrowd(start_s=1.5 * day, peak_rps=400.0,
                       ramp_s=1800.0, hold_s=7200.0, decay_s=3600.0)
    api = DiurnalRate(base_rps=30.0, amplitude=0.2, period_s=day)
    return TrafficMix(
        groups=(
            CustomerTraffic("web", web + crowd,
                            SlaTarget(latency_ms=100.0, availability=0.9975,
                                      window_s=window_s),
                            weight=3.0),
            CustomerTraffic("api", api,
                            SlaTarget(latency_ms=250.0, availability=0.99,
                                      window_s=window_s),
                            weight=1.0),
        ),
        report_interval_s=6 * 3600.0,
    )


def run_sla(seed=11, days=14.0, vms=12, policies=DEFAULT_POLICIES,
            plan=None, mix=None):
    """Run the chaos plan under traffic for each policy.

    Returns ``(results, digest)``: ``results`` maps policy name to the
    full scenario summary (including the ``"sla"`` section), and
    ``digest`` is the golden-comparable extract.
    """
    from repro.experiments.scenario import PolicySimulation, ScenarioConfig

    if plan is None:
        plan = default_chaos_plan()
    if mix is None:
        mix = default_traffic_mix(days)

    results = {}
    archive = None
    for policy in policies:
        config = ScenarioConfig(policy=policy, seed=seed, days=days,
                                vms=vms, faults=plan, traffic=mix)
        simulation = PolicySimulation(config, archive=archive)
        if archive is None:
            # Every policy must see identical prices (and identical
            # traffic), as in the paper's grid.
            archive = simulation.build_archive(seed, config.duration_s,
                                               config.market_params)
            simulation = PolicySimulation(config, archive=archive)
        results[policy] = simulation.run()
    return results, sla_digest(results)


def policy_attainment(summary):
    """Request-weighted SLA attainment across a run's customer groups."""
    total = bad = 0.0
    for snapshot in summary["sla"].values():
        total += snapshot["total_requests"]
        bad += snapshot["failed_requests"] + snapshot["slow_requests"]
    if total <= 0:
        return 1.0
    return 1.0 - bad / total


def sla_digest(results):
    """Golden-comparable extract: rounded per-policy SLA outcomes.

    Floats are rounded (attainment to 8 decimal places, latencies to
    2, request counts to integers) so the digest survives platform
    libm differences while still pinning every meaningful drift.
    """
    digest = {"policies": {}}
    for policy, summary in sorted(results.items()):
        entry = {
            "attainment": round(policy_attainment(summary), 8),
            "unavailability_pct": round(summary["unavailability_pct"], 6),
            "degradation_pct": round(summary["degradation_pct"], 6),
            "customers": {},
        }
        for name, snapshot in sorted(summary["sla"].items()):
            entry["customers"][name] = {
                "requests": int(round(snapshot["total_requests"])),
                "failed": int(round(snapshot["failed_requests"])),
                "attainment": round(snapshot["attainment"], 8),
                "p50_ms": round(snapshot["p50_ms"], 2),
                "p99_ms": round(snapshot["p99_ms"], 2),
                "breaches": snapshot["breaches"],
                "violation_s": round(snapshot["violation_s"], 1),
            }
        drive = summary["traffic_drive"]
        entry["kernel_wakes"] = drive["wakes"]
        entry["segments"] = drive["segments"]
        digest["policies"][policy] = entry
    digest["attainment_order"] = sorted(
        digest["policies"],
        key=lambda p: (-digest["policies"][p]["attainment"], p))
    digest["downtime_order"] = sorted(
        digest["policies"],
        key=lambda p: (digest["policies"][p]["unavailability_pct"]
                       + digest["policies"][p]["degradation_pct"], p))
    return digest


def check_sla_digest(digest, golden):
    """Compare against a golden digest; returns mismatch lines.

    Beyond equality, asserts the Figure 12 invariant: ranking policies
    by SLA attainment must match ranking them by raw unavailability +
    degradation.
    """
    problems = []

    def walk(path, want, got):
        if isinstance(want, dict) and isinstance(got, dict):
            for key in sorted(set(want) | set(got)):
                walk(f"{path}.{key}" if path else key,
                     want.get(key), got.get(key))
        elif want != got:
            problems.append(f"{path}: golden {want!r} != observed {got!r}")

    walk("", golden, digest)
    if digest.get("attainment_order") != digest.get("downtime_order"):
        problems.append(
            f"ordering: attainment ranks policies "
            f"{digest.get('attainment_order')} but downtime ranks "
            f"{digest.get('downtime_order')} — Figure 12's story changed")
    return problems
