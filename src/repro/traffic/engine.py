"""The open-loop traffic engine: fleet chaos as per-customer SLAs.

The engine overlays each customer's arrival pattern on their live VM
fleet *while the simulation runs*, without one kernel event per
request.  Following the spot-market drive's event-elision discipline
(PR 5), it wakes only at **condition boundaries**:

* **VM state changes** cost no kernel events at all — the engine
  registers a listener on every tracked VM and batch-accounts the
  elapsed segment inline, under the *old* state, the moment the
  transition happens;
* **fleet membership changes** (a VM granted or relinquished) likewise
  flush inline through a customer listener;
* **pattern breakpoints** (flash-crowd corners), **SLO window edges**,
  and **reporting epochs** are the only wake-ups the engine schedules,
  via exact absolute-time timeouts.

Between boundaries nothing happens: request *counts* come from the
patterns' closed-form interval integrals, and latency mass from the
ledgers' closed-form lognormal buckets.  Kernel event count is
O(breakpoints + epochs + windows), and accounting work is O(segments x
fleet size) — both independent of request volume, so two million users
cost exactly what twenty do (asserted by the ``traffic`` microbench in
``repro bench``).
"""

from dataclasses import dataclass, field

from repro.traffic.patterns import ConstantRate, RatePattern
from repro.traffic.sla import SlaLedger, SlaTarget
from repro.virt.vm import VMState
from repro.workloads.requests import conditions_for_state
from repro.workloads.tpcw import TpcwWorkload


@dataclass(frozen=True)
class CustomerTraffic:
    """One customer's traffic contract: a pattern and an SLO.

    ``weight`` sizes the customer's share of a scenario fleet (see
    :class:`TrafficMix`); ``latency_cov`` the spread of the
    per-condition lognormal.
    """

    name: str = "customer"
    pattern: RatePattern = field(default_factory=ConstantRate)
    sla: SlaTarget = field(default_factory=SlaTarget)
    weight: float = 1.0
    latency_cov: float = 0.35

    def __post_init__(self):
        if self.weight <= 0:
            raise ValueError("weight must be positive")


@dataclass(frozen=True)
class TrafficMix:
    """A scenario's customer population (carried by ScenarioConfig)."""

    groups: tuple = ()
    report_interval_s: float = 3600.0

    def __post_init__(self):
        if not all(isinstance(g, CustomerTraffic) for g in self.groups):
            raise TypeError("groups must be CustomerTraffic instances")
        if self.report_interval_s <= 0:
            raise ValueError("report_interval_s must be positive")

    def allocate_vms(self, total):
        """Deterministic largest-remainder split of ``total`` VMs.

        Every group gets at least one VM; remainders go to the
        heaviest groups first (ties broken by declaration order).
        """
        if not self.groups:
            raise ValueError("traffic mix has no customer groups")
        if total < len(self.groups):
            raise ValueError(
                f"{total} VMs cannot cover {len(self.groups)} customers")
        weights = [group.weight for group in self.groups]
        scale = (total - len(self.groups)) / sum(weights)
        counts = [1 + int(weight * scale) for weight in weights]
        remainders = [weight * scale - int(weight * scale)
                      for weight in weights]
        order = sorted(range(len(self.groups)),
                       key=lambda i: (-remainders[i], i))
        for i in order[:total - sum(counts)]:
            counts[i] += 1
        return counts


class _Watch:
    """Per-customer engine state: tracked VMs and the ledger."""

    __slots__ = ("customer", "traffic", "ledger", "vms", "last",
                 "window_end")

    def __init__(self, customer, traffic, ledger):
        self.customer = customer
        self.traffic = traffic
        self.ledger = ledger
        self.vms = {}
        self.last = None
        self.window_end = None


class TrafficEngine:
    """Batch-accounts open-loop traffic over customers' VM fleets.

    Usage::

        engine = TrafficEngine(env, obs=obs)
        engine.watch(customer, CustomerTraffic("web", pattern, sla))
        engine.start(until=duration_s)   # after the fleet is up
        env.run(until=duration_s)
        report = engine.report()

    ``watch`` may be called before the customer has any VMs; the
    engine tracks grants and relinquishes through customer listeners.
    Accounting begins at :meth:`start` (requests before it are not
    scored), and every ledger is final once the engine's process
    reaches ``until`` (or :meth:`finalize` is called early).
    """

    def __init__(self, env, obs=None, report_interval_s=3600.0,
                 checkpointing_while_running=True):
        if report_interval_s <= 0:
            raise ValueError("report_interval_s must be positive")
        self.env = env
        self.obs = obs
        self.report_interval_s = report_interval_s
        self.checkpointing_while_running = checkpointing_while_running
        self._watches = {}
        self._started = False
        self._finalized = False
        self.started_at = None
        self.until = None
        self._fallback_workload = TpcwWorkload()
        self.stats = {
            "wakes": 0,
            "breakpoint_wakes": 0,
            "report_wakes": 0,
            "window_rolls": 0,
            "state_flushes": 0,
            "membership_flushes": 0,
            "segments": 0,
            "requests": 0.0,
        }

    # -- registration ---------------------------------------------------

    def watch(self, customer, traffic):
        """Track ``customer`` under the ``traffic`` contract."""
        if customer.id in self._watches:
            raise ValueError(f"{customer.id} is already watched")
        ledger = SlaLedger(traffic.name, traffic.sla, obs=self.obs,
                           latency_cov=traffic.latency_cov)
        watch = _Watch(customer, traffic, ledger)
        self._watches[customer.id] = watch
        for vm in customer.vms:
            self._track_vm(watch, vm)
        customer.on_vm_change(self._on_membership)
        return ledger

    def _track_vm(self, watch, vm):
        watch.vms[vm.id] = vm
        vm.on_state_change(self._on_vm_state)

    # -- inline boundaries (no kernel events) ---------------------------

    def _on_membership(self, customer, vm, added):
        watch = self._watches.get(customer.id)
        if watch is None:
            return
        if self._started and not self._finalized:
            self._flush_watch(watch, self.env.now)
            self.stats["membership_flushes"] += 1
        if added:
            if vm.id not in watch.vms:
                self._track_vm(watch, vm)
        else:
            watch.vms.pop(vm.id, None)

    def _on_vm_state(self, vm, old_state, new_state):
        customer = vm.customer
        if customer is None:
            return
        watch = self._watches.get(customer.id)
        if watch is None or vm.id not in watch.vms:
            return
        if self._started and not self._finalized:
            # The elapsed segment ran under the *old* state.
            self._flush_watch(watch, self.env.now,
                              override_vm=vm, override_state=old_state)
            self.stats["state_flushes"] += 1

    # -- batch accounting ----------------------------------------------

    def _flush_watch(self, watch, now, override_vm=None,
                     override_state=None):
        """Account every request that arrived in ``[watch.last, now)``.

        The engine flushes at every boundary, so each VM held one
        state for the whole segment (``override_state`` supplies the
        pre-transition state when the flush *is* the transition).
        Durations are capacity-weighted: each VM's share of the
        segment is ``duration / fleet_size``, so a customer's
        ``down_s`` reads as lost capacity-seconds.
        """
        last = watch.last
        if last is None or now <= last:
            return
        requests = watch.traffic.pattern.requests_between(last, now)
        self.stats["requests"] += requests
        ledger = watch.ledger
        vms = watch.vms
        if not vms:
            # No capacity at all: every arrival fails.
            ledger.account_down(last, now, requests)
            self.stats["segments"] += 1
            watch.last = now
            return
        share = requests / len(vms)
        span = (now - last) / len(vms)
        for vm in vms.values():
            state = override_state if vm is override_vm else vm.state
            conditions = conditions_for_state(
                state, self.checkpointing_while_running)
            if conditions is None:
                ledger.account_down(last, last + span, share)
            else:
                workload = vm.workload
                if workload is None or \
                        not hasattr(workload, "response_time_ms"):
                    workload = self._fallback_workload
                ledger.account_latency(
                    last, last + span, share,
                    workload.response_time_ms(conditions),
                    degraded=state is not VMState.RUNNING)
        self.stats["segments"] += len(vms)
        watch.last = now

    def _flush_all(self, now):
        for watch in self._watches.values():
            self._flush_watch(watch, now)

    # -- the wake schedule ----------------------------------------------

    def start(self, until):
        """Begin accounting now; returns the engine's sim process."""
        if self._started:
            raise ValueError("traffic engine already started")
        if not self._watches:
            raise ValueError("no customers watched")
        now = self.env.now
        if until <= now:
            raise ValueError(f"until={until} is not in the future")
        self._started = True
        self.started_at = now
        self.until = until
        for watch in self._watches.values():
            watch.last = now
            self._open_window(watch, now)
        self._breakpoints = sorted(
            {bp for watch in self._watches.values()
             for bp in watch.traffic.pattern.breakpoints()
             if now < bp < until})
        return self.env.process(self._run())

    def _open_window(self, watch, start):
        end = min(start + watch.traffic.sla.window_s, self.until)
        watch.window_end = end
        watch.ledger.begin_window(
            start, end, watch.traffic.pattern.requests_between(start, end))

    def _run(self):
        env = self.env
        breakpoints = self._breakpoints
        bp_index = 0
        next_report = min(self.started_at + self.report_interval_s,
                          self.until)
        while True:
            target = min(next_report, self.until)
            if bp_index < len(breakpoints):
                target = min(target, breakpoints[bp_index])
            for watch in self._watches.values():
                target = min(target, watch.window_end)
            if target > env.now:
                yield env.timeout_at(target)
                self.stats["wakes"] += 1
            now = env.now
            self._flush_all(now)
            while bp_index < len(breakpoints) and \
                    breakpoints[bp_index] <= now:
                bp_index += 1
                self.stats["breakpoint_wakes"] += 1
            for watch in self._watches.values():
                if now >= watch.window_end and now < self.until:
                    self._roll_window(watch, now)
            if now >= next_report:
                self._report(now)
                self.stats["report_wakes"] += 1
                next_report = min(next_report + self.report_interval_s,
                                  self.until) if next_report < self.until \
                    else self.until + 1.0
            if now >= self.until:
                self.finalize()
                return

    def _roll_window(self, watch, now):
        self._close_window(watch)
        self._open_window(watch, watch.window_end)

    def _close_window(self, watch):
        record = watch.ledger.roll_window()
        self.stats["window_rolls"] += 1
        obs = self.obs
        if obs is not None:
            obs.emit("sla.window", customer=watch.traffic.name,
                     window=record["index"], requests=record["requests"],
                     bad=record["bad"], burn=record["burn"],
                     breached=record["breached"])

    def _report(self, now):
        obs = self.obs
        if obs is None:
            return
        for watch in self._watches.values():
            ledger = watch.ledger
            obs.emit("sla.report", customer=watch.traffic.name,
                     requests=ledger.total_requests,
                     attainment=ledger.attainment,
                     error_rate=ledger.error_rate,
                     burn=ledger.window_burn)
            obs.metrics.gauge(
                "sla_attainment",
                customer=watch.traffic.name).set(ledger.attainment)

    def finalize(self, now=None):
        """Flush to ``now`` and close the partial windows (idempotent)."""
        if self._finalized or not self._started:
            return
        self._finalized = True
        now = self.env.now if now is None else now
        self._flush_all(now)
        for watch in self._watches.values():
            self._close_window(watch)
        self._report(now)

    # -- reporting ------------------------------------------------------

    def ledger(self, name):
        """The ledger of the customer traffic named ``name``."""
        for watch in self._watches.values():
            if watch.traffic.name == name:
                return watch.ledger
        raise KeyError(name)

    def report(self):
        """{traffic name: ledger snapshot} for every watched customer."""
        return {watch.traffic.name: watch.ledger.snapshot()
                for watch in self._watches.values()}

    def drive_stats(self):
        """Kernel-event and batching counters (see the microbench)."""
        return dict(self.stats)
