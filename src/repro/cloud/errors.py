"""Exception types raised by the cloud substrate."""


class CloudError(Exception):
    """Base class for errors raised by the native cloud."""


class NotFound(CloudError):
    """A referenced resource (instance, volume, interface) does not exist."""


class InvalidOperation(CloudError):
    """The operation is not valid in the resource's current state."""


class CapacityError(CloudError):
    """The platform has no capacity to satisfy the request.

    The paper notes that native platforms "occasionally run out of
    on-demand servers if the demand for them exceeds their supply";
    SpotCheck's hot-spare and staging-server policies exist to absorb
    exactly this failure.
    """


class BidTooLow(CloudError):
    """A spot request's bid is below the current market price."""
