"""The coordinator: customers, portfolio split, cross-market moves.

:class:`ShardedCell` owns everything a market must not: the fleet-wide
VM count and its apportionment across markets, the epoch clock, the
merged event history, and rebalancing decisions.  Markets are sorted
by key and indexed once; shard assignment is round-robin over that
index, so ``shards=1`` (everything inline in this process) and
``shards=N`` (fork + pipe workers) partition the *same* market list —
and because each market's simulation depends only on its own seed and
its own requests, and the mailbox merge is stamp-ordered, every shard
count replays one canonical run.  ``FleetResult.digest()`` is the
bit-identity witness the tests and the fleet bench assert on.

Worker protocol: long-lived forked processes (shard state must survive
across epochs), one duplex pipe each, strict request/reply —
``ApplyCommand``/``RunCommand``/``FinalizeCommand``/``StopCommand`` in,
:class:`~repro.core.shard.messages.ShardReply` out.  A worker-side
exception is formatted into ``ShardReply.error`` rather than raised
(raising would hang the pipe) and re-raised here as
:class:`ShardWorkerError`.
"""

import hashlib
import json
import multiprocessing
import traceback
from dataclasses import asdict, dataclass

from repro.core.shard.mailbox import Mailbox
from repro.core.shard.market import MarketShard
from repro.core.shard.messages import (
    ApplyCommand,
    FinalizeCommand,
    ProvisionRequest,
    RunCommand,
    ShardReply,
    StopCommand,
)


class ShardWorkerError(RuntimeError):
    """A shard worker failed; carries the worker-side traceback."""


def apportion(total, weights):
    """Largest-remainder split of ``total`` items over ``weights``.

    Deterministic: quotas are floored, leftovers go to the largest
    fractional remainders, ties broken by position.  Every returned
    count is >= 0 and the counts sum to ``total`` exactly.
    """
    if total < 0:
        raise ValueError("total must be non-negative")
    if not weights or any(w < 0 for w in weights):
        raise ValueError("weights must be non-empty and non-negative")
    scale = sum(weights)
    if scale <= 0:
        raise ValueError("weights must sum to a positive value")
    quotas = [total * w / scale for w in weights]
    counts = [int(q) for q in quotas]
    leftovers = total - sum(counts)
    order = sorted(range(len(weights)),
                   key=lambda i: (counts[i] - quotas[i], i))
    for i in order[:leftovers]:
        counts[i] += 1
    return counts


def _shard_worker(conn, config, assignments):
    """Worker main: build the shard, then serve commands until Stop."""
    try:
        shard = MarketShard(assignments, config)
        conn.send(ShardReply())  # ready handshake
    except BaseException:
        conn.send(ShardReply(error=traceback.format_exc()))
        return
    while True:
        command = conn.recv()
        if isinstance(command, StopCommand):
            return
        try:
            conn.send(shard.execute(command))
        except BaseException:
            conn.send(ShardReply(error=traceback.format_exc()))


class _InlineHost:
    """shards=1: the whole cell runs in the coordinator process."""

    def __init__(self, config, assignments):
        self.shard = MarketShard(assignments, config)

    def submit(self, command):
        self._reply = self.shard.execute(command)

    def collect(self):
        return self._reply

    def stop(self):
        pass


class _ProcessHost:
    """One forked worker; submit/collect split so shards overlap."""

    def __init__(self, config, assignments):
        ctx = multiprocessing.get_context("fork")
        self.conn, child = ctx.Pipe()
        self.process = ctx.Process(
            target=_shard_worker, args=(child, config, assignments),
            daemon=True)
        self.process.start()
        child.close()
        self._check(self.conn.recv())  # ready handshake

    def _check(self, reply):
        if reply.error is not None:
            self.stop()
            raise ShardWorkerError(reply.error)
        return reply

    def submit(self, command):
        self.conn.send(command)

    def collect(self):
        return self._check(self.conn.recv())

    def stop(self):
        try:
            if self.process.is_alive():
                self.conn.send(StopCommand())
            self.conn.close()
        except (BrokenPipeError, OSError):
            pass
        self.process.join(timeout=30)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=5)


@dataclass
class FleetResult:
    """Merged outcome of one sharded-cell run."""

    shards: int
    total_vms: int
    markets: list
    reports: list
    messages: list
    summary: dict

    def digest(self):
        """sha256 over the canonical JSON of everything observable.

        Identical digests across shard counts are the bit-identity
        proof: merged summary, the stamp-ordered message stream, and
        every per-market report reduce to the same bytes.
        """
        payload = {
            "summary": self.summary,
            "messages": [
                {"type": type(m).__name__, **asdict(m)}
                for m in self.messages],
            "reports": [asdict(r) for r in self.reports],
        }
        text = json.dumps(payload, sort_keys=True)
        return hashlib.sha256(text.encode("utf-8")).hexdigest()


class ShardedCell:
    """A fleet cell partitioned over (type, zone) market shards."""

    def __init__(self, total_vms, markets, config, weights=None):
        if total_vms < 1:
            raise ValueError("total_vms must be at least 1")
        if not markets:
            raise ValueError("at least one market is required")
        keys = [spec.key for spec in markets]
        if len(set(keys)) != len(keys):
            raise ValueError(f"duplicate market keys in {keys}")
        #: Canonical market order: sorted by key, indexed once.  The
        #: index is the logical-clock tiebreaker and the request
        #: address — never a process id.
        self.markets = sorted(markets, key=lambda spec: spec.key)
        self.config = config
        self.total_vms = total_vms
        if weights is None:
            weights = [1.0] * len(self.markets)
        if len(weights) != len(self.markets):
            raise ValueError("one weight per market required")
        self.counts = apportion(total_vms, weights)
        self.mailbox = Mailbox()

    def _assignments(self, shards):
        """Round-robin market -> shard assignment by market index."""
        buckets = [[] for _ in range(shards)]
        for index, (spec, count) in enumerate(
                zip(self.markets, self.counts)):
            buckets[index % shards].append((index, spec, count))
        return [bucket for bucket in buckets if bucket]

    def run(self, shards=1, epochs=1, rebalance=None):
        """Execute the cell; returns the merged :class:`FleetResult`.

        ``epochs`` splits the horizon into equal message/rebalance
        rounds.  ``rebalance(epoch, batch, cell)`` (optional) maps the
        epoch's merged message batch to the next epoch's requests —
        park/migrate decisions live here, in the coordinator, where
        the full cross-market picture is.
        """
        if shards < 1:
            raise ValueError("shards must be at least 1")
        if epochs < 1:
            raise ValueError("epochs must be at least 1")
        shards = min(shards, len(self.markets))
        assignments = self._assignments(shards)
        host_cls = _InlineHost if shards == 1 else _ProcessHost
        hosts = []
        try:
            for bucket in assignments:
                hosts.append(host_cls(self.config, bucket))
            market_host = {}
            for host, bucket in zip(hosts, assignments):
                for index, _spec, _count in bucket:
                    market_host[index] = host
            requests = [ProvisionRequest(market=index, count=count)
                        for index, count in enumerate(self.counts)
                        if count > 0]
            horizon = self.config.duration_s
            boundaries = [horizon * (e + 1) / epochs
                          for e in range(epochs)]
            for epoch, until in enumerate(boundaries):
                batch = self._round(hosts, market_host,
                                    ApplyCommand(tuple(requests)))
                # Acks answer migrate requests: reprovision the freed
                # VMs in their destination markets, same epoch.
                followups = [
                    ProvisionRequest(market=ack.dest_market,
                                     count=ack.released)
                    for ack in batch["acks"] if ack.released > 0]
                if followups:
                    self._round(hosts, market_host,
                                ApplyCommand(tuple(followups)))
                run_batch = self._broadcast(hosts, RunCommand(until))
                if rebalance is not None and epoch + 1 < epochs:
                    requests = list(rebalance(
                        epoch, run_batch["messages"], self) or ())
                else:
                    requests = []
            final = self._broadcast(hosts, FinalizeCommand())
            reports = sorted(final["reports"],
                             key=lambda report: report.market)
        finally:
            for host in hosts:
                host.stop()

        summary = self._merge_summaries(reports)
        return FleetResult(
            shards=shards, total_vms=self.total_vms,
            markets=[spec.key for spec in self.markets],
            reports=reports, messages=self.mailbox.messages,
            summary=summary)

    # -- command rounds -------------------------------------------------

    def _round(self, hosts, market_host, command):
        """Apply a command, routing per-market requests to their hosts."""
        per_host = {id(host): [] for host in hosts}
        for request in command.requests:
            host = market_host.get(request.market)
            if host is None:
                raise KeyError(f"unknown market index {request.market}")
            per_host[id(host)].append(request)
        for host in hosts:
            host.submit(ApplyCommand(tuple(per_host[id(host)])))
        return self._gather(hosts)

    def _broadcast(self, hosts, command):
        for host in hosts:
            host.submit(command)
        return self._gather(hosts)

    def _gather(self, hosts):
        """Collect replies in host order, then stamp-merge the streams.

        Collection order is irrelevant to the outcome — the mailbox
        re-sorts by stamp — but fixed host order keeps error
        attribution deterministic.
        """
        replies = [host.collect() for host in hosts]
        batch = self.mailbox.deliver(
            [reply.messages for reply in replies])
        acks = sorted((ack for reply in replies for ack in reply.acks),
                      key=lambda ack: ack.stamp)
        reports = [report for reply in replies for report in reply.reports]
        return {"messages": batch, "acks": acks, "reports": reports}

    # -- reduction ------------------------------------------------------

    def _merge_summaries(self, reports):
        """Reduce per-market aggregates in market-index order.

        Sums of raw seconds/dollars/counts first, ratios derived from
        the sums after — a fixed float reduction order, so the merged
        summary is identical at every shard count.
        """
        vm_seconds = downtime = degraded = cost = 0.0
        migrations = revocations = state_loss = backups = 0
        max_storm = 0
        breakdown = {}
        events = 0
        for report in reports:
            part = report.summary
            vm_seconds += part["vm_seconds"]
            downtime += part["downtime_s"]
            degraded += part["degraded_s"]
            cost += part["total_cost"]
            migrations += part["migrations"]
            revocations += part["revocation_events"]
            state_loss += part["state_loss_events"]
            backups += part["backup_servers"]
            max_storm = max(max_storm,
                            part["max_concurrent_revocation"])
            for key, dollars in part["cost_breakdown"].items():
                breakdown[key] = breakdown.get(key, 0.0) + dollars
            events += report.events_processed
        vm_hours = vm_seconds / 3600.0
        return {
            "vm_hours": vm_hours,
            "cost_per_vm_hour": cost / vm_hours if vm_hours else 0.0,
            "availability":
                1.0 - (downtime / vm_seconds if vm_seconds else 0.0),
            "unavailability_pct":
                100.0 * (downtime / vm_seconds if vm_seconds else 0.0),
            "degradation_pct":
                100.0 * (degraded / vm_seconds if vm_seconds else 0.0),
            "migrations": migrations,
            "revocation_events": revocations,
            "state_loss_events": state_loss,
            "cost_breakdown": {key: breakdown[key]
                               for key in sorted(breakdown)},
            "max_concurrent_revocation": max_storm,
            "backup_servers": backups,
            "events_processed": events,
            "markets": len(reports),
        }


__all__ = ["FleetResult", "ShardWorkerError", "ShardedCell", "apportion"]
