"""Figure 8: restoration cost under concurrency.

(a) downtime of stop-and-copy (full) restores for 1/5/10 concurrent
    VMs, unoptimized vs SpotCheck-optimized;
(b) degraded-time of lazy restores for the same batches — the
    unoptimized variant collapses at 10 concurrent because random
    demand-paged reads thrash the disk, which is exactly what the
    ``fadvise`` optimization fixes.

Both the analytic estimates and a full DES execution (restoring real
nested-VM objects through the scheduler) are produced; they agree by
construction, and the DES path also exercises the state machinery.
"""

from repro.backup.scheduler import RestoreScheduler
from repro.backup.server import BackupServer, BackupServerSpec
from repro.cloud.instance_types import M3_CATALOG
from repro.sim.kernel import Environment
from repro.virt.vm import NestedVM
from repro.workloads import TpcwWorkload

GUEST_BYTES = int(3.75 * 0.45 * 1024 ** 3)

CONCURRENCY = (1, 5, 10)


def run(concurrency=CONCURRENCY, backup_spec=None, use_des=True):
    """Returns rows keyed by (concurrency, kind, optimized)."""
    spec = backup_spec or BackupServerSpec()
    rows = []
    for n in concurrency:
        for kind in ("full", "lazy"):
            for optimized in (False, True):
                env = Environment()
                server = BackupServer(env, spec)
                scheduler = RestoreScheduler(server)
                if kind == "full":
                    analytic = scheduler.full_restore_downtime_s(
                        GUEST_BYTES, n, optimized)
                else:
                    analytic = scheduler.lazy_restore_degraded_s(
                        GUEST_BYTES, n, optimized)
                row = {
                    "concurrent": n,
                    "kind": kind,
                    "optimized": optimized,
                    "analytic_s": analytic,
                }
                if use_des:
                    row["des_s"] = _des_duration(
                        env, scheduler, kind, optimized, n)
                rows.append(row)
    return {"rows": rows}


def _des_duration(env, scheduler, kind, optimized, n):
    itype = M3_CATALOG.get("m3.medium")
    vms = []
    for _ in range(n):
        vm = NestedVM(env, itype, workload=TpcwWorkload())
        vm.state_log.clear()
        vms.append(vm)
    batch = scheduler.run_batch(
        env, [(vm, GUEST_BYTES) for vm in vms], kind, optimized)
    results = env.run(until=batch)
    if kind == "full":
        return max(downtime for downtime, _degraded in results)
    return max(degraded for _downtime, degraded in results)


def pick(result, concurrent, kind, optimized):
    """Extract one row's duration."""
    for row in result["rows"]:
        if (row["concurrent"] == concurrent and row["kind"] == kind
                and row["optimized"] == optimized):
            return row["analytic_s"]
    raise KeyError((concurrent, kind, optimized))
