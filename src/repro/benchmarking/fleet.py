"""Fleet-scale cell benchmark: kernel events vs nested-VM count.

One calm-market SpotCheck cell — a single m3.2xlarge spot pool whose
flat price stays far below the bid, every VM backed up with the
steady-state checkpoint flush running through the group checkpoint
scheduler — is driven twice: once at a small fleet size and once at
fleet scale (100k nested VMs by default).  The batched schedulers'
promise is that fleet size buys (almost) no kernel events: the group
scheduler wakes once per shared checkpoint interval regardless of
cohort size, the condition-driven spare replenisher sleeps at target,
and the pool index answers placement queries without per-VM scans.

``measure_fleet_scaling`` returns both cells' event totals, the
normalized ``events_per_vm_hour`` rate, and the large/small event and
wall-clock ratios ``check_bench_floors`` holds in CI: the 100k-VM cell
must stay under 20x the events of the 10-VM cell and within ~10x its
wall clock — per-VM loops would blow through both by orders of
magnitude.

The cell intentionally consolidates the whole fleet onto ONE scaled
backup server (spec multiplied by the shard count a real deployment
would spread the fleet over, sized from the sustained per-VM stream
rate): the homogeneous fleet then forms a single cohort, which is the
worst case for the scheduler's aggregation bookkeeping and the best
case for event elision — exactly the axis this benchmark guards.
"""

import time

from repro.cloud.api import CloudApi
from repro.cloud.instance_types import M3_CATALOG
from repro.cloud.zones import default_region
from repro.core.config import SpotCheckConfig
from repro.core.controller import SpotCheckController
from repro.core.shard import (
    MarketSpec,
    ShardConfig,
    ShardedCell,
    fleet_backup_spec,
    steady_rate_bps,
)
from repro.core.shard.market import CALM_PRICE
from repro.sim.kernel import Environment
from repro.traces.archive import PriceTrace, TraceArchive
from repro.workloads import default_fleet_mix

#: Calm-market spot price for the fleet cell, far under the m3.2xlarge
#: on-demand bid, so no revocation machinery ever wakes.  The sizing
#: helpers moved into :mod:`repro.core.shard.market` (the shard layer
#: sizes each market's backup tier the same way); these aliases keep
#: the bench self-describing.
_CALM_PRICE = CALM_PRICE
_steady_rate_bps = steady_rate_bps
_fleet_backup_spec = fleet_backup_spec


def _drive_cell(n_vms, days, seed, mix=None, soa=False):
    """Run one calm-market fleet cell; returns its measurement dict.

    ``mix`` (a :class:`~repro.workloads.mix.FleetMix`) provisions the
    fleet as a heterogeneous population of write-scaled workload
    classes instead of the homogeneous default — the same code path
    either way, the homogeneous cell simply being the single-class
    mix.  ``soa`` serves the steady flushes from the struct-of-arrays
    cohort core.  The backup tier is sized from the default workload
    probe, an upper bound for any mix whose factors stay <= 1.
    """
    env = Environment(seed=seed)
    region = default_region(1)
    zone = region.zones[0]
    api = CloudApi(env, region, M3_CATALOG)
    duration_s = days * 24 * 3600.0
    itype = M3_CATALOG.get("m3.2xlarge")
    archive = TraceArchive()
    archive.add(PriceTrace([0.0, duration_s], [_CALM_PRICE, _CALM_PRICE],
                           itype.name, zone.name, itype.on_demand_price))

    config = SpotCheckConfig(
        hot_spares=2,
        vms_per_backup=n_vms,
        steady_checkpoint_flush=True,
        defer_flush_accounting=True,
        soa_checkpoint_flush=soa,
    )
    rate_bps = _steady_rate_bps(env, config)
    spec, shards = _fleet_backup_spec(n_vms, rate_bps)
    config.backup_spec = spec

    controller = SpotCheckController(env, api, config)
    controller.install_pools(archive, zone, type_names=[itype.name])
    customer = controller.start_customer("fleet")
    pool = controller.pools.spot_pool(itype.name, zone.name)

    workload_factory = (mix.workload_factory(n_vms)
                        if mix is not None else None)
    started = time.perf_counter()
    vms = env.run(until=controller.provision_fleet(
        customer, n_vms, pool=pool, workload_factory=workload_factory))
    boot_wall = time.perf_counter() - started
    env.run(until=duration_s)
    controller.finalize()
    wall = time.perf_counter() - started

    if len(vms) != n_vms:
        raise AssertionError(
            f"fleet cell booted {len(vms)} of {n_vms} VMs")
    flush = controller.migrations.flush_drive_stats()
    spares = controller.spares_drive_stats()
    vm_hours = n_vms * days * 24.0
    return {
        "vms": n_vms,
        "hosts": pool.host_count,
        "days": days,
        "classes": len(mix) if mix is not None else 1,
        "backup_shards": shards,
        "events": env.events_processed,
        "events_per_vm_hour": env.events_processed / vm_hours,
        "wall_s": wall,
        "boot_wall_s": boot_wall,
        "steady_wall_s": wall - boot_wall,
        "flush_cohorts": flush["cohorts_created"],
        "flush_flows": flush["flows_issued"],
        "spare_wakes": spares["wakes"],
        "spare_polls": spares["polls"],
    }


def measure_fleet_scaling(small_vms=10, large_vms=100_000, days=14.0,
                          seed=11, echo=None):
    """Benchmark the fleet cell at two sizes; returns the comparison.

    Returns a dict with both cells' measurements plus the derived
    ``event_ratio`` (large events / small events — near 1.0 when the
    batched schedulers elide correctly, O(large/small) when any per-VM
    loop survives) and ``wall_ratio`` (large steady-state wall / small
    steady-state wall, floored at 50 ms per cell so sub-second smoke
    cells cannot flake the ratio).  The steady-state wall excludes the
    boot phase — provisioning N VMs is honestly O(N) in object
    construction (reported separately as ``boot_wall_s``), while the
    scaling law this ratchet guards is about what the fleet costs
    *after* it is up.
    """
    if small_vms < 1 or large_vms <= small_vms:
        raise ValueError("need 1 <= small_vms < large_vms")
    if echo is not None:
        echo(f"  small cell: {small_vms} VMs, {days:.0f} days ...")
    small = _drive_cell(small_vms, days, seed)
    if echo is not None:
        echo(f"    {small['events']} events, {small['wall_s']:.2f}s")
        echo(f"  large cell: {large_vms} VMs, {days:.0f} days ...")
    large = _drive_cell(large_vms, days, seed)
    if echo is not None:
        echo(f"    {large['events']} events, {large['wall_s']:.2f}s")
    return {
        "days": days,
        "seed": seed,
        "small": small,
        "large": large,
        "event_ratio": large["events"] / max(small["events"], 1),
        "wall_ratio": max(large["steady_wall_s"], 0.05)
        / max(small["steady_wall_s"], 0.05),
    }


def measure_fleet_mix(vms=100_000, days=14.0, seed=11, classes=8,
                      baseline=None, digest_vms=2_000, digest_markets=4,
                      shard_counts=(1, 2), echo=None):
    """Benchmark the heterogeneous fleet cell; assert SoA bit-identity.

    Drives the calm fleet cell once as a ``classes``-way heterogeneous
    population (:func:`~repro.workloads.mix.default_fleet_mix`) with
    the struct-of-arrays cohort core serving the flushes, and compares
    it against the homogeneous cell of the same size — pass the fleet
    benchmark's large cell as ``baseline`` to reuse its measurement.
    The heterogeneity ratchet holds the ``event_ratio`` near the mix's
    summed round rate (~1.5x for the default geometric mix) instead of
    the ``classes``-fold blowup per-plan wakeups would cost.

    Also runs the mixed cell through the sharded fleet (SoA core, one
    run per entry in ``shard_counts``) and reports ``bit_identical``:
    every shard count must produce the same ``FleetResult.digest()``.
    """
    if not shard_counts or shard_counts[0] != 1:
        raise ValueError("shard_counts must start with the single-process"
                         " reference (1)")
    mix = default_fleet_mix(classes=classes)
    if baseline is None:
        if echo is not None:
            echo(f"  homogeneous cell: {vms} VMs, {days:.0f} days ...")
        baseline = _drive_cell(vms, days, seed)
    elif baseline["vms"] != vms or baseline["days"] != days:
        raise ValueError("baseline cell shape does not match "
                         f"({baseline['vms']} VMs / {baseline['days']} "
                         f"days, want {vms} / {days})")
    if echo is not None:
        echo(f"  mixed cell: {vms} VMs, {len(mix)} classes, "
             f"{days:.0f} days ...")
    mixed = _drive_cell(vms, days, seed, mix=mix, soa=True)
    if echo is not None:
        echo(f"    {mixed['events']} events, {mixed['flush_cohorts']} "
             f"plan-groups, {mixed['wall_s']:.2f}s")

    zone_letters = "abcdefghijklmnopqrstuvwxyz"[:digest_markets]
    specs = [MarketSpec(type_name="m3.2xlarge",
                        zone_name=f"us-east-1{letter}")
             for letter in zone_letters]
    config = ShardConfig(seed=seed, days=days, workload_mix=mix,
                         soa_checkpoint_flush=True)
    runs = []
    for shards in shard_counts:
        if echo is not None:
            echo(f"  mixed sharded cell: {digest_vms} VMs / "
                 f"{digest_markets} markets, shards={shards} ...")
        run = _drive_sharded(digest_vms, specs, config, shards)
        runs.append(run)
        if echo is not None:
            echo(f"    {run['events']} events, {run['wall_s']:.2f}s, "
                 f"digest {run['digest'][:12]}")
    single, widest = runs[0], runs[-1]
    return {
        "classes": len(mix),
        "vms": vms,
        "days": days,
        "seed": seed,
        "homogeneous": baseline,
        "mixed": mixed,
        "event_ratio": mixed["events"] / max(baseline["events"], 1),
        "wall_ratio": max(mixed["steady_wall_s"], 0.05)
        / max(baseline["steady_wall_s"], 0.05),
        "single": {k: single[k] for k in ("shards", "wall_s", "events")},
        "sharded": {k: widest[k] for k in ("shards", "wall_s", "events")},
        "digest": single["digest"],
        "bit_identical": len({run["digest"] for run in runs}) == 1,
    }


def _drive_sharded(total_vms, markets, config, shards):
    """One sharded-cell run; returns its measurement dict + digest."""
    cell = ShardedCell(total_vms=total_vms, markets=markets, config=config)
    started = time.perf_counter()
    result = cell.run(shards=shards)
    wall = time.perf_counter() - started
    return {
        "shards": result.shards,
        "wall_s": wall,
        "events": result.summary["events_processed"],
        "vm_hours": result.summary["vm_hours"],
        "digest": result.digest(),
    }


def measure_sharded_fleet(vms=100_000, days=14.0, seed=11, markets=4,
                          shard_counts=(1, 2, 4), echo=None):
    """Benchmark the sharded cell and assert its bit-identity.

    Runs the same ``vms``-VM calm fleet cell, spread over ``markets``
    (type, zone) markets, once per entry in ``shard_counts`` —
    ``shard_counts[0]`` must be 1 (the single-process reference).
    Returns both the single-process and widest sharded measurements,
    the wall-clock ``speedup``, and ``bit_identical``: whether every
    shard count produced the same :meth:`FleetResult.digest`.
    """
    if vms < markets:
        raise ValueError("need at least one VM per market")
    if not shard_counts or shard_counts[0] != 1:
        raise ValueError("shard_counts must start with the single-process"
                         " reference (1)")
    zone_letters = "abcdefghijklmnopqrstuvwxyz"[:markets]
    specs = [MarketSpec(type_name="m3.2xlarge",
                        zone_name=f"us-east-1{letter}")
             for letter in zone_letters]
    config = ShardConfig(seed=seed, days=days)
    runs = []
    for shards in shard_counts:
        if echo is not None:
            echo(f"  sharded cell: {vms} VMs / {markets} markets, "
                 f"shards={shards} ...")
        run = _drive_sharded(vms, specs, config, shards)
        runs.append(run)
        if echo is not None:
            echo(f"    {run['events']} events, {run['wall_s']:.2f}s, "
                 f"digest {run['digest'][:12]}")
    single, widest = runs[0], runs[-1]
    return {
        "vms": vms,
        "markets": markets,
        "days": days,
        "seed": seed,
        "single": {k: single[k] for k in ("shards", "wall_s", "events")},
        "sharded": {k: widest[k] for k in ("shards", "wall_s", "events")},
        "speedup": max(single["wall_s"], 0.05)
        / max(widest["wall_s"], 0.05),
        "digest": single["digest"],
        "bit_identical": len({run["digest"] for run in runs}) == 1,
    }
