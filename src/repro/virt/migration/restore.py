"""Restoration planning: stop-and-copy (full) versus lazy restore.

Lazy restore reads only the ~5 MB skeleton state (vCPU registers, page
tables) before resuming execution; the remaining pages arrive by demand
paging with a background prefetcher [post-copy migration, SnowFlock].
Full restore reads the entire image first.  The planner converts a
backup server's read-path model into the (downtime, degraded-time)
pair the controller charges against availability.
"""

from dataclasses import dataclass

#: Skeleton state: "typically around 5MB ... dominated by the size of
#: the page tables".
SKELETON_BYTES = 5 * 1024 ** 2


@dataclass(frozen=True)
class RestorePlan:
    """Outcome of one VM's restoration."""

    kind: str
    optimized: bool
    concurrent: int
    downtime_s: float
    degraded_s: float

    @property
    def disruption_s(self):
        """Total disturbed wall-clock time (down + degraded)."""
        return self.downtime_s + self.degraded_s


class RestorePlanner:
    """Plans restorations against one backup server's read path."""

    def __init__(self, server):
        self.server = server

    def plan(self, image_bytes, kind="lazy", optimized=True, concurrent=None):
        """Plan a restore of ``image_bytes`` with ``concurrent`` peers.

        ``concurrent`` defaults to the restores already in flight on
        the server plus this one, so an estimate taken mid-storm prices
        in the sharing the DES datapath would impose.
        """
        from repro.backup.scheduler import RestoreScheduler
        if concurrent is None:
            concurrent = getattr(self.server, "active_restores", 0) + 1
        scheduler = RestoreScheduler(self.server)
        if kind == "full":
            downtime = scheduler.full_restore_downtime_s(
                image_bytes, concurrent, optimized)
            degraded = 0.0
        elif kind == "lazy":
            downtime = scheduler.lazy_restore_downtime_s(
                skeleton_bytes=SKELETON_BYTES, concurrent=concurrent)
            degraded = scheduler.lazy_restore_degraded_s(
                image_bytes, concurrent, optimized)
        else:
            raise ValueError(f"unknown restore kind {kind!r}")
        return RestorePlan(kind=kind, optimized=optimized,
                           concurrent=concurrent, downtime_s=downtime,
                           degraded_s=degraded)
