"""``repro.benchmarking`` — the performance harness behind ``repro bench``.

Three benchmarks, one JSON artifact:

``repro.benchmarking.kernel``
    Raw discrete-event kernel throughput (events/sec) on an
    uninstrumented :class:`~repro.sim.kernel.Environment` — the number
    the ``__slots__``/Timeout-fast-path work is measured by.

``repro.benchmarking.grid``
    One policy-grid cell, then the full grid serial vs parallel vs
    cache-warm, with cache hit/miss counters pulled from the
    :class:`~repro.obs.MetricsRegistry` the grid runner reports into.

``repro.benchmarking.harness``
    Composes both into a schema-stable ``BENCH_<label>.json``
    (``repro-bench/1``) and validates written artifacts, so CI can
    track the performance trajectory across commits.

See ``docs/performance.md`` for how to read the artifact.
"""

from repro.benchmarking.harness import (
    BENCH_SCHEMA,
    bench_filename,
    run_bench,
    validate_bench,
    validate_bench_file,
    write_bench,
)

__all__ = [
    "BENCH_SCHEMA",
    "bench_filename",
    "run_bench",
    "validate_bench",
    "validate_bench_file",
    "write_bench",
]
