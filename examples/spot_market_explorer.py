#!/usr/bin/env python
"""Explore the synthetic spot markets (the Figure 6 view).

Generates six months of prices for the m3 family, prints the paper's
three lenses — availability-vs-bid CDF, hourly jump magnitudes, and
cross-market correlation — and answers the bidding question SpotCheck
asks: what availability does a bid at the on-demand price buy, and
what does the knee of the curve look like?

Run:  python examples/spot_market_explorer.py
"""

import numpy as np

from repro.experiments.reporting import format_table
from repro.traces import stats
from repro.traces.calibration import M3_MARKET_PARAMS
from repro.traces.generator import SIX_MONTHS_S, TraceGenerator


def main():
    generator = TraceGenerator(seed=2014)
    traces = {
        name: generator.generate_market(name, "us-east-1a", params,
                                        duration_s=SIX_MONTHS_S)
        for name, params in M3_MARKET_PARAMS.items()
    }

    rows = []
    for name, trace in traces.items():
        summary = stats.summarize(trace)
        ratios, cdf = stats.availability_cdf(trace)
        knee = float(ratios[np.searchsorted(cdf, 0.9)])
        increases, _decreases = stats.price_jump_cdf(trace)
        rows.append((
            name,
            f"{summary['mean_ratio']:.3f}",
            f"{100 * summary['availability_at_od']:.3f}%",
            f"{knee:.2f}",
            summary["spikes_above_od"],
            f"{increases.max():.0f}%" if len(increases) else "-",
        ))
    print(format_table(
        ["market", "mean spot/od", "availability @ od bid",
         "90% knee (bid/od)", "spikes > od", "max hourly jump"],
        rows, title="Six months of synthetic m3 spot markets"))

    keys, matrix = stats.correlation_matrix(list(traces.values()))
    off = matrix[~np.eye(len(matrix), dtype=bool)]
    print(f"\ncross-market price correlation: mean {off.mean():+.4f}, "
          f"|max| {np.abs(off).max():.4f} — effectively uncorrelated,")
    print("which is what makes multi-pool diversification work.")

    # The bidding what-if SpotCheck's policies reason about.
    medium = traces["m3.medium"]
    print("\nbid what-if for m3.medium (on-demand $0.070/hr):")
    what_if = []
    for multiple in (0.15, 0.3, 1.0, 2.0, 5.0):
        bid = 0.07 * multiple
        availability = stats.availability_at_bid(medium, bid)
        what_if.append((f"{multiple:4.2f}x (${bid:.3f})",
                        f"{100 * availability:.4f}%"))
    print(format_table(["bid", "availability"], what_if))


if __name__ == "__main__":
    main()
