"""SpotCheck reproduction: a derivative IaaS cloud on the spot market.

This package is a full, self-contained reproduction of *SpotCheck:
Designing a Derivative IaaS Cloud on the Spot Market* (Sharma, Lee, Guo,
Irwin, Shenoy — EuroSys 2015).  It contains:

``repro.sim``
    A deterministic discrete-event simulation kernel (event heap, clock,
    generator-based processes, named seeded RNG streams).

``repro.cloud``
    An EC2-like native IaaS substrate: instance-type catalog, per
    (type, zone) spot markets with bids and 120 s revocation warnings,
    on-demand instances, EBS volumes, VPC/ENI networking, and a
    Table-1-calibrated latency model for control-plane operations.

``repro.traces``
    Spot-price trace generation and analysis calibrated to the paper's
    Figure 6 (long-tailed price-ratio CDF, large hourly jumps,
    uncorrelated markets).

``repro.virt``
    The virtualization substrate: host and nested VMs, memory dirtying
    models, pre-copy live migration, continuous checkpointing,
    bounded-time migration, and stop-and-copy / lazy restore.

``repro.backup``
    Backup servers that absorb checkpoint streams from many nested VMs
    and serve restores, with bandwidth, page-cache and read-pattern
    models.

``repro.workloads``
    TPC-W-like and SPECjbb-like workload models used to express
    migration overheads as response-time / throughput changes.

``repro.core``
    SpotCheck itself: the controller, server pools, customer API,
    allocation / bidding / placement / backup-assignment / hot-spare
    policies, the migration manager, and cost & availability accounting.

``repro.experiments``
    The harness that regenerates every table and figure in the paper's
    evaluation (Table 1, Table 3, Figures 1 and 6-12).
"""

__version__ = "1.0.0"

__all__ = ["SpotCheckController", "SpotCheckConfig", "__version__"]


def __getattr__(name):
    # Lazy re-exports: keep `import repro` cheap and avoid importing the
    # whole controller stack for users who only need a substrate.
    if name == "SpotCheckController":
        from repro.core.controller import SpotCheckController
        return SpotCheckController
    if name == "SpotCheckConfig":
        from repro.core.config import SpotCheckConfig
        return SpotCheckConfig
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
