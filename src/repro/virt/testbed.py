"""An executable micro-testbed: the Section 6.1 experiments as real DES.

The figure benches use the analytic forms of the checkpoint/restore
models (fast, closed-form).  This testbed runs the same machinery as
actual discrete-event processes — per-VM checkpoint streams flushing
over a shared link into a backup server's store, a scripted revocation
drill with the warning-period ramp, the final commits contending for
the ingest path, and a concurrent lazy/full restore batch — and
*measures* the outcomes from the VMs' state logs.

Its purpose is verification: the test suite asserts that the measured
DES behaviour and the analytic models agree, so neither can drift
silently.  It is also the closest thing in the reproduction to the
paper's physical end-to-end EC2 experiments.
"""

from repro.backup.scheduler import RestoreScheduler
from repro.backup.server import BackupServer
from repro.backup.store import CheckpointStore
from repro.cloud.instance_types import M3_CATALOG
from repro.virt.migration.checkpoint import CheckpointConfig, CheckpointStream
from repro.virt.migration.group import GroupCheckpointScheduler
from repro.virt.migration.soa import SoaCheckpointScheduler
from repro.virt.vm import NestedVM, VMState


class MicroTestbed:
    """One backup server plus a fleet of checkpointing nested VMs.

    Parameters
    ----------
    env:
        Simulation environment.
    vm_count:
        Number of nested VMs streaming checkpoints.
    workload_factory:
        Callable returning a workload per VM.
    backup_spec / checkpoint_config:
        Capacity/parameter overrides.
    """

    def __init__(self, env, vm_count=1, workload_factory=None,
                 backup_spec=None, checkpoint_config=None, grouped=False,
                 scheduler=None):
        if workload_factory is None:
            # Deferred: repro.workloads imports repro.virt.memory at
            # module scope, so a top-level import here would close an
            # import cycle through the virt package __init__.
            from repro.workloads import TpcwWorkload
            workload_factory = TpcwWorkload
        self.env = env
        #: Steady-state streaming mode: ``"per-vm"`` (one process per
        #: stream), ``"group"`` (cohort scheduler), or ``"soa"``
        #: (struct-of-arrays core) — the batched paths, which the
        #: equivalence tests hold bit-identical to per-VM mode.
        #: ``grouped=True`` is the legacy spelling of ``"group"``.
        if scheduler is None:
            scheduler = "group" if grouped else "per-vm"
        if scheduler not in ("per-vm", "group", "soa"):
            raise ValueError(f"unknown scheduler mode {scheduler!r}")
        self.scheduler = scheduler
        self.grouped = scheduler != "per-vm"
        self._group = None
        self.server = BackupServer(env, backup_spec)
        self.server.store = CheckpointStore(env)
        #: The backup server's ingest path: commit flows on the shared
        #: datapath, so the drill's final commits and restore batches
        #: contend on the same device the figure models describe.
        self.ingest = self.server.ingest
        self.checkpoint_config = checkpoint_config or CheckpointConfig()
        itype = M3_CATALOG.get("m3.medium")
        self.vms = []
        self.streams = {}
        self.flushed_bytes = {}
        self._stops = {}
        for _ in range(vm_count):
            vm = NestedVM(env, itype, workload=workload_factory())
            vm.set_state(VMState.RUNNING)
            stream = CheckpointStream(vm.memory, self.checkpoint_config)
            self.vms.append(vm)
            self.streams[vm.id] = stream
            self.flushed_bytes[vm.id] = 0.0
            self.server.assign_stream(vm.id, stream.stream_rate_bps())
            self.server.store.open_image(vm.id, vm.memory.total_bytes)
            self.server.store.seed_full_image(vm.id)

    # -- steady state -----------------------------------------------------

    def start_streams(self):
        """Begin steady checkpointing (per-VM processes or one cohort)."""
        if self.grouped:
            core = (SoaCheckpointScheduler if self.scheduler == "soa"
                    else GroupCheckpointScheduler)
            self._group = core(self.env, self.ingest)
            for vm in self.vms:
                def _account(flushed, vm_id=vm.id):
                    self.flushed_bytes[vm_id] += flushed
                    self.server.store.commit(vm_id, flushed)
                self._group.join(vm.id, self.streams[vm.id],
                                 on_flush=_account)
            return
        for vm in self.vms:
            stop = self.env.event()
            self._stops[vm.id] = stop
            stream = self.streams[vm.id]
            def _account(flushed, vm_id=vm.id):
                self.flushed_bytes[vm_id] += flushed
                self.server.store.commit(vm_id, flushed)
            stream.run(self.env, self.ingest, stop, on_flush=_account)

    def stop_streams(self):
        if self._group is not None:
            self.env.process(self._group.settle())
            self._group = None
        for stop in self._stops.values():
            if not stop.triggered:
                stop.succeed()
        self._stops.clear()

    def run_steady(self, duration_s):
        """Stream checkpoints for ``duration_s``; return measurements.

        Returns per-VM measured flush throughput (bytes/s) and the
        aggregate ingest utilization.
        """
        self.start_streams()
        self.env.run(until=self.env.now + duration_s)
        self.stop_streams()
        self.env.run(until=self.env.now + 1.0)  # drain stop events
        measured = {vm.id: self.flushed_bytes[vm.id] / duration_s
                    for vm in self.vms}
        aggregate = sum(measured.values())
        return {
            "per_vm_bps": measured,
            "aggregate_bps": aggregate,
            "utilization": aggregate / self.server.spec.write_path_bps,
        }

    # -- revocation drill ---------------------------------------------------

    def revocation_drill(self, warning_s=120.0, restore_kind="lazy",
                         optimized=True, ramped=True):
        """Revoke the host under every VM at once; measure the storm.

        Executes the full bounded-time sequence per VM as DES: the
        ramp window (degraded), the final commit contending on the
        shared ingest link, and a concurrent restore batch.  Returns
        per-VM measured (downtime, degraded) plus totals.
        """
        start = self.env.now
        self.stop_streams()
        done = self.env.process(
            self._drill(warning_s, restore_kind, optimized, ramped))
        results = self.env.run(until=done)
        for vm in self.vms:
            assert vm.state is VMState.RUNNING
        horizon = self.env.now
        measured = {}
        for vm in self.vms:
            measured[vm.id] = (
                vm.downtime_between(start, horizon),
                vm.degraded_time_between(start, horizon),
            )
        return {
            "per_vm": measured,
            "commit_results": results,
            "elapsed_s": horizon - start,
        }

    def _drill(self, warning_s, restore_kind, optimized, ramped):
        commits = []
        for vm in self.vms:
            commits.append(self.env.process(
                self._commit_one(vm, warning_s, ramped)))
        yield self.env.all_of(commits)

        scheduler = RestoreScheduler(self.server)
        batch = scheduler.run_batch(
            self.env,
            [(vm, vm.memory.total_bytes) for vm in self.vms],
            restore_kind, optimized)
        results = yield batch
        return results

    def _commit_one(self, vm, warning_s, ramped):
        """Ramp + final commit for one VM, on the shared ingest link."""
        stream = self.streams[vm.id]
        ramp_s = stream.warning_degradation_s(warning_s, ramped=ramped)
        if ramp_s > 0:
            vm.set_state(VMState.MIGRATING)
            # Walk the ramp: each tightened interval flushes its dirty
            # volume through the shared link.
            for interval in stream.ramp_schedule(warning_s):
                if self.env.now - vm.state_log[-1][0] >= ramp_s:
                    break
                dirty = vm.memory.dirty_bytes(interval)
                if dirty > 0:
                    yield self.ingest.transfer(
                        dirty,
                        rate_cap=self.checkpoint_config.stream_bandwidth_bps)
        vm.set_state(VMState.SUSPENDED)
        if ramped:
            residual = vm.memory.dirty_bytes(
                stream.feasible_ramp_interval_s())
        else:
            residual = vm.memory.dirty_bytes(stream.interval_s())
        if residual > 0:
            yield self.ingest.transfer(residual)
        self.server.store.commit(vm.id, residual)
        return residual
