"""SpotCheck's pluggable policies.

* :mod:`.bidding` — what to bid in each spot market (Section 4.3).
* :mod:`.allocation` — which spot pool a new nested VM lands in
  (Table 2: 1P-M, 2P-ML, 4P-ED, 4P-COST, 4P-ST).
* :mod:`.portfolio` — index-tracking / optimal-combination portfolios
  over the spot pools with crossing-driven rebalancing (IT, OC).
* :mod:`.placement` — which native server type backs a request, with
  slicing of larger types (greedy cheapest-first vs stability-first,
  Section 4.2).
* :mod:`.spares` — hot spares and staging servers for revocation
  storms (Section 4.3).
"""

from repro.core.policies.allocation import (
    ALLOCATION_POLICIES,
    AllocationPolicy,
    CostWeightedPolicy,
    EqualSpreadPolicy,
    SinglePoolPolicy,
    StabilityWeightedPolicy,
    make_allocation_policy,
)
from repro.core.policies.bidding import BidPolicy, make_bid_policy
from repro.core.policies.portfolio import (
    IndexTrackingPolicy,
    OptimalCombinationPolicy,
    PortfolioPolicy,
    make_portfolio_policy,
)
from repro.core.policies.placement import (
    GreedyCheapestFirst,
    PlacementChoice,
    StabilityFirst,
)
from repro.core.policies.spares import HotSparePolicy

__all__ = [
    "ALLOCATION_POLICIES",
    "AllocationPolicy",
    "BidPolicy",
    "CostWeightedPolicy",
    "EqualSpreadPolicy",
    "GreedyCheapestFirst",
    "HotSparePolicy",
    "IndexTrackingPolicy",
    "OptimalCombinationPolicy",
    "PlacementChoice",
    "PortfolioPolicy",
    "SinglePoolPolicy",
    "StabilityFirst",
    "StabilityWeightedPolicy",
    "make_allocation_policy",
    "make_bid_policy",
    "make_portfolio_policy",
]
