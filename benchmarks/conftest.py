"""Benchmark-suite plumbing.

Each bench regenerates one paper table/figure, asserts its qualitative
shape, and registers a text rendering.  Renderings are written to
``benchmarks/results/`` and printed in the terminal summary so that
``pytest benchmarks/ --benchmark-only`` leaves the full set of
reproduced tables in its output.
"""

import os

import pytest

_REPORTS = []
_RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture
def report():
    """Register a rendered table: ``report(name, text)``."""
    def _add(name, text):
        _REPORTS.append((name, text))
        os.makedirs(_RESULTS_DIR, exist_ok=True)
        path = os.path.join(_RESULTS_DIR, f"{name}.txt")
        with open(path, "w") as handle:
            handle.write(text + "\n")
    return _add


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REPORTS:
        return
    terminalreporter.section("SpotCheck reproduction results")
    for name, text in _REPORTS:
        terminalreporter.write_line(f"[{name}]")
        for line in text.splitlines():
            terminalreporter.write_line(line)
        terminalreporter.write_line("")


@pytest.fixture
def bench_days():
    """Simulated span for policy benches (override for quick runs)."""
    return float(os.environ.get("REPRO_BENCH_DAYS", "183"))


@pytest.fixture
def bench_vms():
    """Fleet size for policy benches."""
    return int(os.environ.get("REPRO_BENCH_VMS", "40"))
