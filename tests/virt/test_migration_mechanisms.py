"""Tests for live migration, checkpointing, bounded-time migration and
restoration — the Section 3 mechanisms."""

import pytest

from repro.backup.server import BackupServer
from repro.virt.memory import MemoryModel, PAGE_SIZE
from repro.virt.migration.bounded import (
    BoundedMigrationConfig,
    BoundedTimeMigration,
)
from repro.virt.migration.checkpoint import CheckpointConfig, CheckpointStream
from repro.virt.migration.live import PreCopyMigration
from repro.virt.migration.restore import SKELETON_BYTES, RestorePlanner
from repro.workloads import TpcwWorkload

GiB = 1024 ** 3
GUEST = TpcwWorkload().memory_model(int(1.7 * GiB))


def quiet_memory(total=GiB):
    return MemoryModel(total_bytes=total, write_rate_pages=50.0)


def hot_memory(total=GiB):
    return MemoryModel(total_bytes=total, write_rate_pages=50000.0,
                       working_set_fraction=0.8, cold_write_fraction=0.1)


class TestPreCopy:
    def test_total_time_scales_with_memory(self):
        planner = PreCopyMigration(bandwidth_bps=50e6)
        small = planner.plan(quiet_memory(GiB))
        large = planner.plan(quiet_memory(4 * GiB))
        assert large.total_time_s > 3 * small.total_time_s

    def test_quiet_vm_converges_fast(self):
        plan = PreCopyMigration(bandwidth_bps=50e6).plan(quiet_memory())
        assert plan.converged
        assert plan.downtime_s < 1.0
        assert plan.rounds <= 3

    def test_hot_vm_does_not_converge(self):
        plan = PreCopyMigration(bandwidth_bps=20e6).plan(hot_memory())
        assert not plan.converged
        # Forced stop-and-copy of a large residual: big downtime.
        assert plan.downtime_s > 5.0

    def test_rounds_shrink_monotonically(self):
        plan = PreCopyMigration(bandwidth_bps=50e6).plan(GUEST)
        assert all(b2 < b1 for b1, b2 in
                   zip(plan.round_bytes, plan.round_bytes[1:]))

    def test_transferred_at_least_memory_size(self):
        plan = PreCopyMigration(bandwidth_bps=50e6).plan(GUEST)
        assert plan.transferred_bytes >= GUEST.total_bytes

    def test_fits_within_deadline(self):
        planner = PreCopyMigration(bandwidth_bps=22e6)
        small = MemoryModel(total_bytes=256 * 1024 ** 2,
                            write_rate_pages=200.0)
        assert planner.fits_within(small, 120.0)
        assert not planner.fits_within(hot_memory(8 * GiB), 120.0)

    def test_invalid_bandwidth(self):
        with pytest.raises(ValueError):
            PreCopyMigration(bandwidth_bps=0)

    def test_des_run_matches_plan(self, env):
        from repro.cloud.instance_types import M3_CATALOG
        from repro.virt.vm import NestedVM, VMState
        planner = PreCopyMigration(bandwidth_bps=50e6)
        vm = NestedVM(env, M3_CATALOG.get("m3.medium"),
                      memory=quiet_memory())
        vm.set_state(VMState.RUNNING)
        plan = env.run(until=planner.run(env, vm))
        assert env.now == pytest.approx(plan.total_time_s)
        assert vm.state is VMState.RUNNING


class TestCheckpointStream:
    def test_interval_respects_budget(self):
        stream = CheckpointStream(GUEST)
        interval = stream.interval_s()
        assert GUEST.dirty_bytes(interval) <= \
            stream.config.dirty_budget_bytes * 1.05

    def test_interval_consistent_with_time_bound(self):
        # The calibration invariant: the steady-state interval for the
        # paper's workloads sits near the 30 s bound.
        stream = CheckpointStream(GUEST)
        assert 10.0 < stream.interval_s() < 60.0

    def test_stream_rate_matches_backup_share(self):
        # ~2.75 MB/s: the worst-case per-VM share of a 40-VM backup.
        stream = CheckpointStream(GUEST)
        assert stream.stream_rate_bps() == pytest.approx(2.75e6, rel=0.25)

    def test_yank_commit_hits_time_bound(self):
        stream = CheckpointStream(GUEST)
        downtime = stream.final_commit_downtime_s(ramped=False)
        assert downtime == pytest.approx(
            stream.config.time_bound_s, rel=0.15)

    def test_ramped_commit_much_smaller(self):
        stream = CheckpointStream(GUEST)
        ramped = stream.final_commit_downtime_s(ramped=True)
        yank = stream.final_commit_downtime_s(ramped=False)
        assert ramped < yank / 10

    def test_ramp_schedule_decreasing(self):
        stream = CheckpointStream(GUEST)
        schedule = stream.ramp_schedule(120.0)
        assert schedule
        assert all(b <= a for a, b in zip(schedule, schedule[1:]))
        assert schedule[-1] >= stream.config.min_interval_s

    def test_no_ramp_no_warning_degradation(self):
        stream = CheckpointStream(GUEST)
        assert stream.warning_degradation_s(120.0, ramped=False) == 0.0

    def test_idle_vm_infinite_interval(self):
        idle = MemoryModel(total_bytes=GiB, write_rate_pages=0.0)
        stream = CheckpointStream(idle)
        assert stream.interval_s() == float("inf")
        assert stream.stream_rate_bps() == 0.0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            CheckpointConfig(time_bound_s=0)
        with pytest.raises(ValueError):
            CheckpointConfig(ramp_factor=0)

    def test_des_stream_flushes(self, env):
        from repro.virt.network import FairShareLink
        link = FairShareLink(env, capacity_bps=100e6)
        stop = env.event()
        flushed = []
        stream = CheckpointStream(GUEST)
        proc = stream.run(env, link, stop, on_flush=flushed.append)
        def stopper():
            yield env.timeout(200.0)
            stop.succeed()
        env.process(stopper())
        total = env.run(until=proc)
        assert len(flushed) >= 3
        assert total == pytest.approx(sum(flushed))


class TestRestorePlanner:
    @pytest.fixture
    def server(self, env):
        return BackupServer(env)

    def test_full_restore_downtime_only(self, server):
        plan = RestorePlanner(server).plan(GiB, kind="full", optimized=True)
        assert plan.degraded_s == 0.0
        assert plan.downtime_s > 5.0

    def test_lazy_restore_mostly_degraded(self, server):
        plan = RestorePlanner(server).plan(GiB, kind="lazy", optimized=True)
        assert plan.downtime_s < 1.0  # skeleton only
        assert plan.degraded_s > plan.downtime_s

    def test_optimization_helps_full(self, server):
        planner = RestorePlanner(server)
        slow = planner.plan(GiB, kind="full", optimized=False)
        fast = planner.plan(GiB, kind="full", optimized=True)
        assert fast.downtime_s < slow.downtime_s

    def test_unoptimized_lazy_collapses_under_concurrency(self, server):
        planner = RestorePlanner(server)
        lone = planner.plan(GiB, kind="lazy", optimized=False, concurrent=1)
        storm = planner.plan(GiB, kind="lazy", optimized=False, concurrent=10)
        # Far worse than the 10x of pure sharing: random-read thrash.
        assert storm.degraded_s > 15 * lone.degraded_s

    def test_optimized_lazy_scales_linearly(self, server):
        planner = RestorePlanner(server)
        lone = planner.plan(GiB, kind="lazy", optimized=True, concurrent=1)
        storm = planner.plan(GiB, kind="lazy", optimized=True, concurrent=10)
        assert storm.degraded_s == pytest.approx(10 * lone.degraded_s,
                                                 rel=0.01)

    def test_unknown_kind_rejected(self, server):
        with pytest.raises(ValueError):
            RestorePlanner(server).plan(GiB, kind="warp")

    def test_skeleton_size_is_5mb(self):
        assert SKELETON_BYTES == 5 * 1024 ** 2


class TestBoundedTimeMigration:
    @pytest.fixture
    def server(self, env):
        return BackupServer(env)

    def test_default_outcome_safe_and_fast(self, server):
        migration = BoundedTimeMigration(GUEST, server)
        outcome = migration.plan(120.0, ec2_ops_downtime_s=22.65)
        assert outcome.state_safe
        assert outcome.within_deadline
        # Downtime dominated by the EC2 control-plane ops (~23 s).
        assert outcome.downtime_s == pytest.approx(23.5, abs=2.0)

    def test_yank_downtime_much_larger(self, server):
        yank = BoundedTimeMigration(
            GUEST, server, BoundedMigrationConfig.yank_baseline())
        spotcheck = BoundedTimeMigration(
            GUEST, server, BoundedMigrationConfig.spotcheck_lazy())
        assert yank.plan(120.0, ec2_ops_downtime_s=22.65).downtime_s > \
            2 * spotcheck.plan(120.0, ec2_ops_downtime_s=22.65).downtime_s

    def test_lazy_trades_downtime_for_degradation(self, server):
        lazy = BoundedTimeMigration(
            GUEST, server, BoundedMigrationConfig.spotcheck_lazy()).plan(120.0)
        full = BoundedTimeMigration(
            GUEST, server, BoundedMigrationConfig.spotcheck_full()).plan(120.0)
        assert lazy.downtime_s < full.downtime_s
        assert lazy.degraded_s > full.degraded_s

    def test_mechanism_presets_distinct(self):
        presets = {
            name: getattr(BoundedMigrationConfig, name)()
            for name in ("yank_baseline", "spotcheck_full",
                         "unoptimized_lazy", "spotcheck_lazy")
        }
        assert presets["yank_baseline"].restore_kind == "full"
        assert not presets["yank_baseline"].warning_ramp
        assert presets["spotcheck_lazy"].restore_kind == "lazy"
        assert presets["spotcheck_lazy"].restore_optimized

    def test_bad_restore_kind_rejected(self):
        with pytest.raises(ValueError):
            BoundedMigrationConfig(restore_kind="teleport")

    def test_commit_bytes_positive(self, server):
        outcome = BoundedTimeMigration(GUEST, server).plan(120.0)
        assert outcome.commit_bytes > 0

    def test_storm_concurrency_increases_disruption(self, server):
        migration = BoundedTimeMigration(GUEST, server)
        calm = migration.plan(120.0, concurrent=1)
        storm = migration.plan(120.0, concurrent=10)
        assert storm.disruption_s > calm.disruption_s
