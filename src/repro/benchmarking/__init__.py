"""``repro.benchmarking`` — the performance harness behind ``repro bench``.

Seven benchmarks, one JSON artifact:

``repro.benchmarking.kernel``
    Raw discrete-event kernel throughput (events/sec) on an
    uninstrumented :class:`~repro.sim.kernel.Environment` — the number
    the ``__slots__``/Timeout-fast-path work is measured by.

``repro.benchmarking.market``
    The spot-market drive, per-step vs threshold-indexed, on one
    calibrated trace: kernel events eliminated, per-mode events/sec,
    and the wall-clock speedup of sleeping between crossings.

``repro.benchmarking.traffic``
    The open-loop traffic engine at two request-volume scales (1e3 vs
    1e6 users): kernel wakes and accounting segments must be identical
    — request volume buys zero events.

``repro.benchmarking.fleet``
    A calm-market SpotCheck cell at two fleet sizes (10 vs 100k nested
    VMs) with the steady checkpoint flush running through the group
    scheduler: kernel events and wall clock must stay nearly flat in
    fleet size.

``repro.benchmarking.index``
    The same cell under 1P-M and an index-tracking portfolio: the
    portfolio's crossing-driven rebalancing must deliver only a small
    minority of trace points as kernel events — no per-point drive.

``repro.benchmarking.grid``
    One policy-grid cell (with its market-drive skip counters), then
    the full grid serial vs parallel vs cache-warm, with cache and
    worker-plan counters pulled from the
    :class:`~repro.obs.MetricsRegistry` the grid runner reports into.

``repro.benchmarking.harness``
    Composes all of it into a schema-stable ``BENCH_<label>.json``
    (``repro-bench/5``), validates written artifacts, and holds
    throughput above the :func:`check_bench_floors` regression floors,
    so CI can track the performance trajectory across commits.

See ``docs/performance.md`` for how to read the artifact.
"""

from repro.benchmarking.harness import (
    BENCH_SCHEMA,
    bench_filename,
    check_bench_floors,
    run_bench,
    validate_bench,
    validate_bench_file,
    write_bench,
)
from repro.benchmarking.fleet import measure_fleet_scaling
from repro.benchmarking.index import measure_index_drive
from repro.benchmarking.market import measure_market_drive
from repro.benchmarking.traffic import measure_traffic_scaling

__all__ = [
    "BENCH_SCHEMA",
    "bench_filename",
    "check_bench_floors",
    "measure_fleet_scaling",
    "measure_index_drive",
    "measure_market_drive",
    "measure_traffic_scaling",
    "run_bench",
    "validate_bench",
    "validate_bench_file",
    "write_bench",
]
