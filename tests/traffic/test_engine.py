"""TrafficEngine: batch accounting at condition boundaries only."""

import pytest

from repro.cloud.instance_types import M3_CATALOG
from repro.core.customer import Customer
from repro.obs import Observability
from repro.sim.kernel import Environment
from repro.traffic import (
    ConstantRate,
    CustomerTraffic,
    DiurnalRate,
    FlashCrowd,
    SlaTarget,
    TrafficEngine,
    TrafficMix,
)
from repro.virt.vm import NestedVM, VMState

DAY = 24 * 3600.0


def make_vm(env, customer, state=VMState.RUNNING):
    vm = NestedVM(env, M3_CATALOG.get("m3.medium"), customer=customer)
    customer.add_vm(vm)
    if state is not VMState.PROVISIONING:
        vm.set_state(state)
    return vm


def make_watched(env, pattern=None, sla=None, **engine_kwargs):
    customer = Customer("web")
    engine = TrafficEngine(env, **engine_kwargs)
    traffic = CustomerTraffic("web", pattern or ConstantRate(10.0),
                              sla or SlaTarget())
    ledger = engine.watch(customer, traffic)
    return engine, customer, ledger


class TestAccounting:
    def test_requests_conserved(self, env):
        pattern = DiurnalRate(base_rps=50.0) + FlashCrowd(
            start_s=3600.0, peak_rps=200.0, ramp_s=600.0, hold_s=1800.0,
            decay_s=600.0)
        engine, customer, ledger = make_watched(env, pattern)
        make_vm(env, customer)
        engine.start(until=DAY)
        env.run(until=DAY)
        assert ledger.total_requests == pytest.approx(
            pattern.requests_between(0.0, DAY), rel=1e-9)
        assert ledger.accounted_s == pytest.approx(DAY)

    def test_downtime_becomes_failures(self, env):
        engine, customer, ledger = make_watched(env, ConstantRate(10.0))
        vm = make_vm(env, customer)

        def churn():
            yield env.timeout(1000.0)
            vm.set_state(VMState.SUSPENDED)
            yield env.timeout(50.0)
            vm.set_state(VMState.RUNNING)

        env.process(churn())
        engine.start(until=2000.0)
        env.run(until=2000.0)
        assert ledger.failed_requests == pytest.approx(500.0)
        assert ledger.down_s == pytest.approx(50.0)

    def test_segment_accounted_under_old_state(self, env):
        # The flush that a transition triggers must score the elapsed
        # time under the state the VM held *before* the transition.
        engine, customer, ledger = make_watched(env, ConstantRate(10.0))
        vm = make_vm(env, customer)

        def churn():
            yield env.timeout(1000.0)
            vm.set_state(VMState.SUSPENDED)

        env.process(churn())
        engine.start(until=1000.0)
        env.run(until=1000.0)
        # All 10k requests landed while RUNNING; none failed.
        assert ledger.failed_requests == 0.0
        assert ledger.total_requests == pytest.approx(10000.0)

    def test_no_vms_means_all_errors(self, env):
        engine, customer, ledger = make_watched(env, ConstantRate(5.0))
        engine.start(until=100.0)
        env.run(until=100.0)
        assert ledger.error_rate == 1.0
        assert ledger.failed_requests == pytest.approx(500.0)

    def test_degraded_states_slow_but_succeed(self, env):
        engine, customer, ledger = make_watched(
            env, ConstantRate(10.0),
            SlaTarget(latency_ms=45.0, availability=0.9))
        vm = make_vm(env, customer, state=VMState.RESTORING)
        engine.start(until=100.0)
        env.run(until=100.0)
        assert ledger.failed_requests == 0.0
        assert ledger.degraded_s == pytest.approx(100.0)
        # Restore latency (~60 ms) blows the 45 ms threshold for most.
        assert ledger.slow_requests > 500.0

    def test_membership_change_splits_share(self, env):
        engine, customer, ledger = make_watched(env, ConstantRate(10.0))
        vm1 = make_vm(env, customer)

        def grow():
            yield env.timeout(500.0)
            vm2 = make_vm(env, customer)
            yield env.timeout(400.0)
            vm2.set_state(VMState.SUSPENDED)

        env.process(grow())
        engine.start(until=1000.0)
        env.run(until=1000.0)
        # Requests are conserved regardless of fleet size changes.
        assert ledger.total_requests == pytest.approx(10000.0)
        # The suspended VM carries half the arrival share for 100 s.
        assert ledger.failed_requests == pytest.approx(500.0)
        assert engine.stats["membership_flushes"] == 1
        assert engine.stats["state_flushes"] >= 2


class TestEventElision:
    def test_wakes_independent_of_volume(self, env):
        """The acceptance criterion, in miniature: x1000 the request
        volume, identical kernel wake and segment counts."""
        def run(users):
            env = Environment(seed=9)
            pattern = (DiurnalRate(base_rps=0.05) + FlashCrowd(
                start_s=0.5 * DAY, peak_rps=0.2, ramp_s=600.0,
                hold_s=3600.0, decay_s=600.0)).scaled(users)
            engine, customer, ledger = make_watched(env, pattern)
            vm = make_vm(env, customer)

            def churn():
                yield env.timeout(0.3 * DAY)
                vm.set_state(VMState.MIGRATING)
                yield env.timeout(60.0)
                vm.set_state(VMState.RUNNING)

            env.process(churn())
            engine.start(until=DAY)
            env.run(until=DAY)
            return engine.drive_stats()

        low, high = run(1_000), run(1_000_000)
        assert high["requests"] == pytest.approx(1000 * low["requests"])
        for key in ("wakes", "breakpoint_wakes", "report_wakes",
                    "window_rolls", "segments", "state_flushes"):
            assert high[key] == low[key]

    def test_wakes_are_reports_breakpoints_windows(self, env):
        crowd = FlashCrowd(start_s=5000.0, peak_rps=10.0, ramp_s=500.0,
                           hold_s=500.0, decay_s=500.0)
        engine, customer, ledger = make_watched(
            env, ConstantRate(1.0) + crowd,
            SlaTarget(window_s=20000.0), report_interval_s=10000.0)
        make_vm(env, customer)
        engine.start(until=40000.0)
        env.run(until=40000.0)
        stats = engine.drive_stats()
        assert stats["breakpoint_wakes"] == 4
        assert stats["report_wakes"] == 4
        # 10k, 20k (report+window), 30k, 40k, plus 4 crowd corners.
        assert stats["wakes"] == 8

    def test_state_changes_cost_no_kernel_events(self, env):
        engine, customer, ledger = make_watched(
            env, ConstantRate(1.0), SlaTarget(window_s=1e6),
            report_interval_s=1e6)
        vm = make_vm(env, customer)

        def churn():
            for _ in range(20):
                yield env.timeout(10.0)
                vm.set_state(VMState.MIGRATING)
                yield env.timeout(10.0)
                vm.set_state(VMState.RUNNING)

        env.process(churn())
        engine.start(until=1000.0)
        env.run(until=1000.0)
        stats = engine.drive_stats()
        assert stats["state_flushes"] == 40
        assert stats["wakes"] == 1  # the horizon only


class TestWindowsAndReports:
    def test_window_budget_uses_pattern_volume(self, env):
        engine, customer, ledger = make_watched(
            env, ConstantRate(10.0),
            SlaTarget(availability=0.99, window_s=100.0))
        make_vm(env, customer)
        engine.start(until=350.0)
        env.run(until=350.0)
        assert len(ledger.windows) == 4  # 3 full + 1 partial
        assert ledger.windows[0]["budget"] == pytest.approx(10.0)
        # The final, partial window's budget scales with its length.
        assert ledger.windows[3]["budget"] == pytest.approx(5.0)

    def test_breach_event_on_bus(self, env):
        obs = Observability()
        obs.attach(env)
        engine, customer, ledger = make_watched(
            env, ConstantRate(10.0),
            SlaTarget(availability=0.999, window_s=1000.0), obs=obs)
        vm = make_vm(env, customer)

        def churn():
            yield env.timeout(500.0)
            vm.set_state(VMState.SUSPENDED)

        env.process(churn())
        engine.start(until=1000.0)
        env.run(until=1000.0)
        breaches = [e for e in obs.events if e.name == "sla.breach"]
        windows = [e for e in obs.events if e.name == "sla.window"]
        reports = [e for e in obs.events if e.name == "sla.report"]
        assert len(breaches) == 1
        assert breaches[0].time == pytest.approx(1000.0)
        assert windows and reports

    def test_report_and_snapshot(self, env):
        engine, customer, ledger = make_watched(env, ConstantRate(10.0))
        make_vm(env, customer)
        engine.start(until=100.0)
        env.run(until=100.0)
        report = engine.report()
        assert set(report) == {"web"}
        assert report["web"]["total_requests"] == pytest.approx(1000.0)
        assert engine.ledger("web") is ledger
        with pytest.raises(KeyError):
            engine.ledger("nobody")


class TestLifecycle:
    def test_start_validation(self, env):
        engine = TrafficEngine(env)
        with pytest.raises(ValueError, match="no customers"):
            engine.start(until=100.0)
        engine.watch(Customer("c"), CustomerTraffic("c"))
        with pytest.raises(ValueError, match="future"):
            engine.start(until=0.0)
        engine.start(until=100.0)
        with pytest.raises(ValueError, match="already started"):
            engine.start(until=200.0)

    def test_double_watch_rejected(self, env):
        engine = TrafficEngine(env)
        customer = Customer("c")
        engine.watch(customer, CustomerTraffic("c"))
        with pytest.raises(ValueError, match="already watched"):
            engine.watch(customer, CustomerTraffic("c2"))

    def test_finalize_idempotent(self, env):
        engine, customer, ledger = make_watched(env, ConstantRate(10.0))
        make_vm(env, customer)
        engine.start(until=100.0)
        env.run(until=100.0)
        rolls = engine.stats["window_rolls"]
        engine.finalize()
        engine.finalize()
        assert engine.stats["window_rolls"] == rolls

    def test_prestart_churn_not_scored(self, env):
        engine, customer, ledger = make_watched(env, ConstantRate(10.0))
        vm = make_vm(env, customer)

        def flow():
            yield env.timeout(500.0)
            vm.set_state(VMState.SUSPENDED)  # pre-start: not scored
            yield env.timeout(100.0)
            vm.set_state(VMState.RUNNING)
            engine.start(until=1000.0)

        env.process(flow())
        env.run(until=1000.0)
        assert ledger.total_requests == pytest.approx(4000.0)
        assert ledger.failed_requests == 0.0


class TestTrafficMix:
    def test_allocation_largest_remainder(self):
        mix = TrafficMix(groups=(
            CustomerTraffic("a", weight=3.0),
            CustomerTraffic("b", weight=1.0)))
        assert mix.allocate_vms(12) == [9, 3]
        assert mix.allocate_vms(2) == [1, 1]
        assert sum(mix.allocate_vms(7)) == 7

    def test_allocation_validation(self):
        mix = TrafficMix(groups=(CustomerTraffic("a"),
                                 CustomerTraffic("b")))
        with pytest.raises(ValueError, match="cannot cover"):
            mix.allocate_vms(1)
        with pytest.raises(ValueError, match="no customer groups"):
            TrafficMix().allocate_vms(4)

    def test_group_type_checked(self):
        with pytest.raises(TypeError):
            TrafficMix(groups=("not-a-traffic",))
        with pytest.raises(ValueError):
            CustomerTraffic("a", weight=0.0)
