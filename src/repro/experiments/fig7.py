"""Figure 7: nested-VM performance vs VMs per backup server.

Sweeps the number of VMs whose checkpoint streams share one backup
server, reporting SPECjbb throughput and TPC-W response time.  Column
"0" is checkpointing off; column "1" is a dedicated backup server.
The knee appears where aggregate stream demand saturates the backup
write path (~35 VMs), exactly as in the paper.
"""

from repro.backup.server import BackupServer, BackupServerSpec
from repro.sim.kernel import Environment
from repro.virt.migration.checkpoint import CheckpointConfig, CheckpointStream
from repro.workloads import Conditions, SpecJbbWorkload, TpcwWorkload

GUEST_BYTES = int(3.75 * 0.45 * 1024 ** 3)  # nested m3.medium guest

DEFAULT_COUNTS = (0, 1, 10, 20, 30, 35, 40, 45, 50)


def run(vm_counts=DEFAULT_COUNTS, backup_spec=None,
        checkpoint_config=None):
    """Sweep backup-server load; returns per-count performance rows."""
    spec = backup_spec or BackupServerSpec()
    ckpt = checkpoint_config or CheckpointConfig()
    tpcw = TpcwWorkload()
    jbb = SpecJbbWorkload()
    tpcw_stream = CheckpointStream(tpcw.memory_model(GUEST_BYTES), ckpt)
    jbb_stream = CheckpointStream(jbb.memory_model(GUEST_BYTES), ckpt)

    rows = []
    for count in vm_counts:
        row = {"vms": count}
        for label, workload, stream in (
                ("tpcw", tpcw, tpcw_stream), ("specjbb", jbb, jbb_stream)):
            if count == 0:
                conditions = Conditions(checkpointing=False)
            else:
                env = Environment()
                server = BackupServer(env, spec)
                for i in range(count):
                    server.assign_stream(f"vm-{i}", stream.stream_rate_bps())
                conditions = Conditions(
                    checkpointing=True,
                    backup_overload=server.overload_fraction())
                # Fair-share cross-check: the water-filled per-stream
                # grants must reproduce the same post-knee throttling
                # the utilization ratio predicts.
                row[f"{label}_throttle"] = server.write_throttle_fraction()
                grants = server.stream_fair_rates()
                row[f"{label}_granted_mbps"] = \
                    min(grants.values()) / 1e6 if grants else 0.0
            row[label] = workload.performance(conditions)
            row[f"{label}_degradation"] = \
                workload.degradation_fraction(conditions)
        rows.append(row)
    return {
        "rows": rows,
        "tpcw_stream_mbps": tpcw_stream.stream_rate_bps() / 1e6,
        "specjbb_stream_mbps": jbb_stream.stream_rate_bps() / 1e6,
        "write_path_mbps": spec.write_path_bps / 1e6,
    }


def knee_vms(result, workload="specjbb", threshold=0.05):
    """First VM count whose degradation exceeds ``threshold``."""
    for row in result["rows"]:
        if row["vms"] >= 1 and row[f"{workload}_degradation"] > threshold:
            return row["vms"]
    return None
