"""Fleet workload mixes: heterogeneous checkpoint plans by design.

SpotCheck's fleet-scale benchmarks drive *homogeneous* cells — every
nested VM dirties memory identically, so the whole fleet shares one
checkpoint plan and one cohort.  Real derivative-cloud tenants are not
like that: Spot-on-style long-running jobs bring application-specific
checkpoint cadences, i.e. many distinct plans per (pool, mechanism).

A :class:`FleetMix` describes such a population as a list of
:class:`MixClass` entries — each a *write-rate factor* applied to the
fleet bench's synthetic base profile plus a relative weight.  The mix
is pure data (a frozen dataclass of tuples), picklable across shard
processes, and deterministic: :meth:`FleetMix.counts` apportions a
fleet size by largest remainder and :meth:`FleetMix.workload_factory`
hands out workloads in class blocks, so every market builds the same
population no matter which process hosts it.

:func:`default_fleet_mix` spreads factors geometrically (ratio 1/3)
so the summed checkpoint-round rate of all classes stays under ~1.5x
the base class alone — that is what lets the heterogeneity ratchet
(``fleet_mix`` in ``check_bench_floors``) demand the mixed cell stay
within 2x the homogeneous cell's kernel events.
"""

from dataclasses import dataclass

from repro.workloads.base import Workload

__all__ = [
    "FLEET_BASE_WRITE_RATE_PAGES",
    "FleetMix",
    "MixClass",
    "WriteScaledWorkload",
    "default_fleet_mix",
]

#: Write rate of the fleet bench's base class, matching the default
#: :class:`~repro.virt.vm.NestedVM` memory model — so a single-class
#: mix reproduces the homogeneous fleet cell exactly.
FLEET_BASE_WRITE_RATE_PAGES = 2000.0


class WriteScaledWorkload(Workload):
    """A workload class distinguished only by its write rate.

    Scales a base dirtying profile by ``factor``; performance queries
    fall back to flat (no degradation), since the fleet cells measure
    scheduling cost, not SLA response.  Distinct factors produce
    distinct :class:`~repro.virt.memory.MemoryModel` instances and so
    distinct checkpoint plans — which is the entire point.
    """

    working_set_fraction = 0.2
    cold_write_fraction = 0.02

    def __init__(self, factor=1.0,
                 base_write_rate_pages=FLEET_BASE_WRITE_RATE_PAGES):
        if factor <= 0:
            raise ValueError("factor must be positive")
        self.factor = factor
        self.write_rate_pages = base_write_rate_pages * factor
        self.name = f"fleet-x{factor:g}"

    def performance(self, conditions):
        return 1.0

    def degradation_fraction(self, conditions):
        return 0.0


@dataclass(frozen=True)
class MixClass:
    """One workload class of a fleet mix."""

    factor: float
    weight: float = 1.0

    def __post_init__(self):
        if self.factor <= 0:
            raise ValueError("mix class factor must be positive")
        if self.weight <= 0:
            raise ValueError("mix class weight must be positive")


@dataclass(frozen=True)
class FleetMix:
    """A deterministic population of write-scaled workload classes."""

    classes: tuple

    def __post_init__(self):
        if not self.classes:
            raise ValueError("a fleet mix needs at least one class")
        for entry in self.classes:
            if not isinstance(entry, MixClass):
                raise TypeError(
                    f"mix classes must be MixClass, got {entry!r}")

    def __len__(self):
        return len(self.classes)

    def counts(self, total):
        """Apportion ``total`` VMs over the classes (largest remainder).

        Every class with positive weight receives at least its floor
        share; leftover VMs go to the largest fractional remainders in
        class order — pure arithmetic, identical in every process.
        """
        if total < 0:
            raise ValueError("total must be non-negative")
        weight_sum = sum(entry.weight for entry in self.classes)
        shares = [total * entry.weight / weight_sum
                  for entry in self.classes]
        counts = [int(share) for share in shares]
        leftover = total - sum(counts)
        remainders = sorted(
            range(len(shares)),
            key=lambda index: (-(shares[index] - counts[index]), index))
        for index in remainders[:leftover]:
            counts[index] += 1
        return counts

    def workload_factory(self, total):
        """A per-VM workload factory handing out classes in blocks.

        The first ``counts[0]`` calls produce class 0, the next block
        class 1, and so on; calls past ``total`` repeat the last class
        (defensive — provisioning never overruns its request).
        """
        counts = self.counts(total)
        schedule = []
        for entry, count in zip(self.classes, counts):
            schedule.extend([entry.factor] * count)
        state = {"next": 0}

        def factory():
            index = min(state["next"], len(schedule) - 1)
            state["next"] += 1
            return WriteScaledWorkload(schedule[index])

        return factory


def default_fleet_mix(classes=8, ratio=1.0 / 3.0):
    """The bench's heterogeneous population: geometric write factors.

    Class k runs at ``ratio**k`` times the base write rate, equal
    weights.  Checkpoint rounds scale roughly linearly in the write
    factor, so the summed round rate over all classes is about
    ``1 / (1 - ratio)`` times the base class alone — 1.5x at the
    default ratio, comfortably inside the 2x heterogeneity ratchet.
    """
    if classes < 1:
        raise ValueError("need at least one class")
    if not 0 < ratio < 1:
        raise ValueError("ratio must lie in (0, 1)")
    return FleetMix(classes=tuple(
        MixClass(factor=ratio ** k) for k in range(classes)))
