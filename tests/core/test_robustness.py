"""Robustness: control-plane faults, revocation races, determinism.

The race and degradation tests behind ``docs/robustness.md``: a host
revoked while its request flow is still wiring, a graceful terminate
racing the platform's forced termination, detach retries overrunning
the warning deadline, the on-demand capacity reservation, and the
bit-identical-when-disabled guarantee of the fault layer.
"""

import pytest

from repro.cloud.api import CloudApi
from repro.cloud.errors import ApiError, CapacityError, InvalidOperation
from repro.cloud.instance_types import M3_CATALOG
from repro.cloud.instances import Market
from repro.cloud.spot_market import SpotMarket
from repro.cloud.zones import default_region
from repro.core.config import SpotCheckConfig
from repro.core.controller import SpotCheckController
from repro.core.policies.placement import StabilityFirst
from repro.faults import FaultInjector, FaultPlan
from repro.obs import Observability
from repro.sim.errors import Interrupt
from repro.sim.kernel import Environment
from repro.traces.archive import PriceTrace, TraceArchive

from tests.conftest import flat_trace
from tests.core.test_controller import (
    SPIKE_END,
    SPIKE_START,
    build,
    launch_fleet,
    quiet_trace,
    spiky_trace,
)

DAY = 24 * 3600.0

MEDIUM = M3_CATALOG.get("m3.medium")
LARGE = M3_CATALOG.get("m3.large")


def build_faulty(plan, config=None, traces=None, seed=99, obs=None):
    """Like ``test_controller.build`` but with a fault injector wired."""
    env = Environment(seed=seed, obs=obs)
    region = default_region(1)
    zone = region.zones[0]
    injector = FaultInjector(env, plan)
    api = CloudApi(env, region, M3_CATALOG, faults=injector)
    archive = TraceArchive()
    trace_map = traces or {"m3.medium": spiky_trace("m3.medium", 0.07)}
    for type_name, trace in trace_map.items():
        archive.add(trace)
    controller = SpotCheckController(env, api, config or SpotCheckConfig())
    controller.install_pools(archive, zone)
    return env, api, controller, injector


def degradations(obs, path=None):
    total = 0
    for series in obs.metrics.find("fault_degradations_total"):
        if path is None or series.labels.get("path") == path:
            total += int(series.value)
    return total


class TestPlacementUnderFaults:
    def test_transient_start_faults_still_place_vm(self):
        plan = FaultPlan(error_rates={"start_spot_instance": 0.7,
                                      "attach_volume": 0.5},
                         terminal_fraction=0.0)
        env, api, controller, injector = build_faulty(
            plan, traces={"m3.medium": quiet_trace("m3.medium", 0.07)})
        vms = launch_fleet(env, controller, count=3)
        for vm in vms:
            assert vm.is_running
            assert vm.volume.attached_to is vm.host.instance
        assert injector.total_injected > 0

    def test_terminal_spot_faults_degrade_to_on_demand(self):
        # Every spot launch fails terminally: the placement loop burns
        # its budget, notes the degradations, and parks the VM on an
        # on-demand host instead of raising out of the request flow.
        obs = Observability()
        plan = FaultPlan(error_rates={"start_spot_instance": 1.0},
                         terminal_fraction=1.0)
        env, api, controller, injector = build_faulty(
            plan, traces={"m3.medium": quiet_trace("m3.medium", 0.07)},
            obs=obs)
        [vm] = launch_fleet(env, controller, count=1)
        assert vm.is_running
        assert vm.host.instance.market is Market.ON_DEMAND
        assert degradations(obs, "request.placement") >= 1
        assert injector.counts["api-error-terminal"] >= 1

    def test_host_revoked_mid_request_flow(self):
        # The price spikes over the bid while the spot instance is
        # still inside its start latency: the market warns it at
        # registration time, so the request flow finishes wiring a
        # doomed host.  The controller must ride the revocation and
        # keep the VM alive — first on-demand, back on spot after the
        # spike.
        trace = PriceTrace([0.0, 5.0, 4000.0, 10 * DAY],
                           [0.014, 0.7, 0.014, 0.014],
                           "m3.medium", "us-east-1a", 0.07)
        env, api, controller = build(traces={"m3.medium": trace})
        [vm] = launch_fleet(env, controller, count=1)
        env.run(until=6000.0)
        assert vm.is_running
        assert vm.state.value == "running"


class TestTerminateRaces:
    def test_graceful_terminate_after_forced_is_noop(self):
        env, api, controller = build()
        [vm] = launch_fleet(env, controller, count=1)
        instance = vm.host.instance
        api._force_terminate(instance)
        # EC2's terminate is idempotent against its own revocation.
        result = env.run(until=api.terminate_instance(instance))
        assert result is instance

    def test_graceful_terminate_twice_still_invalid(self):
        env, api, controller = build()
        [vm] = launch_fleet(env, controller, count=1)
        instance = vm.host.instance
        env.run(until=api.terminate_instance(instance))
        with pytest.raises(InvalidOperation):
            env.run(until=api.terminate_instance(instance))

    def test_force_terminate_during_graceful_latency(self):
        # Graceful terminate is mid-latency when the platform force
        # terminates the instance; both complete, billing closes once.
        env, api, controller = build()
        [vm] = launch_fleet(env, controller, count=1)
        instance = vm.host.instance
        proc = api.terminate_instance(instance)

        def racer():
            yield env.timeout(0.5)  # inside the terminate latency
            api._force_terminate(instance)
            result = yield proc
            return result

        result = env.run(until=env.process(racer()))
        assert result is instance
        assert not instance.is_running
        record = api.billing.records[instance.id]
        assert record.end is not None


class TestRevocationDeadline:
    def test_detach_retries_overrun_deadline_degrade_no_state_loss(self):
        # Every detach fails transiently, so the revocation path's
        # deadline-aware retries exhaust inside the warning window and
        # the flow degrades: it waits for the platform's forced
        # termination (whose force-detach frees the attachments) and
        # restores at the destination from the backup image.  State is
        # never at risk; only downtime stretches.
        obs = Observability()
        plan = FaultPlan(error_rates={"detach_volume": 1.0},
                         terminal_fraction=0.0)
        env, api, controller, injector = build_faulty(plan, obs=obs)
        [vm] = launch_fleet(env, controller, count=1)
        env.run(until=SPIKE_START + 3000.0)
        assert vm.is_running
        assert vm.host.instance.market is Market.ON_DEMAND
        assert degradations(obs, "revocation.detach") >= 1
        assert controller.ledger.state_loss_events() == []
        [migration] = [m for m in controller.ledger.migrations
                       if m.cause == "revocation"]
        assert migration.state_safe
        # The degraded path's phase partition shows the forced wait.
        assert "forced-detach-wait" in migration.phases


class TestOnDemandCapacityAccounting:
    def _api(self, seed=7, capacity=1):
        env = Environment(seed=seed)
        region = default_region(1)
        api = CloudApi(env, region, M3_CATALOG,
                       on_demand_capacity=capacity)
        return env, api, region.zones[0]

    def test_slot_reserved_across_start_latency(self):
        # Two concurrent launches under a cap of one: the second must
        # see the first's reservation even though the first is still
        # inside its start latency, instead of both squeezing under
        # the cap.
        env, api, zone = self._api()
        outcomes = []

        def launch():
            try:
                instance = yield api.run_instance(
                    MEDIUM, zone, Market.ON_DEMAND)
                outcomes.append(instance)
            except CapacityError:
                outcomes.append("capacity")

        env.process(launch())
        env.process(launch())
        env.run(until=500.0)
        assert outcomes.count("capacity") == 1
        assert api._running_on_demand == 1
        assert len(api.instances) == 1

    def test_interrupted_launch_releases_reservation(self):
        # A launch killed inside its latency window must roll the
        # reservation back and leave no phantom instance behind.
        env, api, zone = self._api()
        proc = api.run_instance(MEDIUM, zone, Market.ON_DEMAND)

        def killer():
            yield env.timeout(1.0)
            proc.interrupt()
            try:
                yield proc
            except Interrupt:
                pass

        env.run(until=env.process(killer()))
        assert api._running_on_demand == 0
        assert api.instances == {}
        # The freed slot is usable again.
        instance = env.run(until=api.run_instance(
            MEDIUM, zone, Market.ON_DEMAND))
        assert instance.is_running

    def test_terminate_frees_capacity(self):
        env, api, zone = self._api()
        first = env.run(until=api.run_instance(
            MEDIUM, zone, Market.ON_DEMAND))
        env.run(until=api.terminate_instance(first))
        second = env.run(until=api.run_instance(
            MEDIUM, zone, Market.ON_DEMAND))
        assert second.is_running
        assert api._running_on_demand == 1


class TestStabilityFirstTieBreak:
    def _markets(self, env, zone, prices):
        markets = {}
        for type_name, price in prices.items():
            itype = M3_CATALOG.get(type_name)
            trace = flat_trace(price, type_name=type_name,
                               on_demand_price=itype.on_demand_price)
            markets[(type_name, zone.name)] = SpotMarket(
                env, itype, zone, trace)
        return markets

    def test_equal_volatility_prefers_cheaper_slot(self, env, zone):
        # Both flat traces have zero volatility; the sliced large at
        # 0.005/slot must beat the medium at 0.008 rather than being
        # skipped by an arbitrary first-seen tie-break.
        markets = self._markets(env, zone,
                                {"m3.medium": 0.008, "m3.large": 0.010})
        choice = StabilityFirst(M3_CATALOG).choose(MEDIUM, markets)
        assert choice.itype.name == "m3.large"
        assert choice.price_per_slot == pytest.approx(0.005)

    def test_equal_volatility_direct_when_cheaper(self, env, zone):
        markets = self._markets(env, zone,
                                {"m3.medium": 0.004, "m3.large": 0.010})
        choice = StabilityFirst(M3_CATALOG).choose(MEDIUM, markets)
        assert choice.itype.name == "m3.medium"

    def test_tie_break_independent_of_dict_order(self, env, zone):
        prices = {"m3.medium": 0.008, "m3.large": 0.010}
        forward = self._markets(env, zone, prices)
        backward = dict(reversed(list(
            self._markets(env, zone, prices).items())))
        policy = StabilityFirst(M3_CATALOG)
        assert (policy.choose(MEDIUM, forward).itype.name
                == policy.choose(MEDIUM, backward).itype.name)

    def test_full_tie_falls_back_to_market_key(self, env, zone):
        # Same volatility (zero) and same price per slot: the market
        # key decides, so the choice is deterministic.
        markets = self._markets(env, zone,
                                {"m3.medium": 0.008, "m3.large": 0.016})
        choice = StabilityFirst(M3_CATALOG).choose(MEDIUM, markets)
        assert choice.price_per_slot == pytest.approx(0.008)
        assert choice.itype.name == "m3.large"  # "m3.large" < "m3.medium"


class TestFaultsDisabledDeterminism:
    def _summary(self, faults):
        from repro.experiments.scenario import (
            PolicySimulation,
            ScenarioConfig,
        )
        config = ScenarioConfig(policy="1P-M", seed=7, days=2.0, vms=4,
                                faults=faults)
        return PolicySimulation(config).run()

    def test_disabled_plan_bit_identical_to_no_plan(self):
        # A present-but-disabled FaultPlan must not perturb a single
        # RNG draw or event ordering: the summaries are bit-identical.
        assert self._summary(None) == self._summary(FaultPlan())
