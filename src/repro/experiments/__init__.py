"""The experiment harness: one module per paper table/figure.

| Module        | Regenerates                                            |
|---------------|--------------------------------------------------------|
| ``fig1``      | Figure 1 — a spiky m1.small spot-price trace           |
| ``table1``    | Table 1 — EC2 operation latencies (20-sample stats)    |
| ``fig6``      | Figure 6 — price CDFs, jumps, cross-market correlation |
| ``fig7``      | Figure 7 — backup-server multiplexing sweep            |
| ``fig8``      | Figure 8 — full/lazy restore, 1/5/10 concurrent        |
| ``fig9``      | Figure 9 — TPC-W response during lazy restores         |
| ``policy_grid``| Figures 10-12 — cost/availability/degradation grid    |
| ``table3``    | Table 3 — concurrent-revocation probabilities          |

All experiments are deterministic given a seed and return plain data
structures; ``reporting`` renders them as the paper-style text tables
printed by the benchmarks.
"""

from repro.experiments.scenario import PolicySimulation, ScenarioConfig

__all__ = ["PolicySimulation", "ScenarioConfig"]
