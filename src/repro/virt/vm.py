"""Nested VMs — the unit SpotCheck sells to its customers."""

import enum
from itertools import count

from repro.virt.memory import MemoryModel

_IDS = count(1)


class VMState(enum.Enum):
    """Lifecycle of a nested VM as SpotCheck's controller sees it."""

    PROVISIONING = "provisioning"
    RUNNING = "running"
    #: Live pre-copy in progress: running, slightly degraded.
    MIGRATING = "migrating"
    #: Suspended between checkpoint commit and resume at destination.
    SUSPENDED = "suspended"
    #: Lazily restoring: running, degraded by demand paging.
    RESTORING = "restoring"
    TERMINATED = "terminated"


class NestedVM:
    """A customer-visible VM running inside a nested hypervisor.

    Attributes
    ----------
    itype:
        The *advertised* instance type (what the customer asked for —
        the native host may be larger, holding several nested VMs).
    memory:
        :class:`~repro.virt.memory.MemoryModel` for the guest.
    workload:
        Optional workload model (drives dirty rate and performance
        reporting); anything with a ``memory_model(guest_bytes)``
        method and performance hooks.
    private_ip:
        The VPC address that follows the VM across migrations.
    """

    def __init__(self, env, itype, memory=None, workload=None, customer=None):
        self.env = env
        self.id = f"nvm-{next(_IDS):06x}"
        self.itype = itype
        self.customer = customer
        self.workload = workload
        if memory is None:
            if workload is not None:
                memory = workload.memory_model(self._default_guest_bytes())
            else:
                memory = MemoryModel(
                    total_bytes=self._default_guest_bytes(),
                    write_rate_pages=2000.0)
        self.memory = memory
        self.state = VMState.PROVISIONING
        self.host = None
        self.private_ip = None
        self.eni = None
        self.volume = None
        self.backup_assignment = None
        self.checkpoint_stream = None
        self.created_at = env.now
        #: (time, state) transition log for availability accounting.
        self.state_log = [(env.now, VMState.PROVISIONING)]
        self._state_listeners = None

    def _default_guest_bytes(self):
        # The nested hypervisor and dom0 take a slice of the host's RAM;
        # the paper's m3.medium nested VMs expose roughly half the
        # host's 3.75 GiB to the guest.
        return int(self.itype.memory_gib * 0.45 * (1024 ** 3))

    def on_state_change(self, callback):
        """Call ``callback(vm, old_state, new_state)`` on transitions.

        Listeners fire synchronously inside :meth:`set_state`, before
        any other process observes the new state — the traffic engine
        uses this to batch-account the elapsed segment under the old
        state without scheduling a kernel event.
        """
        if self._state_listeners is None:
            self._state_listeners = []
        if callback not in self._state_listeners:
            self._state_listeners.append(callback)

    def set_state(self, state):
        if self.state is VMState.TERMINATED:
            raise ValueError(f"{self.id} is terminated")
        old_state = self.state
        self.state = state
        self.state_log.append((self.env.now, state))
        if self._state_listeners:
            for callback in self._state_listeners:
                callback(self, old_state, state)

    @property
    def is_running(self):
        return self.state in (
            VMState.RUNNING, VMState.MIGRATING, VMState.RESTORING)

    def downtime_between(self, start, end):
        """Seconds of SUSPENDED/PROVISIONING time within [start, end]."""
        return self._time_in_states(
            start, end, (VMState.SUSPENDED, VMState.PROVISIONING))

    def degraded_time_between(self, start, end):
        """Seconds spent MIGRATING or RESTORING within [start, end]."""
        return self._time_in_states(
            start, end, (VMState.MIGRATING, VMState.RESTORING))

    def _time_in_states(self, start, end, states):
        total = 0.0
        log = self.state_log
        for i, (when, state) in enumerate(log):
            seg_end = log[i + 1][0] if i + 1 < len(log) else end
            lo, hi = max(when, start), min(seg_end, end)
            if hi > lo and state in states:
                total += hi - lo
        return total

    def __repr__(self):
        return f"<NestedVM {self.id} {self.itype.name} {self.state.value}>"
