"""Tests for the Figure 6 statistics."""

import numpy as np
import pytest

from repro.traces import stats
from repro.traces.archive import PriceTrace


def make_trace(steps, od=0.07, type_name="m3.medium", zone="z1"):
    times = [t for t, _ in steps]
    prices = [p for _, p in steps]
    return PriceTrace(times, prices, type_name, zone, od)


class TestResample:
    def test_hourly_grid(self):
        trace = make_trace([(0, 0.02), (5400, 0.05)])
        grid, prices = stats.resample_hourly(trace, horizon=4 * 3600)
        assert list(grid) == [0.0, 3600.0, 7200.0, 10800.0]
        assert list(prices) == [0.02, 0.02, 0.05, 0.05]

    def test_bad_horizon(self):
        trace = make_trace([(100, 0.02)])
        with pytest.raises(ValueError):
            stats.resample_hourly(trace, horizon=50)


class TestAvailability:
    def test_at_bid_simple(self):
        trace = make_trace([(0, 0.02), (100, 0.10), (200, 0.02)])
        # 100s above 0.07 out of 300s (horizon at 300).
        assert stats.availability_at_bid(trace, 0.07, horizon=300) == \
            pytest.approx(2 / 3)

    def test_cdf_monotone(self):
        trace = make_trace([(0, 0.02), (50, 0.05), (100, 0.12), (150, 0.02)])
        ratios, availability = stats.availability_cdf(trace, horizon=200)
        assert (np.diff(availability) >= -1e-12).all()
        assert availability[0] == 0.0
        assert availability[-1] <= 1.0

    def test_cdf_at_one_equals_availability_at_od(self):
        trace = make_trace([(0, 0.02), (100, 0.3), (150, 0.02)])
        ratios, availability = stats.availability_cdf(
            trace, ratios=[1.0], horizon=400)
        assert availability[0] == pytest.approx(
            stats.availability_at_bid(trace, 0.07, horizon=400))


class TestJumps:
    def test_increase_and_decrease_split(self):
        trace = make_trace([(0, 0.02), (3600, 0.08), (7200, 0.02)])
        increases, decreases = stats.price_jump_cdf(trace, horizon=3 * 3600)
        assert increases[0] == pytest.approx(300.0)  # 0.02 -> 0.08
        assert decreases[0] == pytest.approx(75.0)   # 0.08 -> 0.02

    def test_flat_trace_no_jumps(self):
        trace = make_trace([(0, 0.02)])
        increases, decreases = stats.price_jump_cdf(trace, horizon=10 * 3600)
        assert len(increases) == 0 and len(decreases) == 0


class TestCorrelation:
    def test_identical_traces_fully_correlated(self):
        steps = [(i * 3600.0, 0.02 + 0.01 * (i % 5)) for i in range(50)]
        a = make_trace(steps, type_name="a")
        b = make_trace(steps, type_name="b")
        keys, matrix = stats.correlation_matrix([a, b])
        assert matrix[0, 1] == pytest.approx(1.0)

    def test_anticorrelated(self):
        up = [(i * 3600.0, 0.01 + 0.001 * i) for i in range(50)]
        down = [(i * 3600.0, 0.06 - 0.001 * i) for i in range(50)]
        keys, matrix = stats.correlation_matrix(
            [make_trace(up, type_name="a"), make_trace(down, type_name="b")])
        assert matrix[0, 1] == pytest.approx(-1.0)

    def test_constant_trace_zero_correlation(self):
        steps = [(i * 3600.0, 0.02 + 0.01 * (i % 3)) for i in range(30)]
        flat = make_trace([(0, 0.02)], type_name="flat")
        varying = make_trace(steps, type_name="vary")
        keys, matrix = stats.correlation_matrix([flat, varying])
        assert matrix[0, 1] == 0.0
        assert matrix[0, 0] == 1.0

    def test_needs_two_traces(self):
        with pytest.raises(ValueError):
            stats.correlation_matrix([make_trace([(0, 0.02)])])

    def test_independent_streams_uncorrelated(self):
        # The Fig 6c/6d property: independently seeded markets must be
        # (near-)uncorrelated.
        from repro.traces.calibration import M3_MARKET_PARAMS
        from repro.traces.generator import TraceGenerator
        generator = TraceGenerator(seed=13)
        traces = [
            generator.generate_market(name, "z1", params,
                                      duration_s=40 * 24 * 3600.0)
            for name, params in M3_MARKET_PARAMS.items()]
        _keys, matrix = stats.correlation_matrix(traces)
        off_diagonal = np.abs(matrix - np.eye(len(traces))).max()
        assert off_diagonal < 0.25


class TestSummaries:
    def test_spike_count(self):
        trace = make_trace([(0, 0.02), (10, 0.2), (20, 0.02), (30, 0.3)])
        assert stats.spike_count(trace) == 2

    def test_summarize_keys(self):
        trace = make_trace([(0, 0.02)])
        summary = stats.summarize(trace)
        assert summary["market"] == ("m3.medium", "z1")
        assert summary["mean_ratio"] == pytest.approx(0.02 / 0.07)
        assert summary["availability_at_od"] == 1.0
