"""Figure 9: TPC-W response time vs concurrent lazy restorations.

Zero concurrent restores is normal operation (~29 ms); during a lazy
restore the restoring VM's response time roughly doubles (~60 ms), and
additional concurrent restores barely move it because the backup server
partitions bandwidth per VM.  Each row also reports the per-restore
bandwidth the fair-share datapath actually grants at that concurrency,
so the "barely moves" claim is tied to the simulated device.
"""

from repro.backup.server import BackupServer
from repro.sim.kernel import Environment
from repro.workloads import Conditions, TpcwWorkload

CONCURRENCY = (0, 1, 5, 10)


def run(concurrency=CONCURRENCY):
    workload = TpcwWorkload()
    rows = []
    for n in concurrency:
        if n == 0:
            conditions = Conditions()
            share_mbps = 0.0
        else:
            conditions = Conditions(restoring=True, restore_concurrency=n)
            share_mbps = _datapath_share_bps(n) / 1e6
        rows.append({
            "concurrent": n,
            "response_ms": workload.response_time_ms(conditions),
            "per_restore_mbps": share_mbps,
        })
    return {"rows": rows, "baseline_ms": workload.baseline_response_ms}


def _datapath_share_bps(concurrent):
    """The rate one of ``concurrent`` lazy readers gets on the datapath.

    Submits the flows against a fresh server and reads back the
    rebalanced allocation — the same split the DES storm path uses, so
    this figure cannot drift from the simulation.
    """
    env = Environment()
    server = BackupServer(env)
    for _ in range(concurrent):
        server.restore_read_flow(10 * 1024 ** 2, "lazy", True)
    return min(flow.rate for flow in server.datapath.flows)
