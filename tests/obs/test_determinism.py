"""The reproducibility contract: same seed + same config produces
byte-identical observability output.

Object ids (``nvm-*``, ``i-*``, ``vol-*``) come from process-global
counters, so the guarantee — and therefore this test — is across fresh
interpreter processes, which is exactly how two operators comparing
runs would invoke the CLI.
"""

import os
import subprocess
import sys

import pytest

REPO_SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__)))), "src")


def run_simulate(out_dir, seed=1):
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
    subprocess.run(
        [sys.executable, "-m", "repro", "simulate", "--days", "4",
         "--vms", "4", "--seed", str(seed), "--obs-dir", out_dir],
        check=True, env=env, capture_output=True, timeout=300)


@pytest.fixture(scope="module")
def twin_runs(tmp_path_factory):
    base = tmp_path_factory.mktemp("determinism")
    first, second = str(base / "a"), str(base / "b")
    run_simulate(first)
    run_simulate(second)
    return first, second


class TestDeterminism:
    def test_event_logs_are_byte_identical(self, twin_runs):
        first, second = twin_runs
        a = open(os.path.join(first, "events.jsonl"), "rb").read()
        b = open(os.path.join(second, "events.jsonl"), "rb").read()
        assert a, "expected a non-empty event log"
        assert a == b

    def test_metrics_are_byte_identical(self, twin_runs):
        first, second = twin_runs
        a = open(os.path.join(first, "metrics.prom"), "rb").read()
        b = open(os.path.join(second, "metrics.prom"), "rb").read()
        assert a == b

    def test_traces_are_byte_identical(self, twin_runs):
        first, second = twin_runs
        a = open(os.path.join(first, "traces.txt"), "rb").read()
        b = open(os.path.join(second, "traces.txt"), "rb").read()
        assert a == b

    def test_different_seed_changes_the_log(self, twin_runs, tmp_path):
        first, _second = twin_runs
        other = str(tmp_path / "other")
        run_simulate(other, seed=2)
        a = open(os.path.join(first, "events.jsonl"), "rb").read()
        b = open(os.path.join(other, "events.jsonl"), "rb").read()
        assert a != b
