"""Native cloud instances (the host VMs SpotCheck rents)."""

import enum
from itertools import count

from repro.cloud.errors import InvalidOperation

_IDS = count(1)


class Market(enum.Enum):
    """Contract under which an instance was purchased."""

    ON_DEMAND = "on-demand"
    SPOT = "spot"


class InstanceState(enum.Enum):
    """Lifecycle of a native instance."""

    PENDING = "pending"
    RUNNING = "running"
    #: A spot instance that has received its revocation warning and will
    #: be force-terminated when the warning period elapses.
    MARKED_FOR_TERMINATION = "marked-for-termination"
    TERMINATED = "terminated"


class Instance:
    """A native VM rented from the cloud platform.

    Instances are created by :class:`repro.cloud.api.CloudApi`; user code
    observes state transitions and, for spot instances, subscribes to
    the revocation warning via :attr:`termination_notice`.
    """

    def __init__(self, env, itype, zone, market, bid=None):
        if market is Market.SPOT:
            if bid is None or bid <= 0:
                raise ValueError("spot instances require a positive bid")
        elif bid is not None:
            raise ValueError("on-demand instances take no bid")
        self.env = env
        self.id = f"i-{next(_IDS):08x}"
        self.itype = itype
        self.zone = zone
        self.market = market
        self.bid = bid
        self.state = InstanceState.PENDING
        self.launched_at = None
        self.terminated_at = None
        self.warned_at = None
        #: True once the platform force-terminated the instance after a
        #: revocation warning; a graceful terminate that raced the
        #: forced kill then succeeds idempotently instead of raising.
        self.revoked = False
        #: Event that fires with the forced-termination deadline when the
        #: platform issues a revocation warning (spot only).
        self.termination_notice = env.event()
        #: Event that fires when the instance reaches RUNNING.
        self.started = env.event()
        #: Event that fires when the instance reaches TERMINATED.
        self.terminated = env.event()
        self.volumes = []
        self.interfaces = []

    @property
    def is_running(self):
        return self.state in (
            InstanceState.RUNNING, InstanceState.MARKED_FOR_TERMINATION)

    @property
    def is_spot(self):
        return self.market is Market.SPOT

    def _mark_running(self):
        if self.state is not InstanceState.PENDING:
            raise InvalidOperation(
                f"{self.id}: cannot start from state {self.state}")
        self.state = InstanceState.RUNNING
        self.launched_at = self.env.now
        self.started.succeed(self)

    def _mark_warned(self):
        if self.state is not InstanceState.RUNNING:
            return  # Already terminated or warned; warning is idempotent.
        self.state = InstanceState.MARKED_FOR_TERMINATION
        self.warned_at = self.env.now

    def _mark_terminated(self):
        if self.state is InstanceState.TERMINATED:
            raise InvalidOperation(f"{self.id} already terminated")
        self.state = InstanceState.TERMINATED
        self.terminated_at = self.env.now
        self.terminated.succeed(self)

    def uptime(self):
        """Seconds the instance has been running (so far or total)."""
        if self.launched_at is None:
            return 0.0
        end = self.terminated_at if self.terminated_at is not None else self.env.now
        return end - self.launched_at

    def __repr__(self):
        return (f"<Instance {self.id} {self.itype.name} {self.zone} "
                f"{self.market.value} {self.state.value}>")
