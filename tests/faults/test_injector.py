"""FaultInjector: typed errors, latency tails, crashes, determinism."""

import pytest

from repro.cloud.errors import (
    ApiError,
    InsufficientInstanceCapacity,
    ThrottlingError,
)
from repro.faults import (
    BackupCrash,
    CapacityEpisode,
    FaultInjector,
    FaultPlan,
    LatencyTail,
    ThrottleWindow,
)
from repro.faults.injector import INJECTOR_STREAM
from repro.obs import Observability
from repro.sim.kernel import Environment


class TestCheck:
    def test_throttle_window_raises_throttling_error(self):
        env = Environment(seed=5)
        plan = FaultPlan(throttle_windows=(
            ThrottleWindow(0.0, 100.0, rate=1.0),))
        injector = FaultInjector(env, plan)
        with pytest.raises(ThrottlingError) as excinfo:
            injector.check("attach_volume")
        assert "RequestLimitExceeded" in str(excinfo.value)
        assert excinfo.value.retryable
        assert injector.counts == {"throttle": 1}

    def test_throttle_outside_window_is_quiet(self):
        env = Environment(seed=5)
        plan = FaultPlan(throttle_windows=(
            ThrottleWindow(50.0, 100.0, rate=1.0),))
        injector = FaultInjector(env, plan)
        injector.check("attach_volume")  # now=0, before the window
        assert injector.counts == {}

    def test_error_rate_raises_transient_api_error(self):
        env = Environment(seed=5)
        plan = FaultPlan(error_rates={"attach_volume": 1.0},
                         terminal_fraction=0.0)
        injector = FaultInjector(env, plan)
        with pytest.raises(ApiError) as excinfo:
            injector.check("attach_volume")
        assert excinfo.value.retryable
        assert injector.counts == {"api-error": 1}

    def test_terminal_fraction_raises_terminal_api_error(self):
        env = Environment(seed=5)
        plan = FaultPlan(error_rates={"attach_volume": 1.0},
                         terminal_fraction=1.0)
        injector = FaultInjector(env, plan)
        with pytest.raises(ApiError) as excinfo:
            injector.check("attach_volume")
        assert not excinfo.value.retryable
        assert injector.counts == {"api-error-terminal": 1}

    def test_unlisted_operation_is_quiet(self):
        env = Environment(seed=5)
        plan = FaultPlan(error_rates={"attach_volume": 1.0})
        injector = FaultInjector(env, plan)
        injector.check("detach_volume")
        assert injector.counts == {}

    def test_capacity_episode_raises(self):
        env = Environment(seed=5)
        plan = FaultPlan(capacity_episodes=(
            CapacityEpisode("m3.medium", "us-east-1a", 0.0, 100.0,
                            market="on-demand"),))
        injector = FaultInjector(env, plan)
        with pytest.raises(InsufficientInstanceCapacity):
            injector.check("start_on_demand_instance",
                           type_name="m3.medium", zone_name="us-east-1a",
                           market_kind="on-demand")
        assert injector.counts == {"capacity": 1}
        # Non-matching market and missing type info stay quiet.
        injector.check("start_spot_instance", type_name="m3.medium",
                       zone_name="us-east-1a", market_kind="spot")
        injector.check("attach_volume")
        assert injector.total_injected == 1


class TestLatency:
    def test_tail_multiplies_latency(self):
        env = Environment(seed=5)
        plan = FaultPlan(latency_tails={
            "detach_volume": LatencyTail(rate=1.0, multiplier=4.0)})
        injector = FaultInjector(env, plan)
        assert injector.adjusted_latency("detach_volume", 10.0) == 40.0
        assert injector.counts == {"latency-tail": 1}

    def test_stuck_detach_adds_extra(self):
        env = Environment(seed=5)
        plan = FaultPlan(stuck_detach_rate=1.0, stuck_detach_extra_s=120.0)
        injector = FaultInjector(env, plan)
        assert injector.adjusted_latency("detach_volume", 10.0) == 130.0
        # Stuck detaches only afflict detach_volume.
        assert injector.adjusted_latency("attach_volume", 10.0) == 10.0
        assert injector.counts == {"stuck-detach": 1}

    def test_no_tail_no_change(self):
        env = Environment(seed=5)
        injector = FaultInjector(env, FaultPlan())
        assert injector.adjusted_latency("detach_volume", 10.0) == 10.0


class _FakeServer:
    def __init__(self):
        self.failed = False


class _FakeController:
    def __init__(self, servers):
        class _Pool:
            pass
        self.backup_pool = _Pool()
        self.backup_pool.servers = servers
        self.crashed = []

    def fail_backup_server(self, server):
        server.failed = True
        self.crashed.append(server)


class TestBackupCrashes:
    def test_scheduled_crash_fires_controller_hook(self):
        env = Environment(seed=5)
        plan = FaultPlan(backup_crashes=(
            BackupCrash(at_s=100.0), BackupCrash(at_s=200.0,
                                                 server_index=1)))
        injector = FaultInjector(env, plan)
        servers = [_FakeServer(), _FakeServer(), _FakeServer()]
        controller = _FakeController(servers)
        injector.install_backup_crashes(controller)
        env.run(until=300.0)
        # First crash hits index 0; by the second, server 0 is failed,
        # so index 1 counts within the two survivors.
        assert controller.crashed == [servers[0], servers[2]]
        assert injector.counts == {"backup-crash": 2}

    def test_no_alive_servers_skips(self):
        env = Environment(seed=5)
        plan = FaultPlan(backup_crashes=(BackupCrash(at_s=10.0),))
        injector = FaultInjector(env, plan)
        server = _FakeServer()
        server.failed = True
        controller = _FakeController([server])
        injector.install_backup_crashes(controller)
        env.run(until=20.0)
        assert controller.crashed == []
        assert injector.counts == {}


class TestDeterminismAndObs:
    def _drive(self, seed):
        env = Environment(seed=seed)
        plan = FaultPlan(error_rates={"attach_volume": 0.3},
                         terminal_fraction=0.2)
        injector = FaultInjector(env, plan)
        outcomes = []
        for _ in range(200):
            try:
                injector.check("attach_volume")
                outcomes.append("ok")
            except ApiError as exc:
                outcomes.append("t" if exc.retryable else "T")
        return outcomes, dict(injector.counts)

    def test_same_seed_same_plan_same_faults(self):
        assert self._drive(11) == self._drive(11)

    def test_different_seed_differs(self):
        assert self._drive(11) != self._drive(12)

    def test_injector_uses_own_stream(self):
        env = Environment(seed=5)
        FaultInjector(env, FaultPlan())
        assert INJECTOR_STREAM in env.rng.names()

    def test_obs_events_and_metrics(self):
        obs = Observability()
        env = Environment(seed=5, obs=obs)
        plan = FaultPlan(error_rates={"attach_volume": 1.0},
                         terminal_fraction=0.0)
        injector = FaultInjector(env, plan)
        with pytest.raises(ApiError):
            injector.check("attach_volume")
        injected = [e for e in obs.events if e.name == "fault.injected"]
        assert len(injected) == 1
        assert injected[0].fields["kind"] == "api-error"
        assert injected[0].fields["operation"] == "attach_volume"
        [counter] = obs.metrics.find("faults_injected_total")
        assert counter.value == 1
