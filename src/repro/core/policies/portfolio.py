"""Index-tracking spot portfolios with crossing-driven rebalancing.

SpotCheck's Table 2 policies pick a *static* pool mapping; *Cloud
Index Tracking* (Shastri & Irwin, see PAPERS.md) instead treats the
spot pools as a financial portfolio and rebalances it so the realized
cost tracks a target index with bounded variance.  Two policies live
here:

* :class:`IndexTrackingPolicy` (``IT`` / ``IT-<ratio>``) — holds each
  customer's realized $/VM-hour inside a configurable band around a
  target index (``target_ratio`` x the slot's on-demand price).  The
  weight solver mixes the two pools whose per-slot prices straddle the
  target, which tracks it exactly while prices hold; crossings retune
  the mix and, subject to a migration budget, live-migrate VMs toward
  the new weights.
* :class:`OptimalCombinationPolicy` (``OC`` / ``OC-<k>``) — scores
  every pool by ``f(recent price, eviction risk, migration cost)``
  (risk folds :class:`~repro.core.policies.prediction
  .RevocationPredictor` signals from the price series plus recorded
  revocations) and spreads weight over the ``top_k`` best scores.

Rebalancing is **crossing-driven**: :meth:`PortfolioPolicy.install`
registers two :class:`~repro.cloud.spot_market.PriceWatch` bands per
pool (price escaped above / below the last reweigh's allowed region),
so the market drive wakes the policy only when a price move is large
enough to matter and holding a portfolio adds zero per-point kernel
events (``SpotMarket.drive_stats()`` asserts this in the bench's
``index`` section).  Realized-cost drift checks are folded into
wakeups that already exist — crossings and ``choose()`` calls — never
into a poll.

The weight vector is applied per customer with a deterministic
largest-remainder apportionment (no RNG draw), so portfolio runs are
bit-reproducible and a customer's fleet converges to the weights
exactly.
"""

from collections import deque

from repro.cloud.spot_market import PriceWatch
from repro.core.policies.allocation import AllocationPolicy

HOUR = 3600.0


class RealizedCostTracker:
    """Exponentially decayed realized $/VM-hour for one customer.

    ``fold`` accrues a window's dollars and VM-hours after decaying the
    running totals by ``0.5 ** (dt / half_life_s)``, so the reported
    rate is a recency-weighted average: old spend fades, and a
    rebalance shows up in the realized rate within a few half-lives.
    """

    __slots__ = ("half_life_s", "dollars", "vm_hours", "last",
                 "in_band_s", "out_band_s")

    def __init__(self, half_life_s):
        self.half_life_s = half_life_s
        self.dollars = 0.0
        self.vm_hours = 0.0
        self.last = None
        self.in_band_s = 0.0
        self.out_band_s = 0.0

    def fold(self, now, dollars, vm_hours):
        if self.last is not None and now > self.last and self.half_life_s > 0:
            decay = 0.5 ** ((now - self.last) / self.half_life_s)
            self.dollars *= decay
            self.vm_hours *= decay
        self.dollars += dollars
        self.vm_hours += vm_hours
        self.last = now if self.last is None else max(self.last, now)

    def rate(self):
        """Realized $/VM-hour, or None before any accrual."""
        if self.vm_hours <= 0:
            return None
        return self.dollars / self.vm_hours

    def note_band(self, elapsed, in_band):
        if in_band:
            self.in_band_s += elapsed
        else:
            self.out_band_s += elapsed

    def in_band_fraction(self):
        total = self.in_band_s + self.out_band_s
        return self.in_band_s / total if total > 0 else None


class PortfolioPolicy(AllocationPolicy):
    """Base of the portfolio family: weights, watches, budget, folds.

    Subclasses implement :meth:`_solve_weights` (per-slot prices ->
    weight vector) and :meth:`_band_for` (the allowed per-slot price
    region per pool; leaving it triggers a crossing).
    """

    pool_types = ("m3.medium", "m3.large", "m3.xlarge", "m3.2xlarge")

    #: Minimum relative half-width every watch band keeps around the
    #: current price.  Spot traces wiggle a few percent point-to-point
    #: (median ~3-6% on the calibrated m3 markets), so a band edge
    #: sitting on the price itself — e.g. a pool parked exactly on a
    #: decision boundary — would otherwise refire on noise every point.
    _min_gap = 0.05

    def __init__(self, name, hysteresis=0.1, migration_budget=4,
                 budget_window_s=24 * HOUR, half_life_s=6 * HOUR):
        if hysteresis <= 0:
            raise ValueError("hysteresis must be positive")
        if migration_budget < 0:
            raise ValueError("migration_budget must be non-negative")
        self.name = name
        self.hysteresis = hysteresis
        #: Rebalance moves allowed per customer per budget window.
        self.migration_budget = migration_budget
        self.budget_window_s = budget_window_s
        self.half_life_s = half_life_s
        self._now = lambda: None
        self._controller = None
        self._pools = []
        self._weights = {}
        self._price_ref = {}
        #: pool key -> (above, below) PriceWatch pair.
        self._watches = {}
        self._trackers = {}
        #: customer id -> deque of rebalance-move timestamps (budget).
        self._move_log = {}
        #: customer id (or None) -> per-pool apportionment counts.
        self._counts = {}
        self.stats = {"reweighs": 0, "crossings": 0, "moves_planned": 0,
                      "moves_denied": 0}

    # -- wiring ------------------------------------------------------

    def attach_clock(self, now):
        """Install a callable returning the current simulation time."""
        self._now = now

    def install(self, controller, pools=None):
        """Register crossing watches on the controller's spot markets.

        After this, the markets wake the policy only when a pool's
        price leaves the band the last reweigh computed; every wake
        folds realized costs, re-solves the weights, retunes the
        bands, and (budget permitting) asks the controller to
        live-migrate VMs toward the new weights.
        """
        self._controller = controller
        if pools is None:
            pools = self.eligible(controller.pools.all_spot_pools())
        self._pools = list(pools)
        for pool in self._pools:
            fire = (lambda mkt, price, p=pool: self._on_crossing(p, price))
            # Born inert (empty bands); the first reweigh tunes them.
            above = pool.market.add_watch(PriceWatch(fire, lo=float("inf")))
            below = pool.market.add_watch(PriceWatch(fire, hi=0.0))
            self._watches[pool.key] = (above, below)
        self._reweigh()

    # -- crossing machinery ------------------------------------------

    def _on_crossing(self, pool, price):
        self.stats["crossings"] += 1
        now = self._now()
        self._fold_all(now)
        self._reweigh()
        self._plan_rebalance(now)

    def _reweigh(self):
        self.stats["reweighs"] += 1
        prices = {pool.key: pool.price_per_slot() for pool in self._pools}
        self._price_ref = prices
        self._weights = self._solve_weights(prices)
        self._retune_watches(prices)

    def _retune_watches(self, prices):
        for pool in self._pools:
            pair = self._watches.get(pool.key)
            if pair is None:
                continue
            p = prices[pool.key]
            lo, hi = self._band_for(pool, p)
            # The band must straddle the current price with the noise
            # dead zone: the next firing is then a genuine crossing,
            # never a refire on the price the band was tuned at.
            if hi is not None:
                hi = max(hi, p * (1.0 + self._min_gap))
            if lo is not None:
                lo = min(lo, p * (1.0 - self._min_gap))
            slots = pool.slots_per_host
            above, below = pair
            above.retune(lo=(hi * slots if hi is not None else float("inf")))
            below.retune(hi=(lo * slots if lo is not None and lo > 0
                             else 0.0))
            # No-op on the market currently mid-delivery (its drive
            # loop replans anyway); wakes the others' parked drivers.
            pool.market.rearm()

    # -- realized-cost folding ---------------------------------------

    def _fold_all(self, now):
        if now is None or self._controller is None:
            return
        for customer in self._controller.customers.values():
            self._fold_customer(customer, now)

    def _fold_customer(self, customer, now):
        """Accrue one customer's spend since their last fold.

        Spot residents accrue the *exact* trace integral of their
        pool's per-slot price over the window (subdivision-invariant);
        parked VMs accrue the on-demand price — the cost of instability
        the tracker exists to expose.
        """
        if now is None or self._controller is None or customer is None:
            return
        tracker = self._trackers.get(customer.id)
        if tracker is None:
            tracker = RealizedCostTracker(self.half_life_s)
            self._trackers[customer.id] = tracker
        last = tracker.last
        if last is None:
            tracker.last = now
            return
        if now <= last:
            return
        elapsed = now - last
        hours = elapsed / HOUR
        dollars = 0.0
        vm_hours = 0.0
        for _vm, pool in self._controller.spot_residents(customer):
            dollars += pool.slot_cost_between(last, now)
            vm_hours += hours
        for vm in customer.vms:
            if vm.is_running and self._controller.is_parked(vm):
                dollars += vm.itype.on_demand_price * hours
                vm_hours += hours
        if vm_hours <= 0:
            tracker.last = now
            return
        tracker.fold(now, dollars, vm_hours)
        in_band = self._rate_in_band(tracker.rate())
        if in_band is not None:
            tracker.note_band(elapsed, in_band)

    def _rate_in_band(self, rate):
        """Whether a realized rate is acceptable; None = no band."""
        return None

    def tracking_report(self):
        """Per-customer realized-cost summary (study/report input)."""
        report = {}
        for cid, tracker in sorted(self._trackers.items()):
            report[cid] = {
                "realized_per_vm_hour": tracker.rate(),
                "in_band_fraction": tracker.in_band_fraction(),
                "vm_hours": tracker.vm_hours,
            }
        return report

    # -- allocation --------------------------------------------------

    def choose(self, pools, rng, customer=None):
        """Deterministic largest-remainder apportionment of the weights.

        Each customer's placements converge to the weight vector
        exactly (no RNG draw); the call doubles as an existing wakeup
        the customer's realized-cost fold rides on.
        """
        eligible = self.eligible(pools)
        if not self._pools:
            self._pools = list(eligible)
        if not self._weights:
            self._reweigh()
        if customer is not None:
            self._fold_customer(customer, self._now())
        key = customer.id if customer is not None else None
        counts = self._counts.setdefault(key, {})
        total = sum(counts.values())
        best = None
        best_score = None
        for pool in eligible:
            weight = self._weights.get(pool.key, 0.0)
            score = weight * (total + 1) - counts.get(pool.key, 0)
            if best_score is None or score > best_score + 1e-12:
                best, best_score = pool, score
        counts[best.key] = counts.get(best.key, 0) + 1
        return best

    # -- rebalancing -------------------------------------------------

    def _desired_counts(self, n):
        """Largest-remainder integer apportionment of ``n`` VMs."""
        order = [pool.key for pool in self._pools]
        quotas = [(self._weights.get(key, 0.0) * n, key) for key in order]
        floors = {key: int(quota) for quota, key in quotas}
        assigned = sum(floors.values())
        remainders = sorted(
            ((quota - int(quota), key) for quota, key in quotas),
            key=lambda pair: (-pair[0], order.index(pair[1])))
        for _frac, key in remainders:
            if assigned >= n:
                break
            floors[key] += 1
            assigned += 1
        return floors

    def _budget_allows(self, customer_id, now):
        log = self._move_log.setdefault(customer_id, deque())
        cutoff = now - self.budget_window_s
        while log and log[0] < cutoff:
            log.popleft()
        return len(log) < self.migration_budget

    def _note_move(self, customer_id, now):
        self._move_log.setdefault(customer_id, deque()).append(now)

    def _should_rebalance(self, customer, residents, now):
        return True

    def _plan_rebalance(self, now):
        """Plan budgeted moves toward the current weights, per customer."""
        controller = self._controller
        if controller is None or now is None or not self._weights:
            return
        by_key = {pool.key: pool for pool in self._pools}
        for customer in controller.customers.values():
            residents = [(vm, pool)
                         for vm, pool in controller.spot_residents(customer)
                         if pool.key in by_key]
            n = len(residents)
            if n == 0 or not self._should_rebalance(customer, residents, now):
                continue
            desired = self._desired_counts(n)
            current = {}
            for _vm, pool in residents:
                current[pool.key] = current.get(pool.key, 0) + 1
            surplus = []
            for vm, pool in sorted(residents, key=lambda pair: pair[0].id):
                if current.get(pool.key, 0) > desired.get(pool.key, 0):
                    surplus.append(vm)
                    current[pool.key] -= 1
            moves = []
            for key in [pool.key for pool in self._pools]:
                need = desired.get(key, 0) - current.get(key, 0)
                while need > 0 and surplus:
                    if not self._budget_allows(customer.id, now):
                        self.stats["moves_denied"] += len(surplus)
                        surplus = []
                        break
                    vm = surplus.pop(0)
                    moves.append((vm, by_key[key]))
                    self._note_move(customer.id, now)
                    current[key] = current.get(key, 0) + 1
                    need -= 1
            if moves:
                self.stats["moves_planned"] += len(moves)
                controller.execute_rebalance(moves)

    # -- hooks for subclasses ----------------------------------------

    def _solve_weights(self, prices):
        raise NotImplementedError

    def _band_for(self, pool, price_per_slot):
        raise NotImplementedError

    def __repr__(self):
        return f"<{type(self).__name__} {self.name}>"


class IndexTrackingPolicy(PortfolioPolicy):
    """IT: hold realized $/VM-hour on ``target_ratio`` x slot od price.

    The act/hold gate is the *realized rate itself*, not the prices:
    spot prices oscillate tens of percent on an hours timescale, but
    the realized rate is a half-life-smoothed average, so reacting to
    every price poke is churn (and churn means evictions, and
    evictions mean on-demand parking at many times the index).  Each
    crossing folds the realized trackers and, while the fleet's rate
    sits inside the band, merely recenters the wake bands.  Only a
    genuine breach re-solves the weights, direction-aware and over
    *effective* prices — each pool's price risk-adjusted by its
    measured eviction rate times ``eviction_penalty_hours`` of
    on-demand parking, because a nominally in-band volatile pool
    realizes far above its sticker price.  Realized too high anchors
    the whole portfolio on the cheapest effective pool at or below the
    target; realized too low pulls up via the closest-below pool,
    mixing in the cheapest above-target pool (the classic
    zero-tracking-error straddle, solved in effective prices so the
    blend converges instead of oscillating) only when no single pool
    can reach the band.

    Watch bands are *decision boundaries*, not fixed corridors: while
    anchored, every other pool's watch is dormant (nothing it does can
    change the solution) and the anchor's band is the wide roam region
    of :meth:`_anchor_watch_band`; in straddle mode an unheld pool
    only fires when its move could change the solved pair (overtaking
    the closest-below / closest-above pool, or flipping sides of the
    target), while held pools additionally fire on a ±``hysteresis``
    move so the straddle weights refresh.  The weight solution is
    continuous across every boundary, so the ``_min_gap`` dead zone
    can swallow small boundary flips without a tracking-error step.
    """

    def __init__(self, target_ratio=0.125, band_fraction=0.15,
                 hysteresis=0.25, eviction_penalty_hours=1.0,
                 migration_budget=4, budget_window_s=24 * HOUR,
                 half_life_s=6 * HOUR):
        super().__init__("IT", hysteresis=hysteresis,
                         migration_budget=migration_budget,
                         budget_window_s=budget_window_s,
                         half_life_s=half_life_s)
        if target_ratio <= 0:
            raise ValueError("target_ratio must be positive")
        if not 0 < band_fraction < 1:
            raise ValueError("band_fraction must lie in (0, 1)")
        if eviction_penalty_hours < 0:
            raise ValueError("eviction_penalty_hours must be non-negative")
        self.target_ratio = target_ratio
        self.band_fraction = band_fraction
        #: Hours of on-demand parking one eviction is charged with in
        #: the solver's risk-adjusted effective prices.
        self.eviction_penalty_hours = eviction_penalty_hours
        #: Key of the pool carrying the whole portfolio, when anchored.
        self._anchor = None
        self.stats["holds"] = 0

    def target(self):
        """The index: target $/VM-hour (None before pools are bound)."""
        if not self._pools:
            return None
        return self.target_ratio * self._pools[0].slot_itype.on_demand_price

    def band(self):
        """(floor, ceiling) the realized $/VM-hour must stay within."""
        target = self.target()
        if target is None:
            return None
        return (target * (1.0 - self.band_fraction),
                target * (1.0 + self.band_fraction))

    def _anchor_watch_band(self):
        """Price region the anchor may roam without waking the policy.

        Wider than the realized-rate band on purpose: the realized
        rate is a half-life-smoothed average, so a brief price poke
        cannot move it out of band — only deep (which for spot prices
        means sustained) excursions can, and those warrant a
        realized-rate check.  The asymmetry is deliberate: the ceiling
        at ``target*(1 + band_fraction/2)`` checks overspend early,
        while the floor at ``target*(1 - 2*band_fraction)`` tolerates
        cheap dips (tracking from below costs nothing but tracking
        error, and rebalancing on them is variance, not tracking).
        """
        target = self.target()
        return (target * (1.0 - 2.0 * self.band_fraction),
                target * (1.0 + self.band_fraction / 2.0))

    def _fleet_rate(self):
        """Mean realized $/VM-hour across customers (None before data)."""
        rates = [tracker.rate() for tracker in self._trackers.values()]
        rates = [rate for rate in rates if rate is not None]
        if not rates:
            return None
        return sum(rates) / len(rates)

    def _on_crossing(self, pool, price):
        self.stats["crossings"] += 1
        now = self._now()
        self._fold_all(now)
        fleet = self._fleet_rate()
        if fleet is not None and self._rate_in_band(fleet):
            # Tracking healthy: recenter the wake bands on the current
            # prices and change nothing — acting on a price move while
            # realized is in band trades tracking for churn.
            self.stats["holds"] += 1
            prices = {p.key: p.price_per_slot() for p in self._pools}
            self._price_ref = prices
            self._retune_watches(prices)
            return
        self._reweigh()
        self._plan_rebalance(now)

    def _effective_prices(self, prices):
        """Per-slot prices risk-adjusted for expected eviction parking.

        A pool evicting ``r`` times per hour parks its VMs on the
        on-demand side roughly ``r * eviction_penalty_hours`` of every
        hour, so its expected realized rate is the blend with the
        on-demand price — which is what the solver must compare, or a
        nominally in-band volatile pool wins seats it then realizes
        far above.
        """
        now = self._now()
        effective = {}
        for pool in self._pools:
            parked = min(1.0, pool.eviction_rate(now)
                         * self.eviction_penalty_hours)
            od = pool.slot_itype.on_demand_price
            effective[pool.key] = \
                prices[pool.key] * (1.0 - parked) + od * parked
        return effective

    def _solve_weights(self, prices):
        target = self.target()
        fleet = self._fleet_rate()
        order = [pool.key for pool in self._pools]
        effective = self._effective_prices(prices)
        items = sorted((effective[key], key) for key in order)
        below = [(p, key) for p, key in items if p <= target]
        above = [(p, key) for p, key in items if p > target]
        self._anchor = None
        if not below:
            return {items[0][1]: 1.0}  # Everything above: cheapest.
        if fleet is None or fleet >= target:
            # Initial solve, or overspending: the cheapest effective
            # pool below the target pulls realized down fastest at
            # risk-priced cost.
            self._anchor = below[0][1]
            return {self._anchor: 1.0}
        # Realized slid under the band floor: pull up.
        p_lo, k_lo = below[-1]
        if p_lo >= target * (1.0 - self.band_fraction) or not above:
            self._anchor = k_lo  # The closest-below reaches the band.
            return {k_lo: 1.0}
        p_hi, k_hi = above[0]
        spread = p_hi - p_lo
        w_hi = (target - p_lo) / spread if spread > 0 else 0.0
        return {k_lo: 1.0 - w_hi, k_hi: w_hi}

    def _band_for(self, pool, price_per_slot):
        """Nearest decision boundaries around this pool's price."""
        p = price_per_slot
        target = self.target()
        if self._anchor is not None:
            if pool.key == self._anchor:
                return self._anchor_watch_band()
            return None, None  # Dormant while the anchor holds its seat.
        others = [value for key, value in self._price_ref.items()
                  if key != pool.key]
        below = sorted(value for value in others if value <= target)
        above = sorted(value for value in others if value > target)
        if p <= target:
            max_below = below[-1] if below else None
            if max_below is not None and p < max_below:
                # Overtaking the closest-below pool changes the pair;
                # falling further is irrelevant while unheld there.
                lo, hi = None, max_below
            else:
                # We are the closest-below: crossing the target flips
                # the side; dropping under the runner-up hands over.
                lo, hi = max_below, target
        else:
            min_above = above[0] if above else None
            if min_above is not None and p > min_above:
                lo, hi = min_above, None
            else:
                lo, hi = target, min_above
        if self._weights.get(pool.key, 0.0) > 0.0:
            # Held pools also refresh the straddle weights on material
            # moves, not just on pair changes.
            h = self.hysteresis
            hi = p * (1 + h) if hi is None else min(hi, p * (1 + h))
            lo = p * (1 - h) if lo is None else max(lo, p * (1 - h))
        return lo, hi

    def _rate_in_band(self, rate):
        target = self.target()
        if rate is None or target is None:
            return None
        return abs(rate - target) <= self.band_fraction * target

    def _should_rebalance(self, customer, residents, now):
        """Spend budget only when tracking is actually at risk."""
        target = self.target()
        if target is None:
            return False
        tracker = self._trackers.get(customer.id)
        realized = tracker.rate() if tracker is not None else None
        if realized is not None and not self._rate_in_band(realized):
            return True
        blend = sum(pool.price_per_slot()
                    for _vm, pool in residents) / len(residents)
        return abs(blend - target) > self.band_fraction * target


class OptimalCombinationPolicy(PortfolioPolicy):
    """OC: score pools by price, eviction risk, and migration cost.

    ``score = price_per_slot + risk_per_hour * (risk_weight * slot_od
    + migration_weight * move_dollars)`` — the price a slot costs now,
    plus what the pool's instability is expected to cost per hour in
    on-demand parking and rebalance migrations.  Risk folds the
    market's price series through an owned
    :class:`~repro.core.policies.prediction.RevocationPredictor`
    (``observe_series`` over lazily delivered points: no kernel
    events) and adds the pool's recorded revocation rate.  Weight
    spreads over the ``top_k`` lowest scores, inverse-proportionally.
    """

    def __init__(self, top_k=2, risk_weight=1.0, migration_weight=0.5,
                 risk_window_s=7 * 24 * HOUR, hysteresis=0.35,
                 predictor=None, migration_budget=4,
                 budget_window_s=24 * HOUR, half_life_s=6 * HOUR):
        super().__init__("OC", hysteresis=hysteresis,
                         migration_budget=migration_budget,
                         budget_window_s=budget_window_s,
                         half_life_s=half_life_s)
        if top_k < 1:
            raise ValueError("top_k must be at least 1")
        self.top_k = top_k
        self.risk_weight = risk_weight
        self.migration_weight = migration_weight
        self.risk_window_s = risk_window_s
        if predictor is None:
            from repro.core.policies.prediction import RevocationPredictor
            predictor = RevocationPredictor()
        self.predictor = predictor
        self._fold_cursor = {}
        self._signal_times = {}

    def _solve_weights(self, prices):
        now = self._now()
        order = [pool.key for pool in self._pools]
        scores = {pool.key: self._score(pool, prices[pool.key], now)
                  for pool in self._pools}
        ranked = sorted(order, key=lambda key: (scores[key],
                                                order.index(key)))
        chosen = ranked[:min(self.top_k, len(ranked))]
        inverse = {key: 1.0 / max(scores[key], 1e-9) for key in chosen}
        total = sum(inverse.values())
        return {key: inverse[key] / total for key in chosen}

    def _score(self, pool, price_per_slot, now):
        risk = self._risk_per_hour(pool, now)
        slot_od = pool.slot_itype.on_demand_price
        move_dollars = (self._move_seconds() / HOUR) * slot_od
        return price_per_slot + risk * (self.risk_weight * slot_od
                                        + self.migration_weight
                                        * move_dollars)

    def _move_seconds(self):
        controller = self._controller
        if controller is not None and \
                hasattr(controller, "estimate_rebalance_seconds"):
            return controller.estimate_rebalance_seconds()
        return 600.0

    def _risk_per_hour(self, pool, now):
        """Predictor signals + recorded revocations, events/hour."""
        self._fold_series(pool)
        window_h = self.risk_window_s / HOUR
        signals = self._signal_times.get(pool.key)
        count = 0
        if signals:
            if now is not None:
                cutoff = now - self.risk_window_s
                while signals and signals[0] < cutoff:
                    signals.popleft()
            count = len(signals)
        return pool.eviction_rate(now, self.risk_window_s) + count / window_h

    def _fold_series(self, pool):
        """Feed newly delivered trace points into the predictor."""
        counter = getattr(pool.market, "delivered_count", None)
        if counter is None:
            return
        end = counter()
        start = self._fold_cursor.get(pool.key,
                                      getattr(pool, "_series_start", 0))
        if end <= start:
            self._fold_cursor.setdefault(pool.key, start)
            return
        times, prices = pool.market.trace.arrays()
        fired = self.predictor.observe_series(
            pool.key, times[start:end], prices[start:end], pool.bid)
        log = self._signal_times.setdefault(pool.key, deque())
        for index in fired:
            log.append(float(times[start + index]))
        self._fold_cursor[pool.key] = end

    def _band_for(self, pool, price_per_slot):
        return (price_per_slot * (1.0 - self.hysteresis),
                price_per_slot * (1.0 + self.hysteresis))


def make_portfolio_policy(name, **overrides):
    """Parse ``IT`` / ``IT-<ratio>`` / ``OC`` / ``OC-<k>``.

    The inline parameter wins over a conflicting keyword override, so
    a grid of ``IT-0.12`` / ``IT-0.14`` cells sharing one override
    dict behaves as the cell names say.
    """
    base, sep, param = name.partition("-")
    kwargs = dict(overrides)
    if base == "IT":
        if sep:
            try:
                kwargs["target_ratio"] = float(param)
            except ValueError:
                raise ValueError(
                    f"bad IT target ratio {param!r} in {name!r}") from None
        policy = IndexTrackingPolicy(**kwargs)
    elif base == "OC":
        if sep:
            try:
                kwargs["top_k"] = int(param)
            except ValueError:
                raise ValueError(
                    f"bad OC portfolio size {param!r} in {name!r}") from None
        policy = OptimalCombinationPolicy(**kwargs)
    else:
        raise ValueError(
            f"unknown portfolio policy {name!r}; use IT[-<target ratio>] "
            f"or OC[-<top k>]")
    policy.name = name
    return policy
