"""Parallel-vs-serial determinism and the grid's cache tiers.

The paper's grid must produce the same numbers no matter how it is
executed: ``run_grid(workers=2)`` has to equal ``run_grid(workers=1)``
cell for cell, and a summary served from the on-disk cache has to equal
the freshly simulated one (including float-keyed storm histograms,
which JSON-based caches would mangle — hence pickle).
"""

import dataclasses
import enum
import os

import pytest

from repro.experiments import policy_grid
from repro.experiments.parallel import (
    CellDiskCache,
    CellExecutionError,
    config_canonical,
    config_hash,
    run_cells_parallel,
)
from repro.experiments.policy_grid import (
    cell_key,
    clear_caches,
    run_cell,
    run_grid,
)
from repro.experiments.scenario import ScenarioConfig
from repro.obs import MetricsRegistry

POLICIES = ("1P-M", "4P-ED")
MECHANISMS = ("spotcheck-lazy", "xen-live")
GRID_KW = dict(policies=POLICIES, mechanisms=MECHANISMS, seed=7, days=5.0,
               vms=4)


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_caches()
    yield
    clear_caches()


class TestParallelDeterminism:
    def test_workers2_equals_serial(self, tmp_path):
        serial = run_grid(workers=1, **GRID_KW)
        clear_caches()
        parallel = run_grid(workers=2, cache_dir=str(tmp_path), **GRID_KW)
        assert parallel == serial

    def test_parallel_populates_disk_cache(self, tmp_path):
        metrics = MetricsRegistry()
        run_grid(workers=2, cache_dir=str(tmp_path), metrics=metrics,
                 **GRID_KW)
        assert metrics.counter("grid_cache_misses_total").value == 4
        clear_caches()
        warm = MetricsRegistry()
        run_grid(workers=2, cache_dir=str(tmp_path), metrics=warm, **GRID_KW)
        assert warm.counter("grid_cache_hits_total", tier="disk").value == 4
        assert warm.counter("grid_cache_misses_total").value == 0


class TestDiskCache:
    def test_round_trip_preserves_float_keys(self, tmp_path):
        config = ScenarioConfig(policy="1P-M", seed=3, days=2.0, vms=3)
        summary = {"cost_per_vm_hour": 0.0123,
                   "storm_histogram": {0.25: 0.0, 0.5: 1e-6}}
        cache = CellDiskCache(str(tmp_path))
        cache.put(config, summary)
        assert cache.get(config) == summary
        assert list(cache.get(config)["storm_histogram"]) == [0.25, 0.5]

    def test_miss_and_corruption(self, tmp_path):
        config = ScenarioConfig(seed=4)
        cache = CellDiskCache(str(tmp_path))
        assert cache.get(config) is None
        # A truncated entry (killed run) must read as a miss.
        path = tmp_path / f"{config_hash(config)}.pkl"
        path.write_bytes(b"\x80")
        assert cache.get(config) is None

    def test_stale_pickle_against_renamed_class_is_a_miss(self, tmp_path):
        # Protocol-0 pickles referencing a module/attribute that no
        # longer exists — the "renamed class between versions" failure.
        config = ScenarioConfig(seed=4)
        cache = CellDiskCache(str(tmp_path))
        path = tmp_path / f"{config_hash(config)}.pkl"
        path.write_bytes(b"cno_such_module_xyz\nNoSuchClass\n.")
        assert cache.get(config) is None  # ModuleNotFoundError -> miss
        assert not path.exists()  # and the dead entry was evicted
        path.write_bytes(b"crepro.experiments.parallel\nNoSuchName\n.")
        assert cache.get(config) is None  # AttributeError -> miss
        assert not path.exists()

    def test_orphaned_tmp_files_are_swept(self, tmp_path):
        # A writer killed mid-put leaves <hash>.pkl.tmp.<pid> behind.
        # Use a pid that provably cannot be alive on Linux.
        dead = tmp_path / "deadbeef.pkl.tmp.4000000000"
        dead.write_bytes(b"partial")
        # Our own staging files and live writers' files must survive.
        own = tmp_path / f"cafef00d.pkl.tmp.{os.getpid()}"
        own.write_bytes(b"in-flight")
        CellDiskCache(str(tmp_path))
        assert not dead.exists()
        assert own.exists()

    def test_run_cell_uses_disk_cache(self, tmp_path):
        kw = dict(seed=9, days=2.0, vms=3, cache_dir=str(tmp_path))
        first = run_cell("1P-M", "spotcheck-lazy", **kw)
        clear_caches()
        metrics = MetricsRegistry()
        second = run_cell("1P-M", "spotcheck-lazy", metrics=metrics, **kw)
        assert second == first
        assert metrics.counter(
            "grid_cache_hits_total", tier="disk").value == 1


class TestConfigHash:
    def test_stable_for_equal_configs(self):
        a = ScenarioConfig(policy="2P-ML", seed=5, days=3.0)
        b = ScenarioConfig(policy="2P-ML", seed=5, days=3.0)
        assert a is not b
        assert config_hash(a) == config_hash(b)

    def test_differs_when_any_field_differs(self):
        base = ScenarioConfig(seed=5)
        for changed in (dataclasses.replace(base, seed=6),
                        dataclasses.replace(base, policy="4P-ST"),
                        dataclasses.replace(base, vms=41),
                        dataclasses.replace(base, slicing=False)):
            assert config_hash(changed) != config_hash(base)

    def test_canonical_form_is_json_and_sorted(self):
        text = config_canonical(ScenarioConfig())
        import json
        payload = json.loads(text)
        assert list(payload) == sorted(payload)

    def test_address_bearing_repr_is_rejected(self):
        # ``default=repr`` used to serialize this to
        # ``<object object at 0x...>`` — a per-process cache key that
        # silently never hits.  Now it is a loud error.
        config = ScenarioConfig(portfolio={"scorer": object()})
        with pytest.raises(ValueError, match="address-bearing repr"):
            config_canonical(config)
        with pytest.raises(ValueError):
            config_canonical(ScenarioConfig(traffic=lambda: None))

    def test_known_types_canonicalize_stably(self):
        class Tier(enum.Enum):
            HOT = 1
            COLD = 2

        config = ScenarioConfig(portfolio={
            "zones": {"us-east-1a", "us-east-1c", "us-east-1b"},
            "tier": Tier.HOT,
            "salt": b"\x00\xff",
        })
        one = config_canonical(config)
        assert one == config_canonical(ScenarioConfig(portfolio={
            "salt": b"\x00\xff",
            "tier": Tier.HOT,
            "zones": {"us-east-1b", "us-east-1a", "us-east-1c"},
        }))
        assert "Tier.HOT" in one and "00ff" in one
        assert "0x" not in one


class TestParallelFailFast:
    def test_failed_cell_names_its_config(self):
        good = ScenarioConfig(seed=3, days=0.5, vms=2)
        bad = ScenarioConfig(seed=3, days=0.5, vms=2, mechanism="bogus")
        with pytest.raises(CellExecutionError) as excinfo:
            run_cells_parallel([good, bad, good], workers=2)
        assert "bogus" in str(excinfo.value)
        assert excinfo.value.config is bad
        assert config_hash(bad)[:12] in str(excinfo.value)

    def test_all_good_cells_return_in_config_order(self):
        configs = [ScenarioConfig(seed=s, days=0.5, vms=2)
                   for s in (1, 2)]
        results = run_cells_parallel(configs, workers=2)
        serial = [run_cells_parallel([c], workers=1)[0] for c in configs]
        assert results == serial


class TestCellKeyRobustness:
    def test_unhashable_override_values(self):
        # dict/list override values used to crash the cache key
        # (unhashable tuple members); now they freeze.
        key = cell_key("1P-M", "spotcheck-lazy", 11, 7.0, 40,
                       {"market_params": {"m3.medium": [1, {"a": 2}]},
                        "hot_spares": None})
        assert hash(key) == hash(key)

    def test_equal_overrides_equal_keys(self):
        one = cell_key("1P-M", "x", 1, 1.0, 1, {"a": {"b": 1, "c": 2}})
        two = cell_key("1P-M", "x", 1, 1.0, 1, {"a": {"c": 2, "b": 1}})
        assert one == two


class TestCacheBounds:
    def test_clear_caches_empties(self):
        run_cell("1P-M", "spotcheck-lazy", seed=2, days=1.0, vms=2)
        assert policy_grid._CACHE and policy_grid._ARCHIVES
        clear_caches()
        assert not policy_grid._CACHE and not policy_grid._ARCHIVES

    def test_cell_cache_is_bounded(self, monkeypatch):
        monkeypatch.setattr(policy_grid, "MAX_CACHED_CELLS", 3)
        for seed in range(5):
            policy_grid._remember(
                policy_grid._CACHE, ("k", seed), {"seed": seed},
                policy_grid.MAX_CACHED_CELLS)
        assert len(policy_grid._CACHE) == 3
        # LRU: the oldest entries were evicted.
        assert ("k", 0) not in policy_grid._CACHE
        assert ("k", 4) in policy_grid._CACHE


class TestWorkerPlanning:
    """plan_workers keeps small or core-starved batches serial."""

    def test_serial_requested(self):
        assert policy_grid.plan_workers(1, 20, cpu_count=8) == \
            (1, "serial-requested")
        assert policy_grid.plan_workers(None, 20, cpu_count=8) == \
            (1, "serial-requested")

    def test_single_cpu_falls_back(self):
        assert policy_grid.plan_workers(4, 20, cpu_count=1) == \
            (1, "single-cpu")

    def test_small_batch_stays_serial(self):
        assert policy_grid.plan_workers(
            4, policy_grid.MIN_PARALLEL_CELLS - 1, cpu_count=8) == \
            (1, "small-batch")

    def test_parallel_capped_by_pending(self):
        assert policy_grid.plan_workers(8, 5, cpu_count=16) == \
            (5, "parallel")
        assert policy_grid.plan_workers(2, 20, cpu_count=16) == \
            (2, "parallel")

    def test_unknown_cpu_count_assumed_parallel(self, monkeypatch):
        # os.cpu_count() may return None; treat the host as capable.
        monkeypatch.setattr(policy_grid.os, "cpu_count", lambda: None)
        assert policy_grid.plan_workers(2, 20)[1] == "parallel"

    def test_run_grid_records_the_plan(self, tmp_path):
        metrics = MetricsRegistry()
        results = run_grid(workers=2, cache_dir=str(tmp_path),
                           metrics=metrics, **GRID_KW)
        assert len(results) == 4
        planned = metrics.gauge("grid_planned_workers").value
        reasons = [series.labels.get("reason")
                   for series in metrics.find("grid_worker_plan_total")]
        assert len(reasons) == 1
        if planned <= 1:  # Host- or batch-driven serial fallback.
            assert reasons[0] in ("single-cpu", "small-batch")
        else:
            assert reasons[0] == "parallel"

    def test_serial_fallback_matches_parallel_results(self, tmp_path,
                                                      monkeypatch):
        baseline = run_grid(workers=1, **GRID_KW)
        clear_caches()
        # Force the fallback regardless of the host's core count and
        # check the inline-serial path produces identical summaries.
        monkeypatch.setattr(policy_grid, "plan_workers",
                            lambda requested, pending: (1, "single-cpu"))
        metrics = MetricsRegistry()
        fallback = run_grid(workers=4, cache_dir=str(tmp_path),
                            metrics=metrics, **GRID_KW)
        assert fallback == baseline
        executed = [series for series in
                    metrics.find("grid_cells_executed_total")]
        assert sum(s.value for s in executed) == 4
        assert all(s.labels.get("mode") == "serial" for s in executed)
