"""Tests for the backup-server resource model."""

import pytest

from repro.backup.server import BackupServer, BackupServerSpec

MB = 1e6


class TestSpec:
    def test_defaults_match_paper(self):
        spec = BackupServerSpec()
        assert spec.itype_name == "m3.xlarge"
        assert spec.hourly_price == 0.28  # paper: $0.28/hr East region
        assert 35 <= spec.max_checkpoint_vms <= 40

    def test_amortized_cost_per_vm(self):
        # Paper: "the amortized cost per-VM across 40 nested VMs is
        # $0.007 or less than one cent per VM".
        spec = BackupServerSpec()
        assert spec.amortized_cost_per_vm(40) == pytest.approx(0.007)

    def test_amortized_cost_validation(self):
        with pytest.raises(ValueError):
            BackupServerSpec().amortized_cost_per_vm(0)

    def test_validation(self):
        with pytest.raises(ValueError):
            BackupServerSpec(net_bps=0)
        with pytest.raises(ValueError):
            BackupServerSpec(untuned_read_factor=0)
        with pytest.raises(ValueError):
            BackupServerSpec(max_checkpoint_vms=0)

    def test_write_path_is_bottleneck_min(self):
        spec = BackupServerSpec(net_bps=50 * MB, disk_write_bps=110 * MB)
        assert spec.write_path_bps == 50 * MB

    def test_lazy_aggregate_shrinks_with_concurrency(self):
        spec = BackupServerSpec()
        assert spec.lazy_restore_aggregate_bps(10, optimized=False) < \
            spec.lazy_restore_aggregate_bps(1, optimized=False) / 2

    def test_optimized_lazy_flat_in_concurrency(self):
        spec = BackupServerSpec()
        assert spec.lazy_restore_aggregate_bps(10, optimized=True) == \
            spec.lazy_restore_aggregate_bps(1, optimized=True)

    def test_full_restore_optimization_factor(self):
        spec = BackupServerSpec()
        assert spec.full_restore_aggregate_bps(True) > \
            spec.full_restore_aggregate_bps(False)

    def test_concurrency_validation(self):
        with pytest.raises(ValueError):
            BackupServerSpec().lazy_restore_aggregate_bps(0, True)


class TestServer:
    def test_stream_assignment(self, env):
        server = BackupServer(env)
        server.assign_stream("vm-1", 3 * MB)
        assert server.assigned_vms == 1
        with pytest.raises(ValueError):
            server.assign_stream("vm-1", 3 * MB)
        server.release_stream("vm-1")
        assert server.assigned_vms == 0

    def test_release_unknown_is_noop(self, env):
        BackupServer(env).release_stream("vm-x")

    def test_has_capacity_cap(self, env):
        server = BackupServer(env, BackupServerSpec(max_checkpoint_vms=2))
        server.assign_stream("a", MB)
        assert server.has_capacity
        server.assign_stream("b", MB)
        assert not server.has_capacity

    def test_no_overload_below_capacity(self, env):
        server = BackupServer(env)
        for i in range(30):
            server.assign_stream(f"vm-{i}", 2.9 * MB)
        assert server.overload_fraction() == 0.0

    def test_overload_past_knee(self, env):
        # The Figure 7 knee: ~35-40 TPC-W-class streams saturate the
        # write path; 50 must overload it by ~20-40%.
        server = BackupServer(env)
        for i in range(50):
            server.assign_stream(f"vm-{i}", 2.9 * MB)
        assert 0.1 < server.overload_fraction() < 0.5

    def test_per_restore_bandwidth_split(self, env):
        server = BackupServer(env)
        solo = server.per_restore_bps("full", True, concurrent=1)
        shared = server.per_restore_bps("full", True, concurrent=4)
        assert shared == pytest.approx(solo / 4)

    def test_per_restore_unknown_kind(self, env):
        with pytest.raises(ValueError):
            BackupServer(env).per_restore_bps("warp", True, concurrent=1)

    def test_unique_ids(self, env):
        assert BackupServer(env).id != BackupServer(env).id
