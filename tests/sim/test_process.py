"""Tests for generator-based processes."""

import pytest

from repro.sim import Environment, Interrupt, SimulationError


class TestProcessBasics:
    def test_requires_generator(self, env):
        with pytest.raises(TypeError):
            env.process(lambda: None)

    def test_return_value_becomes_event_value(self, env):
        def proc():
            yield env.timeout(1.0)
            return 99
        assert env.run(until=env.process(proc())) == 99

    def test_sequential_timeouts_accumulate(self, env):
        def proc():
            yield env.timeout(2.0)
            yield env.timeout(3.0)
            return env.now
        assert env.run(until=env.process(proc())) == 5.0

    def test_process_is_alive_until_done(self, env):
        def proc():
            yield env.timeout(1.0)
        process = env.process(proc())
        assert process.is_alive
        env.run()
        assert not process.is_alive

    def test_processes_can_wait_on_each_other(self, env):
        def worker():
            yield env.timeout(3.0)
            return "result"
        def boss():
            result = yield env.process(worker())
            return (env.now, result)
        assert env.run(until=env.process(boss())) == (3.0, "result")

    def test_yield_non_event_raises(self, env):
        def proc():
            yield 42
        env.process(proc())
        with pytest.raises(SimulationError):
            env.run()

    def test_waiting_on_already_processed_event_resumes(self, env):
        done = env.event().succeed("v")
        env.run()
        assert done.processed
        def proc():
            value = yield done
            return value
        assert env.run(until=env.process(proc())) == "v"

    def test_exception_in_process_propagates(self, env):
        def proc():
            yield env.timeout(1.0)
            raise KeyError("oops")
        env.process(proc())
        with pytest.raises(KeyError):
            env.run()

    def test_active_process_visible_during_execution(self, env):
        seen = []
        def proc():
            seen.append(env.active_process)
            yield env.timeout(1.0)
        process = env.process(proc())
        env.run()
        assert seen == [process]
        assert env.active_process is None


class TestInterrupt:
    def test_interrupt_delivers_cause(self, env):
        def sleeper():
            try:
                yield env.timeout(100.0)
            except Interrupt as interrupt:
                return ("interrupted", interrupt.cause, env.now)
        process = env.process(sleeper())
        def interrupter():
            yield env.timeout(5.0)
            process.interrupt(cause="wake up")
        env.process(interrupter())
        assert env.run(until=process) == ("interrupted", "wake up", 5.0)

    def test_interrupt_finished_process_raises(self, env):
        def quick():
            yield env.timeout(1.0)
        process = env.process(quick())
        env.run()
        with pytest.raises(SimulationError):
            process.interrupt()

    def test_interrupted_process_can_continue(self, env):
        def resilient():
            try:
                yield env.timeout(100.0)
            except Interrupt:
                pass
            yield env.timeout(10.0)
            return env.now
        process = env.process(resilient())
        def interrupter():
            yield env.timeout(2.0)
            process.interrupt()
        env.process(interrupter())
        assert env.run(until=process) == 12.0

    def test_original_event_detached_after_interrupt(self, env):
        timeout_holder = []
        def sleeper():
            timeout = env.timeout(50.0)
            timeout_holder.append(timeout)
            try:
                yield timeout
            except Interrupt:
                yield env.timeout(100.0)
            return env.now
        process = env.process(sleeper())
        def interrupter():
            yield env.timeout(1.0)
            process.interrupt()
        env.process(interrupter())
        # The interrupted process must not be resumed again at t=50.
        assert env.run(until=process) == 101.0


class TestDeterministicOrdering:
    def test_two_processes_interleave_deterministically(self):
        def run_once():
            env = Environment(seed=3)
            log = []
            def a():
                for _ in range(3):
                    yield env.timeout(2.0)
                    log.append(("a", env.now))
            def b():
                for _ in range(3):
                    yield env.timeout(3.0)
                    log.append(("b", env.now))
            env.process(a())
            env.process(b())
            env.run()
            return log
        assert run_once() == run_once()
