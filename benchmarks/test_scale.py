"""Controller scale: a multi-customer fleet at 5x the paper's size.

The paper argues the centralized controller is not a bottleneck (and
can be sharded if it ever is).  This bench runs 200 nested VMs for
five customers over two simulated months, checks the invariants that
make a global controller trustworthy, and reports the simulator's own
throughput (simulated seconds per wall-clock second).
"""

import time

from repro.cloud.api import CloudApi
from repro.cloud.instance_types import M3_CATALOG
from repro.cloud.zones import default_region
from repro.core.config import SpotCheckConfig
from repro.core.controller import SpotCheckController
from repro.core.inspection import check_invariants
from repro.experiments.reporting import format_table
from repro.experiments.scenario import PolicySimulation
from repro.sim.kernel import Environment
from repro.workloads import SpecJbbWorkload, TpcwWorkload

DAYS = 60.0
CUSTOMERS = 5
VMS_PER_CUSTOMER = 40
SEED = 47


def run_at_scale():
    env = Environment(seed=SEED)
    region = default_region(1)
    zone = region.zones[0]
    api = CloudApi(env, region, M3_CATALOG)
    archive = PolicySimulation.build_archive(SEED, DAYS * 24 * 3600.0)
    controller = SpotCheckController(
        env, api, SpotCheckConfig(allocation_policy="4P-ED"))
    controller.install_pools(archive, zone)

    def fleet():
        for c in range(CUSTOMERS):
            customer = controller.start_customer(f"tenant-{c}")
            for index in range(VMS_PER_CUSTOMER):
                workload = TpcwWorkload() if index % 2 \
                    else SpecJbbWorkload()
                yield controller.request_server(customer,
                                                workload=workload)

    started = time.time()
    env.run(until=env.process(fleet()))
    env.run(until=DAYS * 24 * 3600.0)
    controller.finalize()
    wall_s = time.time() - started
    total = CUSTOMERS * VMS_PER_CUSTOMER
    return {
        "summary": controller.summary(total_vms=total),
        "violations": check_invariants(controller),
        "wall_s": wall_s,
        "sim_rate": DAYS * 24 * 3600.0 / wall_s,
        "backups": controller.backup_pool.server_count,
        "total_vms": total,
    }


def test_scale_200_vms(benchmark, report):
    result = benchmark.pedantic(run_at_scale, rounds=1, iterations=1)
    summary = result["summary"]

    assert result["violations"] == []
    assert summary["state_loss_events"] == 0
    assert summary["availability"] > 0.999
    # 200 VMs across a 40-VM cap: at least five backup servers, which
    # also shrinks per-storm restore concurrency.
    assert result["backups"] >= 5
    # The simulator must stay practical: >100k simulated seconds per
    # wall second at this scale.
    assert result["sim_rate"] > 1e5

    rows = [
        ("fleet", f"{result['total_vms']} VMs / {CUSTOMERS} customers"),
        ("cost", f"${summary['cost_per_vm_hour']:.4f}/VM-hr"),
        ("availability", f"{100 * summary['availability']:.4f}%"),
        ("migrations", summary["migrations"]),
        ("backup servers", result["backups"]),
        ("wall time", f"{result['wall_s']:.1f}s "
         f"({result['sim_rate'] / 1e6:.2f}M sim-s/s)"),
    ]
    text = format_table(
        ["metric", "value"], rows,
        title=(f"Scale — {result['total_vms']} nested VMs over "
               f"{DAYS:.0f} days (5x the paper's fleet)"))
    report("scale_200_vms", text)
