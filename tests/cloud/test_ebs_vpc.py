"""Tests for EBS volumes and VPC networking."""

import ipaddress

import pytest

from repro.cloud.ebs import Volume, VolumeState
from repro.cloud.errors import InvalidOperation, NotFound
from repro.cloud.instance_types import M3_CATALOG
from repro.cloud.instances import Instance, Market
from repro.cloud.vpc import Vpc

MEDIUM = M3_CATALOG.get("m3.medium")


def running_instance(env, zone):
    instance = Instance(env, MEDIUM, zone, Market.ON_DEMAND)
    instance._mark_running()
    return instance


class TestVolume:
    def test_attach_detach_cycle(self, env, zone):
        volume = Volume(env, 8, zone)
        instance = running_instance(env, zone)
        volume._begin_attach(instance)
        volume._finish_attach()
        assert volume.state is VolumeState.IN_USE
        assert volume in instance.volumes
        volume._begin_detach()
        volume._finish_detach()
        assert volume.state is VolumeState.AVAILABLE
        assert volume not in instance.volumes

    def test_cross_zone_attach_rejected(self, env, region):
        volume = Volume(env, 8, region.zones[0])
        instance = running_instance(env, region.zones[1])
        with pytest.raises(InvalidOperation):
            volume._begin_attach(instance)

    def test_double_attach_rejected(self, env, zone):
        volume = Volume(env, 8, zone)
        instance = running_instance(env, zone)
        volume._begin_attach(instance)
        volume._finish_attach()
        with pytest.raises(InvalidOperation):
            volume._begin_attach(instance)

    def test_detach_available_rejected(self, env, zone):
        with pytest.raises(InvalidOperation):
            Volume(env, 8, zone)._begin_detach()

    def test_force_detach_from_any_state(self, env, zone):
        volume = Volume(env, 8, zone)
        instance = running_instance(env, zone)
        volume._begin_attach(instance)
        volume._force_detach()
        assert volume.state is VolumeState.AVAILABLE

    def test_delete_attached_rejected(self, env, zone):
        volume = Volume(env, 8, zone)
        instance = running_instance(env, zone)
        volume._begin_attach(instance)
        volume._finish_attach()
        with pytest.raises(InvalidOperation):
            volume.delete()

    def test_size_validation(self, env, zone):
        with pytest.raises(ValueError):
            Volume(env, 0, zone)

    def test_attach_history_recorded(self, env, zone):
        volume = Volume(env, 8, zone)
        instance = running_instance(env, zone)
        volume._begin_attach(instance)
        volume._finish_attach()
        assert volume.attach_history == [(0.0, instance.id)]


class TestVpc:
    def test_subnets_are_disjoint(self, env, region):
        vpc = Vpc(env, region)
        s1 = vpc.create_subnet(region.zones[0])
        s2 = vpc.create_subnet(region.zones[1])
        assert not s1.network.overlaps(s2.network)

    def test_ip_allocation_unique(self, env, region):
        vpc = Vpc(env, region)
        subnet = vpc.create_subnet(region.zones[0])
        eni = vpc.create_interface(subnet)
        ips = {vpc.assign_private_ip(eni) for _ in range(20)}
        assert len(ips) == 20
        assert all(ip in subnet.network for ip in ips)

    def test_ip_release_and_reuse(self, env, region):
        vpc = Vpc(env, region)
        subnet = vpc.create_subnet(region.zones[0])
        ip = subnet.allocate_ip()
        subnet.release_ip(ip)
        assert subnet.allocate_ip() == ip

    def test_release_unallocated_raises(self, env, region):
        vpc = Vpc(env, region)
        subnet = vpc.create_subnet(region.zones[0])
        with pytest.raises(NotFound):
            subnet.release_ip(ipaddress.ip_address("10.99.99.99"))

    def test_interface_attach_detach(self, env, region):
        vpc = Vpc(env, region)
        subnet = vpc.create_subnet(region.zones[0])
        eni = vpc.create_interface(subnet)
        instance = running_instance(env, region.zones[0])
        eni._attach(instance)
        assert eni.is_attached
        assert eni in instance.interfaces
        eni._detach()
        assert not eni.is_attached

    def test_double_attach_rejected(self, env, region):
        vpc = Vpc(env, region)
        subnet = vpc.create_subnet(region.zones[0])
        eni = vpc.create_interface(subnet)
        instance = running_instance(env, region.zones[0])
        eni._attach(instance)
        with pytest.raises(InvalidOperation):
            eni._attach(instance)

    def test_move_private_ip_keeps_address(self, env, region):
        # The heart of migration transparency: the nested VM's IP is
        # deallocated from the source interface and reassigned to the
        # destination, so "the IP address of nested VMs remains
        # unchanged after migration".
        vpc = Vpc(env, region)
        subnet = vpc.create_subnet(region.zones[0])
        source, dest = vpc.create_interface(subnet), vpc.create_interface(subnet)
        ip = vpc.assign_private_ip(source)
        moved = vpc.move_private_ip(ip, source, dest)
        assert moved == ip
        assert ip in dest.private_ips
        assert ip not in source.private_ips

    def test_unassign_missing_ip_raises(self, env, region):
        vpc = Vpc(env, region)
        subnet = vpc.create_subnet(region.zones[0])
        eni = vpc.create_interface(subnet)
        with pytest.raises(NotFound):
            vpc.unassign_private_ip(eni, "10.0.0.77")

    def test_assign_ip_outside_subnet_rejected(self, env, region):
        vpc = Vpc(env, region)
        subnet = vpc.create_subnet(region.zones[0])
        eni = vpc.create_interface(subnet)
        with pytest.raises(InvalidOperation):
            vpc.assign_private_ip(eni, "192.168.1.1")

    def test_interface_lookup(self, env, region):
        vpc = Vpc(env, region)
        subnet = vpc.create_subnet(region.zones[0])
        eni = vpc.create_interface(subnet)
        assert vpc.interface(eni.id) is eni
        with pytest.raises(NotFound):
            vpc.interface("eni-nope")
