"""Test package."""
