"""Hot spares and staging servers (Section 4.3).

Starting a fresh on-demand server takes up to ~90 s (Table 1), leaving
only ~30 s of a 120 s warning for the migration itself.  Two risk
mitigations:

* **hot spares** — idle on-demand hosts kept running so displaced VMs
  have an immediate destination; costs money, removes the race.
* **staging servers** — free slots on healthy hosts in *other* pools
  temporarily hold displaced VMs while a final destination starts;
  doubles the migrations but costs nothing extra.

Either way "there is never a risk of losing nested VM state, since the
backup server stores it even if there is not a destination server
available".
"""


class HotSparePolicy:
    """Manages the reserve of idle on-demand hosts."""

    def __init__(self, target, use_staging=False):
        if target < 0:
            raise ValueError("target must be non-negative")
        self.target = target
        self.use_staging = use_staging
        self.spares = []
        #: Spares consumed, replenishments, staging placements (stats).
        self.consumed = 0
        self.replenished = 0
        self.staged = 0
        #: Optional callback fired when a take pushes the reserve below
        #: target (a deficit transition edge).  The controller's
        #: replenisher sleeps forever and is woken only through this
        #: hook — no polling.
        self.on_deficit = None

    @property
    def available(self):
        return len(self.spares)

    @property
    def deficit(self):
        """How many spares must be provisioned to reach the target."""
        return max(self.target - len(self.spares), 0)

    def add_spare(self, host):
        self.spares.append(host)
        self.replenished += 1

    def take_spare(self, zone=None):
        """Claim a spare as a migration destination, or None.

        ``zone`` restricts the choice to spares whose host can attach
        the displaced VM's (zone-locked) volume.
        """
        for index, host in enumerate(self.spares):
            if zone is None or host.zone == zone:
                self.consumed += 1
                taken = self.spares.pop(index)
                if self.deficit > 0 and self.on_deficit is not None:
                    self.on_deficit()
                return taken
        return None

    def find_staging_slot(self, pools, exclude_pool=None, zone=None):
        """A free slot on a healthy host in another pool, or None.

        Only pools that are not currently under revocation pressure are
        candidates — staging onto a pool that is itself being revoked
        would just displace the VM twice for nothing.  ``zone``
        restricts staging to hosts that can attach the VM's volume.
        """
        if not self.use_staging:
            return None
        for pool in pools:
            if pool is exclude_pool:
                continue
            if zone is not None and pool.zone != zone:
                continue
            host = pool.host_with_free_slot()
            if host is not None and host.instance.is_running and \
                    host.instance.state.value != "marked-for-termination":
                self.staged += 1
                return host
        return None
