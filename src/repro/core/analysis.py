"""The paper's analytical cost and availability model (Section 4.4).

For a nested VM whose pool bids ``bid``:

* the revocation probability per price-change epoch is
  ``p = P(c_spot(t) > bid)``, read off the empirical price
  distribution (the Figure 6a CDF);
* the expected cost is ``E(c) = (1-p) * E(c_spot | c_spot <= bid)
  + p * c_od`` plus the amortized backup-server share;
* with a price change every ``T`` seconds, the revocation rate is
  ``R = p / T`` and the expected downtime per unit time is ``D * R``
  for per-migration downtime ``D``.

The model is deliberately simple — the paper uses it to reason about
policies before simulating them — and the reproduction closes the
loop: `benchmarks/test_analysis_vs_simulation.py` checks that this
model predicts the simulator's measured cost and availability.
"""

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class AnalyticalPrediction:
    """Section 4.4's outputs for one pool."""

    revocation_probability: float
    revocation_rate_per_hour: float
    expected_cost_per_hour: float
    expected_unavailability: float
    expected_degradation: float

    @property
    def expected_availability(self):
        return 1.0 - self.expected_unavailability


def revocation_probability(trace, bid):
    """p = P(spot price > bid), time-weighted over the trace."""
    durations = trace.durations()
    total = durations.sum()
    if total == 0:
        return 0.0
    return float(durations[trace.prices > bid].sum() / total)


def mean_price_below_bid(trace, bid):
    """E[c_spot | c_spot <= bid] — what the VM pays while on spot."""
    durations = trace.durations()
    below = trace.prices <= bid
    weight = durations[below].sum()
    if weight == 0:
        return float(trace.on_demand_price)
    return float(np.dot(trace.prices[below], durations[below]) / weight)


def epoch_length_s(trace):
    """T: mean time between price changes."""
    if len(trace) < 2:
        return trace.end - trace.start or 3600.0
    return float((trace.end - trace.start) / (len(trace) - 1))


def crossing_rate_per_hour(trace, bid):
    """Empirical revocation rate: bid crossings per hour.

    The paper's ``R = p/T`` assumes price changes are i.i.d. per
    epoch; real (and synthetic) prices are sticky, so the crossing
    count is the better estimator.  Both are exposed.
    """
    horizon_h = (trace.end - trace.start) / 3600.0
    if horizon_h <= 0:
        return 0.0
    return len(trace.crossings_above(bid)) / horizon_h


def predict(trace, bid=None, backup_share_per_hour=0.007,
            downtime_per_migration_s=23.0,
            degraded_per_migration_s=55.0,
            migrations_per_revocation=2.0):
    """Evaluate the Section 4.4 model for one pool.

    Parameters
    ----------
    trace:
        The pool's price history.
    bid:
        Standing bid (default: the on-demand price).
    backup_share_per_hour:
        Amortized backup-server cost (paper: ~$0.007 at 40 VMs/server).
    downtime_per_migration_s / degraded_per_migration_s:
        Seeded from the microbenchmarks, exactly as the paper seeds its
        simulator (23 s of EC2 operations; ramp + lazy-restore window).
    migrations_per_revocation:
        2 with return-to-spot on (out and back), 1 without.
    """
    bid = trace.on_demand_price if bid is None else bid
    p = revocation_probability(trace, bid)
    rate = crossing_rate_per_hour(trace, bid)

    spot_price = mean_price_below_bid(trace, bid)
    expected_cost = (1.0 - p) * spot_price + p * trace.on_demand_price
    expected_cost += backup_share_per_hour

    migrations_per_hour = rate * migrations_per_revocation
    unavailability = migrations_per_hour * downtime_per_migration_s / 3600.0
    degradation = migrations_per_hour * degraded_per_migration_s / 3600.0

    return AnalyticalPrediction(
        revocation_probability=p,
        revocation_rate_per_hour=rate,
        expected_cost_per_hour=expected_cost,
        expected_unavailability=min(unavailability, 1.0),
        expected_degradation=min(degradation, 1.0),
    )


def predict_portfolio(traces_with_weights, **kwargs):
    """Weighted mixture of per-pool predictions (multi-pool policies).

    ``traces_with_weights`` is a list of ``(trace, weight)`` pairs; the
    weights are the fraction of the fleet mapped to each pool.
    """
    total = sum(weight for _trace, weight in traces_with_weights)
    if total <= 0:
        raise ValueError("weights must sum to a positive value")
    cost = unavail = degraded = prob = rate = 0.0
    for trace, weight in traces_with_weights:
        share = weight / total
        prediction = predict(trace, **kwargs)
        cost += share * prediction.expected_cost_per_hour
        unavail += share * prediction.expected_unavailability
        degraded += share * prediction.expected_degradation
        prob += share * prediction.revocation_probability
        rate += share * prediction.revocation_rate_per_hour
    return AnalyticalPrediction(
        revocation_probability=prob,
        revocation_rate_per_hour=rate,
        expected_cost_per_hour=cost,
        expected_unavailability=unavail,
        expected_degradation=degraded,
    )
