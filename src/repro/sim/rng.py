"""Named, seeded random-number streams.

Every stochastic component in the reproduction draws from its own named
stream derived deterministically from a master seed.  Adding a new
stochastic component therefore never perturbs the random draws of the
existing ones, which keeps experiments bit-for-bit reproducible across
code growth.
"""

import hashlib

import numpy as np


def derive_seed(master_seed, name):
    """Derive a 64-bit child seed from ``master_seed`` and a stream name."""
    digest = hashlib.sha256(f"{master_seed}:{name}".encode()).digest()
    return int.from_bytes(digest[:8], "little")


class RngRegistry:
    """A lazily populated mapping of stream name -> ``numpy`` Generator."""

    def __init__(self, master_seed=0):
        self.master_seed = master_seed
        self._streams = {}

    def stream(self, name):
        """Return the generator for ``name``, creating it on first use."""
        generator = self._streams.get(name)
        if generator is None:
            generator = np.random.default_rng(
                derive_seed(self.master_seed, name))
            self._streams[name] = generator
        return generator

    def __call__(self, name):
        return self.stream(name)

    def reset(self, name=None):
        """Re-seed one stream, or all streams if ``name`` is None."""
        if name is None:
            self._streams.clear()
        else:
            self._streams.pop(name, None)

    def names(self):
        """Names of all streams created so far, sorted."""
        return sorted(self._streams)
