"""Figure 8: restoration under concurrency.

Paper shapes:
(a) full-restore downtime grows with concurrent restores; SpotCheck's
    optimizations (readahead hints, page-cache prep) roughly halve it;
(b) lazy-restore degraded-time is comparable to full restore at 1 and
    5 concurrent, but the *unoptimized* variant blows up at 10 (random
    demand-paged reads thrash the disk) — the fadvise optimization
    keeps it linear.
"""

from repro.experiments import fig8
from repro.experiments.reporting import format_table


def test_fig8_restore_concurrency(benchmark, report):
    result = benchmark.pedantic(
        lambda: fig8.run(use_des=True), rounds=1, iterations=1)

    # (a) full restores: optimized strictly better, growth with n.
    for n in (1, 5, 10):
        assert fig8.pick(result, n, "full", True) < \
            fig8.pick(result, n, "full", False)
    assert fig8.pick(result, 10, "full", False) > \
        5 * fig8.pick(result, 1, "full", False)

    # (b) lazy restores: similar to full at low concurrency...
    for n in (1, 5):
        ratio = fig8.pick(result, n, "lazy", False) / \
            fig8.pick(result, n, "full", False)
        assert 0.5 < ratio < 2.0
    # ...but unoptimized lazy collapses at 10 concurrent,
    assert fig8.pick(result, 10, "lazy", False) > \
        2.5 * fig8.pick(result, 10, "full", False)
    # while the fadvise optimization keeps it near the optimized full.
    assert fig8.pick(result, 10, "lazy", True) < \
        1.5 * fig8.pick(result, 10, "full", True)

    # The DES execution agrees with the analytic model.
    for row in result["rows"]:
        assert abs(row["des_s"] - row["analytic_s"]) < \
            0.05 * row["analytic_s"] + 0.5

    rows = []
    for n in (1, 5, 10):
        rows.append((
            n,
            f"{fig8.pick(result, n, 'full', False):.0f}",
            f"{fig8.pick(result, n, 'full', True):.0f}",
            f"{fig8.pick(result, n, 'lazy', False):.0f}",
            f"{fig8.pick(result, n, 'lazy', True):.0f}",
        ))
    text = format_table(
        ["concurrent", "full unopt (s)", "full SpotCheck (s)",
         "lazy unopt (s)", "lazy SpotCheck (s)"],
        rows,
        title=("Figure 8 — (a) full-restore downtime and (b) "
               "lazy-restore degraded time vs concurrent restorations"))
    report("fig8_restore_concurrency", text)
