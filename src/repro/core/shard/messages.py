"""Typed messages exchanged between the coordinator and market shards.

Two directions, two families:

Coordinator -> shard (requests)
    :class:`ProvisionRequest`, :class:`ParkRequest`,
    :class:`MigrateRequest` — imperative work the shard applies at an
    epoch boundary.

Shard -> coordinator (events)
    :class:`RevocationWarning`, :class:`PriceCrossing`,
    :class:`StormReport`, :class:`SlaSegment`, :class:`MigrateAck` —
    observations stamped with a :class:`Stamp` logical clock so the
    coordinator can merge streams from any number of shards into one
    total order (see :mod:`repro.core.shard.mailbox`).

Every event is identified by its market *key* (type name, zone name)
and carries only counts, prices, and times — never raw instance or VM
ids.  Ids come from module-global counters whose values depend on how
markets share a process, so a message carrying one would break the
bit-identity guarantee between shard counts.  Everything here is a
frozen dataclass: hashable, picklable, and safe to send over a pipe.
"""

from dataclasses import dataclass

# -- logical clock ---------------------------------------------------------


@dataclass(frozen=True, order=True)
class Stamp:
    """Logical clock for the deterministic merge.

    ``time``
        The emitting market's simulated time.
    ``market``
        The market's index in the coordinator's sorted market list —
        NOT a process or shard id, so the total order is identical no
        matter which process hosts the market.
    ``seq``
        Per-market emission counter, breaking same-instant ties in
        emission order.
    """

    time: float
    market: int
    seq: int


# -- coordinator -> shard requests ----------------------------------------


@dataclass(frozen=True)
class ProvisionRequest:
    """Boot ``count`` nested VMs into market ``market`` (by index)."""

    market: int
    count: int
    customer: str = "fleet"


@dataclass(frozen=True)
class ParkRequest:
    """Live-migrate up to ``count`` of the market's VMs to on-demand."""

    market: int
    count: int


@dataclass(frozen=True)
class MigrateRequest:
    """Move ``count`` VMs out of ``market`` toward ``dest_market``.

    Cross-market moves are coordinator-mediated: the source shard
    relinquishes the VMs (acking with a :class:`MigrateAck`) and the
    coordinator provisions replacements in the destination market.
    VM state never crosses a market boundary — in SpotCheck terms the
    move restores from the backup tier rather than streaming live.
    """

    market: int
    count: int
    dest_market: int


# -- shard -> coordinator events ------------------------------------------


@dataclass(frozen=True)
class RevocationWarning:
    """The market warned an instance; revocation lands at ``deadline``."""

    stamp: Stamp
    market_key: tuple
    bid: float
    deadline: float


@dataclass(frozen=True)
class PriceCrossing:
    """The spot price crossed the on-demand boundary.

    ``band`` is ``"expensive"`` (rose above on-demand) or
    ``"recovered"`` (fell back below).
    """

    stamp: Stamp
    market_key: tuple
    price: float
    band: str


@dataclass(frozen=True)
class StormReport:
    """A finalized revocation storm: every same-instant warning, sized."""

    stamp: Stamp
    market_key: tuple
    hosts_lost: int
    vms_displaced: int


@dataclass(frozen=True)
class SlaSegment:
    """One market's contribution to the fleet's availability SLA."""

    stamp: Stamp
    market_key: tuple
    customer: str
    vm_hours: float
    availability: float
    unavailability_pct: float
    degradation_pct: float


@dataclass(frozen=True)
class MigrateAck:
    """Source-side completion of a :class:`MigrateRequest`."""

    stamp: Stamp
    market_key: tuple
    released: int
    dest_market: int


@dataclass(frozen=True)
class ShardReport:
    """Per-market final report returned by ``FinalizeCommand``.

    ``summary`` holds reducible aggregates (vm-seconds, downtime,
    dollars, event counts) rather than ratios, so the coordinator can
    merge markets in index order and derive fleet-level ratios from
    exact sums — the float reduction order is fixed, which is what
    keeps merged summaries bit-identical across shard counts.
    """

    stamp: Stamp
    market: int
    market_key: tuple
    vms: int
    hosts: int
    parked: int
    events_processed: int
    summary: dict
    drive: dict
    flush: dict
    spares: dict


# -- transport commands ----------------------------------------------------


@dataclass(frozen=True)
class ApplyCommand:
    """Apply epoch-boundary requests (each targets one of the shard's
    markets); flows run to completion before the reply."""

    requests: tuple


@dataclass(frozen=True)
class RunCommand:
    """Advance every market in the shard to simulated time ``until``."""

    until: float


@dataclass(frozen=True)
class FinalizeCommand:
    """Close the books on every market; reply carries ShardReports."""


@dataclass(frozen=True)
class StopCommand:
    """Shut the worker process down."""


@dataclass(frozen=True)
class ShardReply:
    """Worker response: drained event messages plus per-command payload.

    ``error`` carries a formatted traceback when the command failed —
    raising in the worker would just hang the pipe.
    """

    messages: tuple = ()
    acks: tuple = ()
    reports: tuple = ()
    error: str = None


__all__ = [
    "ApplyCommand",
    "FinalizeCommand",
    "MigrateAck",
    "MigrateRequest",
    "ParkRequest",
    "PriceCrossing",
    "ProvisionRequest",
    "RevocationWarning",
    "RunCommand",
    "ShardReply",
    "ShardReport",
    "SlaSegment",
    "Stamp",
    "StopCommand",
    "StormReport",
]
