"""End-to-end: the observability layer wired into a real controller run.

Drives the controller-test harness (spiky m3.medium trace: warnings at
t=50000, recovery at t=58000) with an attached
:class:`~repro.obs.Observability` and checks the acceptance properties:
migration traces decompose into the Table 1 phases, per-phase span
durations sum to the recorded downtime, and attaching a bus does not
change simulation behaviour.
"""

import pytest

from repro.cloud.api import CloudApi
from repro.cloud.instance_types import M3_CATALOG
from repro.cloud.zones import default_region
from repro.core.config import SpotCheckConfig
from repro.core.controller import SpotCheckController
from repro.obs import Observability
from repro.sim.kernel import Environment
from repro.traces.archive import TraceArchive

from tests.core.test_controller import (
    SPIKE_END,
    SPIKE_START,
    launch_fleet,
    spiky_trace,
)

DOWNTIME_PHASES = {"final-commit", "ebs-detach", "vpc-detach", "dest-wait",
                   "ebs-attach", "vpc-attach", "restore"}


def build_observed(config=None, obs=None):
    env = Environment(seed=99, obs=obs)
    region = default_region(1)
    zone = region.zones[0]
    api = CloudApi(env, region, M3_CATALOG)
    archive = TraceArchive()
    archive.add(spiky_trace("m3.medium", 0.07))
    controller = SpotCheckController(env, api, config or SpotCheckConfig())
    controller.install_pools(archive, zone)
    return env, api, controller


@pytest.fixture(scope="module")
def observed_run():
    obs = Observability()
    env, api, controller = build_observed(obs=obs)
    launch_fleet(env, controller, count=3)
    env.run(until=SPIKE_START + 2000.0)
    return obs, env, controller


class TestEventFlow:
    def test_warning_and_storm_events_published(self, observed_run):
        obs, env, controller = observed_run
        names = {event.name for event in obs.events}
        assert "spot.warning" in names
        assert "storm.finalized" in names
        assert "vm.created" in names
        assert "vm.parked" in names
        assert "migration.completed" in names
        assert "backup.stream_assigned" in names

    def test_events_are_time_ordered(self, observed_run):
        obs, env, controller = observed_run
        times = [event.time for event in obs.events]
        assert times == sorted(times)
        seqs = [event.seq for event in obs.events]
        assert seqs == sorted(seqs)

    def test_storm_event_matches_ledger(self, observed_run):
        obs, env, controller = observed_run
        storms = [e for e in obs.events if e.name == "storm.finalized"]
        assert len(storms) == len(controller.ledger.revocations)
        assert storms[0].fields["vms_displaced"] == \
            controller.ledger.revocations[0].vms_displaced


class TestMigrationTraces:
    def test_each_bounded_migration_has_a_trace(self, observed_run):
        obs, env, controller = observed_run
        bounded = [m for m in controller.ledger.migrations
                   if m.mechanism.startswith("bounded-")]
        traces = [t for t in obs.tracer.finished("migration")
                  if t.attrs["mechanism"].startswith("bounded-")]
        assert len(bounded) == len(traces) > 0

    def test_phases_decompose_table1(self, observed_run):
        obs, env, controller = observed_run
        for trace in obs.tracer.finished("migration"):
            if not trace.attrs["mechanism"].startswith("bounded-"):
                continue
            names = {child.name for child in trace.children}
            assert {"final-commit", "ebs-detach", "vpc-detach",
                    "ebs-attach", "vpc-attach", "restore"} <= names
            for child in trace.children:
                assert child.end is not None
                assert child.start >= trace.start
                assert child.end <= trace.end

    def test_phase_spans_sum_to_recorded_downtime(self, observed_run):
        obs, env, controller = observed_run
        records = {m.vm_id: m for m in controller.ledger.migrations
                   if m.mechanism.startswith("bounded-")}
        checked = 0
        for trace in obs.tracer.finished("migration"):
            record = records.get(trace.attrs["vm"])
            if record is None or \
                    not trace.attrs["mechanism"].startswith("bounded-"):
                continue
            span_sum = sum(child.duration_s for child in trace.children
                           if child.name in DOWNTIME_PHASES)
            assert span_sum == pytest.approx(record.downtime_s, rel=1e-6)
            checked += 1
        assert checked > 0

    def test_ledger_phases_sum_to_downtime(self, observed_run):
        obs, env, controller = observed_run
        for record in controller.ledger.migrations:
            assert record.phases
            assert sum(record.phases.values()) == \
                pytest.approx(record.downtime_s, rel=1e-6)


class TestMetrics:
    def test_downtime_histogram_recorded(self, observed_run):
        obs, env, controller = observed_run
        series = obs.metrics.find("migration_downtime_seconds")
        assert series
        bounded = [s for s in series
                   if s.labels["mechanism"].startswith("bounded-")]
        assert bounded
        ledger_bounded = [m for m in controller.ledger.migrations
                          if m.mechanism.startswith("bounded-")]
        assert sum(s.count for s in bounded) == len(ledger_bounded)
        assert sum(s.sum for s in bounded) == pytest.approx(
            sum(m.downtime_s for m in ledger_bounded))

    def test_warning_counter_matches_events(self, observed_run):
        obs, env, controller = observed_run
        warnings = [e for e in obs.events if e.name == "spot.warning"]
        counters = obs.metrics.find("spot_warnings_total")
        assert sum(c.value for c in counters) == len(warnings)


class TestOptIn:
    def test_unobserved_run_has_no_obs(self):
        env, api, controller = build_observed()
        assert env.obs is None
        launch_fleet(env, controller, count=1)
        env.run(until=SPIKE_START + 2000.0)
        assert controller.ledger.migrations  # sim ran fine, nothing broke

    def test_observation_does_not_change_behaviour(self):
        results = []
        for obs in (None, Observability()):
            env, api, controller = build_observed(obs=obs)
            launch_fleet(env, controller, count=2)
            env.run(until=SPIKE_END + 20000.0)
            ledger = controller.ledger
            results.append((
                len(ledger.migrations),
                len(ledger.revocations),
                round(ledger.total_downtime_s(), 9),
                round(ledger.total_degraded_s(), 9),
            ))
        assert results[0] == results[1]
