"""Event primitives for the simulation kernel.

Events move through three states: *pending* (created, not scheduled),
*triggered* (scheduled on the environment's heap with a value), and
*processed* (callbacks have run).  Processes wait on events by yielding
them; the kernel resumes the process with the event's value, or throws
the event's exception into it if the event failed.

Every event class declares ``__slots__``: grid simulations allocate
millions of short-lived :class:`Timeout` and resumption events, and
dropping the per-instance ``__dict__`` measurably raises kernel
events/sec (see ``repro.benchmarking``).
"""

from repro.sim.errors import SimulationError

PENDING = object()

#: Priority for ordinary events.  (Re-exported by ``repro.sim.kernel``;
#: defined here so :class:`Timeout` can self-schedule without importing
#: the kernel module.)
NORMAL = 1
#: Priority for process-resumption events (run before ordinary events at
#: the same timestamp so interrupts observe a consistent state).
URGENT = 0


class Event:
    """A one-shot occurrence that processes can wait on.

    Parameters
    ----------
    env:
        The owning :class:`~repro.sim.kernel.Environment`.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, env):
        self.env = env
        self.callbacks = []
        self._value = PENDING
        self._ok = None
        # _defused: set once some waiter has consumed this event's
        # failure; an unconsumed failure crashes the run loop (errors
        # must never pass silently).
        self._defused = False

    @property
    def triggered(self):
        """True once the event has been scheduled with a value."""
        return self._value is not PENDING

    @property
    def processed(self):
        """True once callbacks have run (callbacks list is consumed)."""
        return self.callbacks is None

    @property
    def ok(self):
        """True if the event succeeded; only valid once triggered."""
        if not self.triggered:
            raise SimulationError("event value not yet available")
        return self._ok

    @property
    def value(self):
        """The payload the event was triggered with."""
        if self._value is PENDING:
            raise SimulationError("event value not yet available")
        return self._value

    def succeed(self, value=None):
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.env.schedule(self)
        return self

    def fail(self, exception):
        """Trigger the event as failed with ``exception``."""
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._ok = False
        self._value = exception
        self.env.schedule(self)
        return self

    def __repr__(self):
        state = "processed" if self.processed else (
            "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that triggers ``delay`` time units after creation.

    Timeouts are the kernel's hottest allocation (every simulated wait
    is one), so construction takes a fast path: the event is born
    triggered and pushed straight onto the environment's heap, skipping
    the generic ``Event.__init__`` / ``Environment.schedule`` machinery.
    """

    __slots__ = ("delay",)

    def __init__(self, env, delay, value=None):
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        # Inlined Event.__init__ + env.schedule(self, delay=delay): born
        # triggered-successful, one heap push, no intermediate calls.
        self.env = env
        self.callbacks = []
        self._ok = True
        self._value = value
        self._defused = False
        self.delay = delay
        env._push_heap(
            env._heap, (env._now + delay, NORMAL, next(env._eid), self))

    def __repr__(self):
        return f"<Timeout delay={self.delay}>"


class ConditionValue(dict):
    """Mapping of event -> value for the events a condition collected."""


class _Condition(Event):
    """Base for AllOf/AnyOf: waits on a set of events."""

    __slots__ = ("events", "_done")

    def __init__(self, env, events):
        super().__init__(env)
        self.events = list(events)
        self._done = 0
        if not self.events:
            self.succeed(ConditionValue())
            return
        for event in self.events:
            if event.processed:
                self._check(event)
            else:
                event.callbacks.append(self._check)

    def _satisfied(self):
        raise NotImplementedError

    def _check(self, event):
        if self.triggered:
            event._defused = True  # condition already settled
            return
        if event._ok is False:
            event._defused = True
            self.fail(event._value)
            return
        self._done += 1
        if self._satisfied():
            value = ConditionValue(
                (e, e._value) for e in self.events if e.triggered and e._ok)
            self.succeed(value)


class AllOf(_Condition):
    """Triggers once every event in ``events`` has succeeded."""

    __slots__ = ()

    def _satisfied(self):
        return self._done == len(self.events)


class AnyOf(_Condition):
    """Triggers as soon as any event in ``events`` succeeds."""

    __slots__ = ()

    def _satisfied(self):
        return self._done >= 1
