"""Tests for regions and zones."""

import pytest

from repro.cloud.zones import Region, default_region


class TestRegion:
    def test_with_zones_names(self):
        region = Region.with_zones("eu-west-1", 3)
        assert [z.name for z in region] == \
            ["eu-west-1a", "eu-west-1b", "eu-west-1c"]

    def test_zone_lookup(self):
        region = Region.with_zones("r", 2)
        assert region.zone("rb").name == "rb"

    def test_zone_lookup_missing(self):
        with pytest.raises(KeyError):
            Region.with_zones("r", 1).zone("rz")

    def test_zero_zones_rejected(self):
        with pytest.raises(ValueError):
            Region.with_zones("r", 0)

    def test_too_many_zones_rejected(self):
        with pytest.raises(ValueError):
            Region.with_zones("r", 27)

    def test_len(self):
        assert len(Region.with_zones("r", 5)) == 5

    def test_default_region(self):
        region = default_region()
        assert region.name == "us-east-1"
        assert len(region) == 4

    def test_zones_hashable_and_equal(self):
        a = Region.with_zones("r", 1).zones[0]
        b = Region.with_zones("r", 1).zones[0]
        assert a == b
        assert hash(a) == hash(b)
