"""Test package."""
