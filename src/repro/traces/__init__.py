"""Spot-price traces: generation, storage, and analysis.

The paper drives its policy simulations with six months of real EC2
spot-price history (April–October 2014).  We cannot ship that data, so
this package provides a regime-switching price model calibrated to the
statistical properties the paper reports in Figure 6:

* a long-tailed spot/on-demand price-ratio distribution whose knee sits
  below the on-demand price (Fig 6a),
* hourly price changes spanning many orders of magnitude in percentage
  terms (Fig 6b), and
* near-zero correlation between the prices of different availability
  zones (Fig 6c) and instance types (Fig 6d).

The ``stats`` module computes exactly those three views from any set of
traces, which is how the calibration is validated.
"""

from repro.traces.archive import PriceTrace, TraceArchive
from repro.traces.calibration import (
    M3_MARKET_PARAMS,
    market_params_for,
    paper_market_set,
)
from repro.traces.generator import TraceGenerator
from repro.traces.importer import load_aws_json, load_csv
from repro.traces.model import MarketParams, SpotPriceModel
from repro.traces.stats import (
    availability_at_bid,
    availability_cdf,
    correlation_matrix,
    mean_price,
    price_jump_cdf,
    resample_hourly,
)

__all__ = [
    "M3_MARKET_PARAMS",
    "MarketParams",
    "PriceTrace",
    "SpotPriceModel",
    "TraceArchive",
    "TraceGenerator",
    "availability_at_bid",
    "availability_cdf",
    "correlation_matrix",
    "load_aws_json",
    "load_csv",
    "market_params_for",
    "mean_price",
    "paper_market_set",
    "price_jump_cdf",
    "resample_hourly",
]
