"""Table 3: probability of concurrent revocations by pool count.

For 1-, 2- and 4-pool policies, the per-hour probability that a single
revocation event displaced at least N/4, N/2, 3N/4 or all N of the
fleet's VMs.  The paper's qualitative result: only the single-pool
policy ever loses all N at once; four pools eliminate mass revocations
entirely.
"""

from repro.experiments.policy_grid import run_cell

POOL_POLICIES = {
    "1-Pool": "1P-M",
    "2-Pool": "2P-ML",
    "4-Pool": "4P-ED",
}

BUCKETS = (0.25, 0.5, 0.75, 1.0)


def run(seed=11, days=183.0, vms=40, mechanism="spotcheck-lazy"):
    """Returns {pool label: {bucket: probability}} plus summaries."""
    table = {}
    summaries = {}
    for label, policy in POOL_POLICIES.items():
        summary = run_cell(policy, mechanism, seed=seed, days=days, vms=vms)
        table[label] = summary["storm_histogram"]
        summaries[label] = summary
    return {"table": table, "buckets": BUCKETS, "summaries": summaries}
