#!/usr/bin/env python
"""An interactive multi-tier web application on SpotCheck.

The paper's motivating workload: conventional wisdom said revocable
spot servers were only fit for batch jobs, because an interactive
service cannot tolerate sudden server loss.  This example runs a
TPC-W-like three-tier web application (a small fleet of application
servers) on SpotCheck for a month and reports what the *end users*
experience: the response-time profile across normal operation,
checkpointing overhead, and the rare migration windows.

Run:  python examples/interactive_webapp.py
"""

from dataclasses import replace

from repro.cloud.api import CloudApi
from repro.cloud.instance_types import M3_CATALOG
from repro.cloud.zones import default_region
from repro.core import SpotCheckConfig, SpotCheckController
from repro.sim import Environment
from repro.traces.archive import TraceArchive
from repro.traces.calibration import M3_MARKET_PARAMS
from repro.traces.generator import TraceGenerator
from repro.workloads import Conditions, TpcwWorkload

DAYS = 30
APP_SERVERS = 24


def main():
    env = Environment(seed=7)
    region = default_region(1)
    zone = region.zones[0]
    api = CloudApi(env, region, M3_CATALOG)

    # A moderately volatile month so migrations actually happen.
    params = replace(M3_MARKET_PARAMS["m3.medium"],
                     spike_rate_per_hour=0.01)
    archive = TraceArchive([TraceGenerator(seed=7).generate_market(
        "m3.medium", zone.name, params, duration_s=DAYS * 24 * 3600.0)])

    controller = SpotCheckController(env, api, SpotCheckConfig())
    controller.install_pools(archive, zone)

    def fleet():
        customer = controller.start_customer("webshop")
        vms = []
        for _ in range(APP_SERVERS):
            vms.append((yield controller.request_server(
                customer, workload=TpcwWorkload())))
        return vms

    vms = env.run(until=env.process(fleet()))
    env.run(until=DAYS * 24 * 3600.0)
    controller.finalize()

    workload = TpcwWorkload()
    total_s = DAYS * 24 * 3600.0
    normal_ms = workload.response_time_ms(Conditions(checkpointing=True))
    restore_ms = workload.response_time_ms(
        Conditions(restoring=True, restore_concurrency=APP_SERVERS))

    # Time-weighted response-time profile per app server.
    degraded_s = controller.ledger.total_degraded_s() / len(vms)
    down_s = controller.ledger.total_downtime_s() / len(vms)
    normal_frac = 1.0 - (degraded_s + down_s) / total_s

    print(f"TPC-W web application: {APP_SERVERS} app servers, "
          f"{DAYS} days on SpotCheck\n")
    print("response-time profile (per app server):")
    print(f"  normal operation    {100 * normal_frac:7.3f}% of time "
          f"at ~{normal_ms:.1f} ms (29 ms without checkpointing)")
    print(f"  migration windows   {100 * degraded_s / total_s:7.3f}% of "
          f"time at ~{restore_ms:.1f} ms")
    print(f"  unavailable         {100 * down_s / total_s:7.3f}% of time")
    print("  (the ~23 s downtime windows are shorter than TCP timeouts, "
          "so connections survive)")

    # What an end user actually measures: overlay a request stream on
    # each server's state history.
    from repro.workloads.requests import RequestAnalyzer
    analyzer = RequestAnalyzer(workload)
    per_server = [analyzer.analyze_vm(vm, 0.0, total_s, rate_rps=25.0,
                                      sla_threshold_ms=100.0)
                  for vm in vms]
    total_requests = sum(s.total_requests for s in per_server)
    failed = sum(s.failed_requests for s in per_server)
    worst = max(per_server, key=lambda s: s.p99_ms)
    print(f"\nclient view at 25 req/s per server "
          f"({total_requests / 1e6:.1f}M requests over the month):")
    print(f"  p50 / p95 / p99 ... {worst.p50_ms:.0f} / {worst.p95_ms:.0f} "
          f"/ {worst.p99_ms:.0f} ms (worst server)")
    print(f"  failed requests ... {failed:,.0f} "
          f"({100 * failed / total_requests:.4f}%)")
    print(f"  >100 ms SLA echo .. "
          f"{100 * worst.sla_violation_rate:.3f}% of successes")

    summary = controller.summary(total_vms=len(vms))
    on_demand_bill = 0.07 * len(vms) * total_s / 3600.0
    actual_bill = summary["cost_per_vm_hour"] * len(vms) * total_s / 3600.0
    print(f"\nmonthly bill: ${actual_bill:,.2f} on SpotCheck vs "
          f"${on_demand_bill:,.2f} on on-demand "
          f"({on_demand_bill / actual_bill:.1f}x saving)")
    print(f"availability: {100 * summary['availability']:.4f}%   "
          f"migrations: {summary['migrations']}   "
          f"state lost: {summary['state_loss_events']}")
    assert summary["state_loss_events"] == 0


if __name__ == "__main__":
    main()
