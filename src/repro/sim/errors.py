"""Exception types used by the simulation kernel."""


class SimulationError(Exception):
    """Base class for errors raised by the simulation kernel."""


class Interrupt(Exception):
    """Raised inside a process that another process interrupted.

    The interrupting party supplies ``cause``, an arbitrary payload that
    the interrupted process can inspect (e.g. a revocation warning).
    """

    def __init__(self, cause=None):
        super().__init__(cause)
        self.cause = cause

    def __repr__(self):
        return f"Interrupt(cause={self.cause!r})"


class StopProcess(Exception):
    """Internal: raised to return a value from a process generator.

    Process generators normally terminate with ``return value``; this
    exception exists for callers that need to abort a generator from the
    outside while still recording a result.
    """

    def __init__(self, value=None):
        super().__init__(value)
        self.value = value
