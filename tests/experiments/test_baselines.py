"""Tests for the non-derivative baselines."""

import pytest

from repro.experiments.baselines import (
    DEFAULT_RESTART_S,
    checkpointed_spot,
    compare,
    naive_spot,
    on_demand_only,
)
from repro.traces.archive import PriceTrace

DAY = 24 * 3600.0


def trace_with_spikes(spikes, duration=30 * DAY, base=0.014, peak=0.50):
    """A medium-market trace with ``spikes`` one-hour excursions."""
    times, prices = [0.0], [base]
    for index in range(spikes):
        start = (index + 1) * duration / (spikes + 2)
        times += [start, start + 3600.0]
        prices += [peak, base]
    times.append(duration)
    prices.append(base)
    return PriceTrace(times, prices, "m3.medium", "z", 0.07)


class TestNaiveSpot:
    def test_no_spikes_full_availability(self):
        result = naive_spot(trace_with_spikes(0))
        assert result.availability == pytest.approx(1.0)
        assert result.revocations == 0
        assert result.cost_per_hour == pytest.approx(0.014)

    def test_spikes_cost_downtime_and_work(self):
        result = naive_spot(trace_with_spikes(10))
        # 10 spike hours + 10 restarts over 30 days.
        expected_down = (10 * 3600.0 + 10 * DEFAULT_RESTART_S) / (30 * DAY)
        assert 1.0 - result.availability == pytest.approx(
            expected_down, rel=0.01)
        assert result.revocations == 10
        assert result.lost_work_s == pytest.approx(10 * DEFAULT_RESTART_S)

    def test_pays_only_sub_bid_prices(self):
        result = naive_spot(trace_with_spikes(5))
        assert result.cost_per_hour == pytest.approx(0.014, rel=1e-6)

    def test_higher_bid_recovers_availability(self):
        trace = trace_with_spikes(10, peak=0.10)
        low = naive_spot(trace, bid=0.07)
        high = naive_spot(trace, bid=0.20)
        assert high.availability > low.availability


class TestCheckpointedSpot:
    def test_adds_recompute_loss(self):
        trace = trace_with_spikes(10)
        naive = naive_spot(trace)
        checkpointed = checkpointed_spot(trace, checkpoint_interval_s=7200.0)
        assert checkpointed.availability < naive.availability
        assert checkpointed.lost_work_s == pytest.approx(
            naive.lost_work_s + 10 * 3600.0)

    def test_tighter_checkpoints_lose_less(self):
        trace = trace_with_spikes(10)
        coarse = checkpointed_spot(trace, checkpoint_interval_s=7200.0)
        fine = checkpointed_spot(trace, checkpoint_interval_s=600.0)
        assert fine.availability > coarse.availability


class TestOnDemand:
    def test_perfect_but_expensive(self):
        result = on_demand_only(trace_with_spikes(10))
        assert result.availability == 1.0
        assert result.cost_per_hour == 0.07


class TestCompare:
    def test_improvement_factor(self):
        trace = trace_with_spikes(20)
        spotcheck_summary = {
            "availability": 0.99999,
            "cost_per_vm_hour": 0.015,
        }
        comparison = compare(trace, spotcheck_summary)
        naive = comparison["baselines"][0]
        expected = (1 - naive.availability) / (1 - 0.99999)
        assert comparison["availability_improvement_vs_spot"] == \
            pytest.approx(expected)
        assert comparison["spotcheck"]["cost_per_hour"] == 0.015
