"""Usage metering and billing.

On-demand instances bill at their fixed hourly price.  Spot instances
bill at the *market* price over time (not the bid), which is how EC2
charged in 2014.  Spot cost is computed lazily by integrating the
market's price trace over the instance's lifetime — exact, and far
cheaper than tracking every price change per instance during a
six-month simulation.
"""

import math
from dataclasses import dataclass

import numpy as np

from repro.cloud.instances import Market


@dataclass
class UsageRecord:
    """One instance's metered usage."""

    instance_id: str
    type_name: str
    zone_name: str
    market: Market
    start: float
    end: float = None
    cost: float = 0.0


def integrate_trace(times, prices, start, end):
    """Integral of a step-function price over [start, end], $-seconds."""
    if end <= start:
        return 0.0
    # Segments overlapping [start, end]; the price in effect at `start`
    # is the last change at or before it (extended backwards if the
    # trace begins later, matching PriceTrace.price_at).
    idx_lo = max(int(np.searchsorted(times, start, side="right")) - 1, 0)
    idx_hi = int(np.searchsorted(times, end, side="left"))
    idx_hi = max(idx_hi, idx_lo + 1)
    seg_times = times[idx_lo:idx_hi].astype(float).copy()
    seg_prices = prices[idx_lo:idx_hi].astype(float)
    seg_times[0] = start
    ends = np.minimum(np.append(seg_times[1:], end), end)
    durations = np.maximum(ends - seg_times, 0.0)
    return float(np.dot(seg_prices, durations))


class BillingLedger:
    """Accumulates the cost of every native instance ever run.

    Parameters
    ----------
    env:
        Simulation environment (for the clock).
    hourly_rounding:
        If True, round each instance's total runtime up to whole hours
        as 2014-era EC2 did; the default False integrates exactly.
    """

    SECONDS_PER_HOUR = 3600.0

    def __init__(self, env, hourly_rounding=False):
        self.env = env
        self.hourly_rounding = hourly_rounding
        self.records = {}

    def open(self, instance):
        """Start metering ``instance`` at the current time."""
        if instance.id in self.records:
            raise ValueError(f"{instance.id} already metered")
        self.records[instance.id] = UsageRecord(
            instance_id=instance.id,
            type_name=instance.itype.name,
            zone_name=instance.zone.name,
            market=instance.market,
            start=self.env.now,
        )

    def close(self, instance, market=None):
        """Stop metering and compute the final cost.

        ``market`` is the instance's spot market (required for spot
        instances, ignored for on-demand ones).
        """
        record = self.records[instance.id]
        if record.end is not None:
            return record.cost
        record.end = self.env.now
        record.cost = self._cost_between(
            record, instance, market, record.start, record.end)
        return record.cost

    def accrued_cost(self, instance, market=None):
        """Cost of a still-open record from its start to now."""
        record = self.records[instance.id]
        if record.end is not None:
            return record.cost
        return self._cost_between(
            record, instance, market, record.start, self.env.now)

    def _cost_between(self, record, instance, market, start, end):
        seconds = end - start
        if record.market is Market.ON_DEMAND:
            hours = self._billable_hours(seconds)
            return hours * instance.itype.on_demand_price
        if market is None:
            raise ValueError("costing a spot record requires its market")
        times, prices = market.trace.arrays()
        dollar_seconds = integrate_trace(times, prices, start, end)
        cost = dollar_seconds / self.SECONDS_PER_HOUR
        if self.hourly_rounding and seconds > 0:
            run_hours = seconds / self.SECONDS_PER_HOUR
            cost *= math.ceil(run_hours) / run_hours
        return cost

    def _billable_hours(self, seconds):
        hours = seconds / self.SECONDS_PER_HOUR
        if self.hourly_rounding:
            hours = float(math.ceil(hours)) if hours > 0 else 0.0
        return hours

    # -- reporting -----------------------------------------------------

    def total_cost(self, market=None):
        """Total cost across closed records, optionally for one market."""
        return sum(
            record.cost for record in self.records.values()
            if record.end is not None
            and (market is None or record.market is market))

    def records_for(self, market):
        return [r for r in self.records.values() if r.market is market]
