"""Figures 10-12: the policy x mechanism grid.

The paper runs each Table 2 policy under four migration mechanisms over
six months of spot prices, reporting average cost per VM-hour
(Figure 10), unavailability (Figure 11), and time under degraded
performance (Figure 12).  One :func:`run_grid` call produces all three
views from the same set of simulations, with the trace archive shared
across cells so every cell sees identical prices.
"""

from repro.experiments.scenario import (
    MECHANISMS,
    POLICIES,
    PolicySimulation,
    ScenarioConfig,
)

_CACHE = {}


def run_cell(policy, mechanism, seed=11, days=183.0, vms=40, archive=None,
             **overrides):
    """Run (or fetch from cache) one grid cell's summary."""
    key = (policy, mechanism, seed, days, vms, tuple(sorted(
        overrides.items())))
    if key in _CACHE:
        return _CACHE[key]
    config = ScenarioConfig(policy=policy, mechanism=mechanism, seed=seed,
                            days=days, vms=vms, **overrides)
    if archive is None:
        archive = shared_archive(seed, days)
    summary = PolicySimulation(config, archive=archive).run()
    _CACHE[key] = summary
    return summary


_ARCHIVES = {}


def shared_archive(seed, days):
    """One trace archive per (seed, days), shared by every cell."""
    key = (seed, days)
    if key not in _ARCHIVES:
        _ARCHIVES[key] = PolicySimulation.build_archive(
            seed, days * 24 * 3600.0)
    return _ARCHIVES[key]


def run_grid(policies=POLICIES, mechanisms=MECHANISMS, seed=11, days=183.0,
             vms=40, **overrides):
    """The full grid: {(policy, mechanism): summary}."""
    results = {}
    for policy in policies:
        for mechanism in mechanisms:
            results[(policy, mechanism)] = run_cell(
                policy, mechanism, seed=seed, days=days, vms=vms,
                **overrides)
    return results


def figure10_rows(results):
    """Average cost per VM-hour, one row per policy."""
    return _pivot(results, "cost_per_vm_hour")


def figure11_rows(results):
    """Unavailability %, one row per policy."""
    return _pivot(results, "unavailability_pct")


def figure12_rows(results):
    """Degraded-time %, one row per policy."""
    return _pivot(results, "degradation_pct")


def _pivot(results, metric):
    policies = sorted({p for p, _m in results}, key=_policy_order)
    mechanisms = sorted({m for _p, m in results}, key=_mechanism_order)
    rows = []
    for policy in policies:
        row = {"policy": policy}
        for mechanism in mechanisms:
            row[mechanism] = results[(policy, mechanism)][metric]
        rows.append(row)
    return mechanisms, rows


def _policy_order(policy):
    try:
        return POLICIES.index(policy)
    except ValueError:
        return len(POLICIES)


def _mechanism_order(mechanism):
    try:
        return MECHANISMS.index(mechanism)
    except ValueError:
        return len(MECHANISMS)
