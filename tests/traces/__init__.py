"""Test package."""
