"""The checkpoint store: memory images held on a backup server.

The store guarantees the paper's "no risk of losing VM state" claim:
once a VM's image is committed, the state survives any host
termination — even if no destination server is available yet, "the
backup server stores it even if there is not a destination server
available to execute the nested VM".
"""

from dataclasses import dataclass, field


@dataclass
class ImageRecord:
    """One nested VM's memory image on the backup server."""

    vm_id: str
    image_bytes: float
    #: Bytes of the image that are current (committed checkpoints).
    committed_bytes: float = 0.0
    #: Dirty bytes known to be outstanding on the source host.
    outstanding_bytes: float = 0.0
    last_commit_at: float = None
    commits: int = 0
    history: list = field(default_factory=list)

    @property
    def is_complete(self):
        """Whether the stored image alone can reconstruct the VM."""
        return self.committed_bytes >= self.image_bytes and \
            self.outstanding_bytes == 0.0


class CheckpointStore:
    """Image bookkeeping for one backup server."""

    def __init__(self, env):
        self.env = env
        self._images = {}

    def open_image(self, vm_id, image_bytes):
        """Begin storing a VM's image (initial full copy pending)."""
        if vm_id in self._images:
            raise ValueError(f"image for {vm_id} already open")
        record = ImageRecord(vm_id=vm_id, image_bytes=float(image_bytes))
        self._images[vm_id] = record
        return record

    def seed_full_image(self, vm_id):
        """Mark the initial full copy committed."""
        record = self._images[vm_id]
        record.committed_bytes = record.image_bytes
        record.outstanding_bytes = 0.0
        record.last_commit_at = self.env.now
        record.commits += 1
        record.history.append((self.env.now, record.image_bytes))

    def mark_dirty(self, vm_id, dirty_bytes):
        """Account dirty state accumulating on the source host."""
        record = self._images[vm_id]
        record.outstanding_bytes = float(dirty_bytes)

    def commit(self, vm_id, flushed_bytes):
        """A checkpoint flush arrived; outstanding state shrinks."""
        record = self._images[vm_id]
        record.outstanding_bytes = max(
            record.outstanding_bytes - flushed_bytes, 0.0)
        record.last_commit_at = self.env.now
        record.commits += 1
        record.history.append((self.env.now, flushed_bytes))

    def image(self, vm_id):
        try:
            return self._images[vm_id]
        except KeyError:
            raise KeyError(f"no image stored for {vm_id}") from None

    def close_image(self, vm_id):
        """Drop a VM's image (VM terminated or moved to another server)."""
        return self._images.pop(vm_id, None)

    def __contains__(self, vm_id):
        return vm_id in self._images

    def __len__(self):
        return len(self._images)

    def total_bytes(self):
        return sum(r.committed_bytes for r in self._images.values())

    def state_loss_events(self):
        """Images whose host died with uncommitted state.

        Non-empty only if a commit was interrupted — the invariant the
        bounded-time machinery exists to keep empty.
        """
        return [r for r in self._images.values()
                if r.outstanding_bytes > 0 and r.last_commit_at is None]
