"""Open-loop SLA traffic: arrival patterns, engine, and ledgers.

See ``docs/traffic.md`` for the design and the event-elision argument.
"""

from repro.traffic.engine import CustomerTraffic, TrafficEngine, TrafficMix
from repro.traffic.patterns import (
    CompositeRate,
    ConstantRate,
    DiurnalRate,
    FlashCrowd,
    RatePattern,
    ScaledRate,
)
from repro.traffic.sla import SlaLedger, SlaTarget, lognormal_params

__all__ = [
    "CompositeRate",
    "ConstantRate",
    "CustomerTraffic",
    "DiurnalRate",
    "FlashCrowd",
    "RatePattern",
    "ScaledRate",
    "SlaLedger",
    "SlaTarget",
    "TrafficEngine",
    "TrafficMix",
    "lognormal_params",
]
