"""Tests for the cost/availability/storm ledger."""

import pytest

from repro.cloud.api import CloudApi
from repro.cloud.instance_types import M3_CATALOG
from repro.cloud.instances import Market
from repro.core.accounting import AccountingLedger
from repro.virt.vm import NestedVM

from tests.conftest import flat_trace, run_process

MEDIUM = M3_CATALOG.get("m3.medium")


def migration_kwargs(**overrides):
    defaults = dict(
        vm_id="nvm-1", cause="revocation", mechanism="bounded-lazy",
        downtime_s=23.0, degraded_s=50.0,
        source_pool=("spot", "m3.medium", "z"),
        dest_pool=("on-demand", "m3.medium", "z"),
        concurrent=1, state_safe=True)
    defaults.update(overrides)
    return defaults


class TestLifetimes:
    def test_vm_seconds_accumulate(self, env):
        ledger = AccountingLedger(env)
        vm = NestedVM(env, MEDIUM)
        ledger.vm_created(vm)
        env._now = 1000.0
        ledger.vm_terminated(vm)
        assert ledger.total_vm_seconds() == 1000.0

    def test_open_lifetimes_closed_at_finalize(self, env):
        ledger = AccountingLedger(env)
        ledger.vm_created(NestedVM(env, MEDIUM))
        env._now = 500.0
        ledger.finalize()
        assert ledger.total_vm_seconds() == 500.0


class TestAvailabilityMetrics:
    def test_unavailability_fraction(self, env):
        ledger = AccountingLedger(env)
        vm = NestedVM(env, MEDIUM)
        ledger.vm_created(vm)
        ledger.record_migration(**migration_kwargs(downtime_s=100.0))
        env._now = 10000.0
        ledger.finalize()
        assert ledger.unavailability() == pytest.approx(0.01)
        assert ledger.availability() == pytest.approx(0.99)

    def test_degradation_fraction(self, env):
        ledger = AccountingLedger(env)
        ledger.vm_created(NestedVM(env, MEDIUM))
        ledger.record_migration(**migration_kwargs(degraded_s=200.0))
        env._now = 10000.0
        ledger.finalize()
        assert ledger.degradation() == pytest.approx(0.02)

    def test_empty_ledger_fully_available(self, env):
        ledger = AccountingLedger(env)
        assert ledger.availability() == 1.0
        assert ledger.degradation() == 0.0

    def test_state_loss_events_tracked(self, env):
        ledger = AccountingLedger(env)
        ledger.record_migration(**migration_kwargs(state_safe=False))
        ledger.record_migration(**migration_kwargs())
        assert len(ledger.state_loss_events()) == 1

    def test_per_phase_sums_match_total_downtime(self, env):
        ledger = AccountingLedger(env)
        phases_a = {"final-commit": 0.6, "ebs-detach": 10.7,
                    "vpc-detach": 1.2, "dest-wait": 0.0,
                    "ebs-attach": 4.8, "vpc-attach": 1.0, "restore": 0.9}
        phases_b = {"stop-and-copy": 0.08}
        ledger.record_migration(**migration_kwargs(
            downtime_s=sum(phases_a.values()), phases=phases_a))
        ledger.record_migration(**migration_kwargs(
            vm_id="nvm-2", mechanism="live",
            downtime_s=sum(phases_b.values()), phases=phases_b))
        for record in ledger.migrations:
            assert sum(record.phases.values()) == \
                pytest.approx(record.downtime_s)
        totals = ledger.phase_totals()
        assert totals["ebs-detach"] == pytest.approx(10.7)
        assert totals["stop-and-copy"] == pytest.approx(0.08)
        assert sum(totals.values()) == \
            pytest.approx(ledger.total_downtime_s())

    def test_downtime_and_degraded_totals_aggregate(self, env):
        ledger = AccountingLedger(env)
        ledger.record_migration(**migration_kwargs(
            downtime_s=20.0, degraded_s=5.0))
        ledger.record_migration(**migration_kwargs(
            vm_id="nvm-2", downtime_s=26.0, degraded_s=7.0))
        assert ledger.total_downtime_s() == pytest.approx(46.0)
        assert ledger.total_degraded_s() == pytest.approx(12.0)

    def test_revocation_aggregation(self, env):
        ledger = AccountingLedger(env)
        ledger.record_revocation(
            pool_key=("spot", "m3.medium", "z"), hosts_lost=2,
            vms_displaced=7, backup_load={"bak-1": 4, "bak-2": 3})
        ledger.record_revocation(
            pool_key=("spot", "m3.large", "z"), hosts_lost=1,
            vms_displaced=2)
        assert len(ledger.revocations) == 2
        first = ledger.revocations[0]
        # The per-server concurrency spread sums to the displaced VMs.
        assert sum(first.backup_load.values()) == first.vms_displaced
        assert ledger.max_concurrent_revocation() == 7
        assert sum(e.vms_displaced for e in ledger.revocations) == 9

    def test_migration_count_by_cause(self, env):
        ledger = AccountingLedger(env)
        ledger.record_migration(**migration_kwargs(cause="revocation"))
        ledger.record_migration(**migration_kwargs(cause="return-to-spot"))
        assert ledger.migration_count() == 2
        assert ledger.migration_count("revocation") == 1


class TestCost:
    def test_total_cost_includes_extras_and_open_records(self, env, region,
                                                         zone):
        api = CloudApi(env, region, M3_CATALOG)
        api.install_market(MEDIUM, zone, flat_trace(0.02))
        ledger = AccountingLedger(env)
        def flow():
            spot = yield api.run_instance(MEDIUM, zone, Market.SPOT, bid=0.07)
            od = yield api.run_instance(MEDIUM, zone, Market.ON_DEMAND)
            yield env.timeout(3600.0)
            yield api.terminate_instance(od)
            return spot
        run_process(env, flow())
        ledger.add_cost("backup:test", 1.5)
        total = ledger.total_cost(api)
        # Closed od record ~0.07, open spot accrues ~0.02/hr, extra 1.5.
        assert total > 1.5 + 0.07
        breakdown = ledger.cost_breakdown(api)
        assert breakdown["backup"] == 1.5
        assert breakdown["on-demand"] == pytest.approx(0.07, rel=0.01)

    def test_cost_per_vm_hour(self, env, region):
        api = CloudApi(env, region, M3_CATALOG)
        ledger = AccountingLedger(env)
        vm = NestedVM(env, MEDIUM)
        ledger.vm_created(vm)
        env._now = 7200.0
        ledger.finalize()
        ledger.add_cost("x", 0.10)
        assert ledger.cost_per_vm_hour(api) == pytest.approx(0.05)

    def test_zero_vm_hours(self, env, region):
        api = CloudApi(env, region, M3_CATALOG)
        assert AccountingLedger(env).cost_per_vm_hour(api) == 0.0


class TestStorms:
    def test_histogram_buckets(self, env):
        ledger = AccountingLedger(env)
        env._now = 3600.0 * 100  # 100 hours of observation
        ledger._finalized_at = env.now
        ledger.revocations = []
        ledger.record_revocation(("spot", "m", "z"), 1, 40)   # all N
        ledger.record_revocation(("spot", "m", "z"), 1, 20)   # N/2
        ledger.record_revocation(("spot", "m", "z"), 1, 9)    # < N/4
        histogram = ledger.storm_histogram(total_vms=40)
        assert histogram[1.0] == pytest.approx(1 / 100)
        assert histogram[0.5] == pytest.approx(1 / 100)
        assert histogram[0.25] == 0.0

    def test_max_concurrent(self, env):
        ledger = AccountingLedger(env)
        assert ledger.max_concurrent_revocation() == 0
        ledger.record_revocation(("spot", "m", "z"), 2, 17)
        assert ledger.max_concurrent_revocation() == 17

    def test_histogram_validation(self, env):
        with pytest.raises(ValueError):
            AccountingLedger(env).storm_histogram(total_vms=0)

    def test_summary_keys(self, env, region):
        api = CloudApi(env, region, M3_CATALOG)
        ledger = AccountingLedger(env)
        env._now = 3600.0
        summary = ledger.summary(api, total_vms=10)
        for key in ("cost_per_vm_hour", "availability", "unavailability_pct",
                    "degradation_pct", "migrations", "revocation_events",
                    "state_loss_events", "storm_histogram"):
            assert key in summary
