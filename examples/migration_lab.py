#!/usr/bin/env python
"""Migration mechanisms under the microscope.

Compares the four mechanisms of Section 3 for a spectrum of memory
profiles — from an idle VM to a write-storm — against a 120 s
revocation warning:

* plain pre-copy live migration (latency grows with memory + dirtying,
  and stops converging for hot VMs),
* Yank-style bounded-time migration (single stale-state flush),
* SpotCheck bounded-time + full restore, and
* SpotCheck bounded-time + lazy restore (ramped checkpoints, fadvise).

Run:  python examples/migration_lab.py
"""

from repro.backup.server import BackupServer
from repro.experiments.reporting import format_table
from repro.sim import Environment
from repro.virt.migration.bounded import (
    BoundedMigrationConfig,
    BoundedTimeMigration,
)
from repro.virt.migration.live import PreCopyMigration
from repro.workloads import profile_for

GiB = 1024 ** 3
WARNING_S = 120.0
EC2_OPS_S = 22.65

PROFILES = ("idle", "web", "jvm", "database", "analytics", "write-storm")


def main():
    env = Environment(seed=0)
    server = BackupServer(env)
    live_planner = PreCopyMigration(bandwidth_bps=22e6)

    rows = []
    for name in PROFILES:
        memory = profile_for(name, int(1.7 * GiB))
        live = live_planner.plan(memory)
        live_note = "converges" if live.converged else "DIVERGES"
        fits = live.converged and live.total_time_s <= WARNING_S
        variants = {}
        for label, config in (
                ("yank", BoundedMigrationConfig.yank_baseline()),
                ("full", BoundedMigrationConfig.spotcheck_full()),
                ("lazy", BoundedMigrationConfig.spotcheck_lazy())):
            outcome = BoundedTimeMigration(memory, server, config).plan(
                WARNING_S, ec2_ops_downtime_s=EC2_OPS_S)
            variants[label] = outcome
        lazy = variants["lazy"]
        lazy_note = "" if lazy.state_safe else " [exceeds bound!]"
        rows.append((
            name,
            f"{live.total_time_s:7.1f}s {live_note}"
            + ("" if fits else " (misses warning)"),
            f"{variants['yank'].downtime_s:6.1f}s",
            f"{variants['full'].downtime_s:6.1f}s",
            f"{lazy.downtime_s:5.1f}s "
            f"(+{lazy.degraded_s:.0f}s degraded){lazy_note}",
        ))
        if name in ("idle", "web", "jvm", "database"):
            # The paper-class profiles stay within the time bound.  The
            # heavier profiles dirty memory faster than the default
            # per-VM stream throttle and worst-case commit share can
            # drain — protecting those needs a larger backup share
            # (fewer VMs per backup server), which is exactly the
            # provisioning trade Figure 7 quantifies.
            assert lazy.state_safe

    print(format_table(
        ["profile", "live pre-copy (total)", "yank down",
         "SpotCheck full down", "SpotCheck lazy down"],
        rows,
        title=(f"Migrating a 1.7 GiB nested VM out of a {WARNING_S:.0f}s "
               f"revocation warning (EC2 control-plane ops: "
               f"{EC2_OPS_S}s)")))
    print(
        "\nTakeaways (matching the paper): live migration alone only\n"
        "works for small/idle VMs; bounded-time migration holds its\n"
        "deadline regardless of dirtying, and lazy restore cuts the\n"
        "downtime to the EC2 control-plane floor (~23 s) by trading a\n"
        "window of degraded, demand-paged execution.")


if __name__ == "__main__":
    main()
