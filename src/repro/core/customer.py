"""Customers of the derivative cloud."""

from itertools import count

_IDS = count(1)


class Customer:
    """One SpotCheck customer.

    Customers see an EC2-like interface: they request and relinquish
    servers of advertised types, and each owns a private subnet in
    SpotCheck's VPC with one public IP on a designated "head" VM.
    """

    def __init__(self, name=None):
        self.id = f"cust-{next(_IDS):04d}"
        self.name = name or self.id
        self.vms = []
        self.subnets = {}
        #: The nested VM carrying the customer's single public IP.
        self.head_vm = None
        self._vm_listeners = None

    def on_vm_change(self, callback):
        """Call ``callback(customer, vm, added)`` on fleet changes.

        ``added`` is True for a grant, False for a relinquish.  Fires
        synchronously from :meth:`add_vm` / :meth:`remove_vm` so the
        traffic engine can flush the pre-change fleet inline.
        """
        if self._vm_listeners is None:
            self._vm_listeners = []
        if callback not in self._vm_listeners:
            self._vm_listeners.append(callback)

    def add_vm(self, vm):
        self.vms.append(vm)
        if self.head_vm is None:
            self.head_vm = vm
        if self._vm_listeners:
            for callback in self._vm_listeners:
                callback(self, vm, True)

    def remove_vm(self, vm):
        if vm in self.vms:
            self.vms.remove(vm)
        if self.head_vm is vm:
            self.head_vm = self.vms[0] if self.vms else None
        if self._vm_listeners:
            for callback in self._vm_listeners:
                callback(self, vm, False)

    def __repr__(self):
        return f"<Customer {self.name} vms={len(self.vms)}>"
