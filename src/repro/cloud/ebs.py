"""Network-attached block storage (EBS-like volumes).

The prototype requires every nested VM to keep its root disk and
persistent state on network-attached volumes; migrating a nested VM
therefore means detaching the volume from the source host and attaching
it at the destination, and these two control-plane operations are part
of the ~23 s migration downtime (Table 1).
"""

import enum
from itertools import count

from repro.cloud.errors import InvalidOperation

_IDS = count(1)


class VolumeState(enum.Enum):
    AVAILABLE = "available"
    ATTACHING = "attaching"
    IN_USE = "in-use"
    DETACHING = "detaching"
    DELETED = "deleted"


class Volume:
    """A network-attached disk volume."""

    def __init__(self, env, size_gib, zone):
        if size_gib <= 0:
            raise ValueError(f"volume size must be positive, got {size_gib}")
        self.env = env
        self.id = f"vol-{next(_IDS):08x}"
        self.size_gib = size_gib
        self.zone = zone
        self.state = VolumeState.AVAILABLE
        self.attached_to = None
        self.attach_history = []

    def _begin_attach(self, instance):
        if self.state is not VolumeState.AVAILABLE:
            raise InvalidOperation(
                f"{self.id}: cannot attach from state {self.state}")
        if instance.zone != self.zone:
            raise InvalidOperation(
                f"{self.id} is in {self.zone}, instance in {instance.zone}")
        self.state = VolumeState.ATTACHING
        self.attached_to = instance

    def _finish_attach(self):
        if self.state is not VolumeState.ATTACHING:
            raise InvalidOperation(
                f"{self.id}: attach completion from state {self.state}")
        self.state = VolumeState.IN_USE
        self.attached_to.volumes.append(self)
        self.attach_history.append((self.env.now, self.attached_to.id))

    def _begin_detach(self):
        if self.state is not VolumeState.IN_USE:
            raise InvalidOperation(
                f"{self.id}: cannot detach from state {self.state}")
        self.state = VolumeState.DETACHING

    def _finish_detach(self):
        if self.state is not VolumeState.DETACHING:
            raise InvalidOperation(
                f"{self.id}: detach completion from state {self.state}")
        if self in self.attached_to.volumes:
            self.attached_to.volumes.remove(self)
        self.attached_to = None
        self.state = VolumeState.AVAILABLE

    def _force_detach(self):
        """Detach immediately (host terminated under the volume)."""
        if self.attached_to is not None and self in self.attached_to.volumes:
            self.attached_to.volumes.remove(self)
        self.attached_to = None
        if self.state is not VolumeState.DELETED:
            self.state = VolumeState.AVAILABLE

    def delete(self):
        if self.state is VolumeState.IN_USE:
            raise InvalidOperation(f"{self.id} is attached; detach first")
        self.state = VolumeState.DELETED

    def __repr__(self):
        return f"<Volume {self.id} {self.size_gib}GiB {self.state.value}>"
