"""Figures 10-12: the policy x mechanism grid.

The paper runs each Table 2 policy under four migration mechanisms over
six months of spot prices, reporting average cost per VM-hour
(Figure 10), unavailability (Figure 11), and time under degraded
performance (Figure 12).  One :func:`run_grid` call produces all three
views from the same set of simulations, with the trace archive shared
across cells so every cell sees identical prices.

Cells are cached at three tiers: a bounded in-process LRU (fast
repeats inside one run), an optional on-disk summary cache keyed by a
stable config hash (``cache_dir=...`` — repeated ``repro report`` runs
skip completed cells), and the shared trace archive itself.  With
``workers=N`` the grid fans out across processes via
:mod:`repro.experiments.parallel`; parallel results are identical to
serial ones (same RNG streams, same archive bytes).
"""

import os
import tempfile
from collections import OrderedDict

from repro.experiments.parallel import (
    CellDiskCache,
    archive_hash,
    run_cells_parallel,
)
from repro.experiments.scenario import (
    MECHANISMS,
    POLICIES,
    PolicySimulation,
    ScenarioConfig,
)
from repro.traces.calibration import M3_MARKET_PARAMS

#: In-memory cache bounds.  Cell summaries are small dicts, but trace
#: archives hold six months of prices per market — keep only a few.
MAX_CACHED_CELLS = 256
MAX_CACHED_ARCHIVES = 4

#: Below this many uncached cells, process fan-out costs more than it
#: buys (interpreter + archive load per worker) and the grid runs the
#: cells inline instead.
MIN_PARALLEL_CELLS = 4


def plan_workers(requested, pending_cells, cpu_count=None):
    """Decide how many processes a grid batch should actually use.

    Returns ``(workers, reason)`` where reason is one of
    ``serial-requested``, ``single-cpu``, ``small-batch``, or
    ``parallel``.  The BENCH_baseline artifact showed a 20-cell grid
    at speedup 0.995: executor startup swallowed the win on a host
    where ``os.cpu_count()`` was 1.  Planning the worker count from
    the pending-cell count and the host avoids that overhead and
    records why, so a flat speedup in a bench artifact is explained
    rather than mysterious.  Small batches stay serial by design.
    """
    cpu = os.cpu_count() if cpu_count is None else cpu_count
    if requested is None or requested <= 1:
        return 1, "serial-requested"
    if cpu is not None and cpu <= 1:
        return 1, "single-cpu"
    if pending_cells < MIN_PARALLEL_CELLS:
        return 1, "small-batch"
    return min(requested, pending_cells), "parallel"

_CACHE = OrderedDict()
_ARCHIVES = OrderedDict()


def clear_caches():
    """Drop every in-memory cell summary and trace archive."""
    _CACHE.clear()
    _ARCHIVES.clear()


def _freeze(value):
    """A hashable, order-stable stand-in for any override value."""
    if isinstance(value, dict):
        return tuple(sorted((k, _freeze(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    if isinstance(value, (set, frozenset)):
        return tuple(sorted((repr(v) for v in value)))
    try:
        hash(value)
    except TypeError:
        return repr(value)
    return value


def _remember(cache, key, value, bound):
    """LRU insert: newest at the end, evict from the front."""
    cache[key] = value
    cache.move_to_end(key)
    while len(cache) > bound:
        cache.popitem(last=False)


def cell_key(policy, mechanism, seed, days, vms, overrides):
    """The in-memory cache key for one cell (robust to dict/list/None
    override values — anything unhashable is frozen or repr'd)."""
    return (policy, mechanism, seed, days, vms,
            tuple(sorted((k, _freeze(v)) for k, v in overrides.items())))


def _count(metrics, name, amount=1, **labels):
    if metrics is not None:
        metrics.counter(name, **labels).inc(amount)


def run_cell(policy, mechanism, seed=11, days=183.0, vms=40, archive=None,
             cache_dir=None, metrics=None, **overrides):
    """Run (or fetch from cache) one grid cell's summary.

    ``cache_dir`` adds a persistent on-disk tier keyed by a stable
    config hash; ``metrics`` (a :class:`repro.obs.MetricsRegistry`)
    receives ``grid_cache_hits_total`` / ``grid_cache_misses_total`` /
    ``grid_cells_executed_total`` counters.
    """
    key = cell_key(policy, mechanism, seed, days, vms, overrides)
    cached = _CACHE.get(key)
    if cached is not None:
        _CACHE.move_to_end(key)
        _count(metrics, "grid_cache_hits_total", tier="memory")
        return cached
    config = ScenarioConfig(policy=policy, mechanism=mechanism, seed=seed,
                            days=days, vms=vms, **overrides)
    disk = CellDiskCache(cache_dir) if cache_dir else None
    if disk is not None:
        summary = disk.get(config)
        if summary is not None:
            _count(metrics, "grid_cache_hits_total", tier="disk")
            _remember(_CACHE, key, summary, MAX_CACHED_CELLS)
            return summary
    _count(metrics, "grid_cache_misses_total")
    if archive is None:
        archive = shared_archive(seed, days, zones=config.zones,
                                 market_params=config.market_params)
    summary = PolicySimulation(config, archive=archive).run()
    _count(metrics, "grid_cells_executed_total", mode="serial")
    if disk is not None:
        disk.put(config, summary)
    _remember(_CACHE, key, summary, MAX_CACHED_CELLS)
    return summary


def shared_archive(seed, days, zones=1, market_params=None):
    """One trace archive per market set, shared by every cell."""
    params = market_params or M3_MARKET_PARAMS
    key = archive_hash(seed, days, zones, params)
    archive = _ARCHIVES.get(key)
    if archive is None:
        archive = PolicySimulation.build_archive(
            seed, days * 24 * 3600.0, market_params=params, zones=zones)
        _remember(_ARCHIVES, key, archive, MAX_CACHED_ARCHIVES)
    else:
        _ARCHIVES.move_to_end(key)
    return archive


def run_grid(policies=POLICIES, mechanisms=MECHANISMS, seed=11, days=183.0,
             vms=40, workers=1, cache_dir=None, metrics=None, **overrides):
    """The full grid: {(policy, mechanism): summary}.

    ``workers > 1`` fans the uncached cells out across processes; the
    shared trace archive is generated once in the parent, written to an
    ``.npz``, and loaded once per worker.  Results are identical to the
    serial path.
    """
    cells = [(policy, mechanism)
             for policy in policies for mechanism in mechanisms]
    if workers is None or workers <= 1 or len(cells) <= 1:
        return {cell: run_cell(cell[0], cell[1], seed=seed, days=days,
                               vms=vms, cache_dir=cache_dir, metrics=metrics,
                               **overrides)
                for cell in cells}
    return _run_grid_parallel(cells, seed, days, vms, workers, cache_dir,
                              metrics, overrides)


def _run_grid_parallel(cells, seed, days, vms, workers, cache_dir, metrics,
                       overrides):
    if metrics is not None:
        metrics.gauge("grid_workers").set(workers)
    disk = CellDiskCache(cache_dir) if cache_dir else None
    results = {}
    pending = []
    for policy, mechanism in cells:
        key = cell_key(policy, mechanism, seed, days, vms, overrides)
        cached = _CACHE.get(key)
        if cached is not None:
            _CACHE.move_to_end(key)
            _count(metrics, "grid_cache_hits_total", tier="memory")
            results[(policy, mechanism)] = cached
            continue
        config = ScenarioConfig(policy=policy, mechanism=mechanism,
                                seed=seed, days=days, vms=vms, **overrides)
        if disk is not None:
            summary = disk.get(config)
            if summary is not None:
                _count(metrics, "grid_cache_hits_total", tier="disk")
                _remember(_CACHE, key, summary, MAX_CACHED_CELLS)
                results[(policy, mechanism)] = summary
                continue
        _count(metrics, "grid_cache_misses_total")
        pending.append(((policy, mechanism), key, config))
    if not pending:
        return results

    planned, reason = plan_workers(workers, len(pending))
    if metrics is not None:
        metrics.gauge("grid_planned_workers").set(planned)
        _count(metrics, "grid_worker_plan_total", reason=reason)

    # All grid cells share one archive identity (same seed/days/zones/
    # market params), generated once here and loaded once per worker.
    sample = pending[0][2]
    digest = archive_hash(seed, days, sample.zones, sample.market_params)
    archive = shared_archive(seed, days, zones=sample.zones,
                             market_params=sample.market_params)

    if planned <= 1:
        for (cell, key, config) in pending:
            summary = PolicySimulation(config, archive=archive).run()
            _count(metrics, "grid_cells_executed_total", mode="serial")
            if disk is not None:
                disk.put(config, summary)
            _remember(_CACHE, key, summary, MAX_CACHED_CELLS)
            results[cell] = summary
        return results

    def _dispatch(archive_path):
        if not os.path.exists(archive_path):
            archive.save_npz(archive_path)
        return run_cells_parallel(
            [config for _cell, _key, config in pending], planned,
            archive_path=archive_path)

    if cache_dir:
        summaries = _dispatch(
            os.path.join(cache_dir, "archives", f"{digest}.npz"))
    else:
        with tempfile.TemporaryDirectory(prefix="repro-grid-") as tmp:
            summaries = _dispatch(os.path.join(tmp, f"{digest}.npz"))

    for ((cell, key, config), summary) in zip(pending, summaries):
        _count(metrics, "grid_cells_executed_total", mode="parallel")
        if disk is not None:
            disk.put(config, summary)
        _remember(_CACHE, key, summary, MAX_CACHED_CELLS)
        results[cell] = summary
    return results


def figure10_rows(results):
    """Average cost per VM-hour, one row per policy."""
    return _pivot(results, "cost_per_vm_hour")


def figure11_rows(results):
    """Unavailability %, one row per policy."""
    return _pivot(results, "unavailability_pct")


def figure12_rows(results):
    """Degraded-time %, one row per policy."""
    return _pivot(results, "degradation_pct")


def _pivot(results, metric):
    policies = sorted({p for p, _m in results}, key=_policy_order)
    mechanisms = sorted({m for _p, m in results}, key=_mechanism_order)
    rows = []
    for policy in policies:
        row = {"policy": policy}
        for mechanism in mechanisms:
            row[mechanism] = results[(policy, mechanism)][metric]
        rows.append(row)
    return mechanisms, rows


def _policy_order(policy):
    try:
        return POLICIES.index(policy)
    except ValueError:
        return len(POLICIES)


def _mechanism_order(mechanism):
    try:
        return MECHANISMS.index(mechanism)
    except ValueError:
        return len(MECHANISMS)
