"""Per-(instance type, availability zone) spot markets.

Each market replays a price trace.  Whenever the market price rises
above a registered spot instance's bid, the platform issues a
revocation warning and forcibly terminates the instance when the
warning period (120 s on EC2) elapses — unless the instance was already
relinquished.  This is exactly the contract SpotCheck's bounded-time
migration is built against.

The drive is *threshold-indexed*: instead of waking the kernel at every
price step, the market keeps a sorted index of active thresholds
(instance bids, plus the bands of registered :class:`PriceWatch`
crossing listeners), precomputes the next trace index any of them cares
about with vectorized lookups over the trace arrays, and sleeps
straight to that point.  Two listener tiers exist:

* **Step listeners** (:meth:`SpotMarket.on_price_change`) receive every
  price point; registering one — or attaching an
  :class:`~repro.obs.Observability` facade, which needs the per-point
  ``spot.price`` event stream — pins the market to the legacy
  step-by-step drive.
* **Crossing watches** (:meth:`SpotMarket.add_watch`) declare a price
  band and are woken only at trace points inside it; points outside
  every active band and below every registered bid are skipped without
  a kernel event.  Series consumers that used to tap the step stream
  (pool price history) are reconstructed lazily from the trace arrays
  via :meth:`SpotMarket.delivered_count`.

Skipping is outcome-preserving: a skipped point is one at which, by
construction, the step drive would have warned nobody and every watch
callback's band predicate would have been false.  Wake timestamps
reproduce the step drive's *accumulated* clock (see ``_arrival``), so
warning deadlines and billing windows are bit-identical to the
step-by-step path.
"""

import bisect
from itertools import count

import numpy as np

from repro.cloud.instances import InstanceState, Market

#: EC2's spot revocation warning, seconds ("EC2 provides a warning of
#: 120 seconds before forcibly terminating a spot server").
DEFAULT_WARNING_PERIOD = 120.0


class PriceWatch:
    """A crossing listener: a callback plus the price band it fires in.

    The watch matches trace points with ``lo < price <= hi`` (either
    bound may be ``None`` for unbounded).  ``active`` is an optional
    zero-argument gate consulted when the drive plans its next wake-up:
    an inactive watch's crossings are skipped entirely, so callers must
    :meth:`SpotMarket.rearm` the market when the gate opens (the
    callback itself must still re-check any state it depends on — the
    gate is a scheduling hint, not a correctness guard).
    """

    __slots__ = ("lo", "hi", "callback", "active", "_match_cache")

    def __init__(self, callback, lo=None, hi=None, active=None):
        if lo is not None and hi is not None and hi <= lo:
            raise ValueError(f"empty watch band ({lo}, {hi}]")
        self.callback = callback
        self.lo = lo
        self.hi = hi
        self.active = active if active is not None else (lambda: True)
        #: Sorted trace indices matching the band, built on first use.
        self._match_cache = None

    def retune(self, lo=None, hi=None):
        """Move the band to ``(lo, hi]`` (None bounds stay unbounded).

        Invalidates the cached match index.  The owning market's drive
        loop replans after the current point is processed, so a watch
        retuned from its own callback needs nothing further; retuning
        from *outside* a delivery (or retuning watches on other
        markets) requires :meth:`SpotMarket.rearm` on each affected
        market, exactly like flipping an ``active`` gate open.
        """
        if lo is not None and hi is not None and hi <= lo:
            raise ValueError(f"empty watch band ({lo}, {hi}]")
        self.lo = lo
        self.hi = hi
        self._match_cache = None

    def matches(self, price):
        """Whether one price lies in this watch's band."""
        if self.lo is not None and price <= self.lo:
            return False
        if self.hi is not None and price > self.hi:
            return False
        return True

    def match_indices(self, prices):
        """Sorted trace indices inside the band (cached per trace)."""
        if self._match_cache is None:
            mask = np.ones(len(prices), dtype=bool)
            if self.lo is not None:
                mask &= prices > self.lo
            if self.hi is not None:
                mask &= prices <= self.hi
            self._match_cache = np.flatnonzero(mask)
        return self._match_cache

    def next_match(self, prices, start):
        """First matching trace index >= ``start``, or ``None``."""
        matches = self.match_indices(prices)
        pos = int(np.searchsorted(matches, start))
        if pos >= len(matches):
            return None
        return int(matches[pos])


class SpotMarket:
    """One spot market: a price trace plus the instances bidding in it."""

    def __init__(self, env, itype, zone, trace,
                 warning_period=DEFAULT_WARNING_PERIOD):
        if warning_period < 0:
            raise ValueError("warning period must be non-negative")
        self.env = env
        self.itype = itype
        self.zone = zone
        self.trace = trace
        self.warning_period = warning_period
        #: Registered spot instances, insertion-ordered by id.  A dict
        #: (not a list) so deregister is O(1) and a revocation storm
        #: deregistering mid-iteration cannot corrupt a scan.
        self._instances = {}
        self._price_listeners = []
        self._watches = []
        self._warning_listeners = []
        self._revoke_callback = None
        self._times, self._prices = trace.arrays()
        if len(self._times) == 0:
            raise ValueError("price trace is empty")
        self._n = len(self._times)
        self._cursor = 0
        #: The step drive's accumulated clock after the last processed
        #: point.  ``now + (t - now)`` is not always exactly ``t`` in
        #: floats, and warning deadlines derive from wake times, so the
        #: skipping drive must reproduce the same accumulation.
        self._clock = env.now
        #: True when every per-point hop ``t[i-1] + (t[i] - t[i-1])``
        #: lands exactly on ``t[i]`` — then arrival times are just the
        #: trace times and the Python fold in ``_arrival`` is skipped.
        chain = getattr(trace, "exact_hop_chain", None)
        if chain is not None:
            self._exact_chain = chain()
        elif self._n > 1:
            hop = self._times[:-1] + (self._times[1:] - self._times[:-1])
            self._exact_chain = bool(np.all(hop == self._times[1:]))
        else:
            self._exact_chain = True
        #: Sorted (bid, seq, instance id) for registered, unwarned
        #: instances — the threshold index the drive plans against.
        self._bid_index = []
        self._reg_seq = count()
        self._bid_crossing_cache = None
        self._started = False
        self._parked = False
        self._processing = False
        #: Trace index the driver is currently sleeping toward, or
        #: ``None`` while parked/processing.
        self._sleep_index = None
        self._gen = 0
        self.stats = {"points": self._n, "wakes": 0, "delivered": 0,
                      "rearms": 0, "stale_skips": 0}
        self._driver = env.process(self._drive(0))

    @property
    def key(self):
        """Market key: (type name, zone name)."""
        return (self.itype.name, self.zone.name)

    def current_price(self):
        """The spot price in effect at the current simulated time."""
        return self.price_at(self.env.now)

    def price_at(self, when):
        """The spot price in effect at time ``when``."""
        idx = bisect.bisect_right(self._times, when) - 1
        if idx < 0:
            idx = 0
        return float(self._prices[idx])

    def delivered_count(self):
        """Leading trace points the step drive would have fed by now.

        Series consumers (pool price history) reconstruct their sample
        windows from ``prices[:delivered_count()]`` instead of
        accumulating per step.  Zero until the drive process first
        runs, so a consumer attached before the run starts sees the
        point at t=0 while one attached mid-run at t=0 (after the
        drive's initialization event) does not — matching when each
        would have started hearing step callbacks.
        """
        if not self._started:
            return 0
        delivered = int(np.searchsorted(self._times, self.env.now,
                                        side="right"))
        # The cursor can be ahead during the wake instant itself if the
        # accumulated clock landed an ulp below the trace time.
        return max(delivered, self._cursor)

    def on_price_change(self, callback):
        """Call ``callback(market, price)`` on every price change.

        Step listeners pin the market to the per-point drive; prefer
        :meth:`add_watch` for crossing-triggered logic.
        """
        self._price_listeners.append(callback)
        self.rearm()

    def add_watch(self, watch):
        """Register a :class:`PriceWatch` crossing listener."""
        self._watches.append(watch)
        self.rearm()
        return watch

    def on_warning(self, callback):
        """Call ``callback(market, instance, deadline)`` at each warning.

        A passive tap on the warning path: unlike step listeners it
        does not change the drive's wake planning, so shard event taps
        can observe revocation warnings without altering when (or how
        often) the market wakes — which would break bit-identity with
        an untapped run.
        """
        self._warning_listeners.append(callback)

    def set_revoke_callback(self, callback):
        """Install the platform hook run at each forced termination.

        ``callback(instance)`` is invoked when the warning period of a
        still-running instance elapses; the API layer uses it to tear
        down volumes and interfaces.
        """
        self._revoke_callback = callback

    def register(self, instance):
        """Enter a spot instance into the market.

        If the current price already exceeds the bid the instance is
        warned immediately (EC2 would never have started it, but the
        race between allocation latency and a price spike makes this
        reachable — the platform resolves it by immediate revocation).
        """
        if instance.market is not Market.SPOT:
            raise ValueError(f"{instance.id} is not a spot instance")
        if instance.itype is not self.itype or instance.zone != self.zone:
            raise ValueError(f"{instance.id} does not belong to {self.key}")
        self._instances[instance.id] = instance
        if self.current_price() > instance.bid:
            self._warn(instance)
        else:
            bisect.insort(self._bid_index,
                          (instance.bid, next(self._reg_seq), instance.id))
            self.rearm()

    def deregister(self, instance):
        """Remove an instance (terminated or relinquished)."""
        # The bid index keeps its (now stale) entry; the drive prunes
        # stale entries lazily.  A raised threshold can only make the
        # next planned wake early, never late, so no rearm is needed.
        self._instances.pop(instance.id, None)

    def instances(self):
        """Spot instances currently registered in this market."""
        return list(self._instances.values())

    def rearm(self):
        """Recompute the next wake-up after a threshold-set change.

        Cheap when nothing moved: the sleeping driver is only replaced
        when the new plan is strictly earlier than its pending wake-up
        (or when the driver parked because nothing needed waking).  The
        kernel has no interrupts, so a replaced driver is invalidated
        by a generation bump and returns as a no-op when its stale
        timeout fires.
        """
        if not self._started or self._processing or self._cursor >= self._n:
            return
        target = self._next_wake_index()
        if target is None:
            return
        if self._sleep_index is not None and target >= self._sleep_index:
            return
        self._gen += 1
        self._sleep_index = None
        self._parked = False
        self.stats["rearms"] += 1
        self._driver = self.env.process(self._drive(self._gen))

    def drive_stats(self):
        """Drive counters: points, wakes, delivered, rearms, stale_skips."""
        return dict(self.stats)

    # -- internal ------------------------------------------------------

    def _step_mode(self):
        """Whether every trace point must be delivered individually."""
        return bool(self._price_listeners) or self.env.obs is not None

    def _min_active_bid(self):
        """Smallest bid among live registered instances, or ``None``."""
        index = self._bid_index
        while index:
            _bid, _seq, iid = index[0]
            instance = self._instances.get(iid)
            if instance is not None and \
                    instance.state is InstanceState.RUNNING:
                return index[0][0]
            del index[0]
        return None

    def _next_bid_crossing(self, threshold, start):
        """First index >= ``start`` with price above ``threshold``."""
        cached = self._bid_crossing_cache
        if cached is None or cached[0] != threshold:
            cached = (threshold, np.flatnonzero(self._prices > threshold))
            self._bid_crossing_cache = cached
        crossings = cached[1]
        pos = int(np.searchsorted(crossings, start))
        if pos >= len(crossings):
            return None
        return int(crossings[pos])

    def _next_wake_index(self):
        """The next trace index anything cares about, or ``None``."""
        start = self._cursor
        if start >= self._n:
            return None
        if self._step_mode():
            return start
        best = None
        bid = self._min_active_bid()
        if bid is not None:
            best = self._next_bid_crossing(bid, start)
        for watch in self._watches:
            if not watch.active():
                continue
            idx = watch.next_match(self._prices, start)
            if idx is not None and (best is None or idx < best):
                best = idx
        return best

    def _arrival(self, target):
        """The step drive's clock on reaching ``target``.

        Folds the per-point ``clock + (t - clock)`` accumulation over
        any skipped points so the wake timestamp — and every warning
        deadline derived from it — is bit-identical to the step path.
        """
        times = self._times
        clock = self._clock
        if self._exact_chain:
            when = times[target]
            if when <= clock:
                return clock
            # The shortcut needs the clock itself to sit on the chain:
            # either before the first hop (x - 0.0 and 0.0 + x are
            # exact) or exactly on the previously processed point.
            if clock == 0.0 or \
                    (self._cursor > 0 and clock == times[self._cursor - 1]):
                return when
        for k in range(self._cursor, target + 1):
            tk = times[k]
            if tk > clock:
                clock = clock + (tk - clock)
        return clock

    def _skip_elapsed(self):
        """Advance past points whose arrival time has already elapsed.

        A rearm can restart the driver long after it slept over points
        that crossed none of the *then*-active thresholds.  The step
        drive delivered those points at their own times — before the
        threshold-set change that triggered the rearm — so replaying
        them now, under the new thresholds, would act on stale prices.
        They are provably no-ops under the old set; consume them
        silently, keeping the accumulated clock exact.
        """
        now = self.env.now
        while self._cursor < self._n:
            when = self._arrival(self._cursor)
            if when >= now:
                break
            self._clock = when
            self._cursor += 1
            self.stats["stale_skips"] += 1

    def _drive(self, gen):
        """Process: replay the trace, waking only at indexed thresholds."""
        env = self.env
        self._started = True
        self._parked = False
        while self._cursor < self._n:
            self._skip_elapsed()
            target = self._next_wake_index()
            if target is None:
                self._parked = True
                return  # Nothing to wake for; rearm() restarts us.
            if target >= self._n:
                break
            when = self._arrival(target)
            if when > env.now:
                self._sleep_index = target
                self.stats["wakes"] += 1
                yield env.timeout_at(when)
                if self._gen != gen:
                    return  # Superseded by a rearm while sleeping.
                self._sleep_index = None
            self._process_point(target, when)
        obs = env.obs
        if obs is not None:
            obs.emit("spot.drive", type=self.itype.name, zone=self.zone.name,
                     **{k: self.stats[k]
                        for k in ("points", "wakes", "delivered",
                                  "rearms", "stale_skips")})

    def _process_point(self, target, when):
        """Deliver one trace point: emit, notify, and scan for warns."""
        self._processing = True
        try:
            self._cursor = target + 1
            self._clock = when
            price = float(self._prices[target])
            self.stats["delivered"] += 1
            obs = self.env.obs
            if obs is not None:
                obs.emit("spot.price", type=self.itype.name,
                         zone=self.zone.name, price=price)
            for listener in list(self._price_listeners):
                listener(self, price)
            for watch in list(self._watches):
                if watch.matches(price):
                    watch.callback(self, price)
            self._warn_outbid(price)
        finally:
            self._processing = False

    def _warn_outbid(self, price):
        """Warn every live instance whose bid the price crossed.

        The sorted bid index yields the outbid prefix in O(log n + k);
        warnings are issued in registration order (the order the step
        drive's linear scan used), which keeps process creation — and
        therefore event ids — identical.
        """
        index = self._bid_index
        pos = bisect.bisect_left(index, (price,))
        if not pos:
            return
        outbid = index[:pos]
        del index[:pos]
        outbid.sort(key=lambda entry: entry[1])
        for _bid, _seq, iid in outbid:
            instance = self._instances.get(iid)
            if instance is not None and \
                    instance.state is InstanceState.RUNNING:
                self._warn(instance)

    def _warn(self, instance):
        instance._mark_warned()
        deadline = self.env.now + self.warning_period
        obs = self.env.obs
        if obs is not None:
            obs.emit("spot.warning", type=self.itype.name,
                     zone=self.zone.name, instance=instance.id,
                     bid=instance.bid, deadline=deadline)
            obs.metrics.counter("spot_warnings_total",
                                type=self.itype.name,
                                zone=self.zone.name).inc()
        for listener in list(self._warning_listeners):
            listener(self, instance, deadline)
        if not instance.termination_notice.triggered:
            instance.termination_notice.succeed(deadline)
        self.env.process(self._terminate_after_warning(instance))

    def _terminate_after_warning(self, instance):
        yield self.env.timeout(self.warning_period)
        if instance.state is InstanceState.MARKED_FOR_TERMINATION:
            obs = self.env.obs
            if obs is not None:
                obs.emit("spot.termination", type=self.itype.name,
                         zone=self.zone.name, instance=instance.id)
            if self._revoke_callback is not None:
                self._revoke_callback(instance)
            else:
                instance._mark_terminated()
            self.deregister(instance)


class SpotMarketplace:
    """All spot markets of the platform, keyed by (type name, zone name)."""

    def __init__(self, env, warning_period=DEFAULT_WARNING_PERIOD):
        self.env = env
        self.warning_period = warning_period
        self._markets = {}

    def add_market(self, itype, zone, trace):
        key = (itype.name, zone.name)
        if key in self._markets:
            raise ValueError(f"market {key} already exists")
        market = SpotMarket(self.env, itype, zone, trace,
                            warning_period=self.warning_period)
        self._markets[key] = market
        return market

    def market(self, itype, zone):
        """The market for ``(itype, zone)`` (names or objects accepted)."""
        type_name = itype if isinstance(itype, str) else itype.name
        zone_name = zone if isinstance(zone, str) else zone.name
        try:
            return self._markets[(type_name, zone_name)]
        except KeyError:
            raise KeyError(f"no spot market for ({type_name}, {zone_name})") \
                from None

    def drive_stats(self):
        """Aggregate drive counters across every market."""
        totals = {}
        for market in self:
            for name, value in market.drive_stats().items():
                totals[name] = totals.get(name, 0) + value
        return totals

    def __contains__(self, key):
        return key in self._markets

    def __iter__(self):
        return iter(self._markets.values())

    def __len__(self):
        return len(self._markets)

    def keys(self):
        return list(self._markets)
