"""Tests for the billing ledger."""

import numpy as np
import pytest

from repro.cloud.billing import BillingLedger, integrate_trace
from repro.cloud.instance_types import M3_CATALOG
from repro.cloud.instances import Instance, Market
from repro.cloud.spot_market import SpotMarket
from repro.sim.kernel import Environment

from tests.conftest import flat_trace, step_trace

MEDIUM = M3_CATALOG.get("m3.medium")


class TestIntegrateTrace:
    def test_constant_price(self):
        times = np.array([0.0])
        prices = np.array([0.10])
        assert integrate_trace(times, prices, 0, 3600) == \
            pytest.approx(360.0)

    def test_step_change(self):
        times = np.array([0.0, 100.0])
        prices = np.array([1.0, 2.0])
        assert integrate_trace(times, prices, 0, 200) == \
            pytest.approx(100 * 1.0 + 100 * 2.0)

    def test_window_inside_segment(self):
        times = np.array([0.0, 1000.0])
        prices = np.array([1.0, 5.0])
        assert integrate_trace(times, prices, 200, 300) == pytest.approx(100.0)

    def test_window_starting_mid_segment(self):
        times = np.array([0.0, 100.0, 200.0])
        prices = np.array([1.0, 2.0, 4.0])
        assert integrate_trace(times, prices, 150, 250) == \
            pytest.approx(50 * 2.0 + 50 * 4.0)

    def test_empty_window(self):
        times = np.array([0.0])
        prices = np.array([1.0])
        assert integrate_trace(times, prices, 10, 10) == 0.0

    def test_start_before_trace(self):
        times = np.array([100.0])
        prices = np.array([2.0])
        # The first price extends back to the window start.
        assert integrate_trace(times, prices, 0, 200) == pytest.approx(400.0)


class TestOnDemandBilling:
    def test_exact_hours(self, env, zone):
        ledger = BillingLedger(env)
        instance = Instance(env, MEDIUM, zone, Market.ON_DEMAND)
        ledger.open(instance)
        env._now = 7200.0
        assert ledger.close(instance) == pytest.approx(2 * 0.07)

    def test_hourly_rounding(self, env, zone):
        ledger = BillingLedger(env, hourly_rounding=True)
        instance = Instance(env, MEDIUM, zone, Market.ON_DEMAND)
        ledger.open(instance)
        env._now = 3601.0
        assert ledger.close(instance) == pytest.approx(2 * 0.07)

    def test_double_open_rejected(self, env, zone):
        ledger = BillingLedger(env)
        instance = Instance(env, MEDIUM, zone, Market.ON_DEMAND)
        ledger.open(instance)
        with pytest.raises(ValueError):
            ledger.open(instance)

    def test_close_idempotent(self, env, zone):
        ledger = BillingLedger(env)
        instance = Instance(env, MEDIUM, zone, Market.ON_DEMAND)
        ledger.open(instance)
        env._now = 3600.0
        first = ledger.close(instance)
        env._now = 7200.0
        assert ledger.close(instance) == first


class TestSpotBilling:
    def test_charges_market_price_not_bid(self, env, zone):
        market = SpotMarket(env, MEDIUM, zone, flat_trace(0.02))
        ledger = BillingLedger(env)
        instance = Instance(env, MEDIUM, zone, Market.SPOT, bid=0.07)
        ledger.open(instance)
        env._now = 3600.0
        assert ledger.close(instance, market=market) == pytest.approx(0.02)

    def test_integrates_price_changes(self, env, zone):
        market = SpotMarket(env, MEDIUM, zone,
                            step_trace([(0, 0.02), (1800, 0.04)]))
        ledger = BillingLedger(env)
        instance = Instance(env, MEDIUM, zone, Market.SPOT, bid=0.07)
        ledger.open(instance)
        env._now = 3600.0
        assert ledger.close(instance, market=market) == \
            pytest.approx(0.5 * 0.02 + 0.5 * 0.04)

    def test_spot_close_without_market_raises(self, env, zone):
        ledger = BillingLedger(env)
        instance = Instance(env, MEDIUM, zone, Market.SPOT, bid=0.07)
        ledger.open(instance)
        with pytest.raises(ValueError):
            ledger.close(instance)

    def test_accrued_cost_open_record(self, env, zone):
        market = SpotMarket(env, MEDIUM, zone, flat_trace(0.03))
        ledger = BillingLedger(env)
        instance = Instance(env, MEDIUM, zone, Market.SPOT, bid=0.07)
        ledger.open(instance)
        env._now = 7200.0
        assert ledger.accrued_cost(instance, market=market) == \
            pytest.approx(0.06)

    def test_total_cost_filters_by_market(self, env, zone):
        market = SpotMarket(env, MEDIUM, zone, flat_trace(0.02))
        ledger = BillingLedger(env)
        spot = Instance(env, MEDIUM, zone, Market.SPOT, bid=0.07)
        od = Instance(env, MEDIUM, zone, Market.ON_DEMAND)
        ledger.open(spot)
        ledger.open(od)
        env._now = 3600.0
        ledger.close(spot, market=market)
        ledger.close(od)
        assert ledger.total_cost(Market.SPOT) == pytest.approx(0.02)
        assert ledger.total_cost(Market.ON_DEMAND) == pytest.approx(0.07)
        assert ledger.total_cost() == pytest.approx(0.09)
