"""Chaos scenario: the policy simulation under control-plane fire.

One fixed-seed run of the Figure 10-12 stack with a representative
:class:`~repro.faults.FaultPlan` turned on — API error storms, a
throttling window, latency tails, an ``InsufficientInstanceCapacity``
episode, stuck volume detaches, and a scheduled backup-server crash —
while the fleet lives through six weeks of price history.  The run has
two jobs:

* **Zero unhandled exceptions.**  The simulation kernel crashes on any
  process failure nobody absorbs, so merely *finishing* the run proves
  every injected fault was retried, degraded, or parked (the
  robustness contract of ``docs/robustness.md``).
* **Golden fault/retry metrics.**  The injector and the retry layer
  draw from their own named RNG streams, so the counts of injected
  faults, retries, and degradations are bit-stable for a given seed
  and plan.  CI pins them (``repro chaos --check-golden``) to catch a
  silently decoupled injector or retry path.
"""

from repro.faults import (
    BackupCrash,
    CapacityEpisode,
    FaultPlan,
    LatencyTail,
    ThrottleWindow,
)

#: Metric names whose aggregate counts make up the golden digest.
GOLDEN_COUNTERS = (
    "faults_injected_total",
    "retries_total",
    "fault_degradations_total",
)


def default_chaos_plan():
    """The chaos plan CI smokes with: every fault family, modest rates."""
    day = 24 * 3600.0
    return FaultPlan(
        error_rates={
            "start_spot_instance": 0.06,
            "start_on_demand_instance": 0.04,
            "terminate_instance": 0.04,
            "attach_volume": 0.04,
            "detach_volume": 0.04,
            "attach_network_interface": 0.04,
            "detach_network_interface": 0.04,
        },
        terminal_fraction=0.1,
        throttle_windows=(
            ThrottleWindow(start_s=2 * day, end_s=2 * day + 3600.0,
                           rate=0.5),
        ),
        latency_tails={
            "detach_volume": LatencyTail(rate=0.1, multiplier=4.0),
            "start_spot_instance": LatencyTail(rate=0.05, multiplier=2.0),
        },
        capacity_episodes=(
            CapacityEpisode("m3.medium", "us-east-1a",
                            start_s=5 * day, end_s=5 * day + 6 * 3600.0,
                            market="on-demand"),
        ),
        stuck_detach_rate=0.05,
        stuck_detach_extra_s=120.0,
        backup_crashes=(BackupCrash(at_s=10 * day),),
    )


def run_chaos(seed=11, days=42.0, vms=20, policy="4P-COST", plan=None,
              obs=None):
    """Run the chaos scenario; returns ``(summary, digest)``.

    ``digest`` is the golden-comparable part: aggregate fault/retry
    counters plus the headline robustness outcomes.  An unhandled
    exception anywhere in the stack raises out of this function (the
    kernel does not absorb process failures), so a normal return *is*
    the zero-unhandled-exceptions assertion.
    """
    from repro.experiments.scenario import PolicySimulation, ScenarioConfig
    from repro.obs import Observability

    if plan is None:
        plan = default_chaos_plan()
    if obs is None:
        obs = Observability()
    # 4P-COST chases the cheapest (most volatile) markets, so the run
    # sees hundreds of revocations — the traffic the faults land on.
    config = ScenarioConfig(policy=policy, seed=seed, days=days, vms=vms,
                            faults=plan)
    summary = PolicySimulation(config).run(obs=obs)
    digest = chaos_digest(obs, summary)
    return summary, digest


def chaos_digest(obs, summary):
    """Golden-comparable counts extracted from one instrumented run."""
    digest = {}
    for name in GOLDEN_COUNTERS:
        digest[name] = sum(
            int(series.value) for series in obs.metrics.find(name))
    backoff = obs.metrics.find("retry_backoff_seconds")
    digest["retry_backoff_count"] = sum(s.count for s in backoff)
    digest["faults_injected"] = int(summary.get("faults_injected", 0))
    digest["faults_by_kind"] = {
        kind: int(count)
        for kind, count in sorted(summary.get("faults_by_kind", {}).items())}
    digest["state_loss_events"] = int(summary["state_loss_events"])
    digest["migrations"] = int(summary["migrations"])
    return digest


def check_digest(digest, golden):
    """Compare a digest against a golden dict; returns mismatch lines."""
    problems = []
    for key in sorted(set(golden) | set(digest)):
        want, got = golden.get(key), digest.get(key)
        if want != got:
            problems.append(f"{key}: golden {want!r} != observed {got!r}")
    if digest.get("faults_injected_total", 0) <= 0:
        problems.append("faults_injected_total: no faults were injected")
    if digest.get("retries_total", 0) <= 0:
        problems.append("retries_total: the retry layer never engaged")
    return problems
