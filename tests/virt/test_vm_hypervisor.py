"""Tests for nested VMs, hosts, and the nested hypervisor."""

import pytest

from repro.cloud.instance_types import M3_CATALOG
from repro.cloud.instances import Instance, Market
from repro.virt.hypervisor import HostVM, NestedHypervisor
from repro.virt.vm import NestedVM, VMState
from repro.workloads import TpcwWorkload

MEDIUM = M3_CATALOG.get("m3.medium")
LARGE = M3_CATALOG.get("m3.large")
XLARGE = M3_CATALOG.get("m3.xlarge")


def make_host(env, zone, itype=MEDIUM, slots=1):
    instance = Instance(env, itype, zone, Market.ON_DEMAND)
    instance._mark_running()
    return HostVM(env, instance, MEDIUM, slots=slots)


class TestNestedVM:
    def test_workload_drives_memory_model(self, env):
        vm = NestedVM(env, MEDIUM, workload=TpcwWorkload())
        assert vm.memory.write_rate_pages == TpcwWorkload.write_rate_pages
        assert vm.memory.total_bytes < MEDIUM.memory_bytes

    def test_default_memory_without_workload(self, env):
        vm = NestedVM(env, MEDIUM)
        assert vm.memory.total_bytes > 0

    def test_state_log_tracks_transitions(self, env):
        vm = NestedVM(env, MEDIUM)
        vm.set_state(VMState.RUNNING)
        env._now = 100.0
        vm.set_state(VMState.SUSPENDED)
        env._now = 130.0
        vm.set_state(VMState.RUNNING)
        assert vm.downtime_between(0, 200) == pytest.approx(30.0)

    def test_degraded_time_between(self, env):
        vm = NestedVM(env, MEDIUM)
        vm.set_state(VMState.RUNNING)
        env._now = 50.0
        vm.set_state(VMState.RESTORING)
        env._now = 80.0
        vm.set_state(VMState.RUNNING)
        assert vm.degraded_time_between(0, 100) == pytest.approx(30.0)
        assert vm.degraded_time_between(60, 100) == pytest.approx(20.0)

    def test_terminated_vm_rejects_transitions(self, env):
        vm = NestedVM(env, MEDIUM)
        vm.set_state(VMState.TERMINATED)
        with pytest.raises(ValueError):
            vm.set_state(VMState.RUNNING)

    def test_is_running_states(self, env):
        vm = NestedVM(env, MEDIUM)
        assert not vm.is_running  # provisioning
        vm.set_state(VMState.RUNNING)
        assert vm.is_running
        vm.set_state(VMState.RESTORING)
        assert vm.is_running
        vm.set_state(VMState.SUSPENDED)
        assert not vm.is_running


class TestNestedHypervisor:
    def test_slicing_capacity_checks(self, env):
        with pytest.raises(ValueError):
            NestedHypervisor(env, MEDIUM, MEDIUM, slots=2)
        NestedHypervisor(env, LARGE, MEDIUM, slots=2)
        with pytest.raises(ValueError):
            NestedHypervisor(env, LARGE, MEDIUM, slots=3)

    def test_vcpu_limit_enforced(self, env):
        # m3.xlarge has 4 vCPUs and 15 GiB: memory would fit 4 mediums,
        # and vCPUs exactly 4 — 5 must fail on memory *and* vCPUs.
        NestedHypervisor(env, XLARGE, MEDIUM, slots=4)
        with pytest.raises(ValueError):
            NestedHypervisor(env, XLARGE, MEDIUM, slots=5)

    def test_boot_fills_slots(self, env, zone):
        host = make_host(env, zone, LARGE, slots=2)
        vm1, vm2 = NestedVM(env, MEDIUM), NestedVM(env, MEDIUM)
        host.hypervisor.boot(vm1)
        host.hypervisor.boot(vm2)
        assert host.free_slots == 0
        with pytest.raises(ValueError):
            host.hypervisor.boot(NestedVM(env, MEDIUM))

    def test_boot_wrong_type_rejected(self, env, zone):
        host = make_host(env, zone, LARGE, slots=2)
        wrong = NestedVM(env, LARGE)
        with pytest.raises(ValueError):
            host.hypervisor.boot(wrong)

    def test_evict_frees_slot(self, env, zone):
        host = make_host(env, zone)
        vm = NestedVM(env, MEDIUM)
        host.hypervisor.boot(vm)
        host.hypervisor.evict(vm)
        assert host.free_slots == 1

    def test_reservation_blocks_slot(self, env, zone):
        host = make_host(env, zone, LARGE, slots=2)
        host.hypervisor.reserve_slot()
        assert host.free_slots == 1
        host.hypervisor.reserve_slot()
        assert host.free_slots == 0
        with pytest.raises(ValueError):
            host.hypervisor.reserve_slot()

    def test_attach_consumes_reservation(self, env, zone):
        host = make_host(env, zone)
        host.hypervisor.reserve_slot()
        vm = NestedVM(env, MEDIUM)
        host.hypervisor.attach(vm)  # consumes the reservation
        assert host.hypervisor.reserved == 0
        assert vm in host.vms

    def test_cancel_reservation(self, env, zone):
        host = make_host(env, zone)
        host.hypervisor.reserve_slot()
        host.hypervisor.cancel_reservation()
        assert host.free_slots == 1
        host.hypervisor.cancel_reservation()  # never negative
        assert host.hypervisor.reserved == 0

    def test_host_properties_delegate(self, env, zone):
        host = make_host(env, zone, LARGE, slots=2)
        assert host.itype is LARGE
        assert host.zone == zone
        assert host.link.capacity == pytest.approx(LARGE.network_gbps * 125e6)
