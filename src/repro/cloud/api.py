"""The native platform's management API (an EC2-like facade).

All mutating calls are simulation processes: they consume the calibrated
control-plane latency (Table 1) before taking effect, exactly as
SpotCheck's controller experiences EC2.  Call them as::

    instance = yield api.run_instance(itype, zone, Market.SPOT, bid=0.07)

Spot instances are automatically entered into their market; when the
market price rises above their bid they receive a termination notice
(``instance.termination_notice``) and are force-terminated when the
warning period elapses.
"""

from repro.cloud.billing import BillingLedger
from repro.cloud.ebs import Volume
from repro.cloud.errors import BidTooLow, CapacityError, InvalidOperation
from repro.cloud.instances import Instance, InstanceState, Market
from repro.cloud.latency import OperationLatencyModel
from repro.cloud.spot_market import DEFAULT_WARNING_PERIOD, SpotMarketplace
from repro.cloud.vpc import Vpc


class CloudApi:
    """Facade over the simulated native IaaS platform.

    Parameters
    ----------
    env:
        Simulation environment.
    region:
        :class:`~repro.cloud.zones.Region` served by this endpoint.
    catalog:
        Instance-type catalog.
    latency_model:
        Control-plane latency sampler; defaults to one calibrated to
        Table 1 using the environment's ``cloud.latency`` RNG stream.
    warning_period:
        Spot revocation warning in seconds (120 on EC2).
    on_demand_capacity:
        Optional cap on concurrently running on-demand instances, used
        to exercise the platform-out-of-capacity path the hot-spare
        policies guard against.  ``None`` means unlimited.
    hourly_rounding:
        Whether billing rounds runtimes up to whole hours.
    faults:
        Optional :class:`~repro.faults.injector.FaultInjector`.  When
        set, every mutating call first consults the injector (which may
        raise a typed control-plane error) and has its latency run
        through the injector's tail model.  When ``None`` (the
        default) each call pays a single ``is not None`` test and is
        bit-identical to an uninjected platform.
    """

    def __init__(self, env, region, catalog, latency_model=None,
                 warning_period=DEFAULT_WARNING_PERIOD,
                 on_demand_capacity=None, hourly_rounding=False,
                 faults=None):
        self.env = env
        self.region = region
        self.catalog = catalog
        self.latency = latency_model or OperationLatencyModel(
            env.rng.stream("cloud.latency"))
        self.marketplace = SpotMarketplace(env, warning_period=warning_period)
        self.billing = BillingLedger(env, hourly_rounding=hourly_rounding)
        self.vpc = Vpc(env, region)
        self.on_demand_capacity = on_demand_capacity
        self.faults = faults
        self.instances = {}
        self._running_on_demand = 0

    def _op_latency(self, operation):
        """Sample one operation latency, fault-tail adjusted."""
        latency = float(self.latency.sample(operation))
        if self.faults is not None:
            latency = float(self.faults.adjusted_latency(operation, latency))
        return latency

    # -- market installation -------------------------------------------

    def install_market(self, itype, zone, trace):
        """Create the spot market for ``(itype, zone)`` from a trace."""
        market = self.marketplace.add_market(itype, zone, trace)
        market.set_revoke_callback(self._force_terminate)
        return market

    def spot_price(self, itype, zone):
        """Current spot price in the ``(itype, zone)`` market."""
        return self.marketplace.market(itype, zone).current_price()

    # -- instances ------------------------------------------------------

    def run_instance(self, itype, zone, market, bid=None):
        """Process: launch one instance; returns it once RUNNING."""
        return self.env.process(self._run_instance(itype, zone, market, bid))

    def _run_instance(self, itype, zone, market, bid):
        if market is Market.ON_DEMAND:
            if self.faults is not None:
                self.faults.check(
                    "start_on_demand_instance", type_name=itype.name,
                    zone_name=zone.name, market_kind="on-demand")
            if (self.on_demand_capacity is not None
                    and self._running_on_demand >= self.on_demand_capacity):
                raise CapacityError(
                    f"no on-demand capacity for {itype.name} in {zone}")
            operation = "start_on_demand_instance"
        else:
            if self.faults is not None:
                self.faults.check(
                    "start_spot_instance", type_name=itype.name,
                    zone_name=zone.name, market_kind="spot")
            spot_market = self.marketplace.market(itype, zone)
            if bid is None or bid <= 0:
                raise ValueError("spot requests require a positive bid")
            if spot_market.current_price() > bid:
                raise BidTooLow(
                    f"bid {bid} below spot price "
                    f"{spot_market.current_price()} in {spot_market.key}")
            operation = "start_spot_instance"

        instance = Instance(self.env, itype, zone, market, bid=bid)
        # The capacity slot is reserved across the start latency (two
        # concurrent launches must not both squeeze under the cap), but
        # the instance is only registered once it actually starts: any
        # failure or interruption inside the latency window releases
        # the reservation and leaves no phantom PENDING instance
        # behind.
        if market is Market.ON_DEMAND:
            self._running_on_demand += 1
        try:
            yield self.env.timeout(self._op_latency(operation))
        except BaseException:
            if market is Market.ON_DEMAND:
                self._running_on_demand -= 1
            raise

        self.instances[instance.id] = instance
        instance._mark_running()
        self.billing.open(instance)
        if market is Market.SPOT:
            spot_market = self.marketplace.market(itype, zone)
            spot_market.register(instance)
        return instance

    def run_instances(self, itype, zone, market, count, bid=None):
        """Process: launch ``count`` instances as one batched call.

        The fleet-provisioning path (EC2's ``RunInstances`` takes a
        count for exactly this reason): one fault check, one capacity
        reservation, and one control-plane latency cover the whole
        batch, so bulk-booting 10k hosts does not serialize 10k
        launch latencies.  Returns the list of RUNNING instances.
        """
        return self.env.process(
            self._run_instances(itype, zone, market, count, bid))

    def _run_instances(self, itype, zone, market, count, bid):
        if count < 1:
            raise ValueError("count must be at least 1")
        if market is Market.ON_DEMAND:
            if self.faults is not None:
                self.faults.check(
                    "start_on_demand_instance", type_name=itype.name,
                    zone_name=zone.name, market_kind="on-demand")
            if (self.on_demand_capacity is not None
                    and self._running_on_demand + count
                    > self.on_demand_capacity):
                raise CapacityError(
                    f"no on-demand capacity for {count}x {itype.name} "
                    f"in {zone}")
            operation = "start_on_demand_instance"
        else:
            if self.faults is not None:
                self.faults.check(
                    "start_spot_instance", type_name=itype.name,
                    zone_name=zone.name, market_kind="spot")
            spot_market = self.marketplace.market(itype, zone)
            if bid is None or bid <= 0:
                raise ValueError("spot requests require a positive bid")
            if spot_market.current_price() > bid:
                raise BidTooLow(
                    f"bid {bid} below spot price "
                    f"{spot_market.current_price()} in {spot_market.key}")
            operation = "start_spot_instance"

        instances = [Instance(self.env, itype, zone, market, bid=bid)
                     for _ in range(count)]
        # Reserve the whole batch across the latency, with the same
        # rollback discipline as the single-instance path.
        if market is Market.ON_DEMAND:
            self._running_on_demand += count
        try:
            yield self.env.timeout(self._op_latency(operation))
        except BaseException:
            if market is Market.ON_DEMAND:
                self._running_on_demand -= count
            raise

        spot_market = (self.marketplace.market(itype, zone)
                       if market is Market.SPOT else None)
        for instance in instances:
            self.instances[instance.id] = instance
            instance._mark_running()
            self.billing.open(instance)
            if spot_market is not None:
                spot_market.register(instance)
        return instances

    def terminate_instance(self, instance):
        """Process: gracefully relinquish an instance.

        Billing stops at the moment of the call; the instance object
        reaches TERMINATED after the platform's terminate latency.
        """
        return self.env.process(self._terminate_instance(instance))

    def _terminate_instance(self, instance):
        if instance.state is InstanceState.TERMINATED:
            if instance.revoked:
                # A graceful relinquish raced the platform's forced
                # termination and lost; EC2's terminate is idempotent
                # in this case, so the call succeeds as a no-op.
                return instance
            raise InvalidOperation(f"{instance.id} already terminated")
        if self.faults is not None:
            self.faults.check("terminate_instance",
                              type_name=instance.itype.name,
                              zone_name=instance.zone.name,
                              market_kind=instance.market.value)
        self._close_billing(instance)
        if instance.is_spot:
            self.marketplace.market(instance.itype, instance.zone) \
                .deregister(instance)
        yield self.env.timeout(self._op_latency("terminate_instance"))
        if instance.state is not InstanceState.TERMINATED:
            self._release_attachments(instance)
            instance._mark_terminated()
        return instance

    def _force_terminate(self, instance):
        """Platform hook: warning period elapsed on a revoked instance."""
        instance.revoked = True
        self._close_billing(instance)
        self._release_attachments(instance)
        instance._mark_terminated()

    def _release_attachments(self, instance):
        for volume in list(instance.volumes):
            volume._force_detach()
        for eni in list(instance.interfaces):
            eni._detach()

    def _close_billing(self, instance):
        record = self.billing.records.get(instance.id)
        if record is None or record.end is not None:
            return
        if instance.is_spot:
            market = self.marketplace.market(instance.itype, instance.zone)
            self.billing.close(instance, market=market)
        else:
            self.billing.close(instance)
            self._running_on_demand -= 1

    def running_instances(self):
        """All instances currently in a running state."""
        return [i for i in self.instances.values() if i.is_running]

    # -- volumes ---------------------------------------------------------

    def create_volume(self, size_gib, zone):
        """Create an EBS-like volume (control-plane, instantaneous)."""
        return Volume(self.env, size_gib, zone)

    def attach_volume(self, volume, instance):
        """Process: attach and mount a volume (Table 1: ~5.1 s mean)."""
        return self.env.process(self._attach_volume(volume, instance))

    def _attach_volume(self, volume, instance):
        if self.faults is not None:
            self.faults.check("attach_volume")
        volume._begin_attach(instance)
        yield self.env.timeout(self._op_latency("attach_volume"))
        volume._finish_attach()
        return volume

    def detach_volume(self, volume):
        """Process: unmount and detach a volume (Table 1: ~10.3 s mean).

        Detaching a volume that was already force-detached (its host
        was terminated under it mid-operation) is a no-op, matching
        EC2's idempotent detach semantics.
        """
        return self.env.process(self._detach_volume(volume))

    def _detach_volume(self, volume):
        from repro.cloud.ebs import VolumeState
        if volume.state is VolumeState.AVAILABLE:
            return volume
        if self.faults is not None:
            self.faults.check("detach_volume")
        volume._begin_detach()
        yield self.env.timeout(self._op_latency("detach_volume"))
        if volume.state is VolumeState.DETACHING:
            volume._finish_detach()
        return volume

    # -- network interfaces ----------------------------------------------

    def create_interface(self, subnet):
        """Create a detached ENI in ``subnet`` (control-plane, instant)."""
        return self.vpc.create_interface(subnet)

    def attach_interface(self, eni, instance):
        """Process: attach an ENI to an instance (Table 1: ~3.75 s mean)."""
        return self.env.process(self._attach_interface(eni, instance))

    def _attach_interface(self, eni, instance):
        if self.faults is not None:
            self.faults.check("attach_network_interface")
        yield self.env.timeout(self._op_latency("attach_network_interface"))
        eni._attach(instance)
        return eni

    def detach_interface(self, eni):
        """Process: detach an ENI (Table 1: ~3.5 s mean).

        Idempotent, like the volume detach: the interface may already
        have been released by a forced host termination.
        """
        return self.env.process(self._detach_interface(eni))

    def _detach_interface(self, eni):
        if not eni.is_attached:
            return eni
        if self.faults is not None:
            self.faults.check("detach_network_interface")
        yield self.env.timeout(self._op_latency("detach_network_interface"))
        if eni.is_attached:
            eni._detach()
        return eni
