"""The regime-switching spot-price model.

Each market alternates between two regimes:

* **Base regime** — the price hovers well below the on-demand price.
  The log of the spot/on-demand ratio follows a mean-reverting AR(1)
  process, reproducing the paper's observation that "spot prices are
  extremely low on average compared to the equivalent prices for
  on-demand servers" (Fig 6a).

* **Spike regime** — entered as a Poisson process.  The price jumps to
  a heavy-tailed multiple of the on-demand price (the paper's Figure 1
  shows m1.small reaching ~80x its on-demand price) and stays there for
  an exponentially distributed duration, reproducing the "large price
  spikes are the norm" finding (Fig 6b).

Markets are driven by independent RNG streams, which yields the
near-zero cross-market correlations of Figures 6c/6d.
"""

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class MarketParams:
    """Calibration knobs for one market's price process.

    Attributes
    ----------
    on_demand_price:
        Fixed on-demand price, $/hour.
    base_ratio_mean:
        Time-average spot/on-demand ratio in the base regime.
    base_log_volatility:
        Per-step standard deviation of the log-ratio innovation.
    mean_reversion:
        AR(1) coefficient toward the base mean (0 < phi < 1; values
        close to 1 give slowly wandering prices).
    spike_rate_per_hour:
        Poisson rate of entering the spike regime.
    spike_multiple_median:
        Median of the spike price as a multiple of the on-demand price.
    spike_multiple_sigma:
        Log-normal sigma of the spike multiple (heavy tail).
    spike_multiple_max:
        Hard cap on the spike multiple (EC2 capped bids around
        ~100x on-demand; Figure 1 shows spikes to ~83x).
    spike_duration_mean_s:
        Mean dwell time in the spike regime, seconds.
    spike_onset_steps:
        Number of intermediate price points on the way up to a spike's
        peak (demand builds over minutes, not instantaneously — the
        ramps are visible in Figure 1 and are what makes revocation
        *prediction* possible at all).  0 restores step spikes.
    spike_onset_interval_s:
        Spacing of the onset ramp points, seconds.
    change_interval_s:
        Seconds between consecutive base-regime price updates.
    ratio_floor:
        Lower bound on the spot/on-demand ratio (markets never hit 0).
    """

    on_demand_price: float
    base_ratio_mean: float = 0.12
    base_log_volatility: float = 0.05
    mean_reversion: float = 0.98
    spike_rate_per_hour: float = 0.05
    spike_multiple_median: float = 4.0
    spike_multiple_sigma: float = 1.2
    spike_multiple_max: float = 100.0
    spike_duration_mean_s: float = 900.0
    spike_onset_steps: int = 3
    spike_onset_interval_s: float = 60.0
    change_interval_s: float = 300.0
    ratio_floor: float = 0.01

    def __post_init__(self):
        if self.on_demand_price <= 0:
            raise ValueError("on_demand_price must be positive")
        if not 0 < self.base_ratio_mean < 1:
            raise ValueError("base_ratio_mean must lie in (0, 1)")
        if not 0 < self.mean_reversion < 1:
            raise ValueError("mean_reversion must lie in (0, 1)")
        if self.spike_rate_per_hour < 0:
            raise ValueError("spike_rate_per_hour must be non-negative")
        if self.spike_multiple_median <= 1:
            raise ValueError("spike_multiple_median must exceed 1")
        if self.change_interval_s <= 0:
            raise ValueError("change_interval_s must be positive")
        if not 0 < self.ratio_floor < self.base_ratio_mean:
            raise ValueError("ratio_floor must lie in (0, base_ratio_mean)")

    def expected_spikes(self, duration_s):
        """Expected number of spike entries over ``duration_s`` seconds."""
        return self.spike_rate_per_hour * duration_s / 3600.0


class SpotPriceModel:
    """Synthesizes one market's price series from :class:`MarketParams`."""

    def __init__(self, params):
        self.params = params

    def generate(self, rng, duration_s, start_time=0.0):
        """Return (times, prices) arrays covering ``duration_s`` seconds.

        The base series is generated on the regular ``change_interval_s``
        grid; spikes are spliced in at their Poisson arrival times and
        removed at the end of their dwell, so spike edges fall off-grid
        exactly as real EC2 price changes do.
        """
        p = self.params
        steps = max(int(np.ceil(duration_s / p.change_interval_s)), 1)
        grid = start_time + np.arange(steps) * p.change_interval_s

        base_ratios = self._base_series(rng, steps)
        spike_spans = self._spike_spans(rng, duration_s, start_time)

        return self._splice(grid, base_ratios, spike_spans)

    # -- internals -------------------------------------------------------

    def _base_series(self, rng, steps):
        """Mean-reverting AR(1) on the log ratio, floored."""
        p = self.params
        mean_log = np.log(p.base_ratio_mean)
        innovations = rng.normal(0.0, p.base_log_volatility, size=steps)
        # x[t] = mean + phi * (x[t-1] - mean) + eps[t], vectorized with a
        # single-pole IIR filter.
        from scipy.signal import lfilter
        deviations = lfilter([1.0], [1.0, -p.mean_reversion], innovations)
        ratios = np.exp(mean_log + deviations)
        return np.clip(ratios, p.ratio_floor, 0.999)

    def _spike_spans(self, rng, duration_s, start_time):
        """Poisson spike arrivals: list of (start, end, multiple).

        Each spike is expanded into an onset ramp (geometric climb from
        the base level to the peak over ``spike_onset_steps`` points)
        followed by the peak dwell.
        """
        p = self.params
        expected = p.expected_spikes(duration_s)
        if expected == 0:
            return []
        n_spikes = rng.poisson(expected)
        starts = np.sort(rng.uniform(0.0, duration_s, size=n_spikes))
        durations = rng.exponential(p.spike_duration_mean_s, size=n_spikes)
        multiples = np.exp(rng.normal(np.log(p.spike_multiple_median),
                                      p.spike_multiple_sigma, size=n_spikes))
        multiples = np.clip(multiples, 1.05, p.spike_multiple_max)
        spans = []
        for offset, dwell, multiple in zip(starts, durations, multiples):
            begin = start_time + offset
            end = min(begin + max(dwell, 1.0), start_time + duration_s)
            for sub_begin, sub_end, sub_multiple in self._with_onset(
                    begin, end, multiple, start_time):
                if spans and sub_begin < spans[-1][1]:
                    # Overlapping spikes merge; keep the larger multiple.
                    prev_begin, prev_end, prev_mult = spans[-1]
                    spans[-1] = (prev_begin, max(prev_end, sub_end),
                                 max(prev_mult, sub_multiple))
                else:
                    spans.append((sub_begin, sub_end, sub_multiple))
        return spans

    def _with_onset(self, begin, end, multiple, start_time):
        """Split one spike into its ramp sub-spans plus the peak dwell."""
        p = self.params
        steps = p.spike_onset_steps
        if steps <= 0:
            return [(begin, end, multiple)]
        ramp_span = steps * p.spike_onset_interval_s
        ramp_begin = max(begin - ramp_span, start_time)
        if ramp_begin >= begin or end <= begin:
            return [(begin, end, multiple)]
        sub_spans = []
        base = p.base_ratio_mean
        previous = ramp_begin
        for i in range(1, steps + 1):
            fraction = i / (steps + 1.0)
            level = base * (multiple / base) ** fraction
            point = ramp_begin + i * (begin - ramp_begin) / steps
            sub_spans.append((previous, point, max(level, 1e-6)))
            previous = point
        sub_spans.append((begin, end, multiple))
        return sub_spans

    def _splice(self, grid, base_ratios, spike_spans):
        """Merge the base grid and spike edges into one step function."""
        p = self.params
        events = []  # (time, kind, payload); kinds: 0 grid, 1 spike on, 2 off
        for when, ratio in zip(grid, base_ratios):
            events.append((float(when), 0, float(ratio)))
        for begin, end, multiple in spike_spans:
            events.append((float(begin), 1, float(multiple)))
            events.append((float(end), 2, None))
        events.sort(key=lambda item: (item[0], item[1]))

        times, prices = [], []
        current_base = float(base_ratios[0] * p.on_demand_price)
        spike_depth = 0
        spike_price = None
        for when, kind, payload in events:
            if kind == 0:
                current_base = payload * p.on_demand_price
                effective = spike_price if spike_depth > 0 else current_base
            elif kind == 1:
                spike_depth += 1
                spike_price = payload * p.on_demand_price
                effective = spike_price
            else:
                spike_depth = max(spike_depth - 1, 0)
                if spike_depth == 0:
                    spike_price = None
                effective = spike_price if spike_depth > 0 else current_base
            if times and when == times[-1]:
                prices[-1] = effective
            else:
                times.append(when)
                prices.append(effective)
        return np.asarray(times), np.asarray(prices)
