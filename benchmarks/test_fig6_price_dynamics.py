"""Figure 6: price dynamics across spot markets.

Paper shapes:
(a) availability CDFs with the knee below the on-demand price; direct
    spot availability between ~90% and ~99.97% at bid = on-demand;
    mean prices far below on-demand.
(b) hourly percentage price jumps spanning orders of magnitude.
(c) near-zero price correlation across availability zones.
(d) near-zero price correlation across instance types.
"""

import numpy as np

from repro.experiments import fig6
from repro.experiments.reporting import format_table

SIX_MONTHS_S = 183 * 24 * 3600.0


def test_fig6a_availability_cdf(benchmark, report):
    curves = benchmark.pedantic(
        lambda: fig6.availability_cdfs(seed=6, duration_s=SIX_MONTHS_S),
        rounds=1, iterations=1)

    rows = []
    for name, curve in curves.items():
        availability = curve["availability_at_od"]
        assert 0.90 <= availability <= 0.9999
        assert curve["mean_ratio"] < 0.5  # "extremely low on average"
        ratios, cdf = curve["ratios"], curve["availability"]
        knee_ratio = float(ratios[np.searchsorted(cdf, 0.9)])
        assert knee_ratio < 1.0  # knee below the on-demand price
        rows.append((name, f"{availability:.4f}",
                     f"{curve['mean_ratio']:.3f}", f"{knee_ratio:.2f}"))
    text = format_table(
        ["type", "availability@od-bid", "mean spot/od ratio",
         "90%-avail knee (bid/od)"],
        rows, title="Figure 6a — availability CDF of spot/on-demand ratio")
    report("fig6a_availability_cdf", text)


def test_fig6b_price_jumps(benchmark, report):
    jumps = benchmark.pedantic(
        lambda: fig6.price_jumps(seed=6, duration_s=SIX_MONTHS_S),
        rounds=1, iterations=1)

    assert jumps["max_increase_pct"] > 1000.0      # thousands of percent
    assert jumps["orders_of_magnitude"] >= 3.0      # log tail, Fig 6b
    increases = jumps["increases_pct"]
    decreases = jumps["decreases_pct"]
    assert len(increases) > 50 and len(decreases) > 50

    quantiles = (0.5, 0.9, 0.99, 1.0)
    rows = [(f"p{int(q * 100)}",
             f"{np.quantile(increases, q):.1f}",
             f"{np.quantile(decreases, q):.1f}") for q in quantiles]
    text = format_table(
        ["quantile", "increase %", "decrease %"], rows,
        title=("Figure 6b — hourly percentage price jumps (m3.large, "
               f"max increase {jumps['max_increase_pct']:.0f}%)"))
    report("fig6b_price_jumps", text)


def test_fig6c_zone_correlations(benchmark, report):
    result = benchmark.pedantic(
        lambda: fig6.zone_correlations(
            seed=6, zones=18, duration_s=SIX_MONTHS_S / 3),
        rounds=1, iterations=1)
    matrix = np.asarray(result["matrix"])
    assert matrix.shape == (18, 18)
    assert result["max_offdiag"] < 0.25  # uncorrelated across zones
    text = _matrix_summary("Figure 6c — price correlation across 18 zones",
                           matrix)
    report("fig6c_zone_correlations", text)


def test_fig6d_type_correlations(benchmark, report):
    result = benchmark.pedantic(
        lambda: fig6.type_correlations(
            seed=6, duration_s=SIX_MONTHS_S / 3, max_types=15),
        rounds=1, iterations=1)
    matrix = np.asarray(result["matrix"])
    assert matrix.shape == (15, 15)
    assert result["max_offdiag"] < 0.25  # uncorrelated across types
    text = _matrix_summary(
        "Figure 6d — price correlation across 15 instance types", matrix)
    report("fig6d_type_correlations", text)


def _matrix_summary(title, matrix):
    off = matrix[~np.eye(len(matrix), dtype=bool)]
    rows = [
        ("diagonal", "1.0"),
        ("off-diagonal mean", f"{off.mean():+.4f}"),
        ("off-diagonal |max|", f"{np.abs(off).max():.4f}"),
        ("off-diagonal std", f"{off.std():.4f}"),
    ]
    return format_table(["statistic", "value"], rows, title=title)
