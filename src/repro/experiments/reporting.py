"""Plain-text rendering of experiment results (paper-style tables)."""


def format_table(headers, rows, title=None):
    """Render a list-of-rows table with aligned columns."""
    columns = [str(h) for h in headers]
    text_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in columns]
    for row in text_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(columns, widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in text_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _cell(value):
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) < 1e-3 or abs(value) >= 1e5:
            return f"{value:.3g}"
        return f"{value:.4f}".rstrip("0").rstrip(".")
    return str(value)


def format_series(xs, ys, x_label, y_label, title=None, fmt="{:.4g}"):
    """Render a two-column series."""
    rows = [(fmt.format(x) if isinstance(x, float) else x,
             fmt.format(y) if isinstance(y, float) else y)
            for x, y in zip(xs, ys)]
    return format_table([x_label, y_label], rows, title=title)
