"""Tests for event primitives."""

import pytest

from repro.sim import Environment, SimulationError
from repro.sim.events import AllOf, AnyOf, Timeout


class TestEvent:
    def test_pending_by_default(self, env):
        event = env.event()
        assert not event.triggered
        assert not event.processed

    def test_value_before_trigger_raises(self, env):
        with pytest.raises(SimulationError):
            env.event().value

    def test_succeed_carries_value(self, env):
        event = env.event().succeed(42)
        assert event.triggered
        assert event.ok
        assert event.value == 42

    def test_double_trigger_raises(self, env):
        event = env.event().succeed()
        with pytest.raises(SimulationError):
            event.succeed()

    def test_fail_requires_exception(self, env):
        with pytest.raises(TypeError):
            env.event().fail("not an exception")

    def test_fail_carries_exception(self, env):
        error = ValueError("x")
        event = env.event().fail(error)
        assert event.triggered
        assert not event.ok
        assert event.value is error

    def test_callbacks_run_on_processing(self, env):
        event = env.event()
        seen = []
        event.callbacks.append(seen.append)
        event.succeed("payload")
        env.run()
        assert seen == [event]
        assert event.processed


class TestTimeout:
    def test_negative_delay_rejected(self, env):
        with pytest.raises(ValueError):
            Timeout(env, -1.0)

    def test_zero_delay_allowed(self, env):
        fired = []
        env.timeout(0.0).callbacks.append(fired.append)
        env.run()
        assert fired and env.now == 0.0

    def test_timeout_value_passthrough(self, env):
        def proc():
            got = yield env.timeout(1.0, value="hello")
            return got
        assert env.run(until=env.process(proc())) == "hello"


class TestAllOf:
    def test_waits_for_all(self, env):
        t1, t2 = env.timeout(1.0), env.timeout(5.0)
        def proc():
            yield env.all_of([t1, t2])
            return env.now
        assert env.run(until=env.process(proc())) == 5.0

    def test_empty_succeeds_immediately(self, env):
        condition = AllOf(env, [])
        assert condition.triggered

    def test_collects_values(self, env):
        t1 = env.timeout(1.0, value="a")
        t2 = env.timeout(2.0, value="b")
        def proc():
            values = yield env.all_of([t1, t2])
            return values
        values = env.run(until=env.process(proc()))
        assert values[t1] == "a" and values[t2] == "b"

    def test_propagates_failure(self, env):
        bad = env.event()
        def failer():
            yield env.timeout(1.0)
            bad.fail(RuntimeError("inner"))
        env.process(failer())
        def proc():
            yield env.all_of([bad, env.timeout(10.0)])
        process = env.process(proc())
        with pytest.raises(RuntimeError):
            env.run(until=process)


class TestAnyOf:
    def test_fires_on_first(self, env):
        def proc():
            yield env.any_of([env.timeout(4.0), env.timeout(1.0)])
            return env.now
        assert env.run(until=env.process(proc())) == 1.0

    def test_pre_processed_event_counts(self, env):
        done = env.event().succeed("early")
        env.run()  # process the event
        condition = AnyOf(env, [done, env.event()])
        assert condition.triggered
