"""Generator-based simulation processes."""

from repro.sim.errors import Interrupt, SimulationError
from repro.sim.events import Event


class Process(Event):
    """A coroutine driven by the event loop.

    A process wraps a generator that yields events.  Each time a yielded
    event triggers, the kernel resumes the generator with the event's
    value (or throws the event's exception into it).  The process itself
    is an event that triggers when the generator returns, carrying the
    generator's return value — so processes can wait on each other.
    """

    __slots__ = ("_generator", "_waiting_on")

    def __init__(self, env, generator):
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self._waiting_on = None
        # Bootstrap: resume the generator at the current time.
        init = Event(env)
        init._ok = True
        init._value = None
        init.callbacks.append(self._resume)
        env.schedule(init, priority=0)

    @property
    def is_alive(self):
        """True while the wrapped generator has not finished."""
        return not self.triggered

    def interrupt(self, cause=None):
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a finished process is an error; interrupting a
        process that is waiting on an event detaches it from that event
        first.
        """
        if self.triggered:
            raise SimulationError("cannot interrupt a finished process")
        interrupt_event = Event(self.env)
        interrupt_event._ok = False
        interrupt_event._value = Interrupt(cause)
        interrupt_event._defused = True
        interrupt_event.callbacks.append(self._resume)
        self.env.schedule(interrupt_event, priority=0)

    def _resume(self, event):
        if self.triggered:
            return  # Process finished before a queued interrupt landed.
        # Detach from whatever we were waiting on if this is an interrupt.
        if self._waiting_on is not None and self._waiting_on is not event:
            waited = self._waiting_on
            if waited.callbacks is not None and self._resume in waited.callbacks:
                waited.callbacks.remove(self._resume)
        self._waiting_on = None

        self.env._active_process = self
        try:
            if event._ok:
                target = self._generator.send(event._value)
            else:
                # This process consumes the failure by having it thrown
                # into its generator (it may catch it and continue).
                event._defused = True
                target = self._generator.throw(event._value)
        except StopIteration as stop:
            self.env._active_process = None
            self.succeed(stop.value)
            return
        except BaseException as exc:
            # The process dies; its own event carries the failure to
            # whoever waits on it (or crashes the loop if nobody does).
            self.env._active_process = None
            self.fail(exc)
            return
        finally:
            self.env._active_process = None

        if not isinstance(target, Event):
            raise SimulationError(
                f"process yielded non-event {target!r}; yield events only")
        if target.callbacks is None:
            # Already processed: resume immediately at the current time.
            immediate = Event(self.env)
            immediate._ok = target._ok
            immediate._value = target._value
            immediate.callbacks.append(self._resume)
            self.env.schedule(immediate, priority=0)
            self._waiting_on = immediate
        else:
            target.callbacks.append(self._resume)
            self._waiting_on = target
