"""Controller-level tests for the greedy / stability placement paths."""

import pytest

from repro.cloud.instances import Market
from repro.core.config import SpotCheckConfig
from repro.virt.vm import VMState
from repro.workloads import TpcwWorkload

from tests.core.test_controller import build, launch_fleet, quiet_trace

DAY = 24 * 3600.0


def cheap_large_traces():
    """m3.large priced below two m3.mediums per slot."""
    return {
        # medium at 0.03/slot...
        "m3.medium": quiet_trace("m3.medium", 0.07, base_ratio=0.43),
        # ...large at 0.014 -> 0.007/slot after slicing.
        "m3.large": quiet_trace("m3.large", 0.14, base_ratio=0.10),
    }


class TestGreedyPlacement:
    def test_greedy_picks_arbitrage_slices(self):
        env, api, controller = build(
            SpotCheckConfig(allocation_policy="greedy"),
            traces=cheap_large_traces())
        vms = launch_fleet(env, controller, count=2)
        # Both VMs end up sliced onto one cheap m3.large host.
        assert all(vm.host.itype.name == "m3.large" for vm in vms)
        assert vms[0].host is vms[1].host
        assert all(vm.state is VMState.RUNNING for vm in vms)

    def test_greedy_pool_created_lazily(self):
        env, api, controller = build(
            SpotCheckConfig(allocation_policy="greedy"),
            traces=cheap_large_traces())
        launch_fleet(env, controller, count=1)
        keys = set(controller.pools.spot_pools)
        assert ("spot", "m3.large", "us-east-1a") in keys

    def test_greedy_survives_revocation(self):
        from tests.core.test_controller import spiky_trace, SPIKE_START
        traces = {
            "m3.medium": quiet_trace("m3.medium", 0.07, base_ratio=0.43),
            "m3.large": spiky_trace("m3.large", 0.14, base_ratio=0.10),
        }
        env, api, controller = build(
            SpotCheckConfig(allocation_policy="greedy",
                            return_to_spot=False), traces=traces)
        vms = launch_fleet(env, controller, count=2)
        env.run(until=SPIKE_START + 600.0)
        assert all(vm.state is VMState.RUNNING for vm in vms)
        assert all(vm.host.instance.market is Market.ON_DEMAND
                   for vm in vms)
        assert controller.ledger.state_loss_events() == []


class TestStabilityPlacement:
    def test_stability_avoids_volatile_market(self):
        from tests.conftest import step_trace
        from repro.traces.archive import PriceTrace
        # m3.medium flaps; m3.large is rock-steady (and sliceable).
        volatile = step_trace(
            [(i * 600.0, 0.01 + 0.02 * (i % 2)) for i in range(1000)],
            type_name="m3.medium")
        steady = PriceTrace([0.0, 10 * DAY], [0.02, 0.02], "m3.large",
                            "us-east-1a", 0.14)
        env, api, controller = build(
            SpotCheckConfig(allocation_policy="stability"),
            traces={"m3.medium": volatile, "m3.large": steady})
        env.run(until=2 * DAY)  # accumulate price history first
        vms = launch_fleet(env, controller, count=2)
        assert all(vm.host.itype.name == "m3.large" for vm in vms)
