"""Robustness: the headline results hold across price-history seeds.

The paper had one six-month history; a simulation can check that the
headline claims are not an artifact of any particular synthetic
history.  Three independent seeds, 1P-M and 4P-ED, shorter span.
"""

import numpy as np

from repro.experiments.policy_grid import run_cell, shared_archive
from repro.experiments.reporting import format_table

SEEDS = (101, 202, 303)
DAYS = 60.0
VMS = 24


def sweep():
    rows = []
    for seed in SEEDS:
        archive = shared_archive(seed, DAYS)
        one = run_cell("1P-M", "spotcheck-lazy", seed=seed, days=DAYS,
                       vms=VMS, archive=archive)
        four = run_cell("4P-ED", "spotcheck-lazy", seed=seed, days=DAYS,
                        vms=VMS, archive=archive)
        rows.append({"seed": seed, "1P-M": one, "4P-ED": four})
    return rows


def test_seed_sensitivity(benchmark, report):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    for row in rows:
        for policy in ("1P-M", "4P-ED"):
            summary = row[policy]
            # The claims that must hold for EVERY seed:
            assert summary["cost_per_vm_hour"] < 0.07 / 2.5  # big saving
            assert summary["availability"] > 0.999
            assert summary["state_loss_events"] == 0
        # 1P-M keeps its five-nines class on the stable market.
        assert row["1P-M"]["availability"] > 0.9999
        # Four pools never lose the whole fleet at once.
        assert row["4P-ED"]["max_concurrent_revocation"] <= VMS // 4 + 1

    one_costs = [row["1P-M"]["cost_per_vm_hour"] for row in rows]
    spread = (max(one_costs) - min(one_costs)) / np.mean(one_costs)
    assert spread < 0.5  # seeds agree on the cost magnitude

    table_rows = []
    for row in rows:
        table_rows.append((
            row["seed"],
            f"${row['1P-M']['cost_per_vm_hour']:.4f}",
            f"{100 * row['1P-M']['availability']:.4f}%",
            f"${row['4P-ED']['cost_per_vm_hour']:.4f}",
            f"{100 * row['4P-ED']['availability']:.4f}%",
            row["4P-ED"]["max_concurrent_revocation"],
        ))
    text = format_table(
        ["seed", "1P-M cost", "1P-M avail", "4P-ED cost", "4P-ED avail",
         "4P-ED max storm"],
        table_rows,
        title=(f"Seed sensitivity — headline results across three "
               f"independent price histories ({DAYS:.0f} days, "
               f"{VMS} VMs)"))
    report("seed_sensitivity", text)
