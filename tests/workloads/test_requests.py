"""Tests for the request-level SLA analyzer."""

import pytest

from repro.cloud.instance_types import M3_CATALOG
from repro.virt.vm import NestedVM, VMState
from repro.workloads import Conditions, TpcwWorkload
from repro.workloads.requests import (
    ConditionSegment,
    RequestAnalyzer,
    RequestStats,
    conditions_for_state,
    timeline_from_vm,
)


@pytest.fixture
def analyzer():
    return RequestAnalyzer(TpcwWorkload())


def normal_segment(start, end):
    return ConditionSegment(start, end, Conditions(checkpointing=True))


def restore_segment(start, end):
    return ConditionSegment(
        start, end, Conditions(restoring=True, restore_concurrency=1))


def down_segment(start, end):
    return ConditionSegment(start, end, Conditions(), down=True)


class TestAnalyze:
    def test_steady_state_latency(self, analyzer):
        stats = analyzer.analyze([normal_segment(0, 3600)], rate_rps=10.0)
        assert stats.total_requests == pytest.approx(36000)
        assert stats.error_rate == 0.0
        # Mean at the checkpointing-on response (~33.3 ms); the median
        # of the lognormal sits slightly below the mean.
        assert stats.mean_ms == pytest.approx(33.3, abs=0.2)
        assert stats.p50_ms < stats.mean_ms
        assert stats.p50_ms < stats.p95_ms < stats.p99_ms

    def test_downtime_becomes_errors(self, analyzer):
        stats = analyzer.analyze(
            [normal_segment(0, 990), down_segment(990, 1000)], rate_rps=5.0)
        assert stats.error_rate == pytest.approx(0.01)
        assert stats.failed_requests == pytest.approx(50.0)

    def test_restore_window_fattens_tail(self, analyzer):
        quiet = analyzer.analyze([normal_segment(0, 1000)], rate_rps=10.0)
        disturbed = analyzer.analyze(
            [normal_segment(0, 900), restore_segment(900, 1000)],
            rate_rps=10.0)
        assert disturbed.p99_ms > quiet.p99_ms
        # 10% of requests at ~60 ms: the p95 moves, the p50 barely.
        assert disturbed.p50_ms == pytest.approx(quiet.p50_ms, rel=0.10)

    def test_sla_violations_counted(self, analyzer):
        stats = analyzer.analyze(
            [normal_segment(0, 1000)], rate_rps=1.0, sla_threshold_ms=29.0)
        # Threshold below the mean: a large share violates.
        assert stats.sla_violation_rate > 0.3
        relaxed = analyzer.analyze(
            [normal_segment(0, 1000)], rate_rps=1.0, sla_threshold_ms=500.0)
        assert relaxed.sla_violation_rate < 0.01

    def test_all_down_is_nan_latency(self, analyzer):
        stats = analyzer.analyze([down_segment(0, 100)], rate_rps=1.0)
        assert stats.error_rate == 1.0

    def test_validation(self, analyzer):
        with pytest.raises(ValueError):
            analyzer.analyze([normal_segment(0, 10)], rate_rps=0.0)
        with pytest.raises(ValueError):
            RequestAnalyzer(TpcwWorkload(), latency_cov=0.0)


class TestTimeline:
    def test_vm_state_log_to_segments(self, env):
        vm = NestedVM(env, M3_CATALOG.get("m3.medium"),
                      workload=TpcwWorkload())
        vm.set_state(VMState.RUNNING)
        env._now = 100.0
        vm.set_state(VMState.SUSPENDED)
        env._now = 123.0
        vm.set_state(VMState.RESTORING)
        env._now = 180.0
        vm.set_state(VMState.RUNNING)
        segments = timeline_from_vm(vm, 0.0, 1000.0)
        kinds = [(s.down, s.conditions.restoring, round(s.duration))
                 for s in segments if s.duration > 0]
        assert (True, False, 23) in kinds     # the suspend window
        assert (False, True, 57) in kinds     # the restore window
        assert sum(s.duration for s in segments) == pytest.approx(1000.0)

    def test_analyze_vm_end_to_end(self, env):
        vm = NestedVM(env, M3_CATALOG.get("m3.medium"),
                      workload=TpcwWorkload())
        vm.set_state(VMState.RUNNING)
        env._now = 3600.0
        analyzer = RequestAnalyzer(TpcwWorkload())
        stats = analyzer.analyze_vm(vm, 0.0, 3600.0, rate_rps=20.0)
        assert stats.total_requests == pytest.approx(72000)
        assert stats.error_rate == 0.0

    def test_migrating_degrades_even_without_checkpointing(self, env):
        # Pre-copy competes with the guest for I/O regardless of the
        # steady-state checkpointing knob: a MIGRATING window must map
        # to degraded conditions even with the flag off.
        vm = NestedVM(env, M3_CATALOG.get("m3.medium"),
                      workload=TpcwWorkload())
        vm.set_state(VMState.RUNNING)
        env._now = 100.0
        vm.set_state(VMState.MIGRATING)
        env._now = 160.0
        vm.set_state(VMState.RUNNING)
        segments = timeline_from_vm(vm, 0.0, 200.0,
                                    checkpointing_while_running=False)
        migrating = [s for s in segments
                     if s.start == 100.0 and s.end == 160.0]
        assert len(migrating) == 1
        assert not migrating[0].down
        assert migrating[0].conditions.checkpointing
        # The surrounding RUNNING windows honour the flag.
        running = [s for s in segments if s.start in (0.0, 160.0)]
        assert all(not s.conditions.checkpointing for s in running)

    def test_pure_downtime_vm(self, env):
        # A VM that never comes up: every request fails, latency nan.
        import math
        vm = NestedVM(env, M3_CATALOG.get("m3.medium"),
                      workload=TpcwWorkload())
        env._now = 500.0
        analyzer = RequestAnalyzer(TpcwWorkload())
        stats = analyzer.analyze_vm(vm, 0.0, 500.0, rate_rps=4.0)
        assert stats.error_rate == 1.0
        assert stats.failed_requests == pytest.approx(2000.0)
        assert math.isnan(stats.p50_ms) and math.isnan(stats.p99_ms)


class TestConditionsForState:
    def test_down_states_map_to_none(self):
        for state in (VMState.SUSPENDED, VMState.PROVISIONING,
                      VMState.TERMINATED):
            assert conditions_for_state(state) is None
            assert conditions_for_state(
                state, checkpointing_while_running=False) is None

    def test_migrating_always_checkpointing(self):
        for flag in (True, False):
            conditions = conditions_for_state(
                VMState.MIGRATING, checkpointing_while_running=flag)
            assert conditions.checkpointing

    def test_running_honours_flag(self):
        assert conditions_for_state(VMState.RUNNING).checkpointing
        assert not conditions_for_state(
            VMState.RUNNING,
            checkpointing_while_running=False).checkpointing

    def test_restoring_is_demand_paging(self):
        conditions = conditions_for_state(VMState.RESTORING)
        assert conditions.restoring
        assert conditions.restore_concurrency == 1


class TestQuantileGrid:
    def test_heavy_tail_not_clamped(self, analyzer):
        # latency_cov=3.0: sigma = sqrt(ln 10), true p99 is ~10.8x the
        # mean.  The old fixed grid topped out at 6x the largest mean
        # and silently clamped; the adaptive grid must not.
        import math
        from scipy.special import ndtri
        heavy = RequestAnalyzer(TpcwWorkload(), latency_cov=3.0)
        stats = heavy.analyze([normal_segment(0, 1000)], rate_rps=10.0)
        sigma2 = math.log(1.0 + 3.0 ** 2)
        mu = math.log(stats.mean_ms) - sigma2 / 2.0
        want_p99 = math.exp(mu + math.sqrt(sigma2) * ndtri(0.99))
        assert stats.p99_ms == pytest.approx(want_p99, rel=0.01)
        assert stats.p99_ms > 6.0 * stats.mean_ms

    def test_mixture_spread_covered(self, analyzer):
        # Mixing a 29 ms and a 60 ms segment: the grid spans both the
        # fast component's floor and the slow component's tail.
        stats = analyzer.analyze(
            [normal_segment(0, 500), restore_segment(500, 1000)],
            rate_rps=10.0)
        assert stats.p50_ms < 60.0 < stats.p99_ms


class TestRequestStats:
    def test_error_rate_zero_division(self):
        stats = RequestStats(
            total_requests=0.0, failed_requests=0.0, mean_ms=0.0,
            p50_ms=0.0, p95_ms=0.0, p99_ms=0.0, sla_threshold_ms=100.0,
            sla_violation_rate=0.0)
        assert stats.error_rate == 0.0
