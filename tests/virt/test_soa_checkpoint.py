"""SoA cohort core: struct-of-arrays scheduling vs per-VM streams.

The heterogeneous-fleet contract: the struct-of-arrays scheduler must
reproduce the per-VM steady-state streams bit-for-bit — same wake
times, same credited flush totals, including churn, parked members,
plan divergence, and defer-mode settlement — while serving every
plan-group from one vectorized runner.
"""

import pytest

from repro.backup.server import BackupServer
from repro.cloud.instance_types import M3_CATALOG
from repro.sim.kernel import Environment
from repro.virt.migration.checkpoint import CheckpointConfig, CheckpointStream
from repro.virt.migration.soa import SoaCheckpointScheduler
from repro.virt.testbed import MicroTestbed
from repro.virt.vm import NestedVM
from repro.workloads import SpecJbbWorkload, TpcwWorkload

MEDIUM = M3_CATALOG.get("m3.medium")


def run_testbed(vm_count, scheduler, duration_s=1800.0,
                workload=TpcwWorkload, checkpoint_config=None):
    env = Environment(seed=3)
    testbed = MicroTestbed(env, vm_count=vm_count,
                           workload_factory=workload,
                           checkpoint_config=checkpoint_config,
                           scheduler=scheduler)
    result = testbed.run_steady(duration_s)
    return env, testbed, result


def per_vm_rates(testbed, result):
    """Flush rates in VM creation order (ids are process-global, so
    the two testbeds' VMs must be matched positionally)."""
    return [result["per_vm_bps"][vm.id] for vm in testbed.vms]


class TestEquivalence:
    @pytest.mark.parametrize("vm_count", [1, 10, 40])
    def test_bit_identical_to_per_vm_streams(self, vm_count):
        _, bed_a, per_vm = run_testbed(vm_count, scheduler="per-vm")
        _, bed_b, soa = run_testbed(vm_count, scheduler="soa")
        assert per_vm_rates(bed_b, soa) == per_vm_rates(bed_a, per_vm)
        assert soa["aggregate_bps"] == per_vm["aggregate_bps"]

    @pytest.mark.parametrize("vm_count", [10, 40])
    def test_bit_identical_to_group_scheduler(self, vm_count):
        _, bed_a, grouped = run_testbed(vm_count, scheduler="group")
        _, bed_b, soa = run_testbed(vm_count, scheduler="soa")
        assert per_vm_rates(bed_b, soa) == per_vm_rates(bed_a, grouped)

    @pytest.mark.parametrize("workload", [TpcwWorkload, SpecJbbWorkload])
    def test_bit_identical_across_workloads(self, workload):
        _, bed_a, per_vm = run_testbed(10, scheduler="per-vm",
                                       workload=workload)
        _, bed_b, soa = run_testbed(10, scheduler="soa", workload=workload)
        assert per_vm_rates(bed_b, soa) == per_vm_rates(bed_a, per_vm)

    def test_bit_identical_under_tight_throttle(self):
        config = CheckpointConfig(stream_bandwidth_bps=6e6,
                                  commit_bandwidth_bps=1.5e6)
        _, bed_a, per_vm = run_testbed(10, scheduler="per-vm",
                                       checkpoint_config=config)
        _, bed_b, soa = run_testbed(10, scheduler="soa",
                                    checkpoint_config=config)
        assert per_vm_rates(bed_b, soa) == per_vm_rates(bed_a, per_vm)

    def test_store_commits_match_per_vm_mode(self):
        _, per_vm_bed, _ = run_testbed(5, scheduler="per-vm")
        _, soa_bed, _ = run_testbed(5, scheduler="soa")
        for vm_a, vm_b in zip(per_vm_bed.vms, soa_bed.vms):
            expected = per_vm_bed.server.store.image(vm_a.id)
            actual = soa_bed.server.store.image(vm_b.id)
            assert actual.commits == expected.commits

    def test_batching_elides_kernel_events(self):
        env_per_vm, _, _ = run_testbed(40, scheduler="per-vm")
        env_soa, _, _ = run_testbed(40, scheduler="soa")
        assert env_soa.events_processed * 5 < env_per_vm.events_processed


def make_scheduler(env, defer=False):
    server = BackupServer(env)
    return SoaCheckpointScheduler(env, server.ingest,
                                  defer_accounting=defer)


def make_stream(env, workload=TpcwWorkload):
    vm = NestedVM(env, MEDIUM, workload=workload())
    return vm, CheckpointStream(vm.memory, CheckpointConfig())


class _RatedMemory:
    """Pure-rate test double: dirty is linear in the interval.

    ``dirty_bytes`` is a pure function of the interval, so per-VM
    streams (wake-time evaluation) and plan capture (sleep-time) agree
    exactly.  Deliberately not a ``MemoryModel`` so the plan cache is
    bypassed.
    """

    def __init__(self, rate_bps=2e6, interval_s=20.0):
        self.rate_bps = rate_bps
        self.base_interval_s = interval_s
        self.total_bytes = 4e9

    def interval_for_dirty_bytes(self, budget_bytes):
        return self.base_interval_s

    def dirty_bytes(self, interval_s):
        return self.rate_bps * min(interval_s, 3600.0)


class _SteppedMemory(_RatedMemory):
    """The steady interval jumps to ``new_interval_s`` at ``switch_t``."""

    def __init__(self, env, rate_bps=2e6, base_interval_s=20.0,
                 switch_t=100.0, new_interval_s=None):
        super().__init__(rate_bps=rate_bps, interval_s=base_interval_s)
        self.env = env
        self.switch_t = switch_t
        self.new_interval_s = (new_interval_s if new_interval_s is not None
                               else 2 * base_interval_s)

    def interval_for_dirty_bytes(self, budget_bytes):
        if self.env.now < self.switch_t:
            return self.base_interval_s
        return self.new_interval_s


class _ParkingMemory(_RatedMemory):
    """Parked (infinite interval) inside [park_t, unpark_t)."""

    def __init__(self, env, rate_bps=2e6, interval_s=20.0,
                 park_t=50.0, unpark_t=4000.0):
        super().__init__(rate_bps=rate_bps, interval_s=interval_s)
        self.env = env
        self.park_t = park_t
        self.unpark_t = unpark_t

    def interval_for_dirty_bytes(self, budget_bytes):
        if self.park_t <= self.env.now < self.unpark_t:
            return float("inf")
        return self.base_interval_s


def run_per_vm(env, memories, duration_s, drain_s=30.0):
    """Reference: one CheckpointStream process per memory double."""
    server = BackupServer(env)
    flushed = {}
    stops = []
    for index, memory in enumerate(memories):
        stream = CheckpointStream(memory, CheckpointConfig())
        stop = env.event()
        stops.append(stop)
        member = f"vm{index}"
        flushed[member] = 0.0

        def _account(nbytes, member=member):
            flushed[member] += nbytes

        stream.run(env, server.ingest, stop, on_flush=_account)
    env.run(until=duration_s)
    for stop in stops:
        stop.succeed()
    env.run(until=duration_s + drain_s)
    return flushed


def run_soa(env, memories, duration_s, drain_s=30.0):
    server = BackupServer(env)
    sched = SoaCheckpointScheduler(env, server.ingest)
    for index, memory in enumerate(memories):
        stream = CheckpointStream(memory, CheckpointConfig())
        sched.join(f"vm{index}", stream)
    env.run(until=duration_s)
    env.run(until=env.process(sched.settle()))
    env.run(until=duration_s + drain_s)
    return sched, dict(sched.flushed)


class TestMixedPlans:
    def _memories(self, env):
        # Two plan classes enrolled at the same instant: aggregated
        # caps stay under the ingest capacity, so equivalence is exact
        # even when the classes' flows overlap (cap-bound individually).
        return [_RatedMemory(rate_bps=2e6, interval_s=20.0),
                _RatedMemory(rate_bps=2e6, interval_s=20.0),
                _RatedMemory(rate_bps=1.5e6, interval_s=30.0),
                _RatedMemory(rate_bps=1.5e6, interval_s=30.0)]

    def test_mixed_plans_match_per_vm(self):
        env_a = Environment(seed=9)
        per_vm = run_per_vm(env_a, self._memories(env_a), 310.0)
        env_b = Environment(seed=9)
        sched, soa = run_soa(env_b, self._memories(env_b), 310.0)
        assert soa == per_vm
        # One group per plan class, not per member.
        assert sched.groups_created == 2
        assert sched.stats()["flows_issued"] > 0

    def test_one_wakeup_flushes_all_due_groups(self):
        env = Environment(seed=9)
        server = BackupServer(env)
        sched = SoaCheckpointScheduler(env, server.ingest)
        # Same interval, different dirty volume: distinct plans whose
        # due times always coincide.
        for index, rate in enumerate((1e6, 2e6)):
            memory = _RatedMemory(rate_bps=rate, interval_s=20.0)
            sched.join(f"vm{index}", CheckpointStream(memory,
                                                      CheckpointConfig()))
        assert sched.groups_created == 2
        env.run(until=20.0 + 1.0)
        # Both groups fired on the single shared wakeup at t=20.
        assert sched.flows_issued == 2

    def test_divergence_regroups_without_new_processes(self):
        env_a = Environment(seed=9)
        per_vm = run_per_vm(
            env_a, [_SteppedMemory(env_a) for _ in range(3)], 310.0)
        env_b = Environment(seed=9)
        sched, soa = run_soa(
            env_b, [_SteppedMemory(env_b) for _ in range(3)], 310.0)
        assert soa == per_vm
        # All three members diverged at the t=100 round boundary and
        # were regrouped into one fresh plan-group (same instant, same
        # new plan).
        assert sched.splits == 3
        assert sched.groups_created == 2
        members = [f"vm{index}" for index in range(3)]
        gids = {sched.group_of(member) for member in members}
        assert len(gids) == 1

    def test_park_unpark_matches_per_vm(self):
        def doubles(env):
            return [_ParkingMemory(env, park_t=50.0, unpark_t=4000.0)
                    for _ in range(2)]

        env_a = Environment(seed=9)
        per_vm = run_per_vm(env_a, doubles(env_a), 9010.0)
        env_b = Environment(seed=9)
        sched, soa = run_soa(env_b, doubles(env_b), 9010.0)
        # Rounds before the park, none while parked (hourly rechecks
        # only), rounds again after the 4000 s unpark is noticed.
        assert soa == per_vm
        assert all(total > 0 for total in soa.values())


class TestChurn:
    def test_later_join_starts_fresh_group(self):
        env = Environment(seed=5)
        sched = make_scheduler(env)
        _, stream_a = make_stream(env)
        _, stream_b = make_stream(env)
        sched.join("a", stream_a)
        env.run(until=1.0)  # mid-interval
        sched.join("b", stream_b)
        assert sched.group_of("b") != sched.group_of("a")
        assert sched.groups_created == 2

    def test_same_instant_same_plan_shares_group(self):
        env = Environment(seed=5)
        sched = make_scheduler(env)
        _, stream_a = make_stream(env)
        _, stream_b = make_stream(env)
        sched.join("a", stream_a)
        sched.join("b", stream_b)
        assert sched.group_of("a") == sched.group_of("b")
        assert sched.groups_created == 1
        assert sched.member_count() == 2
        assert sched.member_plan("a") == sched.member_plan("b")

    def test_duplicate_join_rejected(self):
        env = Environment(seed=5)
        sched = make_scheduler(env)
        _, stream = make_stream(env)
        sched.join("a", stream)
        with pytest.raises(ValueError, match="already enrolled"):
            sched.join("a", stream)

    def test_leaver_misses_rounds_after_departure(self):
        env = Environment(seed=5)
        sched = make_scheduler(env)
        _, stream_a = make_stream(env)
        _, stream_b = make_stream(env)
        gid = sched.join("a", stream_a)
        sched.join("b", stream_b)
        interval, dirty, _cap = sched.group_plan(gid)
        env.run(until=2.5 * interval)
        sched.leave("a")
        env.run(until=6.5 * interval)
        sched.settle_now()
        assert sched.flushed["a"] == pytest.approx(2 * dirty)
        assert sched.flushed["b"] == pytest.approx(6 * dirty)

    def test_churned_equals_per_vm_with_matching_lifetimes(self):
        """A member that leaves matches a per-VM stream stopped then."""
        def drive(env, soa):
            server = BackupServer(env)
            memory = _RatedMemory(rate_bps=2e6, interval_s=20.0)
            stream = CheckpointStream(memory, CheckpointConfig())
            if soa:
                sched = SoaCheckpointScheduler(env, server.ingest)
                sched.join("a", stream)
                env.run(until=130.0)
                sched.leave("a")
                # Re-enrollment mid-run (fresh group at the new time).
                memory_b = _RatedMemory(rate_bps=2e6, interval_s=20.0)
                sched.join("b", CheckpointStream(memory_b,
                                                 CheckpointConfig()))
                env.run(until=310.0)
                env.run(until=env.process(sched.settle()))
                return dict(sched.flushed)
            flushed = {}
            stop_a = env.event()

            def _acc(nbytes, member="a"):
                flushed[member] = flushed.get(member, 0.0) + nbytes

            stream.run(env, server.ingest, stop_a, on_flush=_acc)
            env.run(until=130.0)
            stop_a.succeed()
            memory_b = _RatedMemory(rate_bps=2e6, interval_s=20.0)
            stream_b = CheckpointStream(memory_b, CheckpointConfig())
            stop_b = env.event()

            def _acc_b(nbytes, member="b"):
                flushed[member] = flushed.get(member, 0.0) + nbytes

            stream_b.run(env, server.ingest, stop_b, on_flush=_acc_b)
            env.run(until=310.0)
            stop_b.succeed()
            env.run(until=340.0)
            return flushed

        per_vm = drive(Environment(seed=5), soa=False)
        soa = drive(Environment(seed=5), soa=True)
        assert soa == per_vm

    def test_dead_group_is_elided(self):
        env = Environment(seed=5)
        sched = make_scheduler(env)
        _, stream = make_stream(env)
        sched.join("a", stream)
        env.run(until=1.0)
        sched.leave("a")
        assert sched.stats()["cohorts_active"] == 0
        assert sched.member_count() == 0

    def test_in_flight_never_retains_dead_processes(self):
        env = Environment(seed=5)
        sched = make_scheduler(env)
        _, stream_a = make_stream(env)
        _, stream_b = make_stream(env)
        gid = sched.join("a", stream_a)
        sched.join("b", stream_b)
        interval = sched.group_plan(gid)[0]
        env.run(until=12.5 * interval)
        dead = [p for p in sched._in_flight if not p.is_alive]
        assert len(dead) <= 1
        assert len(sched._in_flight) < 5


class TestAccounting:
    def test_defer_mode_matches_eager_totals(self):
        results = {}
        for defer in (False, True):
            env = Environment(seed=7)
            sched = make_scheduler(env, defer=defer)
            for index in range(5):
                _, stream = make_stream(env)
                sched.join(f"vm{index}", stream)
            interval = sched.group_plan(sched.group_of("vm0"))[0]
            env.run(until=3.5 * interval)
            sched.leave("vm4")
            env.run(until=10.5 * interval)
            env.run(until=env.process(sched.settle()))
            results[defer] = dict(sched.flushed)
        assert results[True] == results[False]

    def test_defer_matches_group_scheduler_settlement(self):
        from repro.virt.migration.group import GroupCheckpointScheduler

        results = {}
        for core in (GroupCheckpointScheduler, SoaCheckpointScheduler):
            env = Environment(seed=7)
            server = BackupServer(env)
            sched = core(env, server.ingest, defer_accounting=True)
            for index in range(5):
                _, stream = make_stream(env)
                sched.join(f"vm{index}", stream)
            env.run(until=400.0)
            sched.leave("vm2")
            env.run(until=700.0)
            env.run(until=env.process(sched.settle()))
            results[core.__name__] = dict(sched.flushed)
        assert results["SoaCheckpointScheduler"] == \
            results["GroupCheckpointScheduler"]

    def test_settle_now_credits_only_completed_rounds(self):
        env = Environment(seed=7)
        sched = make_scheduler(env, defer=True)
        _, stream = make_stream(env)
        gid = sched.join("a", stream)
        interval, dirty, _cap = sched.group_plan(gid)
        env.run(until=4.5 * interval)
        flushed = sched.settle_now()
        assert flushed["a"] == pytest.approx(4 * dirty)
        assert sched.settle_now() is flushed

    def test_stats_shape_matches_group_scheduler(self):
        env = Environment(seed=7)
        sched = make_scheduler(env)
        _, stream = make_stream(env)
        sched.join("a", stream)
        stats = sched.stats()
        assert set(stats) == {"cohorts_created", "cohorts_active",
                              "members", "flows_issued", "splits"}
        assert stats["cohorts_created"] == 1
        assert stats["cohorts_active"] == 1
        assert stats["members"] == 1
