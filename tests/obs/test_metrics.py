"""Tests for the metrics registry and the P² streaming quantiles."""

import random

import pytest

from repro.obs.metrics import MetricsRegistry, P2Quantile


class TestCountersAndGauges:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("migrations_total", cause="revocation")
        counter.inc()
        counter.inc(2.0)
        assert counter.value == 3.0

    def test_counter_rejects_negative(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("c").inc(-1)

    def test_gauge_moves_both_ways(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("parked_vms")
        gauge.set(5)
        gauge.dec(2)
        gauge.inc()
        assert gauge.value == 4.0

    def test_label_sets_are_distinct_series(self):
        registry = MetricsRegistry()
        a = registry.counter("m", mechanism="live")
        b = registry.counter("m", mechanism="bounded-lazy")
        a.inc()
        assert b.value == 0.0
        assert len(registry) == 2

    def test_same_labels_return_same_series(self):
        registry = MetricsRegistry()
        a = registry.counter("m", zone="a", type="b")
        b = registry.counter("m", type="b", zone="a")
        assert a is b

    def test_kind_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("m")
        with pytest.raises(TypeError):
            registry.gauge("m")

    def test_find_by_name(self):
        registry = MetricsRegistry()
        registry.counter("m", x="1")
        registry.counter("m", x="2")
        registry.counter("other")
        assert len(registry.find("m")) == 2


class TestP2Quantile:
    def test_exact_for_small_samples(self):
        est = P2Quantile(0.5)
        for value in (5.0, 1.0, 3.0):
            est.observe(value)
        assert est.value == 3.0

    def test_empty_estimator_has_no_value(self):
        assert P2Quantile(0.5).value is None

    def test_invalid_quantile_rejected(self):
        with pytest.raises(ValueError):
            P2Quantile(1.5)

    @pytest.mark.parametrize("p", [0.5, 0.95, 0.99])
    def test_tracks_uniform_distribution(self, p):
        rng = random.Random(42)
        est = P2Quantile(p)
        samples = [rng.uniform(0.0, 100.0) for _ in range(20000)]
        for value in samples:
            est.observe(value)
        exact = sorted(samples)[int(p * len(samples))]
        assert est.value == pytest.approx(exact, abs=2.0)

    def test_tracks_skewed_distribution(self):
        # Migration downtimes are long-tailed; check a lognormal-ish mix.
        rng = random.Random(7)
        est = P2Quantile(0.95)
        samples = [rng.expovariate(1.0 / 23.0) for _ in range(20000)]
        for value in samples:
            est.observe(value)
        exact = sorted(samples)[int(0.95 * len(samples))]
        assert est.value == pytest.approx(exact, rel=0.1)


class TestHistogram:
    def test_summary_statistics(self):
        registry = MetricsRegistry()
        hist = registry.histogram("migration_downtime_seconds",
                                  mechanism="spotcheck-lazy")
        for value in (10.0, 20.0, 30.0):
            hist.observe(value)
        assert hist.count == 3
        assert hist.sum == 60.0
        assert hist.mean == 20.0
        assert hist.min == 10.0
        assert hist.max == 30.0

    def test_quantiles_on_known_stream(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h")
        rng = random.Random(3)
        values = [rng.uniform(0, 1) for _ in range(5000)]
        for value in values:
            hist.observe(value)
        ordered = sorted(values)
        assert hist.quantile(0.5) == pytest.approx(
            ordered[2500], abs=0.05)
        assert hist.quantile(0.99) == pytest.approx(
            ordered[4950], abs=0.05)
        quantiles = hist.quantiles
        assert list(quantiles) == [0.5, 0.95, 0.99]
        assert quantiles[0.5] <= quantiles[0.95] <= quantiles[0.99]
