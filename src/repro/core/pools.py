"""Server pools: spot pools, the on-demand pool, and the backup pool.

SpotCheck "maintains multiple pools of servers ... for each server
type, separate spot and on-demand pools".  A pool groups the native
hosts of one (market, type, zone) and tracks the statistics the
allocation policies weigh: historical cost per nested-VM slot and
revocation/migration counts.
"""

from collections import deque

#: How many trailing price samples feed ``recent_mean_price_per_slot``
#: (the bound the per-step deque historically had).
PRICE_SAMPLE_WINDOW = 512


class ServerPool:
    """Base pool: the native hosts of one (market, type, zone)."""

    market_kind = "abstract"

    def __init__(self, itype, zone, slot_itype):
        self.itype = itype
        self.zone = zone
        self.slot_itype = slot_itype
        self.hosts = []

    @property
    def key(self):
        return (self.market_kind, self.itype.name, self.zone.name)

    def add_host(self, host):
        self.hosts.append(host)

    def remove_host(self, host):
        if host in self.hosts:
            self.hosts.remove(host)

    def host_with_free_slot(self):
        """A healthy host with a free nested-VM slot, or None.

        Hosts that have received a revocation warning stay in the pool
        until the platform actually terminates them (their VMs are
        still draining), but they are never offered for placement.
        """
        for host in self.hosts:
            if host.free_slots > 0 and \
                    host.instance.state.value == "running":
                return host
        return None

    def vms(self):
        """All nested VMs across the pool's hosts."""
        return [vm for host in self.hosts for vm in host.vms]

    @property
    def vm_count(self):
        return sum(len(host.vms) for host in self.hosts)

    @property
    def host_count(self):
        return len(self.hosts)

    def __repr__(self):
        return (f"<{type(self).__name__} {self.key} hosts={self.host_count} "
                f"vms={self.vm_count}>")


class SpotPool(ServerPool):
    """A pool of spot hosts sharing one market and one bid price."""

    market_kind = "spot"

    def __init__(self, itype, zone, slot_itype, market, bid):
        super().__init__(itype, zone, slot_itype)
        self.market = market
        self.bid = bid
        #: Revocation-event history: (time, hosts_lost, vms_displaced).
        self.revocations = []
        #: Explicitly recorded (time, price) samples.  Normally empty:
        #: the window is reconstructed lazily from the market's trace
        #: arrays (see ``_market_price_window``), so the market drive
        #: does not need to wake at every point just to feed it.  A
        #: caller that records samples by hand overrides the lazy path.
        self._price_samples = deque(maxlen=PRICE_SAMPLE_WINDOW)
        #: Trace points already delivered when this pool attached —
        #: the start of its sample series, exactly as if it had been
        #: hearing per-point callbacks from that moment on.
        counter = getattr(market, "delivered_count", None)
        self._series_start = counter() if counter is not None else 0

    def record_revocation(self, when, hosts_lost, vms_displaced):
        self.revocations.append((when, hosts_lost, vms_displaced))

    def record_price(self, when, price):
        self._price_samples.append((when, price))

    def price_per_slot(self):
        """Current spot price divided by nested-VM slots per host."""
        slots = max(int(self.itype.memory_gib // self.slot_itype.memory_gib), 1)
        return self.market.current_price() / slots

    def _market_price_window(self):
        """The last <= 512 prices the step drive would have fed us.

        Reconstructed from the trace arrays via the market's delivered
        count: same values, same order, same left-to-right float sum as
        the per-step deque accumulation it replaces.
        """
        counter = getattr(self.market, "delivered_count", None)
        if counter is None:
            return []
        end = counter()
        start = max(self._series_start, end - PRICE_SAMPLE_WINDOW)
        if end <= start:
            return []
        _times, prices = self.market.trace.arrays()
        return prices[start:end].tolist()

    def recent_mean_price_per_slot(self):
        """Historical mean price per slot (4P-COST's weight input)."""
        if self._price_samples:
            prices = [price for _when, price in self._price_samples]
        else:
            prices = self._market_price_window()
        if not prices:
            return self.price_per_slot()
        slots = max(int(self.itype.memory_gib // self.slot_itype.memory_gib), 1)
        return (sum(prices) / len(prices)) / slots

    def recent_migration_count(self, since=None):
        """Revocation events in the window (4P-ST's weight input)."""
        if since is None:
            return len(self.revocations)
        return sum(1 for when, _h, _v in self.revocations if when >= since)


class OnDemandPool(ServerPool):
    """The non-revocable pool VMs fail over to."""

    market_kind = "on-demand"


class BackupPool:
    """The pool of backup servers, with round-robin VM assignment.

    "SpotCheck employs a simple round-robin policy to map nested VMs
    within each pool across the set of backup servers.  Once every
    backup server becomes fully utilized, SpotCheck provisions a native
    VM from the IaaS platform to serve as a new backup server."
    """

    def __init__(self, provision):
        self._provision = provision
        self.servers = []
        self._cursor = 0

    def assign(self, vm_id, stream_rate_bps, cap=None):
        """Assign a VM's checkpoint stream round-robin; grow if full.

        Returns the chosen :class:`~repro.backup.server.BackupServer`.
        """
        chosen = self._next_with_capacity(cap)
        if chosen is None:
            chosen = self._provision()
            self.servers.append(chosen)
        chosen.assign_stream(vm_id, stream_rate_bps)
        return chosen

    def _next_with_capacity(self, cap):
        if not self.servers:
            return None
        n = len(self.servers)
        for offset in range(n):
            server = self.servers[(self._cursor + offset) % n]
            if getattr(server, "failed", False):
                continue
            limit = cap if cap is not None else server.spec.max_checkpoint_vms
            if server.assigned_vms < limit:
                self._cursor = (self._cursor + offset + 1) % n
                return server
        return None

    def release(self, vm_id, server):
        server.release_stream(vm_id)

    @property
    def server_count(self):
        return len(self.servers)

    def total_assigned(self):
        return sum(server.assigned_vms for server in self.servers)


class PoolManager:
    """Registry of every pool the controller manages."""

    def __init__(self):
        self.spot_pools = {}
        self.on_demand_pools = {}

    def add_spot_pool(self, pool):
        if pool.key in self.spot_pools:
            raise ValueError(f"duplicate spot pool {pool.key}")
        self.spot_pools[pool.key] = pool

    def add_on_demand_pool(self, pool):
        if pool.key in self.on_demand_pools:
            raise ValueError(f"duplicate on-demand pool {pool.key}")
        self.on_demand_pools[pool.key] = pool

    def spot_pool(self, type_name, zone_name):
        return self.spot_pools[("spot", type_name, zone_name)]

    def on_demand_pool(self, type_name, zone_name):
        return self.on_demand_pools[("on-demand", type_name, zone_name)]

    def all_spot_pools(self):
        return list(self.spot_pools.values())

    def all_pools(self):
        return list(self.spot_pools.values()) + \
            list(self.on_demand_pools.values())

    def pool_of_host(self, host):
        for pool in self.all_pools():
            if host in pool.hosts:
                return pool
        return None
