"""Customer-to-pool mapping policies (Table 2).

These decide which spot pool hosts a newly requested nested VM.  The
portfolio analogy from the paper: spreading a customer's VMs across
pools with uncorrelated prices reduces the probability of a revocation
storm hitting all of them at once, at a (slightly) higher cost than
always choosing the single cheapest pool.

| Policy  | Behaviour                                                  |
|---------|------------------------------------------------------------|
| 1P-M    | all VMs in the m3.medium pool                              |
| 2P-ML   | spread equally over m3.medium and m3.large                 |
| 4P-ED   | spread equally over all four m3 pools                      |
| 4P-COST | probability inversely weighted by historical pool cost    |
| 4P-ST   | probability inversely weighted by historical migrations    |
| IT[-r]  | index tracking: hold realized $/VM-hour on a target index |
| OC[-k]  | optimal combination: score pools by price/risk/move cost  |

``IT``/``OC`` live in :mod:`repro.core.policies.portfolio` (Cloud
Index Tracking, Shastri & Irwin); parameterized spellings like
``IT-0.125`` (target ratio) and ``OC-2`` (portfolio size) are parsed
by :func:`make_allocation_policy`.
"""


class AllocationPolicy:
    """Base: picks a spot pool for a new nested VM.

    Spreading policies operate *per customer*: "SpotCheck spreads the
    nested VMs belonging to each of its customers across multiple
    different server pools", so each customer's fleet individually
    diversifies over uncorrelated markets.  ``customer`` may be None
    for anonymous requests, which then share one global cursor.
    """

    name = "abstract"

    #: Type names the policy draws from, in preference order.
    pool_types = ()

    def choose(self, pools, rng, customer=None):
        """Pick one of ``pools`` (list of SpotPool), using ``rng``."""
        raise NotImplementedError

    def eligible(self, pools):
        """Filter ``pools`` to the policy's type set, in policy order."""
        by_type = {pool.itype.name: pool for pool in pools}
        chosen = [by_type[name] for name in self.pool_types if name in by_type]
        if not chosen:
            raise ValueError(
                f"{self.name}: none of {self.pool_types} present in "
                f"{sorted(by_type)}")
        return chosen

    def __repr__(self):
        return f"<AllocationPolicy {self.name}>"


class SinglePoolPolicy(AllocationPolicy):
    """1P-M: every VM goes to one pool."""

    name = "1P-M"
    pool_types = ("m3.medium",)

    def choose(self, pools, rng, customer=None):
        return self.eligible(pools)[0]


class EqualSpreadPolicy(AllocationPolicy):
    """2P-ML / 4P-ED: each customer's VMs distributed equally
    (per-customer round-robin)."""

    def __init__(self, name, pool_types):
        self.name = name
        self.pool_types = tuple(pool_types)
        self._cursors = {}

    def choose(self, pools, rng, customer=None):
        eligible = self.eligible(pools)
        key = customer.id if customer is not None else None
        cursor = self._cursors.get(key, 0)
        pool = eligible[cursor % len(eligible)]
        self._cursors[key] = cursor + 1
        return pool


class _WeightedPolicy(AllocationPolicy):
    """Probabilistic selection by per-pool weights."""

    pool_types = ("m3.medium", "m3.large", "m3.xlarge", "m3.2xlarge")

    def weight(self, pool):
        raise NotImplementedError

    def choose(self, pools, rng, customer=None):
        eligible = self.eligible(pools)
        weights = [max(self.weight(pool), 1e-12) for pool in eligible]
        total = sum(weights)
        probabilities = [w / total for w in weights]
        index = rng.choice(len(eligible), p=probabilities)
        return eligible[int(index)]


class CostWeightedPolicy(_WeightedPolicy):
    """4P-COST: "the lower the cost of the pool over a period, the
    higher the probability of mapping a VM into that pool"."""

    name = "4P-COST"

    def weight(self, pool):
        return 1.0 / max(pool.recent_mean_price_per_slot(), 1e-9)


class StabilityWeightedPolicy(_WeightedPolicy):
    """4P-ST: "the fewer the number of migrations over a period, the
    higher the probability of mapping a VM into that pool".

    The migration window only exists relative to a clock.  Without one
    (``attach_clock`` never called), ``weight()`` silently degrades to
    counting every revocation since t=0 — historically a latent bug
    when the policy was built outside the controller — so an unclocked
    weigh now reports through the optional ``on_unclocked`` hook
    (fired once per instance; the controller wires it to an obs event).
    """

    name = "4P-ST"

    def __init__(self, window_s=7 * 24 * 3600.0, now=None):
        self.window_s = window_s
        self._now = now or (lambda: None)
        #: Zero-argument callable invoked on the first unclocked weigh.
        self.on_unclocked = None
        self._warned_unclocked = False

    def attach_clock(self, now):
        """Install a callable returning the current simulation time."""
        self._now = now

    def weight(self, pool):
        now = self._now()
        if now is None and not self._warned_unclocked:
            self._warned_unclocked = True
            if self.on_unclocked is not None:
                self.on_unclocked()
        since = None if now is None else now - self.window_s
        return 1.0 / (1.0 + pool.recent_migration_count(since))


class ZoneSpreadPolicy(AllocationPolicy):
    """Z-M: one instance type spread across every installed zone.

    The zone-diversification counterpart of 4P-ED: Figure 6(c) shows
    zone prices are as uncorrelated as type prices, so spreading one
    type's VMs over zones also dissolves revocation storms — while
    keeping every VM on the cheapest (most stable) instance type.
    """

    name = "Z-M"

    def __init__(self, type_name="m3.medium"):
        self.type_name = type_name
        self._cursors = {}

    def choose(self, pools, rng, customer=None):
        eligible = sorted(
            (pool for pool in pools if pool.itype.name == self.type_name),
            key=lambda pool: pool.zone.name)
        if not eligible:
            raise ValueError(
                f"{self.name}: no {self.type_name} pools installed")
        key = customer.id if customer is not None else None
        cursor = self._cursors.get(key, 0)
        self._cursors[key] = cursor + 1
        return eligible[cursor % len(eligible)]


def _make_portfolio(name):
    # Imported lazily: portfolio.py subclasses AllocationPolicy.
    from repro.core.policies.portfolio import make_portfolio_policy
    return make_portfolio_policy(name)


#: Name -> zero-argument factory.
ALLOCATION_POLICIES = {
    "1P-M": SinglePoolPolicy,
    "2P-ML": lambda: EqualSpreadPolicy("2P-ML", ("m3.medium", "m3.large")),
    "4P-ED": lambda: EqualSpreadPolicy(
        "4P-ED", ("m3.medium", "m3.large", "m3.xlarge", "m3.2xlarge")),
    "4P-COST": CostWeightedPolicy,
    "4P-ST": StabilityWeightedPolicy,
    "Z-M": ZoneSpreadPolicy,
    "IT": lambda: _make_portfolio("IT"),
    "OC": lambda: _make_portfolio("OC"),
}


def make_allocation_policy(name, now=None, **overrides):
    """Instantiate a Table 2 (or portfolio) policy by name.

    ``now`` — an optional zero-argument simulation-clock callable —
    is attached to any policy that supports one, so time-windowed
    policies (4P-ST's 7-day migration window, the portfolio family's
    realized-cost folds) are born clocked instead of relying on the
    caller to remember :meth:`attach_clock`.

    ``IT``/``OC`` names accept an inline parameter (``IT-0.125``,
    ``OC-3``) and keyword ``overrides`` forwarded to the portfolio
    constructor; overrides on any other policy are an error.
    """
    if name.startswith("IT") or name.startswith("OC"):
        from repro.core.policies.portfolio import make_portfolio_policy
        policy = make_portfolio_policy(name, **overrides)
    else:
        if overrides:
            raise ValueError(
                f"policy {name!r} accepts no overrides (got "
                f"{sorted(overrides)}); only the IT/OC portfolio "
                f"family is parameterizable")
        try:
            factory = ALLOCATION_POLICIES[name]
        except KeyError:
            raise ValueError(
                f"unknown allocation policy {name!r}; choose from "
                f"{sorted(ALLOCATION_POLICIES)}") from None
        policy = factory()
    if now is not None and hasattr(policy, "attach_clock"):
        policy.attach_clock(now)
    return policy
