"""Table 3: probability of concurrent revocations by pool count.

Paper shape: with a single pool, every revocation is a mass revocation
(all N VMs at once, probability ~1.7e-4/hr); with two pools the mass
events shrink to N/2; with four pools revocations of all N VMs never
happen — "the approach avoids all mass revocations" at a cost of only
~$0.002/VM-hr and slightly lower availability.
"""

from repro.experiments import table3
from repro.experiments.reporting import format_table


def test_table3_concurrent_revocations(benchmark, report, bench_days, bench_vms):
    result = benchmark.pedantic(
        lambda: table3.run(seed=11, days=bench_days, vms=bench_vms),
        rounds=1, iterations=1)
    table = result["table"]
    summaries = result["summaries"]

    # Single pool: revocations hit everyone at once.
    assert summaries["1-Pool"]["max_concurrent_revocation"] == bench_vms
    assert table["1-Pool"][1.0] > 0.0
    # Two pools: mass events cap at N/2.
    assert summaries["2-Pool"]["max_concurrent_revocation"] <= \
        bench_vms // 2
    assert table["2-Pool"][1.0] == 0.0
    # Four pools: no full-fleet revocation, events cap at ~N/4.
    assert table["4-Pool"][1.0] == 0.0
    assert table["4-Pool"][0.75] == 0.0
    assert summaries["4-Pool"]["max_concurrent_revocation"] <= \
        bench_vms // 4 + 1

    # The risk reduction stays cheap relative to on-demand (paper saw
    # +$0.002; our volatile pools park on-demand more often).
    extra_cost = (summaries["4-Pool"]["cost_per_vm_hour"]
                  - summaries["1-Pool"]["cost_per_vm_hour"])
    assert extra_cost < 0.009

    headers = ["pools", "P(max=N/4)/hr", "P(max=N/2)/hr",
               "P(max=3N/4)/hr", "P(max=N)/hr", "max concurrent"]
    rows = []
    for label in ("1-Pool", "2-Pool", "4-Pool"):
        histogram = table[label]
        rows.append((
            label,
            _fmt(histogram[0.25]), _fmt(histogram[0.5]),
            _fmt(histogram[0.75]), _fmt(histogram[1.0]),
            summaries[label]["max_concurrent_revocation"],
        ))
    text = format_table(
        headers, rows,
        title=(f"Table 3 — per-hour probability of concurrent "
               f"revocations (N = {bench_vms} VMs, "
               f"{bench_days:.0f} days)"))
    report("table3_revocation_storms", text)


def _fmt(probability):
    return "0" if probability == 0 else f"{probability:.2e}"
