"""Ablations for the paper's discussed-but-unevaluated extensions.

* **Predictive migration** (Section 3.2): drain a pool on a price-trend
  signal before the platform issues the warning, turning bounded-time
  migrations into planned live migrations.
* **Zone diversification** (Section 4.2): Figure 6(c) shows zone prices
  are uncorrelated, so spreading one instance type across zones
  dissolves mass revocations just like spreading across types — while
  staying on the cheapest type.
* **Knee bidding** (Section 4.3): bid at the knee of the historical
  availability-bid curve instead of exactly the on-demand price.
"""

import pytest

from repro.cloud.api import CloudApi
from repro.cloud.instance_types import M3_CATALOG
from repro.cloud.zones import default_region
from repro.core.config import SpotCheckConfig
from repro.core.controller import SpotCheckController
from repro.experiments.policy_grid import run_cell, shared_archive
from repro.experiments.reporting import format_table
from repro.sim.kernel import Environment
from repro.traces.calibration import market_params_for, paper_market_set
from repro.traces.generator import TraceGenerator
from repro.workloads import TpcwWorkload

DAYS = 45.0
VMS = 16
SEED = 31


def test_ablation_predictive_migration(benchmark, report):
    def sweep():
        archive = shared_archive(SEED, DAYS)
        baseline = run_cell("2P-ML", "spotcheck-lazy", seed=SEED, days=DAYS,
                            vms=VMS, archive=archive)
        predictive = run_cell("2P-ML", "spotcheck-lazy", seed=SEED,
                              days=DAYS, vms=VMS, archive=archive,
                              predictive=True)
        return baseline, predictive

    baseline, predictive = benchmark.pedantic(sweep, rounds=1, iterations=1)

    # Prediction converts (part of) the reactive bounded migrations
    # into planned live drains, cutting downtime.
    assert predictive["unavailability_pct"] < baseline["unavailability_pct"]
    assert predictive["state_loss_events"] == 0

    rows = [
        ("reactive (bounded-time)",
         f"{baseline['unavailability_pct']:.4f}%",
         baseline["revocation_events"], baseline["migrations"],
         f"${baseline['cost_per_vm_hour']:.4f}"),
        ("predictive (EWMA drain)",
         f"{predictive['unavailability_pct']:.4f}%",
         predictive["revocation_events"], predictive["migrations"],
         f"${predictive['cost_per_vm_hour']:.4f}"),
    ]
    text = format_table(
        ["variant", "unavailability", "revocation events", "migrations",
         "cost/VM-hr"],
        rows,
        title=(f"Ablation — predictive migration (2P-ML, {VMS} VMs, "
               f"{DAYS:.0f} days)"))
    report("ablation_predictive", text)


def _zone_spread_run(zone_count):
    env = Environment(seed=SEED)
    region = default_region(zone_count)
    medium = M3_CATALOG.get("m3.medium")
    # Raise the medium market's volatility so storms actually occur
    # within the bench span, in every zone independently.
    params = {}
    for (type_name, zone_name), base in paper_market_set(
            [medium], region.zones, zone_jitter=0.0).items():
        params[(type_name, zone_name)] = market_params_for(
            medium, volatility_scale=20.0)
    archive = TraceGenerator(seed=SEED).generate_archive(
        params, duration_s=DAYS * 24 * 3600.0)
    policy = "1P-M" if zone_count == 1 else "Z-M"
    controller = SpotCheckController(
        env, CloudApi(env, region, M3_CATALOG),
        SpotCheckConfig(allocation_policy=policy))
    controller.install_pools(archive, list(region.zones))

    def fleet():
        customer = controller.start_customer("fleet")
        for _ in range(VMS):
            yield controller.request_server(
                customer, workload=TpcwWorkload())

    env.run(until=env.process(fleet()))
    env.run(until=DAYS * 24 * 3600.0)
    controller.finalize()
    return controller.summary(total_vms=VMS)


def test_ablation_zone_spreading(benchmark, report):
    results = benchmark.pedantic(
        lambda: {n: _zone_spread_run(n) for n in (1, 2, 4)},
        rounds=1, iterations=1)

    # Spreading one type across zones caps the storm size at N/zones.
    assert results[1]["max_concurrent_revocation"] == VMS
    assert results[2]["max_concurrent_revocation"] <= VMS // 2
    assert results[4]["max_concurrent_revocation"] <= VMS // 4
    # All on the same (cheapest) type: costs stay in one band.
    costs = [r["cost_per_vm_hour"] for r in results.values()]
    assert max(costs) - min(costs) < 0.008
    for summary in results.values():
        assert summary["state_loss_events"] == 0

    rows = [(f"{n} zone(s)",
             f"${results[n]['cost_per_vm_hour']:.4f}",
             f"{100 * results[n]['availability']:.4f}%",
             results[n]["revocation_events"],
             results[n]["max_concurrent_revocation"])
            for n in (1, 2, 4)]
    text = format_table(
        ["variant", "cost/VM-hr", "availability", "revocation events",
         "max storm"],
        rows,
        title=(f"Ablation — zone diversification of m3.medium "
               f"({VMS} VMs, {DAYS:.0f} days, volatile markets)"))
    report("ablation_zone_spreading", text)


def test_ablation_knee_bidding(benchmark, report):
    def sweep():
        archive = shared_archive(SEED, DAYS)
        od_bid = run_cell("2P-ML", "spotcheck-lazy", seed=SEED, days=DAYS,
                          vms=VMS, archive=archive)
        knee = run_cell("2P-ML", "spotcheck-lazy", seed=SEED, days=DAYS,
                        vms=VMS, archive=archive, bid_policy="knee")
        return od_bid, knee

    od_bid, knee = benchmark.pedantic(sweep, rounds=1, iterations=1)

    # The knee sits at or below the on-demand price, so the knee bid
    # can only match or increase the revocation count — but never the
    # exposure to prices above on-demand, so cost must not rise much.
    assert knee["cost_per_vm_hour"] <= od_bid["cost_per_vm_hour"] * 1.10
    assert knee["state_loss_events"] == 0
    assert knee["availability"] > 0.99

    rows = [
        ("bid = on-demand price", f"${od_bid['cost_per_vm_hour']:.4f}",
         f"{100 * od_bid['availability']:.4f}%",
         od_bid["revocation_events"]),
        ("bid = availability knee", f"${knee['cost_per_vm_hour']:.4f}",
         f"{100 * knee['availability']:.4f}%",
         knee["revocation_events"]),
    ]
    text = format_table(
        ["variant", "cost/VM-hr", "availability", "revocation events"],
        rows,
        title=(f"Ablation — knee-of-the-curve bidding (2P-ML, {VMS} VMs, "
               f"{DAYS:.0f} days)"))
    report("ablation_knee_bidding", text)
