"""Tests for pools, the backup pool, and the pool manager."""

import pytest

from repro.backup.server import BackupServer, BackupServerSpec
from repro.backup.store import CheckpointStore
from repro.cloud.instance_types import M3_CATALOG
from repro.cloud.instances import Instance, Market
from repro.cloud.spot_market import SpotMarket
from repro.core.policies.spares import HotSparePolicy
from repro.core.pools import BackupPool, OnDemandPool, PoolManager, SpotPool
from repro.virt.hypervisor import HostVM

from tests.conftest import flat_trace

MEDIUM = M3_CATALOG.get("m3.medium")
LARGE = M3_CATALOG.get("m3.large")


def make_host(env, zone, itype=MEDIUM, slots=1):
    instance = Instance(env, itype, zone, Market.ON_DEMAND)
    instance._mark_running()
    return HostVM(env, instance, MEDIUM, slots=slots)


def make_spot_pool(env, zone, itype=MEDIUM, price=0.02):
    trace = flat_trace(price, type_name=itype.name,
                       on_demand_price=itype.on_demand_price)
    market = SpotMarket(env, itype, zone, trace)
    return SpotPool(itype, zone, MEDIUM, market, bid=itype.on_demand_price)


class TestSpotPool:
    def test_key(self, env, zone):
        pool = make_spot_pool(env, zone)
        assert pool.key == ("spot", "m3.medium", zone.name)

    def test_host_management(self, env, zone):
        pool = make_spot_pool(env, zone)
        host = make_host(env, zone)
        pool.add_host(host)
        assert pool.host_with_free_slot() is host
        assert pool.host_count == 1
        pool.remove_host(host)
        assert pool.host_with_free_slot() is None

    def test_full_host_not_offered(self, env, zone):
        from repro.virt.vm import NestedVM
        pool = make_spot_pool(env, zone)
        host = make_host(env, zone)
        pool.add_host(host)
        host.hypervisor.boot(NestedVM(env, MEDIUM))
        assert pool.host_with_free_slot() is None
        assert pool.vm_count == 1

    def test_price_per_slot_uses_slicing(self, env, zone):
        pool = make_spot_pool(env, zone, itype=LARGE, price=0.03)
        assert pool.price_per_slot() == pytest.approx(0.015)

    def test_recent_mean_price(self, env, zone):
        pool = make_spot_pool(env, zone)
        pool.record_price(0.0, 0.02)
        pool.record_price(10.0, 0.04)
        assert pool.recent_mean_price_per_slot() == pytest.approx(0.03)

    def test_migration_count_window(self, env, zone):
        pool = make_spot_pool(env, zone)
        pool.record_revocation(100.0, 1, 2)
        pool.record_revocation(500.0, 2, 8)
        assert pool.recent_migration_count() == 2
        assert pool.recent_migration_count(since=200.0) == 1


class TestBackupPool:
    def _provision(self, env):
        def factory():
            server = BackupServer(env, BackupServerSpec(max_checkpoint_vms=3))
            server.store = CheckpointStore(env)
            return server
        return factory

    def test_provisions_on_demand(self, env):
        pool = BackupPool(self._provision(env))
        assert pool.server_count == 0
        server = pool.assign("vm-1", 1e6)
        assert pool.server_count == 1
        assert server.assigned_vms == 1

    def test_round_robin_across_servers(self, env):
        pool = BackupPool(self._provision(env))
        servers = {pool.assign(f"vm-{i}", 1e6).id for i in range(6)}
        # 3-VM cap -> second server provisioned; round robin spreads.
        assert pool.server_count == 2
        assert len(servers) == 2
        assert pool.total_assigned() == 6

    def test_growth_when_all_full(self, env):
        pool = BackupPool(self._provision(env))
        for i in range(7):
            pool.assign(f"vm-{i}", 1e6)
        assert pool.server_count == 3

    def test_custom_cap_overrides_spec(self, env):
        pool = BackupPool(self._provision(env))
        pool.assign("a", 1e6, cap=1)
        pool.assign("b", 1e6, cap=1)
        assert pool.server_count == 2

    def test_release_frees_capacity(self, env):
        pool = BackupPool(self._provision(env))
        server = pool.assign("vm-1", 1e6)
        pool.release("vm-1", server)
        assert server.assigned_vms == 0


class TestPoolIndex:
    """The struct-of-arrays pool internals behind the O(1) hot paths."""

    def test_first_fit_is_insertion_order(self, env, zone):
        from repro.virt.vm import NestedVM
        pool = make_spot_pool(env, zone)
        first, second = make_host(env, zone), make_host(env, zone)
        pool.add_host(first)
        pool.add_host(second)
        assert pool.host_with_free_slot() is first
        host = pool.host_with_free_slot()
        host.hypervisor.boot(NestedVM(env, MEDIUM))
        assert pool.host_with_free_slot() is second

    def test_evict_reoffers_host(self, env, zone):
        from repro.virt.vm import NestedVM
        pool = make_spot_pool(env, zone)
        first = make_host(env, zone)
        second = make_host(env, zone)
        pool.add_host(first)
        pool.add_host(second)
        vm = NestedVM(env, MEDIUM)
        first.hypervisor.boot(vm)
        assert pool.host_with_free_slot() is second
        first.hypervisor.evict(vm)
        # The change hook re-offers the freed host; insertion order
        # makes it first-fit again.
        assert pool.host_with_free_slot() is first

    def test_vm_count_tracks_boot_and_evict(self, env, zone):
        from repro.virt.vm import NestedVM
        pool = make_spot_pool(env, zone)
        hosts = [make_host(env, zone, itype=LARGE, slots=2)
                 for _ in range(3)]
        for host in hosts:
            pool.add_host(host)
        vms = []
        for host in hosts:
            vm = NestedVM(env, MEDIUM)
            host.hypervisor.boot(vm)
            vms.append(vm)
        assert pool.vm_count == 3
        assert sorted(v.id for v in pool.iter_vms()) == \
            sorted(v.id for v in vms)
        hosts[1].hypervisor.evict(vms[1])
        assert pool.vm_count == 2

    def test_removed_host_detaches_hook_and_backref(self, env, zone):
        pool = make_spot_pool(env, zone)
        host = make_host(env, zone)
        pool.add_host(host)
        assert host._pool is pool
        assert host.hypervisor.on_change is not None
        pool.remove_host(host)
        assert host._pool is None
        assert host.hypervisor.on_change is None
        assert pool.host_with_free_slot() is None
        assert pool.vm_count == 0

    def test_readded_host_offered_again(self, env, zone):
        pool = make_spot_pool(env, zone)
        host = make_host(env, zone)
        pool.add_host(host)
        pool.remove_host(host)
        pool.add_host(host)
        assert pool.host_with_free_slot() is host

    def test_terminated_host_skipped(self, env, zone):
        pool = make_spot_pool(env, zone)
        first, second = make_host(env, zone), make_host(env, zone)
        pool.add_host(first)
        pool.add_host(second)
        first.instance._mark_terminated()
        assert pool.host_with_free_slot() is second

    def test_pending_host_offered_once_running(self, env, zone):
        pool = make_spot_pool(env, zone)
        instance = Instance(env, MEDIUM, zone, Market.ON_DEMAND)
        host = HostVM(env, instance, MEDIUM, slots=1)
        pool.add_host(host)
        assert pool.host_with_free_slot() is None
        instance._mark_running()
        env.run(until=env.now + 0.001)  # deliver the started event
        assert pool.host_with_free_slot() is host

    def test_hosts_view_behaves_like_a_sequence(self, env, zone):
        pool = make_spot_pool(env, zone)
        hosts = [make_host(env, zone) for _ in range(3)]
        for host in hosts:
            pool.add_host(host)
        assert len(pool.hosts) == 3
        assert list(pool.hosts) == hosts
        assert pool.hosts[0] is hosts[0]
        assert pool.hosts[1:] == hosts[1:]
        assert hosts[2] in pool.hosts
        assert bool(pool.hosts)
        pool.remove_host(hosts[0])
        assert hosts[0] not in pool.hosts
        assert len(pool.hosts) == 2


class TestPoolManager:
    def test_registration_and_lookup(self, env, zone):
        manager = PoolManager()
        spot = make_spot_pool(env, zone)
        od = OnDemandPool(MEDIUM, zone, MEDIUM)
        manager.add_spot_pool(spot)
        manager.add_on_demand_pool(od)
        assert manager.spot_pool("m3.medium", zone.name) is spot
        assert manager.on_demand_pool("m3.medium", zone.name) is od
        assert manager.all_spot_pools() == [spot]
        assert len(manager.all_pools()) == 2

    def test_duplicate_rejected(self, env, zone):
        manager = PoolManager()
        manager.add_spot_pool(make_spot_pool(env, zone))
        with pytest.raises(ValueError):
            manager.add_spot_pool(make_spot_pool(env, zone))

    def test_pool_of_host(self, env, zone):
        manager = PoolManager()
        pool = make_spot_pool(env, zone)
        manager.add_spot_pool(pool)
        host = make_host(env, zone)
        pool.add_host(host)
        assert manager.pool_of_host(host) is pool
        assert manager.pool_of_host(make_host(env, zone)) is None


class TestHotSpares:
    def test_take_and_deficit(self, env, zone):
        policy = HotSparePolicy(target=2)
        assert policy.deficit == 2
        policy.add_spare(make_host(env, zone))
        policy.add_spare(make_host(env, zone))
        assert policy.deficit == 0
        spare = policy.take_spare()
        assert spare is not None
        assert policy.deficit == 1
        assert policy.consumed == 1

    def test_empty_pool_returns_none(self):
        assert HotSparePolicy(target=0).take_spare() is None

    def test_negative_target_rejected(self):
        with pytest.raises(ValueError):
            HotSparePolicy(target=-1)

    def test_staging_disabled_by_default(self, env, zone):
        policy = HotSparePolicy(target=0)
        pool = make_spot_pool(env, zone)
        pool.add_host(make_host(env, zone))
        assert policy.find_staging_slot([pool]) is None

    def test_staging_finds_healthy_slot(self, env, zone):
        policy = HotSparePolicy(target=0, use_staging=True)
        pool = make_spot_pool(env, zone)
        host = make_host(env, zone)
        pool.add_host(host)
        assert policy.find_staging_slot([pool]) is host
        assert policy.staged == 1

    def test_staging_skips_excluded_pool(self, env, zone):
        policy = HotSparePolicy(target=0, use_staging=True)
        pool = make_spot_pool(env, zone)
        pool.add_host(make_host(env, zone))
        assert policy.find_staging_slot([pool], exclude_pool=pool) is None

    def test_staging_skips_warned_hosts(self, env, zone):
        policy = HotSparePolicy(target=0, use_staging=True)
        pool = make_spot_pool(env, zone)
        host = make_host(env, zone)
        host.instance._mark_warned()
        pool.add_host(host)
        assert policy.find_staging_slot([pool]) is None
