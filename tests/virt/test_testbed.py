"""DES testbed vs analytic models: they must agree."""

import pytest

from repro.backup.scheduler import RestoreScheduler
from repro.sim.kernel import Environment
from repro.virt.testbed import MicroTestbed
from repro.workloads import SpecJbbWorkload, TpcwWorkload


def make_testbed(vm_count=1, workload=TpcwWorkload, **kwargs):
    env = Environment(seed=3)
    return env, MicroTestbed(env, vm_count=vm_count,
                             workload_factory=workload, **kwargs)


class TestSteadyState:
    def test_single_stream_matches_analytic_rate(self):
        env, testbed = make_testbed(vm_count=1)
        measured = testbed.run_steady(4 * 3600.0)
        analytic = testbed.streams[testbed.vms[0].id].stream_rate_bps()
        vm_id = testbed.vms[0].id
        assert measured["per_vm_bps"][vm_id] == \
            pytest.approx(analytic, rel=0.10)

    def test_ten_streams_share_cleanly(self):
        env, testbed = make_testbed(vm_count=10)
        measured = testbed.run_steady(2 * 3600.0)
        # Well under the knee: every stream achieves its full rate.
        analytic = testbed.streams[testbed.vms[0].id].stream_rate_bps()
        for rate in measured["per_vm_bps"].values():
            assert rate == pytest.approx(analytic, rel=0.15)
        assert measured["utilization"] < 0.5

    def test_specjbb_streams_hotter_than_tpcw(self):
        env_a, tpcw = make_testbed(vm_count=1, workload=TpcwWorkload)
        env_b, jbb = make_testbed(vm_count=1, workload=SpecJbbWorkload)
        tpcw_rate = tpcw.run_steady(2 * 3600.0)["aggregate_bps"]
        jbb_rate = jbb.run_steady(2 * 3600.0)["aggregate_bps"]
        assert jbb_rate > tpcw_rate

    def test_store_stays_consistent(self):
        env, testbed = make_testbed(vm_count=3)
        testbed.run_steady(3600.0)
        for vm in testbed.vms:
            record = testbed.server.store.image(vm.id)
            assert record.commits > 10
            assert record.is_complete


class TestRevocationDrill:
    def test_single_vm_downtime_near_analytic(self):
        env, testbed = make_testbed(vm_count=1)
        vm = testbed.vms[0]
        stream = testbed.streams[vm.id]
        scheduler = RestoreScheduler(testbed.server)
        drill = testbed.revocation_drill()
        downtime, degraded = drill["per_vm"][vm.id]
        analytic_downtime = (
            stream.final_commit_downtime_s(ramped=True)
            + scheduler.lazy_restore_downtime_s(concurrent=1))
        # The DES commit contends on the full ingest link rather than
        # the conservative worst-case share, so it can only be faster.
        assert downtime <= analytic_downtime * 1.10
        assert downtime > 0.0
        assert degraded > 10.0  # ramp window + lazy paging

    def test_yank_drill_pauses_longer(self):
        env_a, ramped = make_testbed(vm_count=1)
        env_b, yank = make_testbed(vm_count=1)
        vm_r = ramped.vms[0].id
        vm_y = yank.vms[0].id
        down_ramped = ramped.revocation_drill(ramped=True)["per_vm"][vm_r][0]
        down_yank = yank.revocation_drill(ramped=False)["per_vm"][vm_y][0]
        assert down_yank > 3 * down_ramped

    def test_storm_of_ten_scales_like_fig8(self):
        env, testbed = make_testbed(vm_count=10)
        drill = testbed.revocation_drill(restore_kind="lazy", optimized=True)
        scheduler = RestoreScheduler(testbed.server)
        analytic_degraded = scheduler.lazy_restore_degraded_s(
            testbed.vms[0].memory.total_bytes, 10, True)
        for _downtime, degraded in drill["per_vm"].values():
            # Ramp window (~28 s) + concurrent lazy paging (~260 s).
            assert degraded == pytest.approx(analytic_degraded + 28.0,
                                             rel=0.25)

    def test_full_restore_drill_all_downtime(self):
        env, testbed = make_testbed(vm_count=5)
        drill = testbed.revocation_drill(restore_kind="full",
                                         optimized=True)
        scheduler = RestoreScheduler(testbed.server)
        analytic = scheduler.full_restore_downtime_s(
            testbed.vms[0].memory.total_bytes, 5, True)
        for downtime, _degraded in drill["per_vm"].values():
            assert downtime == pytest.approx(analytic, rel=0.30)

    def test_no_state_left_uncommitted(self):
        env, testbed = make_testbed(vm_count=4)
        testbed.run_steady(1800.0)
        testbed.revocation_drill()
        for vm in testbed.vms:
            assert testbed.server.store.image(vm.id).is_complete
