"""Tests for the fair-share link."""

import pytest

from repro.virt.network import FairShareLink


class TestSingleFlow:
    def test_full_capacity(self, env):
        link = FairShareLink(env, capacity_bps=100.0)
        done = link.transfer(1000.0)
        env.run()
        assert done.triggered
        assert done.value == pytest.approx(10.0)

    def test_rate_cap_limits(self, env):
        link = FairShareLink(env, capacity_bps=100.0)
        done = link.transfer(1000.0, rate_cap=10.0)
        env.run()
        assert done.value == pytest.approx(100.0)

    def test_invalid_args(self, env):
        link = FairShareLink(env, capacity_bps=100.0)
        with pytest.raises(ValueError):
            link.transfer(0)
        with pytest.raises(ValueError):
            link.transfer(10, rate_cap=0)
        with pytest.raises(ValueError):
            FairShareLink(env, capacity_bps=0)


class TestSharing:
    def test_two_equal_flows_halve_rate(self, env):
        link = FairShareLink(env, capacity_bps=100.0)
        a = link.transfer(1000.0)
        b = link.transfer(1000.0)
        env.run()
        assert a.value == pytest.approx(20.0)
        assert b.value == pytest.approx(20.0)

    def test_short_flow_releases_bandwidth(self, env):
        link = FairShareLink(env, capacity_bps=100.0)
        long_flow = link.transfer(1000.0)
        short_flow = link.transfer(100.0)
        env.run()
        # Short: 100 bytes at 50 B/s -> 2s. Long: 100 bytes in the
        # first 2s, then 900 at full rate -> 2 + 9 = 11s.
        assert short_flow.value == pytest.approx(2.0)
        assert long_flow.value == pytest.approx(11.0)

    def test_late_joiner(self, env):
        link = FairShareLink(env, capacity_bps=100.0)
        first = link.transfer(1000.0)
        def joiner():
            yield env.timeout(5.0)
            second = link.transfer(250.0)
            yield second
            return env.now
        join_proc = env.process(joiner())
        env.run()
        # First runs alone for 5s (500 bytes), then shares at 50 B/s.
        # Joiner: 250 bytes at 50 B/s -> done at t=10.  First then has
        # 250 bytes left at full rate -> done at t=12.5.
        assert join_proc.value == pytest.approx(10.0)
        assert first.value == pytest.approx(12.5)

    def test_capped_flow_leaves_rest_to_others(self, env):
        link = FairShareLink(env, capacity_bps=100.0)
        capped = link.transfer(100.0, rate_cap=10.0)
        greedy = link.transfer(900.0)
        env.run()
        # Capped takes 10 B/s; greedy gets 90 B/s -> both end at 10s.
        assert capped.value == pytest.approx(10.0)
        assert greedy.value == pytest.approx(10.0)

    def test_active_flow_count(self, env):
        link = FairShareLink(env, capacity_bps=100.0)
        link.transfer(1000.0)
        link.transfer(1000.0)
        assert link.active_flows == 2
        env.run()
        assert link.active_flows == 0

    def test_current_rate_estimate(self, env):
        link = FairShareLink(env, capacity_bps=100.0)
        assert link.current_rate() == pytest.approx(100.0)
        link.transfer(1e6)
        assert link.current_rate() == pytest.approx(50.0)
        assert link.current_rate(rate_cap=10.0) == pytest.approx(10.0)


class TestManyFlows:
    def test_equal_split_many(self, env):
        link = FairShareLink(env, capacity_bps=100.0)
        flows = [link.transfer(100.0) for _ in range(10)]
        env.run()
        for flow in flows:
            assert flow.value == pytest.approx(10.0)

    def test_total_throughput_conserved(self, env):
        link = FairShareLink(env, capacity_bps=100.0)
        sizes = [100.0, 300.0, 600.0]
        flows = [link.transfer(size) for size in sizes]
        env.run()
        # All 1000 bytes moved through a 100 B/s link: exactly 10s.
        assert max(f.value for f in flows) == pytest.approx(10.0)
