"""Tests for trace generation and the paper-shape calibration."""

import pytest

from repro.cloud.instance_types import DEFAULT_CATALOG, M3_FAMILY
from repro.cloud.zones import Region
from repro.traces import stats
from repro.traces.calibration import (
    M1_SMALL_PARAMS,
    M3_MARKET_PARAMS,
    market_params_for,
    paper_market_set,
)
from repro.traces.generator import SIX_MONTHS_S, TraceGenerator

MONTH_S = 30 * 24 * 3600.0


class TestGenerator:
    def test_market_key_and_od_price(self):
        generator = TraceGenerator(seed=2)
        trace = generator.generate_market(
            "m3.medium", "zx", M3_MARKET_PARAMS["m3.medium"],
            duration_s=MONTH_S)
        assert trace.key == ("m3.medium", "zx")
        assert trace.on_demand_price == 0.070

    def test_reproducible_per_market(self):
        a = TraceGenerator(seed=4).generate_market(
            "m3.large", "z", M3_MARKET_PARAMS["m3.large"],
            duration_s=MONTH_S)
        b = TraceGenerator(seed=4).generate_market(
            "m3.large", "z", M3_MARKET_PARAMS["m3.large"],
            duration_s=MONTH_S)
        assert list(a.prices) == list(b.prices)

    def test_markets_differ(self):
        generator = TraceGenerator(seed=4)
        a = generator.generate_market(
            "m3.medium", "z1", M3_MARKET_PARAMS["m3.medium"],
            duration_s=MONTH_S)
        b = generator.generate_market(
            "m3.medium", "z2", M3_MARKET_PARAMS["m3.medium"],
            duration_s=MONTH_S)
        assert list(a.prices) != list(b.prices)

    def test_archive_covers_market_set(self):
        region = Region.with_zones("r", 2)
        params = paper_market_set(M3_FAMILY[:2], region.zones)
        archive = TraceGenerator(seed=1).generate_archive(
            params, duration_s=7 * 24 * 3600.0)
        assert len(archive) == 4
        assert ("m3.large", "rb") in archive

    def test_quantization_applied(self):
        generator = TraceGenerator(seed=2)
        trace = generator.generate_market(
            "m3.medium", "z", M3_MARKET_PARAMS["m3.medium"],
            duration_s=MONTH_S)
        raw = generator.generate_market(
            "m3.medium", "z2", M3_MARKET_PARAMS["m3.medium"],
            duration_s=MONTH_S, quantize_decimals=None)
        assert len(trace) <= len(raw) + 1
        assert all(round(p, 4) == p for p in trace.prices[:100])


class TestPaperCalibration:
    """The Figure 6 shapes the synthetic markets must reproduce."""

    @pytest.fixture(scope="class")
    def six_month_traces(self):
        generator = TraceGenerator(seed=60)
        return {
            name: generator.generate_market(
                name, "z", params, duration_s=SIX_MONTHS_S)
            for name, params in M3_MARKET_PARAMS.items()
        }

    def test_medium_market_is_highly_stable(self, six_month_traces):
        # Paper: "the m3.medium spot prices over our six month period
        # are highly stable" — a handful of crossings, not hundreds.
        assert stats.spike_count(six_month_traces["m3.medium"]) < 30

    def test_larger_markets_are_volatile(self, six_month_traces):
        for name in ("m3.large", "m3.xlarge", "m3.2xlarge"):
            assert stats.spike_count(six_month_traces[name]) > 100

    def test_availability_band(self, six_month_traces):
        # Fig 6a: direct spot availability at bid = on-demand sits
        # between ~90% and ~99.99% depending on the type.
        for name, trace in six_month_traces.items():
            availability = stats.availability_at_bid(
                trace, trace.on_demand_price)
            assert 0.90 <= availability <= 0.9999, (name, availability)

    def test_mean_prices_far_below_on_demand(self, six_month_traces):
        # Fig 6a: "spot prices are extremely low on average".
        for name, trace in six_month_traces.items():
            ratio = trace.time_weighted_mean() / trace.on_demand_price
            assert ratio < 0.5, (name, ratio)

    def test_medium_mean_supports_5x_savings(self, six_month_traces):
        # SpotCheck's all-in m3.medium cost must land near $0.015/hr:
        # spot mean + ~$0.007 backup share < ~0.02.
        mean = six_month_traces["m3.medium"].time_weighted_mean()
        assert mean + 0.007 < 0.02

    def test_price_jumps_span_orders_of_magnitude(self, six_month_traces):
        # Fig 6b: hourly jumps reach thousands of percent.
        increases, _ = stats.price_jump_cdf(six_month_traces["m3.large"])
        assert increases.max() > 1000.0

    def test_spikes_rise_above_on_demand(self, six_month_traces):
        # Fig 1 / Fig 6b: spikes go "well above" the on-demand price.
        for name in ("m3.large", "m3.2xlarge"):
            trace = six_month_traces[name]
            assert trace.prices.max() > 2 * trace.on_demand_price


class TestParamsFactories:
    def test_m3_passthrough(self):
        medium = DEFAULT_CATALOG.get("m3.medium")
        assert market_params_for(medium) is M3_MARKET_PARAMS["m3.medium"]

    def test_volatility_scaling(self):
        medium = DEFAULT_CATALOG.get("m3.medium")
        scaled = market_params_for(medium, volatility_scale=2.0)
        assert scaled.spike_rate_per_hour == pytest.approx(
            2 * M3_MARKET_PARAMS["m3.medium"].spike_rate_per_hour)

    def test_non_m3_derivation(self):
        c3 = DEFAULT_CATALOG.get("c3.large")
        params = market_params_for(c3)
        assert params.on_demand_price == c3.on_demand_price
        assert params.spike_rate_per_hour > 0

    def test_m1_small_fig1_shape(self):
        # Figure 1's m1.small spikes to ~$5/hr vs $0.06 on-demand.
        assert M1_SMALL_PARAMS.spike_multiple_max >= 80
        assert M1_SMALL_PARAMS.on_demand_price == 0.06

    def test_market_set_zone_jitter(self):
        region = Region.with_zones("r", 3)
        medium = DEFAULT_CATALOG.get("m3.medium")
        params = paper_market_set([medium], region.zones, zone_jitter=0.25)
        rates = {p.spike_rate_per_hour for p in params.values()}
        assert len(rates) == 3
