"""Condition-driven hot-spare replenishment: no polling at target."""

from repro.cloud.api import CloudApi
from repro.cloud.instance_types import M3_CATALOG
from repro.cloud.zones import default_region
from repro.core.config import SpotCheckConfig
from repro.core.controller import SpotCheckController
from repro.sim.kernel import Environment
from repro.traces.archive import PriceTrace, TraceArchive

DAY = 24 * 3600.0


def build(hot_spares=2, on_demand_capacity=None):
    env = Environment(seed=42)
    region = default_region(1)
    zone = region.zones[0]
    api = CloudApi(env, region, M3_CATALOG,
                   on_demand_capacity=on_demand_capacity)
    archive = TraceArchive()
    archive.add(PriceTrace([0.0, 10 * DAY], [0.014, 0.014],
                           "m3.medium", zone.name, 0.07))
    controller = SpotCheckController(env, api, SpotCheckConfig(
        hot_spares=hot_spares, return_to_spot=False))
    controller.install_pools(archive, zone)
    return env, api, controller


class TestConditionDrivenSpares:
    def test_zero_events_while_at_target(self):
        env, api, controller = build()
        env.run(until=600.0)
        assert controller.spares.available == 2
        settled = env.events_processed
        env.run(until=5 * DAY)
        # A calm market, a full spare pool: the replenisher sleeps on
        # a bare event, so days of simulated time cost zero wakeups
        # (the old 60 s poll burned ~7200 events here).
        assert env.events_processed == settled
        stats = controller.spares_drive_stats()
        assert stats["wakes"] == 0
        assert stats["polls"] == 0
        assert stats["provisioned"] == 2

    def test_deficit_edge_wakes_replenisher(self):
        env, api, controller = build()
        env.run(until=600.0)
        taken = controller.spares.take_spare()
        assert taken is not None
        # No 60 s poll latency: the deficit edge fires the wakeup, so
        # the replacement arrives after just the launch latency.
        env.run(until=700.0)
        assert controller.spares.available == 2
        stats = controller.spares_drive_stats()
        assert stats["wakes"] == 1
        assert stats["polls"] == 0
        assert stats["provisioned"] == 3

    def test_capacity_refusal_falls_back_to_backoff(self):
        env, api, controller = build(hot_spares=2, on_demand_capacity=1)
        env.run(until=600.0)
        # Only one spare could launch; the refusal path polls with the
        # 60 s backoff instead of spinning on the deficit.
        assert controller.spares.available == 1
        stats = controller.spares_drive_stats()
        assert stats["polls"] > 0

    def test_finalize_cancels_pending_wakeup(self):
        env, api, controller = build()
        env.run(until=600.0)
        assert controller._spares_wakeup is not None
        controller.finalize()
        env.run(until=601.0)
        # The replenisher saw the finalize kick and exited: no parked
        # wakeup, and no trailing 60 s timeout left in the heap.
        assert controller._spares_wakeup is None
        settled = env.events_processed
        env.run(until=DAY)
        assert env.events_processed == settled
