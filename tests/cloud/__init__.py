"""Test package."""
