"""Figure 9: TPC-W response time vs concurrent lazy restorations.

Zero concurrent restores is normal operation (~29 ms); during a lazy
restore the restoring VM's response time roughly doubles (~60 ms), and
additional concurrent restores barely move it because the backup server
partitions bandwidth per VM.
"""

from repro.workloads import Conditions, TpcwWorkload

CONCURRENCY = (0, 1, 5, 10)


def run(concurrency=CONCURRENCY):
    workload = TpcwWorkload()
    rows = []
    for n in concurrency:
        if n == 0:
            conditions = Conditions()
        else:
            conditions = Conditions(restoring=True, restore_concurrency=n)
        rows.append({
            "concurrent": n,
            "response_ms": workload.response_time_ms(conditions),
        })
    return {"rows": rows, "baseline_ms": workload.baseline_response_ms}
