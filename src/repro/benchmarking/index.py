"""Portfolio-drive benchmark: rebalancing must stay crossing-driven.

The index-tracking portfolio (PR 8) registers two price watches per
spot pool and rearms them on every reweigh.  The failure mode to guard
against is sneaky: a watch band that hugs the current price refires on
every trace point, silently reverting the threshold-indexed drive
(PR 5) to the per-point replay it replaced.  This benchmark runs the
same cell twice on one archive — the 1P-M baseline, then a portfolio
policy — and reports both cells' market-drive counters.  The floor
check holds the portfolio cell's ``delivered_fraction`` (kernel events
delivered per trace point) to a small minority; a per-point drive sits
at 1.0.
"""

import time

from repro.experiments.scenario import PolicySimulation, ScenarioConfig


def _run_cell(policy, archive, seed, days, vms):
    config = ScenarioConfig(policy=policy, seed=seed, days=days, vms=vms)
    simulation = PolicySimulation(config, archive=archive)
    started = time.perf_counter()
    summary, controller = simulation.run(return_controller=True)
    wall = time.perf_counter() - started
    totals = {"points": 0, "wakes": 0, "delivered": 0, "rearms": 0,
              "stale_skips": 0}
    for pool in controller.pools.all_spot_pools():
        stats = pool.market.drive_stats()
        for key in totals:
            totals[key] += stats[key]
    row = dict(totals)
    row["policy"] = policy
    row["wall_s"] = wall
    row["migrations"] = summary["migrations"]
    row["delivered_fraction"] = \
        totals["delivered"] / max(1, totals["points"])
    allocation = controller.allocation
    if hasattr(allocation, "stats"):
        row["crossings"] = allocation.stats.get("crossings", 0)
        row["rebalance_moves"] = allocation.stats.get("moves_planned", 0)
    return row


def measure_index_drive(days=2.0, seed=11, vms=4,
                        portfolio_policy="IT-0.125"):
    """Benchmark the market drive under a portfolio policy.

    Returns per-cell drive counters for the 1P-M baseline and
    ``portfolio_policy`` on the same archive, plus the derived
    ``extra_delivered`` (events the portfolio added over the baseline)
    and the portfolio cell's ``delivered_fraction``.
    """
    archive = PolicySimulation.build_archive(seed, days * 24 * 3600.0)
    baseline = _run_cell("1P-M", archive, seed, days, vms)
    portfolio = _run_cell(portfolio_policy, archive, seed, days, vms)
    return {
        "days": days,
        "seed": seed,
        "vms": vms,
        "baseline": baseline,
        "portfolio": portfolio,
        "extra_delivered": (portfolio["delivered"]
                            - baseline["delivered"]),
        "delivered_fraction": portfolio["delivered_fraction"],
    }
