"""Shared fixtures for the test suite."""

import pytest

from repro.cloud.api import CloudApi
from repro.cloud.instance_types import M3_CATALOG
from repro.cloud.zones import default_region
from repro.sim.kernel import Environment
from repro.traces.archive import PriceTrace

GUEST_BYTES = int(3.75 * 0.45 * 1024 ** 3)


@pytest.fixture
def env():
    return Environment(seed=1234)


@pytest.fixture
def region():
    return default_region(2)


@pytest.fixture
def zone(region):
    return region.zones[0]


@pytest.fixture
def api(env, region):
    return CloudApi(env, region, M3_CATALOG)


def flat_trace(price, type_name="m3.medium", zone_name="us-east-1a",
               on_demand_price=0.07, duration_s=30 * 24 * 3600.0):
    """A constant-price trace (one point at t=0)."""
    return PriceTrace([0.0, duration_s], [price, price], type_name,
                      zone_name, on_demand_price)


def step_trace(steps, type_name="m3.medium", zone_name="us-east-1a",
               on_demand_price=0.07):
    """A trace from explicit (time, price) steps."""
    times = [t for t, _p in steps]
    prices = [p for _t, p in steps]
    return PriceTrace(times, prices, type_name, zone_name, on_demand_price)


def run_process(env, generator):
    """Run ``generator`` as a process to completion; return its value."""
    return env.run(until=env.process(generator))
