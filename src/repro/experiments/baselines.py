"""Non-derivative baselines: what customers get *without* SpotCheck.

The paper's headline availability claim is relative: SpotCheck's
99.9989 % "is roughly 10x that of directly using spot servers, which
... have an availability between 90% and 99%".  This module computes,
on the same price traces, what a customer would experience by:

* **naive spot** — bid the on-demand price, lose the server (and all
  unsaved memory state) at every revocation, re-request when the price
  recovers, and restart the application from its last durable state;
* **checkpointed spot** — the prior-work approach (Section 7): the
  application checkpoints itself to disk at coarse intervals, so each
  revocation additionally loses half a checkpoint interval of work;
* **on-demand only** — perfect availability at full price.
"""

from dataclasses import dataclass

import numpy as np

from repro.traces.stats import availability_at_bid

#: Time to notice the revocation, re-request a server when the price
#: recovers, boot, and restart the application (paper Table 1: spot
#: starts average ~227 s; application warm-up added on top).
DEFAULT_RESTART_S = 227.0 + 120.0


@dataclass(frozen=True)
class BaselineResult:
    """One baseline's outcome on one trace."""

    name: str
    cost_per_hour: float
    availability: float
    revocations: int
    #: Seconds of computation lost (unsaved state), total.
    lost_work_s: float

    @property
    def unavailability_pct(self):
        return 100.0 * (1.0 - self.availability)


def naive_spot(trace, restart_s=DEFAULT_RESTART_S, bid=None):
    """Directly renting spot servers with no revocation handling.

    The server is down whenever the price exceeds the bid, plus the
    restart transient after every recovery.  All memory state at each
    revocation is lost (counted as lost work since the last durable
    write — here, since the revocation, i.e. the in-flight work).
    """
    bid = trace.on_demand_price if bid is None else bid
    horizon = max(trace.end - trace.start, 1e-9)
    availability_price = availability_at_bid(trace, bid)
    crossings = trace.crossings_above(bid)
    down_restart = len(crossings) * restart_s
    availability = max(availability_price - down_restart / horizon, 0.0)

    # Paying the spot price only while below the bid.
    durations = trace.durations()
    below = trace.prices <= bid
    paid_seconds = durations[below].sum()
    dollars = float(np.dot(trace.prices[below], durations[below])) / 3600.0
    cost = dollars / (paid_seconds / 3600.0) if paid_seconds else 0.0

    return BaselineResult(
        name="naive-spot",
        cost_per_hour=cost,
        availability=availability,
        revocations=len(crossings),
        lost_work_s=len(crossings) * restart_s,
    )


def checkpointed_spot(trace, checkpoint_interval_s=3600.0,
                      restart_s=DEFAULT_RESTART_S, bid=None):
    """Spot with coarse application-level checkpointing (prior work).

    Each revocation costs the restart transient plus, on average, half
    a checkpoint interval of recomputed work.
    """
    base = naive_spot(trace, restart_s=restart_s, bid=bid)
    horizon = trace.end - trace.start
    recompute = base.revocations * checkpoint_interval_s / 2.0
    availability = max(base.availability - recompute / horizon, 0.0)
    return BaselineResult(
        name="checkpointed-spot",
        cost_per_hour=base.cost_per_hour,
        availability=availability,
        revocations=base.revocations,
        lost_work_s=base.lost_work_s + recompute,
    )


def on_demand_only(trace):
    """Renting the equivalent on-demand server: the cost ceiling."""
    return BaselineResult(
        name="on-demand",
        cost_per_hour=trace.on_demand_price,
        availability=1.0,
        revocations=0,
        lost_work_s=0.0,
    )


def compare(trace, spotcheck_summary):
    """All baselines next to a SpotCheck run on the same market.

    ``spotcheck_summary`` is a controller summary dict.  Returns rows
    of (name, cost/hr, availability, lost work) plus the availability
    improvement factor over naive spot (the paper's ~10x claim —
    measured as the ratio of unavailabilities).
    """
    rows = [
        naive_spot(trace),
        checkpointed_spot(trace),
        on_demand_only(trace),
    ]
    spot_unavail = 1.0 - rows[0].availability
    spotcheck_unavail = 1.0 - spotcheck_summary["availability"]
    improvement = spot_unavail / max(spotcheck_unavail, 1e-12)
    return {
        "baselines": rows,
        "spotcheck": {
            "cost_per_hour": spotcheck_summary["cost_per_vm_hour"],
            "availability": spotcheck_summary["availability"],
            "lost_work_s": 0.0,
        },
        "availability_improvement_vs_spot": improvement,
    }
