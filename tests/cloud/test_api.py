"""Tests for the cloud API facade."""

import pytest

from repro.cloud.api import CloudApi
from repro.cloud.errors import BidTooLow, CapacityError, InvalidOperation
from repro.cloud.instance_types import M3_CATALOG
from repro.cloud.instances import InstanceState, Market
from repro.cloud.zones import default_region

from tests.conftest import flat_trace, run_process, step_trace

MEDIUM = M3_CATALOG.get("m3.medium")


@pytest.fixture
def cloud(env, region, zone):
    api = CloudApi(env, region, M3_CATALOG)
    api.install_market(MEDIUM, zone, flat_trace(0.02))
    return api


class TestRunInstance:
    def test_on_demand_launch(self, env, cloud, zone):
        def flow():
            instance = yield cloud.run_instance(
                MEDIUM, zone, Market.ON_DEMAND)
            return instance
        instance = run_process(env, flow())
        assert instance.state is InstanceState.RUNNING
        # Table 1 start latency for on-demand: 47..86 seconds.
        assert 47 <= env.now <= 86

    def test_spot_launch_registers_in_market(self, env, cloud, zone):
        def flow():
            instance = yield cloud.run_instance(
                MEDIUM, zone, Market.SPOT, bid=0.07)
            return instance
        instance = run_process(env, flow())
        market = cloud.marketplace.market(MEDIUM, zone)
        assert instance in market.instances()
        # Table 1 start latency for spot: 100..409 seconds.
        assert 100 <= env.now <= 409

    def test_spot_bid_below_price_rejected(self, env, cloud, zone):
        def flow():
            yield cloud.run_instance(MEDIUM, zone, Market.SPOT, bid=0.01)
        with pytest.raises(BidTooLow):
            run_process(env, flow())

    def test_spot_without_bid_rejected(self, env, cloud, zone):
        def flow():
            yield cloud.run_instance(MEDIUM, zone, Market.SPOT)
        with pytest.raises(ValueError):
            run_process(env, flow())

    def test_on_demand_capacity_limit(self, env, region, zone):
        api = CloudApi(env, region, M3_CATALOG, on_demand_capacity=1)
        def flow():
            yield api.run_instance(MEDIUM, zone, Market.ON_DEMAND)
            yield api.run_instance(MEDIUM, zone, Market.ON_DEMAND)
        with pytest.raises(CapacityError):
            run_process(env, flow())

    def test_capacity_freed_on_terminate(self, env, region, zone):
        api = CloudApi(env, region, M3_CATALOG, on_demand_capacity=1)
        def flow():
            first = yield api.run_instance(MEDIUM, zone, Market.ON_DEMAND)
            yield api.terminate_instance(first)
            second = yield api.run_instance(MEDIUM, zone, Market.ON_DEMAND)
            return second
        instance = run_process(env, flow())
        assert instance.is_running


class TestRunInstancesBatch:
    def test_batch_pays_one_launch_latency(self, env, cloud, zone):
        def flow():
            instances = yield cloud.run_instances(
                MEDIUM, zone, Market.ON_DEMAND, 50)
            return instances
        instances = run_process(env, flow())
        assert len(instances) == 50
        assert all(i.state is InstanceState.RUNNING for i in instances)
        # One control-plane latency for the whole batch, not 50.
        assert 47 <= env.now <= 86

    def test_batch_spot_registers_every_instance(self, env, cloud, zone):
        def flow():
            instances = yield cloud.run_instances(
                MEDIUM, zone, Market.SPOT, 8, bid=0.07)
            return instances
        instances = run_process(env, flow())
        market = cloud.marketplace.market(MEDIUM, zone)
        registered = market.instances()
        assert all(i in registered for i in instances)
        assert all(i.id in cloud.instances for i in instances)

    def test_batch_checked_against_capacity(self, env, region, zone):
        api = CloudApi(env, region, M3_CATALOG, on_demand_capacity=3)
        def flow():
            yield api.run_instances(MEDIUM, zone, Market.ON_DEMAND, 5)
        with pytest.raises(CapacityError):
            run_process(env, flow())
        # The refused batch reserved nothing.
        assert api._running_on_demand == 0

    def test_batch_bid_below_price_rejected(self, env, cloud, zone):
        def flow():
            yield cloud.run_instances(MEDIUM, zone, Market.SPOT, 4,
                                      bid=0.01)
        with pytest.raises(BidTooLow):
            run_process(env, flow())

    def test_empty_batch_rejected(self, env, cloud, zone):
        def flow():
            yield cloud.run_instances(MEDIUM, zone, Market.ON_DEMAND, 0)
        with pytest.raises(ValueError):
            run_process(env, flow())

    def test_batch_billing_opens_per_instance(self, env, cloud, zone):
        def flow():
            instances = yield cloud.run_instances(
                MEDIUM, zone, Market.ON_DEMAND, 3)
            return instances
        instances = run_process(env, flow())
        for instance in instances:
            assert instance.id in cloud.billing.records


class TestTerminate:
    def test_graceful_terminate_stops_billing_immediately(
            self, env, cloud, zone):
        def flow():
            instance = yield cloud.run_instance(
                MEDIUM, zone, Market.ON_DEMAND)
            launch_time = env.now
            yield env.timeout(3600.0)
            yield cloud.terminate_instance(instance)
            return instance, launch_time
        instance, launch_time = run_process(env, flow())
        record = cloud.billing.records[instance.id]
        assert record.end == pytest.approx(launch_time + 3600.0)
        assert record.cost == pytest.approx(0.07)
        assert instance.state is InstanceState.TERMINATED

    def test_double_terminate_rejected(self, env, cloud, zone):
        def flow():
            instance = yield cloud.run_instance(
                MEDIUM, zone, Market.ON_DEMAND)
            yield cloud.terminate_instance(instance)
            yield cloud.terminate_instance(instance)
        with pytest.raises(InvalidOperation):
            run_process(env, flow())


class TestRevocationTeardown:
    def test_forced_termination_releases_attachments(self, env, region, zone):
        api = CloudApi(env, region, M3_CATALOG)
        api.install_market(
            MEDIUM, zone, step_trace([(0, 0.02), (5000, 0.50)]))
        def flow():
            instance = yield api.run_instance(
                MEDIUM, zone, Market.SPOT, bid=0.07)
            volume = api.create_volume(8, zone)
            yield api.attach_volume(volume, instance)
            subnet = api.vpc.create_subnet(zone)
            eni = api.create_interface(subnet)
            yield api.attach_interface(eni, instance)
            yield instance.terminated
            return instance, volume, eni
        instance, volume, eni = run_process(env, flow())
        assert instance.state is InstanceState.TERMINATED
        assert volume.attached_to is None
        assert not eni.is_attached
        # Billing closed at the forced termination.
        assert api.billing.records[instance.id].end == pytest.approx(5120.0)

    def test_spot_billing_integrates_until_revocation(self, env, region, zone):
        api = CloudApi(env, region, M3_CATALOG)
        api.install_market(
            MEDIUM, zone, step_trace([(0, 0.036), (7200 + 300, 9.99)]))
        def flow():
            instance = yield api.run_instance(
                MEDIUM, zone, Market.SPOT, bid=0.07)
            yield instance.terminated
            return instance
        instance = run_process(env, flow())
        record = api.billing.records[instance.id]
        hours = (record.end - record.start) / 3600.0
        # Pays 0.036 until the spike, then the spike price for the
        # 120-second warning tail.
        assert record.cost == pytest.approx(
            0.036 * (hours - 120 / 3600.0) + 9.99 * 120 / 3600.0, rel=1e-6)


class TestVolumesAndInterfaces:
    def test_attach_detach_latencies(self, env, cloud, zone):
        def flow():
            instance = yield cloud.run_instance(
                MEDIUM, zone, Market.ON_DEMAND)
            volume = cloud.create_volume(8, zone)
            before = env.now
            yield cloud.attach_volume(volume, instance)
            attach_latency = env.now - before
            before = env.now
            yield cloud.detach_volume(volume)
            detach_latency = env.now - before
            return attach_latency, detach_latency
        attach_latency, detach_latency = run_process(env, flow())
        assert 4.4 <= attach_latency <= 9.3     # Table 1
        assert 9.6 <= detach_latency <= 11.3    # Table 1

    def test_interface_lifecycle(self, env, cloud, zone):
        def flow():
            instance = yield cloud.run_instance(
                MEDIUM, zone, Market.ON_DEMAND)
            subnet = cloud.vpc.create_subnet(zone)
            eni = cloud.create_interface(subnet)
            yield cloud.attach_interface(eni, instance)
            attached = eni.is_attached
            yield cloud.detach_interface(eni)
            return attached, eni.is_attached
        attached, detached = run_process(env, flow())
        assert attached and not detached

    def test_running_instances_listing(self, env, cloud, zone):
        def flow():
            a = yield cloud.run_instance(MEDIUM, zone, Market.ON_DEMAND)
            b = yield cloud.run_instance(MEDIUM, zone, Market.ON_DEMAND)
            yield cloud.terminate_instance(a)
            return a, b
        a, b = run_process(env, flow())
        running = cloud.running_instances()
        assert b in running and a not in running
