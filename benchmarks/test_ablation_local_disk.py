"""Ablation: network volumes (EBS) vs DRBD-style local-disk mirroring.

The prototype requires network volumes, whose detach/attach dominates
the ~23 s migration downtime; Section 5 argues local disks could
instead be mirrored asynchronously within the warning period.  This
bench quantifies the trade across disk-write intensities.
"""

from repro.cloud.latency import OperationLatencyModel
from repro.experiments.reporting import format_table
from repro.sim.rng import RngRegistry
from repro.virt.disk import (
    DiskModel,
    LocalDiskMirror,
    migration_downtime_comparison,
)
from repro.virt.migration.checkpoint import CheckpointStream
from repro.workloads import TpcwWorkload

GiB = 1024 ** 3

WRITE_RATES_MBPS = (0.5, 2.0, 5.0, 10.0, 20.0)


def sweep():
    stream = CheckpointStream(TpcwWorkload().memory_model(int(1.7 * GiB)))
    latency = OperationLatencyModel(RngRegistry(9).stream("latency"))
    rows = []
    for rate in WRITE_RATES_MBPS:
        disk = DiskModel(total_bytes=32 * GiB, write_rate_bps=rate * 1e6)
        mirror = LocalDiskMirror(disk)
        rows.append({
            "rate": rate,
            "result": migration_downtime_comparison(stream, mirror, latency),
        })
    return rows


def test_ablation_local_disk_mirroring(benchmark, report):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    light = rows[0]["result"]
    heavy = rows[-1]["result"]
    # Light writers migrate faster on mirrored local disk (no EBS ops).
    assert light["local"]["total_s"] < light["ebs"]["total_s"]
    # Heavy writers exceed the mirror bandwidth: EBS is mandatory.
    assert not heavy["local"]["feasible"]
    # EBS downtime is write-rate independent (the paper's 23 s floor).
    ebs_totals = [row["result"]["ebs"]["total_s"] for row in rows]
    assert max(ebs_totals) - min(ebs_totals) < 1e-9

    table_rows = []
    for row in rows:
        result = row["result"]
        sync = result["local"]["sync_s"]
        table_rows.append((
            f"{row['rate']:.1f}",
            f"{result['ebs']['total_s']:.1f}",
            "inf" if sync == float("inf") else f"{sync:.1f}",
            "inf" if sync == float("inf")
            else f"{result['local']['total_s']:.1f}",
            "yes" if result["local"]["feasible"] else "NO",
        ))
    text = format_table(
        ["disk writes (MB/s)", "EBS migration (s)", "final sync (s)",
         "local-disk migration (s)", "mirror keeps up?"],
        table_rows,
        title=("Ablation — network volumes vs DRBD-style local-disk "
               "mirroring (downtime per revocation migration, 12 MB/s "
               "mirror bandwidth)"))
    report("ablation_local_disk", text)
