"""The bulk fleet-provisioning path and its steady-flush wiring."""

import pytest

from repro.cloud.api import CloudApi
from repro.cloud.instance_types import M3_CATALOG
from repro.cloud.instances import Market
from repro.cloud.zones import default_region
from repro.core.config import SpotCheckConfig
from repro.core.controller import SpotCheckController
from repro.sim.kernel import Environment
from repro.traces.archive import PriceTrace, TraceArchive

DAY = 24 * 3600.0


def build(config=None):
    env = Environment(seed=17)
    region = default_region(1)
    zone = region.zones[0]
    api = CloudApi(env, region, M3_CATALOG)
    itype = M3_CATALOG.get("m3.2xlarge")
    archive = TraceArchive()
    archive.add(PriceTrace([0.0, 10 * DAY], [0.08, 0.08],
                           itype.name, zone.name, itype.on_demand_price))
    controller = SpotCheckController(env, api, config or SpotCheckConfig())
    controller.install_pools(archive, zone, type_names=[itype.name])
    return env, api, controller


def provision(env, controller, count, **kwargs):
    customer = controller.start_customer("fleet")
    vms = env.run(until=controller.provision_fleet(customer, count,
                                                   **kwargs))
    return customer, vms


class TestProvisionFleet:
    def test_boots_exact_count_on_sliced_hosts(self):
        env, api, controller = build()
        customer, vms = provision(env, controller, 20)
        assert len(vms) == 20
        pool = controller.pools.spot_pool("m3.2xlarge",
                                          controller.zone.name)
        # m3.2xlarge slices into 8 m3.medium slots -> ceil(20/8) hosts.
        assert pool.host_count == 3
        assert pool.vm_count == 20
        assert all(vm.host.instance.market is Market.SPOT for vm in vms)
        assert all(vm.customer is customer for vm in vms)

    def test_every_vm_gets_a_backup_assignment(self):
        env, api, controller = build()
        _, vms = provision(env, controller, 12)
        for vm in vms:
            backup = vm.backup_assignment
            assert backup is not None
            assert vm.id in backup.store

    def test_backup_cap_spreads_across_servers(self):
        env, api, controller = build(SpotCheckConfig(vms_per_backup=8))
        provision(env, controller, 20)
        assert controller.backup_pool.server_count == 3

    def test_steady_flush_forms_one_cohort(self):
        env, api, controller = build(SpotCheckConfig(
            vms_per_backup=100, steady_checkpoint_flush=True))
        _, vms = provision(env, controller, 16)
        stats = controller.migrations.flush_drive_stats()
        assert stats["schedulers"] == 1
        assert stats["members"] == 16
        assert stats["cohorts_created"] == 1

    def test_finalize_settles_flush_credits(self):
        env, api, controller = build(SpotCheckConfig(
            vms_per_backup=100, steady_checkpoint_flush=True,
            defer_flush_accounting=True))
        _, vms = provision(env, controller, 10)
        env.run(until=env.now + 3600.0)
        controller.finalize()
        scheduler = next(iter(
            controller.migrations._flush_schedulers.values()))
        # An hour of steady streaming at the analytic rate, credited
        # to every member at settle despite O(1) rounds.
        rate = vms[0].checkpoint_stream.stream_rate_bps()
        for vm in vms:
            assert scheduler.flushed[vm.id] == \
                pytest.approx(rate * 3600.0, rel=0.15)
            # Defer mode lands the whole credit as one commit.
            image = vm.backup_assignment.store.image(vm.id)
            assert image.commits >= 1

    def test_released_backup_leaves_flush_group(self):
        env, api, controller = build(SpotCheckConfig(
            vms_per_backup=100, steady_checkpoint_flush=True))
        _, vms = provision(env, controller, 4)
        assert controller.migrations.flush_drive_stats()["members"] == 4
        controller.release_backup(vms[0])
        assert controller.migrations.flush_drive_stats()["members"] == 3

    def test_count_must_be_positive(self):
        env, api, controller = build()
        customer = controller.start_customer("fleet")
        with pytest.raises(ValueError):
            env.run(until=controller.provision_fleet(customer, 0))
