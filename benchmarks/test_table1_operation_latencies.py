"""Table 1: latency of SpotCheck's EC2 operations (m3.medium).

Paper values (seconds, 20 samples over one week):

    Start spot instance        227 / 224 / 409 / 100
    Start on-demand instance    61 /  62 /  86 /  47
    Terminate instance         135 / 136 / 147 / 133
    Unmount and detach EBS    10.3 / 10.3 / 11.3 / 9.6
    Attach and mount EBS         5 / 5.1 / 9.3 / 4.4
    Attach network interface     3 / 3.75 / 14 / 1
    Detach network interface     2 / 3.5 / 12 / 1
"""

import pytest

from repro.experiments import table1
from repro.experiments.reporting import format_table


def test_table1_operation_latencies(benchmark, report):
    result = benchmark.pedantic(
        lambda: table1.run(seed=20140401, samples=20), rounds=1, iterations=1)

    rows = []
    for row in result["rows"]:
        spec = row["paper"]
        rows.append((row["operation"],
                     round(row["median"], 1), round(row["mean"], 1),
                     round(row["max"], 1), round(row["min"], 1),
                     f"{spec.median}/{spec.mean}/{spec.max}/{spec.min}"))
        # Every sampled statistic inside the paper's observed range.
        assert spec.min - 1e-9 <= row["min"]
        assert row["max"] <= spec.max + 1e-9
        # 20 samples wobble (the paper's own statistics carry the
        # same n=20 noise); tolerate a relative band with an absolute
        # floor for the second-scale operations.
        assert row["median"] == pytest.approx(spec.median, rel=0.35, abs=1.5)
        assert row["mean"] == pytest.approx(spec.mean, rel=0.35, abs=1.5)

    # The headline constant the policy simulations are seeded with.
    assert result["migration_downtime_mean"] == pytest.approx(22.65, abs=0.8)

    text = format_table(
        ["operation", "median", "mean", "max", "min",
         "paper (med/mean/max/min)"],
        rows,
        title=("Table 1 — operation latencies, 20 samples (s); "
               f"mean migration downtime "
               f"{result['migration_downtime_mean']:.2f}s (paper 22.65s)"))
    report("table1_operation_latencies", text)
