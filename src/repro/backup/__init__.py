"""Backup servers: the checkpoint sink of bounded-time migration.

Each backup server (an m3.xlarge in the paper's prototype) absorbs the
continuous checkpoint streams of up to ~35-40 nested VMs, and serves
their memory images back during restorations.  The model captures the
two resource effects behind Figures 7-9:

* the *write path* — aggregate checkpoint streams saturate the disk and
  network around 35 VMs, degrading all hosted VMs' performance; and
* the *read path* — concurrent lazy restores issue random reads whose
  aggregate throughput collapses with concurrency unless the
  ``fadvise``-style readahead optimization is enabled.
"""

from repro.backup.server import BackupServer, BackupServerSpec
from repro.backup.store import CheckpointStore
from repro.backup.scheduler import RestoreScheduler

__all__ = [
    "BackupServer",
    "BackupServerSpec",
    "CheckpointStore",
    "RestoreScheduler",
]
