"""Bidding policies (Section 4.3).

SpotCheck deliberately keeps bidding simple: "either bid the equivalent
on-demand price for a spot server or bid k times the on-demand price".
Bidding the on-demand price approximates the knee of the
availability-bid curve (Figure 6a); bidding above it trades money for a
lower revocation frequency and makes proactive migration possible (the
controller can react inside the band between the on-demand price and
the bid).
"""


class BidPolicy:
    """Computes the bid for spot servers of a given type."""

    def __init__(self, multiple=1.0):
        if multiple < 1.0:
            raise ValueError("bid multiple must be at least 1")
        self.multiple = multiple

    def bid_for(self, itype, trace=None):
        """The bid, $/hour, for spot servers of ``itype``.

        ``trace`` (the market's price history) is accepted for
        interface compatibility with history-driven policies.
        """
        return itype.on_demand_price * self.multiple

    @property
    def allows_proactive(self):
        """Proactive migration needs headroom between od price and bid."""
        return self.multiple > 1.0

    def __repr__(self):
        return f"<BidPolicy {self.multiple}x on-demand>"


class KneeBidPolicy(BidPolicy):
    """Bid at the knee of the market's availability-bid curve.

    Section 4.3: "simply bidding the on-demand price is an
    approximation of bidding an 'optimal' value that is equal to the
    knee of this availability-bid curve", which empirically sits
    "slightly lower than the on-demand price".  This policy computes
    the knee from price history: the smallest bid that would have kept
    the server for at least ``availability_target`` of the time,
    clamped to at most the on-demand price.

    Parameters
    ----------
    availability_target:
        Availability the bid must have bought historically.
    floor_fraction:
        Never bid below this fraction of the on-demand price (a bid in
        the noise band would thrash).
    """

    def __init__(self, availability_target=0.995, floor_fraction=0.3):
        super().__init__(1.0)
        if not 0 < availability_target <= 1:
            raise ValueError("availability_target must lie in (0, 1]")
        if not 0 < floor_fraction <= 1:
            raise ValueError("floor_fraction must lie in (0, 1]")
        self.availability_target = availability_target
        self.floor_fraction = floor_fraction

    def bid_for(self, itype, trace=None):
        if trace is None:
            return itype.on_demand_price
        from repro.traces.stats import availability_cdf
        import numpy as np
        ratios, availability = availability_cdf(trace)
        above_target = np.flatnonzero(
            availability >= self.availability_target)
        if len(above_target) == 0:
            knee_ratio = 1.0
        else:
            knee_ratio = float(ratios[above_target[0]])
        knee_ratio = min(max(knee_ratio, self.floor_fraction), 1.0)
        return itype.on_demand_price * knee_ratio

    @property
    def allows_proactive(self):
        return False

    def __repr__(self):
        return f"<KneeBidPolicy target={self.availability_target}>"


def make_bid_policy(name, multiple=1.5, availability_target=0.995,
                    floor_fraction=0.3):
    """Factory for the named bid policies.

    ``floor_fraction`` reaches the knee policy's thrash floor: the bid
    never drops below that fraction of the on-demand price even when
    the availability knee of a very quiet market sits lower.
    """
    if name == "on-demand":
        return BidPolicy(1.0)
    if name == "multiple":
        return BidPolicy(multiple)
    if name == "knee":
        return KneeBidPolicy(availability_target, floor_fraction)
    raise ValueError(f"unknown bid policy {name!r}")
