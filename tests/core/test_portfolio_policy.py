"""Unit tests for the IT/OC portfolio-allocation family."""

import pytest

from repro.cloud.instance_types import M3_CATALOG
from repro.cloud.spot_market import SpotMarket
from repro.core.policies.portfolio import (
    IndexTrackingPolicy,
    OptimalCombinationPolicy,
    RealizedCostTracker,
    make_portfolio_policy,
)
from repro.core.pools import SpotPool

from tests.conftest import flat_trace

HOUR = 3600.0
MEDIUM = M3_CATALOG.get("m3.medium")


def make_pools(env, zone, ratios=None):
    """The four m3 pools at flat per-type price ratios."""
    ratios = ratios or {}
    pools = []
    for itype in M3_CATALOG:
        ratio = ratios.get(itype.name, 0.12)
        trace = flat_trace(ratio * itype.on_demand_price,
                           type_name=itype.name,
                           on_demand_price=itype.on_demand_price)
        market = SpotMarket(env, itype, zone, trace)
        pools.append(SpotPool(itype, zone, MEDIUM, market,
                              bid=itype.on_demand_price))
    return pools


class TestFactoryParsing:
    def test_plain_names(self):
        assert isinstance(make_portfolio_policy("IT"), IndexTrackingPolicy)
        assert isinstance(make_portfolio_policy("OC"),
                          OptimalCombinationPolicy)

    def test_inline_target_ratio(self):
        policy = make_portfolio_policy("IT-0.15")
        assert policy.target_ratio == pytest.approx(0.15)
        assert policy.name == "IT-0.15"

    def test_inline_top_k(self):
        policy = make_portfolio_policy("OC-3")
        assert policy.top_k == 3
        assert policy.name == "OC-3"

    def test_inline_parameter_beats_override(self):
        policy = make_portfolio_policy("IT-0.2", target_ratio=0.5)
        assert policy.target_ratio == pytest.approx(0.2)

    def test_other_overrides_pass_through(self):
        policy = make_portfolio_policy("IT", band_fraction=0.25,
                                       migration_budget=2)
        assert policy.band_fraction == pytest.approx(0.25)
        assert policy.migration_budget == 2

    @pytest.mark.parametrize("bad", ["IT-x", "OC-1.5", "XX", "OC-"])
    def test_bad_names_rejected(self, bad):
        with pytest.raises(ValueError):
            make_portfolio_policy(bad)

    @pytest.mark.parametrize("kwargs", [
        {"target_ratio": 0.0}, {"target_ratio": -1.0},
        {"band_fraction": 0.0}, {"band_fraction": 1.0},
        {"hysteresis": 0.0}, {"migration_budget": -1},
        {"eviction_penalty_hours": -0.5},
    ])
    def test_it_constructor_validation(self, kwargs):
        with pytest.raises(ValueError):
            IndexTrackingPolicy(**kwargs)

    def test_oc_constructor_validation(self):
        with pytest.raises(ValueError):
            OptimalCombinationPolicy(top_k=0)


class TestRealizedCostTracker:
    def test_rate_none_before_accrual(self):
        assert RealizedCostTracker(6 * HOUR).rate() is None

    def test_simple_rate(self):
        tracker = RealizedCostTracker(6 * HOUR)
        tracker.fold(0.0, 0.05, 2.0)
        assert tracker.rate() == pytest.approx(0.025)

    def test_half_life_decay(self):
        tracker = RealizedCostTracker(6 * HOUR)
        tracker.fold(0.0, 1.0, 1.0)
        # One full half-life later: the old window carries half weight.
        tracker.fold(6 * HOUR, 1.0, 1.0)
        assert tracker.dollars == pytest.approx(1.5)
        assert tracker.vm_hours == pytest.approx(1.5)
        assert tracker.rate() == pytest.approx(1.0)

    def test_recent_rate_dominates_after_many_half_lives(self):
        tracker = RealizedCostTracker(1 * HOUR)
        tracker.fold(0.0, 10.0, 1.0)  # $10/VM-hour, long ago.
        for step in range(1, 25):
            tracker.fold(step * HOUR, 1.0, 1.0)  # $1/VM-hour since.
        assert tracker.rate() == pytest.approx(1.0, rel=0.01)

    def test_in_band_fraction(self):
        tracker = RealizedCostTracker(HOUR)
        assert tracker.in_band_fraction() is None
        tracker.note_band(300.0, True)
        tracker.note_band(100.0, False)
        assert tracker.in_band_fraction() == pytest.approx(0.75)


class TestApportionment:
    def _policy(self, pools, weights):
        policy = IndexTrackingPolicy()
        policy._pools = list(pools)
        policy._weights = weights
        return policy

    def test_choose_converges_to_weights(self, env, zone):
        pools = make_pools(env, zone)
        by_name = {pool.itype.name: pool for pool in pools}
        policy = self._policy(pools, {
            by_name["m3.medium"].key: 0.75,
            by_name["m3.large"].key: 0.25})
        chosen = [policy.choose(pools, rng=None).itype.name
                  for _ in range(8)]
        assert chosen.count("m3.medium") == 6
        assert chosen.count("m3.large") == 2

    def test_choose_is_deterministic(self, env, zone):
        pools = make_pools(env, zone)
        by_name = {pool.itype.name: pool for pool in pools}
        weights = {by_name["m3.medium"].key: 0.6,
                   by_name["m3.xlarge"].key: 0.4}
        first = [self._policy(pools, weights).choose(pools, None).itype.name
                 for _ in range(1)]
        # A fresh policy with the same weights makes the same choices.
        a = self._policy(pools, weights)
        b = self._policy(pools, weights)
        seq_a = [a.choose(pools, None).itype.name for _ in range(10)]
        seq_b = [b.choose(pools, None).itype.name for _ in range(10)]
        assert seq_a == seq_b
        assert first[0] == seq_a[0]

    def test_desired_counts_largest_remainder(self, env, zone):
        pools = make_pools(env, zone)
        by_name = {pool.itype.name: pool for pool in pools}
        policy = self._policy(pools, {
            by_name["m3.medium"].key: 0.5,
            by_name["m3.large"].key: 0.3,
            by_name["m3.xlarge"].key: 0.2})
        counts = policy._desired_counts(7)
        assert sum(counts.values()) == 7
        assert counts[by_name["m3.medium"].key] == 4
        assert counts[by_name["m3.large"].key] == 2
        assert counts[by_name["m3.xlarge"].key] == 1


class TestMigrationBudget:
    def test_budget_window_slides(self):
        policy = IndexTrackingPolicy(migration_budget=2,
                                     budget_window_s=24 * HOUR)
        assert policy._budget_allows("c1", 0.0)
        policy._note_move("c1", 0.0)
        policy._note_move("c1", 1.0)
        assert not policy._budget_allows("c1", 2.0)
        # A day later the early moves age out of the window.
        assert policy._budget_allows("c1", 25 * HOUR)

    def test_budget_is_per_customer(self):
        policy = IndexTrackingPolicy(migration_budget=1)
        policy._note_move("c1", 0.0)
        assert not policy._budget_allows("c1", 1.0)
        assert policy._budget_allows("c2", 1.0)


class TestIndexTrackingSolver:
    def _policy(self, pools, **kwargs):
        policy = IndexTrackingPolicy(**kwargs)
        policy._pools = list(pools)
        policy.attach_clock(lambda: 0.0)
        return policy

    def _prices(self, pools):
        return {pool.key: pool.price_per_slot() for pool in pools}

    def test_initial_solve_anchors_cheapest_below_target(self, env, zone):
        # medium 0.115x, large 0.135x of a $0.07 slot; target 0.125x.
        pools = make_pools(env, zone, ratios={
            "m3.medium": 0.115, "m3.large": 0.135,
            "m3.xlarge": 0.155, "m3.2xlarge": 0.175})
        policy = self._policy(pools)
        weights = policy._solve_weights(self._prices(pools))
        medium = next(p for p in pools if p.itype.name == "m3.medium")
        assert weights == {medium.key: 1.0}
        assert policy._anchor == medium.key

    def test_overspend_pulls_down_to_cheapest_effective(self, env, zone):
        pools = make_pools(env, zone, ratios={
            "m3.medium": 0.115, "m3.large": 0.12,
            "m3.xlarge": 0.155, "m3.2xlarge": 0.175})
        policy = self._policy(pools)
        # Fleet realized far above the band ceiling.
        tracker = RealizedCostTracker(policy.half_life_s)
        tracker.fold(0.0, 1.0, 10.0)  # $0.10/VM-hour >> 0.00875 target
        policy._trackers["c1"] = tracker
        weights = policy._solve_weights(self._prices(pools))
        medium = next(p for p in pools if p.itype.name == "m3.medium")
        assert weights == {medium.key: 1.0}

    def test_underspend_straddles_to_target(self, env, zone):
        # Only one pool below target, and deep below the band floor:
        # the solver must mix in the cheapest above-target pool.
        pools = make_pools(env, zone, ratios={
            "m3.medium": 0.05, "m3.large": 0.14,
            "m3.xlarge": 0.155, "m3.2xlarge": 0.175})
        policy = self._policy(pools)
        tracker = RealizedCostTracker(policy.half_life_s)
        tracker.fold(0.0, 0.004 * 10, 10.0)  # Realized under the floor.
        policy._trackers["c1"] = tracker
        prices = self._prices(pools)
        weights = policy._solve_weights(prices)
        assert len(weights) == 2
        assert sum(weights.values()) == pytest.approx(1.0)
        blend = sum(prices[key] * w for key, w in weights.items())
        assert blend == pytest.approx(policy.target())

    def test_risk_adjustment_prices_out_volatile_pool(self, env, zone):
        # large is nominally in band, but a high measured eviction rate
        # makes its *effective* price (eviction_penalty_hours of
        # on-demand parking per eviction) land above the target.
        pools = make_pools(env, zone, ratios={
            "m3.medium": 0.115, "m3.large": 0.124,
            "m3.xlarge": 0.155, "m3.2xlarge": 0.175})
        large = next(p for p in pools if p.itype.name == "m3.large")
        for i in range(30):
            large.record_revocation(i * HOUR, 1, 2)
        policy = self._policy(pools)
        policy.attach_clock(lambda: 30 * HOUR)
        prices = self._prices(pools)
        effective = policy._effective_prices(prices)
        assert effective[large.key] > policy.target()
        weights = policy._solve_weights(prices)
        assert large.key not in weights

    def test_all_above_target_picks_cheapest(self, env, zone):
        pools = make_pools(env, zone, ratios={
            "m3.medium": 0.2, "m3.large": 0.3,
            "m3.xlarge": 0.4, "m3.2xlarge": 0.5})
        policy = self._policy(pools)
        weights = policy._solve_weights(self._prices(pools))
        medium = next(p for p in pools if p.itype.name == "m3.medium")
        assert weights == {medium.key: 1.0}

    def test_band_accessor(self, env, zone):
        pools = make_pools(env, zone)
        policy = self._policy(pools, target_ratio=0.125, band_fraction=0.2)
        assert IndexTrackingPolicy().band() is None  # Unbound: no pools.
        lo, hi = policy.band()
        target = 0.125 * MEDIUM.on_demand_price
        assert lo == pytest.approx(0.8 * target)
        assert hi == pytest.approx(1.2 * target)

    def test_rate_in_band(self, env, zone):
        pools = make_pools(env, zone)
        policy = self._policy(pools, band_fraction=0.15)
        target = policy.target()
        assert policy._rate_in_band(target)
        assert policy._rate_in_band(target * 1.14)
        assert not policy._rate_in_band(target * 1.2)
        assert policy._rate_in_band(None) is None


class TestOptimalCombinationSolver:
    def _policy(self, pools, **kwargs):
        policy = OptimalCombinationPolicy(**kwargs)
        policy._pools = list(pools)
        policy.attach_clock(lambda: 0.0)
        return policy

    def test_top_k_pools_weighted_inverse_to_score(self, env, zone):
        pools = make_pools(env, zone, ratios={
            "m3.medium": 0.10, "m3.large": 0.12,
            "m3.xlarge": 0.155, "m3.2xlarge": 0.175})
        policy = self._policy(pools, top_k=2)
        prices = {pool.key: pool.price_per_slot() for pool in pools}
        weights = policy._solve_weights(prices)
        names = {key.split(":")[0] if ":" in str(key) else key
                 for key in weights}
        assert len(weights) == 2
        assert sum(weights.values()) == pytest.approx(1.0)
        medium = next(p for p in pools if p.itype.name == "m3.medium")
        large = next(p for p in pools if p.itype.name == "m3.large")
        assert set(weights) == {medium.key, large.key}
        # Cheaper (lower-score) pool carries more weight.
        assert weights[medium.key] > weights[large.key]

    def test_eviction_risk_displaces_cheap_pool(self, env, zone):
        pools = make_pools(env, zone, ratios={
            "m3.medium": 0.12, "m3.large": 0.10,
            "m3.xlarge": 0.13, "m3.2xlarge": 0.175})
        large = next(p for p in pools if p.itype.name == "m3.large")
        for i in range(50):
            large.record_revocation(i * HOUR, 1, 2)
        policy = self._policy(pools, top_k=2)
        policy.attach_clock(lambda: 50 * HOUR)
        prices = {pool.key: pool.price_per_slot() for pool in pools}
        weights = policy._solve_weights(prices)
        assert large.key not in weights
