"""The metrics registry: counters, gauges, streaming histograms.

Metrics are keyed by a name plus a set of labels, Prometheus-style:
``registry.histogram("migration_downtime_seconds",
mechanism="spotcheck-lazy")`` returns one series per distinct label
set.  Histograms estimate p50/p95/p99 with the P² algorithm [Jain &
Chlamtac, CACM'85] — five markers per tracked quantile, no sample
storage — so a million-observation series costs the same memory as a
ten-observation one.
"""


def _label_key(labels):
    return tuple(sorted(labels.items()))


class P2Quantile:
    """Streaming estimate of one quantile (the P² algorithm).

    Maintains five markers whose heights converge on the quantile; the
    first five observations are exact.
    """

    def __init__(self, p):
        if not 0.0 < p < 1.0:
            raise ValueError("quantile must lie in (0, 1)")
        self.p = p
        self._heights = []
        self._positions = [1, 2, 3, 4, 5]
        self._desired = [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p,
                         3.0 + 2.0 * p, 5.0]
        self._increments = [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0]
        self.count = 0

    def observe(self, value):
        value = float(value)
        self.count += 1
        heights = self._heights
        if len(heights) < 5:
            heights.append(value)
            heights.sort()
            return
        # Find the cell k such that q[k] <= value < q[k+1].
        if value < heights[0]:
            heights[0] = value
            k = 0
        elif value >= heights[4]:
            heights[4] = value
            k = 3
        else:
            k = 0
            while value >= heights[k + 1]:
                k += 1
        positions = self._positions
        for i in range(k + 1, 5):
            positions[i] += 1
        for i in range(5):
            self._desired[i] += self._increments[i]
        # Adjust the three middle markers toward their desired positions.
        for i in (1, 2, 3):
            delta = self._desired[i] - positions[i]
            if (delta >= 1 and positions[i + 1] - positions[i] > 1) or \
                    (delta <= -1 and positions[i - 1] - positions[i] < -1):
                step = 1 if delta > 0 else -1
                candidate = self._parabolic(i, step)
                if heights[i - 1] < candidate < heights[i + 1]:
                    heights[i] = candidate
                else:
                    heights[i] = self._linear(i, step)
                positions[i] += step

    def _parabolic(self, i, step):
        q, n = self._heights, self._positions
        return q[i] + step / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + step) * (q[i + 1] - q[i])
            / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - step) * (q[i] - q[i - 1])
            / (n[i] - n[i - 1]))

    def _linear(self, i, step):
        q, n = self._heights, self._positions
        return q[i] + step * (q[i + step] - q[i]) / (n[i + step] - n[i])

    @property
    def value(self):
        """The current quantile estimate (``None`` before any sample)."""
        heights = self._heights
        if not heights:
            return None
        if self.count <= len(heights):
            # Exact while all samples are stored.
            rank = max(int(round(self.p * self.count)) - 1, 0)
            return sorted(heights)[min(rank, self.count - 1)]
        return heights[2]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name, labels):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount=1.0):
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge:
    """A value that can go up and down."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name, labels):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value):
        self.value = float(value)

    def inc(self, amount=1.0):
        self.value += amount

    def dec(self, amount=1.0):
        self.value -= amount


class Histogram:
    """Streaming distribution summary: count, sum, min/max, quantiles."""

    DEFAULT_QUANTILES = (0.5, 0.95, 0.99)

    def __init__(self, name, labels, quantiles=DEFAULT_QUANTILES):
        self.name = name
        self.labels = labels
        self.count = 0
        self.sum = 0.0
        self.min = None
        self.max = None
        self._estimators = {q: P2Quantile(q) for q in quantiles}

    def observe(self, value):
        value = float(value)
        self.count += 1
        self.sum += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        for estimator in self._estimators.values():
            estimator.observe(value)

    def quantile(self, q):
        """The estimate for a tracked quantile ``q``."""
        return self._estimators[q].value

    @property
    def quantiles(self):
        return {q: est.value for q, est in sorted(self._estimators.items())}

    @property
    def mean(self):
        return self.sum / self.count if self.count else 0.0


class MetricsRegistry:
    """All metric series of one simulation, keyed by (name, labels)."""

    def __init__(self):
        self._series = {}

    def _get(self, cls, name, labels, **kwargs):
        key = (name, _label_key(labels))
        series = self._series.get(key)
        if series is None:
            series = cls(name, dict(labels), **kwargs)
            self._series[key] = series
        elif not isinstance(series, cls):
            raise TypeError(
                f"{name} already registered as "
                f"{type(series).__name__}, not {cls.__name__}")
        return series

    def counter(self, name, **labels):
        return self._get(Counter, name, labels)

    def gauge(self, name, **labels):
        return self._get(Gauge, name, labels)

    def histogram(self, name, **labels):
        return self._get(Histogram, name, labels)

    def series(self):
        """All series, sorted by (name, labels) for stable export."""
        return [self._series[key] for key in sorted(self._series)]

    def find(self, name):
        """Every series registered under ``name`` (any label set)."""
        return [s for s in self.series() if s.name == name]

    def __len__(self):
        return len(self._series)
