"""Workload models for the paper's two benchmarks.

The paper evaluates SpotCheck with TPC-W (an interactive multi-tier web
application, reported as response time) and SPECjbb2005 (a server-side
throughput benchmark).  Both models expose:

* a memory-dirtying profile (:meth:`~repro.workloads.base.Workload.memory_model`),
  which drives checkpoint traffic and migration behaviour, and
* a performance response to the conditions SpotCheck creates —
  checkpointing overhead, backup-server overload, and lazy-restore
  demand paging (:class:`~repro.workloads.base.Conditions`).
"""

from repro.workloads.base import Conditions, Workload
from repro.workloads.memory_profiles import MEMORY_PROFILES, profile_for
from repro.workloads.mix import (
    FleetMix,
    MixClass,
    WriteScaledWorkload,
    default_fleet_mix,
)
from repro.workloads.requests import RequestAnalyzer, RequestStats
from repro.workloads.specjbb import SpecJbbWorkload
from repro.workloads.tpcw import TpcwWorkload

__all__ = [
    "Conditions",
    "FleetMix",
    "MEMORY_PROFILES",
    "MixClass",
    "RequestAnalyzer",
    "RequestStats",
    "SpecJbbWorkload",
    "TpcwWorkload",
    "Workload",
    "WriteScaledWorkload",
    "default_fleet_mix",
    "profile_for",
]
