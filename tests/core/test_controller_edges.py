"""Edge-case tests for controller internals."""

import pytest

from repro.cloud.instances import InstanceState, Market
from repro.core.config import SpotCheckConfig
from repro.virt.vm import VMState
from repro.workloads import TpcwWorkload

from tests.core.test_controller import (
    SPIKE_END,
    SPIKE_START,
    build,
    iter_relinquish,
    launch_fleet,
    quiet_trace,
    spiky_trace,
)

DAY = 24 * 3600.0


class TestRequestRaces:
    def test_request_during_active_warning_avoids_doomed_host(self):
        # A second request arrives while the only spot host is warned:
        # the new VM must not boot into the doomed host's free slot.
        traces = {"m3.medium": quiet_trace("m3.medium", 0.07),
                  "m3.large": spiky_trace("m3.large", 0.14)}
        env, api, controller = build(
            SpotCheckConfig(allocation_policy="2P-ML",
                            return_to_spot=False), traces=traces)
        vms = launch_fleet(env, controller, count=2)  # medium + large(2 slot)
        env.run(until=SPIKE_START + 10.0)  # large host warned
        late = launch_fleet(env, controller, count=2)  # medium + large again
        env.run(until=SPIKE_START + 2000.0)
        for vm in late:
            assert vm.state is VMState.RUNNING
        # The late large-pool VM could not use the warned host's free
        # slot; it was born parked (bid below spiked price).
        late_large = [vm for vm in late
                      if vm.host.itype.name != "m3.large"
                      or vm.host.instance.market is Market.ON_DEMAND]
        assert late_large

    def test_request_during_spike_parks_then_returns(self):
        env, api, controller = build(
            SpotCheckConfig(return_holddown_s=300.0))
        launch_fleet(env, controller, count=1)
        def mid_spike():
            yield env.timeout(SPIKE_START + 30.0 - env.now)
            customer = controller.start_customer("late")
            vm = yield controller.request_server(
                customer, workload=TpcwWorkload())
            return vm
        vm = env.run(until=env.process(mid_spike()))
        assert vm.host.instance.market is Market.ON_DEMAND
        env.run(until=SPIKE_END + 5000.0)
        assert vm.host.instance.market is Market.SPOT  # came home
        assert vm.backup_assignment is not None


class TestGcAndRelinquishEdges:
    def test_relinquish_parked_vm(self):
        env, api, controller = build(SpotCheckConfig(return_to_spot=False))
        [vm] = launch_fleet(env, controller, count=1)
        env.run(until=SPIKE_START + 500.0)  # now parked on-demand
        assert vm.id in controller._parked
        env.run(until=env.process(iter_relinquish(controller, vm)))
        assert vm.id not in controller._parked
        assert vm.state is VMState.TERMINATED
        od_pool = controller.pools.on_demand_pool("m3.medium", "us-east-1a")
        assert od_pool.host_count == 0  # host GC'd

    def test_relinquish_last_vm_stops_spot_billing(self):
        env, api, controller = build()
        [vm] = launch_fleet(env, controller, count=1)
        instance = vm.host.instance
        relinquish_time = env.now + 3600.0
        env.run(until=relinquish_time)
        env.run(until=env.process(iter_relinquish(controller, vm)))
        record = api.billing.records[instance.id]
        assert record.end == pytest.approx(relinquish_time, abs=60.0)

    def test_spare_hosts_not_garbage_collected(self):
        env, api, controller = build(
            SpotCheckConfig(hot_spares=1, return_to_spot=False))
        launch_fleet(env, controller, count=1)
        env.run(until=2000.0)
        [spare] = controller.spares.spares
        controller._gc_host_if_empty(spare)
        assert spare.instance.is_running
        assert controller.spares.available == 1


class TestPriceChangeGuards:
    def test_no_return_without_parked_vms(self):
        env, api, controller = build()
        launch_fleet(env, controller, count=1)
        env.run(until=SPIKE_START - 100.0)
        # Price changes below od happen constantly; without parked VMs
        # no return process may spawn.
        assert controller._returning_pools == set()

    def test_return_flag_cleared_after_failed_return(self):
        # The dip ends before the holddown expires; the return aborts
        # and the pool must be eligible for the next dip.
        trace_steps = [0.0, SPIKE_START, SPIKE_START + 200.0,
                       SPIKE_START + 300.0, SPIKE_END, 10 * DAY]
        prices = [0.014, 0.7, 0.014, 0.7, 0.014, 0.014]
        from repro.traces.archive import PriceTrace
        trace = PriceTrace(trace_steps, prices, "m3.medium", "us-east-1a",
                           0.07)
        env, api, controller = build(
            SpotCheckConfig(return_holddown_s=600.0),
            traces={"m3.medium": trace})
        [vm] = launch_fleet(env, controller, count=1)
        env.run(until=9 * DAY)
        assert controller._returning_pools == set()
        assert vm.host.instance.market is Market.SPOT
        assert vm.state is VMState.RUNNING


class TestSlotAccounting:
    def test_no_reservation_leaks_after_six_spikes(self):
        env, api, controller = build()
        vms = launch_fleet(env, controller, count=2)
        env.run(until=9 * DAY)
        for pool in controller.pools.all_pools():
            for host in pool.hosts:
                # Any surviving reservation would leak a slot forever.
                assert host.hypervisor.reserved == 0
        total_placed = sum(len(host.vms)
                           for pool in controller.pools.all_pools()
                           for host in pool.hosts)
        assert total_placed == 2
