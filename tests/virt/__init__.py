"""Test package."""
