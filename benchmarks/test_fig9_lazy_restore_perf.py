"""Figure 9: TPC-W response time during lazy restorations.

Paper shape: ~29 ms in normal operation, rising to ~60 ms while a VM
lazily restores, and staying roughly flat as more VMs restore
concurrently because the backup server partitions bandwidth per VM.
"""

import pytest

from repro.experiments import fig9
from repro.experiments.reporting import format_table


def test_fig9_lazy_restore_response_time(benchmark, report):
    result = benchmark.pedantic(fig9.run, rounds=1, iterations=1)
    response = {row["concurrent"]: row["response_ms"]
                for row in result["rows"]}

    assert response[0] == pytest.approx(29.0)
    assert response[1] == pytest.approx(60.0, abs=2.0)
    # Flat in concurrency (within 10%).
    assert response[10] < response[1] * 1.10

    rows = [(n, f"{ms:.1f}") for n, ms in sorted(response.items())]
    text = format_table(
        ["concurrent lazy restores", "TPC-W response (ms)"],
        rows,
        title=("Figure 9 — TPC-W response time during lazy restoration "
               "(paper: 29 ms normal, ~60 ms restoring, flat in "
               "concurrency)"))
    report("fig9_lazy_restore", text)
