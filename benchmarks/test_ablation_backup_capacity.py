"""Ablation: VMs per backup server.

The paper caps assignment at 35-40 VMs per backup server because the
write path saturates (Figure 7), making the amortized backup cost
~$0.007/VM-hr.  Lowering the cap buys smaller revocation storms per
backup server (less concurrent-restore degradation) at a higher cost.
"""

from repro.experiments.policy_grid import run_cell, shared_archive
from repro.experiments.reporting import format_table

DAYS = 45.0
VMS = 24
SEED = 29

CAPS = (8, 16, 40)


def sweep():
    archive = shared_archive(SEED, DAYS)
    rows = []
    for cap in CAPS:
        summary = run_cell(
            "1P-M", "spotcheck-lazy", seed=SEED, days=DAYS, vms=VMS,
            archive=archive, vms_per_backup=cap)
        rows.append({
            "cap": cap,
            "backups": summary["backup_servers"],
            "cost": summary["cost_per_vm_hour"],
            "degr_pct": summary["degradation_pct"],
        })
    return rows


def test_ablation_backup_capacity(benchmark, report):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    by_cap = {row["cap"]: row for row in rows}
    # Smaller caps need more backup servers and cost more...
    assert by_cap[8]["backups"] > by_cap[40]["backups"]
    assert by_cap[8]["cost"] > by_cap[40]["cost"]
    # ...but spread each storm over more servers: less degradation.
    assert by_cap[8]["degr_pct"] <= by_cap[40]["degr_pct"] * 1.05

    text = format_table(
        ["VMs/backup cap", "backup servers", "cost/VM-hr", "degraded %"],
        [(row["cap"], row["backups"], f"${row['cost']:.4f}",
          f"{row['degr_pct']:.4f}%") for row in rows],
        title=(f"Ablation — backup-server assignment cap "
               f"(1P-M, {VMS} VMs, {DAYS:.0f} days; paper uses 35-40)"))
    report("ablation_backup_capacity", text)
