"""Control-plane operation latencies, calibrated to the paper's Table 1.

The paper measured the latency of each EC2 operation 20 times over a
week for the m3.medium type and reports median, mean, max and min.  We
model each operation as a lognormal distribution clipped to the
observed [min, max] range, with the lognormal's median pinned to the
observed median and its spread calibrated numerically so that the
clipped distribution's *mean* matches the observed mean.  This keeps all
four reported statistics simultaneously credible.
"""

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class LatencySpec:
    """The four summary statistics Table 1 reports for one operation."""

    name: str
    median: float
    mean: float
    max: float
    min: float

    def __post_init__(self):
        if not self.min <= self.median <= self.max:
            raise ValueError(f"{self.name}: median outside [min, max]")
        if not self.min <= self.mean <= self.max:
            raise ValueError(f"{self.name}: mean outside [min, max]")


#: Table 1, verbatim (seconds, m3.medium, 20 samples over one week).
TABLE1_SPECS = {
    "start_spot_instance": LatencySpec("start_spot_instance", 227, 224, 409, 100),
    "start_on_demand_instance": LatencySpec(
        "start_on_demand_instance", 61, 62, 86, 47),
    "terminate_instance": LatencySpec("terminate_instance", 135, 136, 147, 133),
    "detach_volume": LatencySpec("detach_volume", 10.3, 10.3, 11.3, 9.6),
    "attach_volume": LatencySpec("attach_volume", 5, 5.1, 9.3, 4.4),
    "attach_network_interface": LatencySpec(
        "attach_network_interface", 3, 3.75, 14, 1),
    "detach_network_interface": LatencySpec(
        "detach_network_interface", 2, 3.5, 12, 1),
}

#: Mean downtime the paper attributes to EC2 operations per migration:
#: detach + attach of the EBS volume and the network interface, which
#: can only happen while the nested VM is paused ("these operations (in
#: bold) cause an average downtime of 22.65 seconds").
EC2_MIGRATION_DOWNTIME_OPS = (
    "detach_volume",
    "attach_volume",
    "attach_network_interface",
    "detach_network_interface",
)


class ClippedLognormal:
    """A lognormal restricted to [min, max], fit to median and mean.

    Sampling is inverse-CDF restricted to the [min, max] quantile band
    (i.e. the base lognormal conditioned on landing in the band), which
    preserves the distribution's shape inside the band.  ``mu`` and
    ``sigma`` are calibrated jointly — alternately pinning the clipped
    *median* to the spec's median (via ``mu``) and the clipped *mean*
    to the spec's mean (via ``sigma``) — so both reported statistics of
    Table 1 are matched simultaneously even for heavily skewed
    operations.
    """

    def __init__(self, spec, _grid=4096):
        self.spec = spec
        self._grid = _grid
        if spec.max == spec.min:
            self._mu = np.log(spec.median)
            self._sigma = 0.0
        else:
            self._calibrate()
        self._q_low, self._q_high = self._quantile_band(
            self._mu, self._sigma)

    def _quantile_band(self, mu, sigma):
        from math import erf, sqrt
        if sigma == 0.0:
            return 0.0, 1.0
        def cdf(x):
            z = (np.log(x) - mu) / sigma
            return 0.5 * (1.0 + erf(z / sqrt(2.0)))
        return cdf(self.spec.min), cdf(self.spec.max)

    def _clipped_mean(self, mu, sigma):
        # Numerical mean of the lognormal restricted to [min, max].
        if sigma <= 0:
            return float(np.exp(mu))
        lo, hi = np.log(self.spec.min), np.log(self.spec.max)
        z = np.linspace(lo, hi, self._grid)
        pdf = np.exp(-0.5 * ((z - mu) / sigma) ** 2)
        weight = pdf.sum()
        if weight == 0:
            return float(np.exp(mu))
        return float((np.exp(z) * pdf).sum() / weight)

    def _clipped_median(self, mu, sigma):
        from scipy.special import erfinv
        if sigma <= 0:
            return float(np.exp(mu))
        q_low, q_high = self._quantile_band(mu, sigma)
        mid = 0.5 * (q_low + q_high)
        z = np.sqrt(2.0) * erfinv(2.0 * mid - 1.0)
        return float(np.exp(mu + sigma * z))

    def _sigma_for_mean(self, mu):
        target = self.spec.mean
        lo, hi = 1e-4, 3.0
        mean_lo = self._clipped_mean(mu, lo)
        mean_hi = self._clipped_mean(mu, hi)
        if (mean_lo - target) * (mean_hi - target) > 0:
            return lo if abs(mean_lo - target) < abs(mean_hi - target) else hi
        for _ in range(50):
            mid = 0.5 * (lo + hi)
            if (self._clipped_mean(mu, mid) - target) * (mean_lo - target) > 0:
                lo = mid
            else:
                hi = mid
        return 0.5 * (lo + hi)

    def _calibrate(self):
        mu = np.log(self.spec.median)
        sigma = 0.3
        for _ in range(25):
            sigma = self._sigma_for_mean(mu)
            median = self._clipped_median(mu, sigma)
            mu += np.log(self.spec.median) - np.log(median)
        self._mu, self._sigma = mu, sigma

    def sample(self, rng, size=None):
        """Draw latencies. ``rng`` is a numpy Generator."""
        if self._sigma == 0.0:
            if size is None:
                return self.spec.median
            return np.full(size, float(self.spec.median))
        u = rng.uniform(self._q_low, self._q_high, size=size)
        # Inverse CDF of the lognormal at quantile u.
        from scipy.special import erfinv  # scipy is available offline
        z = np.sqrt(2.0) * erfinv(2.0 * u - 1.0)
        return np.exp(self._mu + self._sigma * z)

    def mean(self):
        """Mean of the clipped distribution (matches the spec's mean)."""
        return self._clipped_mean(self._mu, self._sigma)

    def median(self):
        """Median of the clipped distribution (matches the spec's)."""
        return self._clipped_median(self._mu, self._sigma)


class SplitPowerLatency:
    """Two power-law halves around the median — the default fit.

    Half the mass lies below the median, half above (so the median is
    matched *exactly*), each half spanning exactly [min, median] /
    [median, max] (so the observed extremes are reachable), with
    power-law shapes ``x = median ± span * u^k`` whose exponents set
    how much mass hugs the median.  The upper exponent is solved in
    closed form so the mean matches the spec; this family fits every
    Table 1 operation, including the left-skewed spot-start latencies
    (mean < median) and the heavy-tailed ENI operations (mean well
    above the median), which defeat any single lognormal.
    """

    #: Lower-half exponent: mild concentration toward the median.
    LOWER_EXPONENT = 2.0

    def __init__(self, spec):
        self.spec = spec
        low_span = spec.median - spec.min
        high_span = spec.max - spec.median
        self._j = self.LOWER_EXPONENT
        if high_span <= 0:
            self._k = 1.0
        else:
            # mean = median + (high_span/(k+1) - low_span/(j+1)) / 2
            pull = spec.mean - spec.median + \
                0.5 * low_span / (self._j + 1.0)
            if pull <= 0:
                # Mean at/below the reachable floor: concentrate the
                # upper half fully at the median.
                self._k = 200.0
            else:
                self._k = max(0.5 * high_span / pull - 1.0, 0.05)

    def sample(self, rng, size=None):
        scalar = size is None
        n = 1 if scalar else int(np.prod(size))
        upper = rng.random(n) < 0.5
        u = rng.random(n)
        spec = self.spec
        draws = np.where(
            upper,
            spec.median + (spec.max - spec.median) * u ** self._k,
            spec.median - (spec.median - spec.min) * u ** self._j)
        if scalar:
            return float(draws[0])
        return draws.reshape(size)

    def mean(self):
        spec = self.spec
        high = (spec.max - spec.median) / (self._k + 1.0)
        low = (spec.median - spec.min) / (self._j + 1.0)
        return spec.median + 0.5 * (high - low)

    def median(self):
        return float(self.spec.median)


def fit_latency_sampler(spec):
    """Pick the sampler for one operation's statistics.

    A clipped lognormal when it can honour both the median and the
    mean; the split-power family otherwise (degenerate sigma, or a
    spread/skew a conditioned lognormal cannot reach).
    """
    if spec.max == spec.min:
        return ClippedLognormal(spec)
    sampler = ClippedLognormal(spec)
    median_ok = abs(sampler.median() - spec.median) <= 0.03 * spec.median
    mean_ok = abs(sampler.mean() - spec.mean) <= 0.03 * spec.mean
    # A near-zero sigma collapses the distribution to a point even when
    # the two statistics "match" — the observed min/max become
    # unreachable, so fall back to the split-power family.
    degenerate = sampler._sigma < 0.05 and spec.max > 1.05 * spec.min
    if median_ok and mean_ok and not degenerate:
        return sampler
    return SplitPowerLatency(spec)


class OperationLatencyModel:
    """Samples a latency for each cloud control-plane operation.

    Parameters
    ----------
    rng:
        numpy Generator used for all draws.
    specs:
        Mapping of operation name -> :class:`LatencySpec`; defaults to
        the paper's Table 1.
    scale:
        Global multiplier on all latencies (1.0 reproduces Table 1;
        useful for what-if studies — the paper notes EC2 "could likely
        significantly reduce the latency of these operations").
    op_scales:
        Optional per-operation multipliers layered on top of ``scale``
        (e.g. ``{"detach_volume": 3.0}`` models a platform whose
        detach path is persistently slow, the stall family the fault
        injector's latency tails inject transiently).
    """

    def __init__(self, rng, specs=None, scale=1.0, op_scales=None):
        if scale <= 0:
            raise ValueError(f"scale must be positive, got {scale}")
        self.rng = rng
        self.scale = scale
        self.op_scales = dict(op_scales or {})
        for name, factor in self.op_scales.items():
            if factor <= 0:
                raise ValueError(
                    f"op_scales[{name!r}] must be positive, got {factor}")
        self.specs = dict(specs if specs is not None else TABLE1_SPECS)
        self._samplers = {
            name: fit_latency_sampler(spec)
            for name, spec in self.specs.items()
        }

    def _scale_for(self, operation):
        return self.scale * self.op_scales.get(operation, 1.0)

    def operations(self):
        """Names of all modelled operations."""
        return list(self.specs)

    def sample(self, operation, size=None):
        """Draw one (or ``size``) latencies for ``operation``, seconds."""
        try:
            sampler = self._samplers[operation]
        except KeyError:
            raise KeyError(f"unknown operation {operation!r}") from None
        return sampler.sample(self.rng, size=size) * self._scale_for(operation)

    def mean(self, operation):
        """Calibrated mean latency of ``operation``, seconds."""
        return self._samplers[operation].mean() * self._scale_for(operation)

    def migration_downtime_mean(self):
        """Mean EC2-operation downtime per migration (paper: ~22.65 s)."""
        return sum(self.mean(op) for op in EC2_MIGRATION_DOWNTIME_OPS)

    def sample_migration_downtime(self):
        """Draw one migration's EC2-operation downtime, seconds."""
        return float(sum(self.sample(op) for op in EC2_MIGRATION_DOWNTIME_OPS))
