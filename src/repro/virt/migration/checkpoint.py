"""Continuous memory checkpointing (the bounded-time migration engine).

A background process repeatedly flushes the pages dirtied since the
previous checkpoint to a backup server, keeping the *residual* dirty
state small enough that it "can be safely committed upon a revocation
within the time bound" [Yank, NSDI'13].  The checkpoint interval is the
longest interval whose dirty volume still fits the commit budget.

Two implementation details from the paper's Section 5 are modelled:

* the SpotCheck optimization that "increases the checkpointing
  frequency after receiving a warning, which reduces the amount of
  dirty pages the nested VM must transfer" — a geometric ramp of the
  interval during the warning period; and
* the per-VM bandwidth throttle on the backup path.
"""

from dataclasses import dataclass

from repro.virt.memory import DirtyBudgetInfeasible


@dataclass(frozen=True)
class CheckpointConfig:
    """Checkpointing parameters.

    Attributes
    ----------
    time_bound_s:
        Upper bound on the final commit (the paper's experiments use a
        conservative 30 s, well under EC2's 120 s warning).
    commit_bandwidth_bps:
        Bytes/s guaranteed for the final commit.  The bound must hold
        even during a revocation storm, when every VM assigned to the
        backup server commits at once — so the default is the
        worst-case share of the backup write path across a full
        complement of 40 VMs (110 MB/s / 40 = 2.75 MB/s).  This choice
        makes the 30 s bound, the ~30 s steady-state checkpoint
        interval, and the 35-40 VM backup-server knee of Figure 7
        mutually consistent, as they are in the paper.
    stream_bandwidth_bps:
        Bytes/s the background stream may burst to during normal
        operation (the per-VM throttle; the *average* stream rate is
        set by the interval and is far lower).
    min_interval_s:
        Smallest interval the warning-time ramp may reach.
    ramp_factor:
        Geometric factor by which the interval shrinks per checkpoint
        during the warning period (SpotCheck optimization); 1.0
        disables the ramp (Yank behaviour).
    """

    time_bound_s: float = 30.0
    commit_bandwidth_bps: float = 2.75e6
    stream_bandwidth_bps: float = 12e6
    min_interval_s: float = 0.5
    ramp_factor: float = 0.5

    def __post_init__(self):
        if self.time_bound_s <= 0:
            raise ValueError("time bound must be positive")
        if self.commit_bandwidth_bps <= 0 or self.stream_bandwidth_bps <= 0:
            raise ValueError("bandwidths must be positive")
        if not 0 < self.ramp_factor <= 1:
            raise ValueError("ramp_factor must lie in (0, 1]")

    @property
    def dirty_budget_bytes(self):
        """Residual dirty bytes committable within the time bound."""
        return self.time_bound_s * self.commit_bandwidth_bps


class CheckpointStream:
    """The per-VM continuous-checkpointing model.

    Offers both analytic accessors (interval, stream rate, final-commit
    downtime) used by the figure benches, and a DES process used in
    end-to-end micro simulations.
    """

    def __init__(self, memory, config=None):
        self.memory = memory
        self.config = config or CheckpointConfig()

    def interval_s(self):
        """Steady-state checkpoint interval.

        The longest interval whose dirty volume fits the budget, also
        bounded below so the stream rate cannot exceed the throttle.
        A VM dirtying too fast for *any* interval to fit the budget
        (see :meth:`commit_bound_feasible`) checkpoints at the floor —
        best effort; the planners report its state as unsafe.
        """
        cfg = self.config
        try:
            interval = self.memory.interval_for_dirty_bytes(
                cfg.dirty_budget_bytes)
        except DirtyBudgetInfeasible:
            interval = cfg.min_interval_s
        # The flush of one interval's dirty data must itself finish
        # within (roughly) one interval at the throttled stream rate,
        # or checkpoints would queue without bound.
        for _ in range(20):
            flush_time = (self.memory.dirty_bytes(interval)
                          / cfg.stream_bandwidth_bps)
            if flush_time <= interval:
                break
            interval = flush_time
        return max(interval, cfg.min_interval_s)

    def commit_bound_feasible(self):
        """Whether any checkpoint interval honours the commit budget.

        False means the VM dirties more than the budget within 1 ms —
        the time bound is a fiction for this VM and bounded-time plans
        must report ``state_safe=False``.
        """
        try:
            self.memory.interval_for_dirty_bytes(
                self.config.dirty_budget_bytes)
        except DirtyBudgetInfeasible:
            return False
        return True

    def stream_rate_bps(self):
        """Average bytes/s the stream pushes to the backup server."""
        interval = self.interval_s()
        if interval == float("inf"):
            return 0.0
        return self.memory.dirty_bytes(interval) / interval

    def residual_dirty_bytes(self):
        """Expected dirty state outstanding at an arbitrary instant.

        On average a warning arrives mid-interval, so half an interval's
        dirty volume is outstanding.
        """
        return self.memory.dirty_bytes(self.interval_s() / 2.0)

    def feasible_ramp_interval_s(self):
        """The tightest checkpoint interval the ramp can sustain.

        Ramping to an interval is only feasible if one interval's dirty
        volume can be flushed within the interval at the throttled
        stream rate; a VM that dirties faster than the throttle cannot
        be ramped below the point where the working set saturates.
        """
        cfg = self.config
        steady = self.interval_s()
        interval = cfg.min_interval_s
        while interval < steady:
            if self.memory.dirty_bytes(interval) <= \
                    cfg.stream_bandwidth_bps * interval:
                return interval
            interval *= 1.5
        return steady

    def final_commit_downtime_s(self, ramped=True):
        """VM pause needed to commit the stale state after a warning.

        Without the ramp (Yank), the VM pauses and pushes the residual
        of a full steady-state interval.  With the ramp, checkpoints
        tighten geometrically during the warning, so the final pause
        only covers the dirty volume of the tightest feasible interval.
        """
        cfg = self.config
        if ramped and cfg.ramp_factor < 1.0:
            residual = self.memory.dirty_bytes(self.feasible_ramp_interval_s())
        else:
            residual = self.memory.dirty_bytes(self.interval_s())
        return residual / cfg.commit_bandwidth_bps

    def warning_degradation_s(self, warning_period_s, ramped=True):
        """Seconds of degraded (not down) operation during the warning.

        The ramp trades downtime for degradation: tighter checkpoints
        cost write-protection faults and transfer contention while the
        VM keeps running.  The window is one steady-state interval (the
        time to walk the ramp down), capped by the part of the warning
        not needed for the final commit.
        """
        if not ramped or self.config.ramp_factor >= 1.0:
            return 0.0
        available = max(
            warning_period_s - self.final_commit_downtime_s(ramped=True)
            - 2.0, 0.0)
        return min(available, self.interval_s())

    def ramp_schedule(self, warning_period_s):
        """Checkpoint intervals used during the warning period."""
        cfg = self.config
        schedule = []
        interval = self.interval_s()
        elapsed = 0.0
        while elapsed < warning_period_s and interval > cfg.min_interval_s:
            interval = max(interval * cfg.ramp_factor, cfg.min_interval_s)
            schedule.append(interval)
            elapsed += interval
        return schedule

    def run(self, env, backup_link, stop_event, on_flush=None):
        """DES process: stream checkpoints until ``stop_event`` triggers.

        Each epoch's dirty volume is flushed over ``backup_link`` by a
        *background* transfer (the VM keeps running and dirtying while
        the previous flush drains — that overlap is what makes the
        steady-state stream rate equal ``stream_rate_bps``).
        ``on_flush(bytes)`` is invoked as each flush commits.  The
        process returns the total committed bytes once the stop event
        has fired and all in-flight flushes have drained.
        """
        cfg = self.config
        state = {"flushed": 0.0, "in_flight": [], "rounds": 0}

        def _flush(dirty):
            yield backup_link.transfer(
                dirty, rate_cap=cfg.stream_bandwidth_bps)
            state["flushed"] += dirty
            state["rounds"] += 1
            obs = getattr(env, "obs", None)
            if obs is not None:
                obs.emit("checkpoint.flush", bytes=dirty,
                         round=state["rounds"],
                         total_bytes=state["flushed"])
                obs.metrics.counter("checkpoint_flushes_total").inc()
                obs.metrics.counter("checkpoint_bytes_total").inc(dirty)
            if on_flush is not None:
                on_flush(dirty)

        def _stream():
            while not stop_event.triggered:
                interval = self.interval_s()
                if interval == float("inf"):
                    yield env.any_of([stop_event, env.timeout(3600.0)])
                    continue
                yield env.any_of([stop_event, env.timeout(interval)])
                if stop_event.triggered:
                    break
                dirty = self.memory.dirty_bytes(interval)
                if dirty > 0:
                    state["in_flight"].append(env.process(_flush(dirty)))
            pending = [p for p in state["in_flight"] if p.is_alive]
            if pending:
                yield env.all_of(pending)
            return state["flushed"]

        return env.process(_stream())
