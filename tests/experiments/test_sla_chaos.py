"""SLA-under-chaos: determinism, digest pinning, scenario wiring."""

import json

import pytest

from repro.experiments.sla_chaos import (
    check_sla_digest,
    default_traffic_mix,
    policy_attainment,
    run_sla,
    sla_digest,
)

SMALL = dict(seed=5, days=4.0, vms=4)


@pytest.fixture(scope="module")
def small_run():
    return run_sla(**SMALL)


class TestRun:
    def test_summary_has_sla_sections(self, small_run):
        results, digest = small_run
        for summary in results.values():
            assert set(summary["sla"]) == {"web", "api"}
            assert "traffic_drive" in summary
            assert summary["traffic_drive"]["wakes"] > 0

    def test_deterministic_across_runs(self, small_run):
        _, first = small_run
        _, second = run_sla(**SMALL)
        assert first == second

    def test_digest_is_json_stable(self, small_run):
        _, digest = small_run
        assert json.loads(json.dumps(digest)) == digest

    def test_attainment_in_range(self, small_run):
        results, digest = small_run
        for policy, summary in results.items():
            attainment = policy_attainment(summary)
            assert 0.0 < attainment <= 1.0
            assert digest["policies"][policy]["attainment"] == \
                pytest.approx(attainment, abs=1e-8)

    def test_both_policies_share_one_archive(self, small_run):
        # Identical seeds + shared price archive: the api group's
        # expected request volume only differs by fleet-ready time.
        results, _ = small_run
        requests = [d["policies"][p]["customers"]["api"]["requests"]
                    for d in [small_run[1]]
                    for p in d["policies"]]
        assert max(requests) - min(requests) < 0.01 * max(requests)


class TestDigestCheck:
    def test_self_check_clean(self, small_run):
        _, digest = small_run
        assert check_sla_digest(digest, digest) == []

    def test_tampered_value_reported(self, small_run):
        _, digest = small_run
        golden = json.loads(json.dumps(digest))
        policy = digest["attainment_order"][0]
        golden["policies"][policy]["customers"]["web"]["requests"] += 1
        problems = check_sla_digest(digest, golden)
        assert len(problems) == 1
        assert "web.requests" in problems[0]

    def test_missing_policy_reported(self, small_run):
        _, digest = small_run
        golden = json.loads(json.dumps(digest))
        golden["policies"]["9P-IMAGINARY"] = {"attainment": 1.0}
        problems = check_sla_digest(digest, golden)
        assert any("9P-IMAGINARY" in p for p in problems)

    def test_ordering_flip_is_a_story_change(self, small_run):
        _, digest = small_run
        broken = json.loads(json.dumps(digest))
        broken["downtime_order"] = list(reversed(broken["downtime_order"]))
        problems = check_sla_digest(broken, broken)
        assert any("Figure 12" in p for p in problems)


class TestGoldenFile:
    def test_checked_in_golden_is_wellformed(self):
        from repro.experiments import sla_chaos
        import os
        path = os.path.join(os.path.dirname(sla_chaos.__file__),
                            "sla_golden.json")
        golden = json.loads(open(path).read())
        assert set(golden["policies"]) == {"1P-M", "4P-COST"}
        assert golden["attainment_order"] == golden["downtime_order"]
        for entry in golden["policies"].values():
            assert 0.9 < entry["attainment"] <= 1.0


class TestMixDefaults:
    def test_window_clips_to_short_runs(self):
        day = 24 * 3600.0
        mix = default_traffic_mix(days=3.0)
        assert mix.groups[0].sla.window_s == 3.0 * day
        assert default_traffic_mix(days=30.0).groups[0].sla.window_s == \
            7.0 * day

    def test_weights_favor_web(self):
        mix = default_traffic_mix()
        assert mix.allocate_vms(12) == [9, 3]
