"""Ablation: bid level and proactive migration (Section 4.3).

The paper's two bidding policies: bid the on-demand price, or bid k
times it.  "The higher the bid price, the lower the probability of an
IaaS platform revoking the spot servers in a pool", and a k > 1 bid
opens the price band in which proactive live migration can replace
reactive bounded-time migration.
"""

from repro.experiments.policy_grid import run_cell, shared_archive
from repro.experiments.reporting import format_table

DAYS = 45.0
VMS = 16

MULTIPLES = (1.0, 1.5, 2.5, 4.0)


def sweep():
    archive = shared_archive(17, DAYS)
    rows = []
    for multiple in MULTIPLES:
        bid_policy = "on-demand" if multiple == 1.0 else "multiple"
        summary = run_cell(
            "2P-ML", "spotcheck-lazy", seed=17, days=DAYS, vms=VMS,
            archive=archive, bid_policy=bid_policy, bid_multiple=multiple)
        rows.append({
            "multiple": multiple,
            "revocations": summary["revocation_events"],
            "cost": summary["cost_per_vm_hour"],
            "unavail_pct": summary["unavailability_pct"],
        })
    proactive = run_cell(
        "2P-ML", "spotcheck-lazy", seed=17, days=DAYS, vms=VMS,
        archive=archive, bid_policy="multiple", bid_multiple=4.0,
        proactive=True)
    return rows, proactive


def test_ablation_bidding(benchmark, report):
    rows, proactive = benchmark.pedantic(sweep, rounds=1, iterations=1)

    # Higher bids mean fewer revocations (Fig 6a's CDF shape).
    assert rows[-1]["revocations"] < rows[0]["revocations"]
    # And fewer revocations mean less downtime.
    assert rows[-1]["unavail_pct"] <= rows[0]["unavail_pct"] * 1.05

    # With a 4x bid and proactive migration on, part of the remaining
    # crossings turn into planned live moves inside the price band.
    assert proactive["migrations"] > 0

    table_rows = [(f"{row['multiple']}x", row["revocations"],
                   f"${row['cost']:.4f}", f"{row['unavail_pct']:.4f}%")
                  for row in rows]
    table_rows.append((
        "4.0x + proactive", proactive["revocation_events"],
        f"${proactive['cost_per_vm_hour']:.4f}",
        f"{proactive['unavailability_pct']:.4f}%"))
    text = format_table(
        ["bid (x on-demand)", "revocation events", "cost/VM-hr",
         "unavailability"],
        table_rows,
        title=(f"Ablation — bid level and proactive migration "
               f"(2P-ML, {VMS} VMs, {DAYS:.0f} days)"))
    report("ablation_bidding", text)
