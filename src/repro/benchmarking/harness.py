"""The ``repro bench`` harness: run, serialize, and validate benchmarks.

One :func:`run_bench` call produces a ``repro-bench/2`` payload;
:func:`write_bench` lands it as ``BENCH_<label>.json``.  The schema is
deliberately flat and stable so that successive artifacts (one per
commit, uploaded by CI) can be diffed and plotted as a performance
trajectory: kernel events/sec must not regress, grid speedup must hold.

Schema 2 adds the ``market`` section (the stepped-vs-indexed market
drive microbenchmark), per-cell ``market_drive`` counters, the grid's
``parallel_plan`` decision, and :func:`check_bench_floors` — the
generous absolute floors CI holds kernel and market-drive throughput
to.

Schema 3 adds the ``traffic`` section: the traffic-engine scaling
microbenchmark (``repro.benchmarking.traffic``), whose low- and
high-volume cells must land identical kernel-wake counts —
``check_bench_floors`` fails the artifact if request volume bought
even one extra wake.

Schema 4 adds the ``fleet`` section: the fleet-scale cell benchmark
(``repro.benchmarking.fleet``), a calm-market SpotCheck cell driven at
two fleet sizes with the steady checkpoint flush running through the
group scheduler.  ``check_bench_floors`` holds the large cell's kernel
events under :data:`FLEET_EVENT_RATIO_CEILING` times the small cell's
and its wall clock under :data:`FLEET_WALL_RATIO_CEILING` times — a
surviving per-VM loop blows through both by orders of magnitude.

Schema 5 adds the ``index`` section: the portfolio-drive benchmark
(``repro.benchmarking.index``), the same cell run under 1P-M and an
index-tracking portfolio.  ``check_bench_floors`` holds the portfolio
cell's ``delivered_fraction`` under
:data:`INDEX_DELIVERED_FRACTION_CEILING` — portfolio rebalancing must
ride price crossings, not reintroduce the per-point market drive.

Schema 6 adds the ``shard`` section: the sharded fleet cell
(``repro.core.shard``), the same total fleet spread over (type, zone)
market shards and run once per shard count.  ``check_bench_floors``
requires ``shard.bit_identical`` — every shard count must produce the
same ``FleetResult.digest()``, the subsystem's determinism contract.
Schema 6 also splits the fleet cells' wall clock into ``boot_wall_s``
(provisioning, honestly O(N) in VM construction) and
``steady_wall_s``; ``fleet.wall_ratio`` ratchets the steady-state
portion, which is what must stay flat as the fleet grows to 1M VMs.

Schema 7 adds the ``fleet_mix`` section: the heterogeneous fleet cell
(``measure_fleet_mix``) — the same calm cell provisioned as a
geometric mix of distinct workload classes, its steady flushes served
by the struct-of-arrays cohort core.  ``check_bench_floors`` holds the
mixed cell within :data:`FLEET_MIX_EVENT_RATIO_CEILING` times the
homogeneous cell's kernel events and
:data:`FLEET_MIX_WALL_RATIO_CEILING` times its steady wall clock (a
per-plan wakeup loop costs the class count instead), requires at least
as many plan-groups as classes, and requires
``fleet_mix.bit_identical`` — the mixed cell under the SoA core must
produce the same ``FleetResult.digest()`` at every shard count.
"""

import json
import os
import sys
import time

from repro.benchmarking.fleet import (
    measure_fleet_mix,
    measure_fleet_scaling,
    measure_sharded_fleet,
)
from repro.benchmarking.grid import measure_cell, measure_grid
from repro.benchmarking.index import measure_index_drive
from repro.benchmarking.kernel import measure_kernel
from repro.benchmarking.market import measure_market_drive
from repro.benchmarking.traffic import measure_traffic_scaling
from repro.experiments.scenario import MECHANISMS, POLICIES

#: Current artifact schema identifier.
BENCH_SCHEMA = "repro-bench/7"

#: Floors for :func:`check_bench_floors`, far below what any healthy
#: host measures (a laptop does ~1M kernel events/sec and ~300k stepped
#: market points/sec) so CI noise cannot flake the guard, while a
#: complexity regression — the drive waking per point again, the kernel
#: heap degrading — still lands well under them.
KERNEL_EVENTS_PER_SEC_FLOOR = 50_000.0
MARKET_EVENTS_PER_SEC_FLOOR = 20_000.0

#: Fleet-cell scaling ceilings.  The measured ratios sit near 1.2 and
#: 1.7 (fleet size buys almost nothing); a surviving per-VM loop
#: multiplies events by the fleet-size ratio (1000x+), so generous
#: ceilings still catch any real regression without flaking on noise.
FLEET_EVENT_RATIO_CEILING = 20.0
FLEET_WALL_RATIO_CEILING = 10.0

#: Heterogeneity ratchet.  The mixed cell's kernel events are
#: deterministic and land near 1.6x the homogeneous cell's (the
#: default geometric mix's summed checkpoint-round rate); a per-plan
#: wakeup loop costs the full class count (8x+), so 2x catches it with
#: headroom.  The wall ceiling is looser because wall clock is noisy —
#: measured runs sit near 2x, a per-VM regression sits at fleet scale.
FLEET_MIX_EVENT_RATIO_CEILING = 2.0
FLEET_MIX_WALL_RATIO_CEILING = 4.0

#: Ceiling on the portfolio cell's delivered-events-per-trace-point
#: fraction.  Measured runs sit under 0.02 (a couple hundred crossings
#: across ~15k points); a per-point drive sits at 1.0, so a generous
#: ceiling still trips on any real regression.
INDEX_DELIVERED_FRACTION_CEILING = 0.25

#: Preset for the seconds-scale CI smoke benchmark.
SMOKE_PRESET = {
    "kernel_events": 150_000,
    "policies": ("1P-M", "4P-ED"),
    "mechanisms": ("spotcheck-lazy", "xen-live"),
    "days": 2.0,
    "vms": 4,
    "workers": 2,
    "cell_days": 2.0,
    "cell_vms": 4,
    "market_days": 2.0,
    "market_instances": 4,
    "traffic_days": 2.0,
    "traffic_scales": (1_000, 1_000_000),
    "fleet_days": 2.0,
    "fleet_scales": (10, 10_000),
    "fleet_mix_classes": 8,
    "index_days": 2.0,
    "index_vms": 4,
    "shard_vms": 2_000,
    "shard_days": 2.0,
    "shard_markets": 4,
    "shard_counts": (1, 2),
}

#: Preset for a full local benchmark run.
FULL_PRESET = {
    "kernel_events": 1_000_000,
    "policies": POLICIES,
    "mechanisms": MECHANISMS,
    "days": 14.0,
    "vms": 10,
    "workers": 4,
    "cell_days": 14.0,
    "cell_vms": 10,
    "market_days": 14.0,
    "market_instances": 10,
    "traffic_days": 7.0,
    "traffic_scales": (1_000, 1_000_000),
    "fleet_days": 14.0,
    "fleet_scales": (10, 100_000),
    "fleet_mix_classes": 8,
    "index_days": 14.0,
    "index_vms": 10,
    "shard_vms": 100_000,
    "shard_days": 14.0,
    "shard_markets": 4,
    "shard_counts": (1, 2, 4),
}


def run_bench(label="local", smoke=False, seed=11, workers=None, days=None,
              vms=None, kernel_events=None, fleet_vms=None, fleet_days=None,
              shards=None, fleet_mix_classes=None, echo=None):
    """Run the kernel, cell, and grid benchmarks; returns the payload."""
    preset = dict(SMOKE_PRESET if smoke else FULL_PRESET)
    if workers is not None:
        preset["workers"] = workers
    if days is not None:
        preset["days"] = preset["cell_days"] = preset["index_days"] = days
    if vms is not None:
        preset["vms"] = preset["cell_vms"] = preset["index_vms"] = vms
    if kernel_events is not None:
        preset["kernel_events"] = kernel_events
    if fleet_vms is not None:
        preset["fleet_scales"] = (preset["fleet_scales"][0], fleet_vms)
        preset["shard_vms"] = fleet_vms
    if fleet_days is not None:
        preset["fleet_days"] = preset["shard_days"] = fleet_days
    if shards is not None:
        if shards < 2:
            raise ValueError("--shards must be at least 2 (the "
                             "single-process reference always runs)")
        preset["shard_counts"] = (1, shards)
    if fleet_mix_classes is not None:
        if fleet_mix_classes < 1:
            raise ValueError("--fleet-mix needs at least one class")
        preset["fleet_mix_classes"] = fleet_mix_classes

    def say(message):
        if echo is not None:
            echo(message)

    if days is not None:
        preset["market_days"] = days

    say(f"kernel: {preset['kernel_events']} events x3 ...")
    kernel = measure_kernel(events=preset["kernel_events"])
    say(f"  {kernel['events_per_sec']:.0f} events/sec")

    say(f"market drive: {preset['market_days']:.0f} days, "
        f"{preset['market_instances']} instances, stepped vs indexed ...")
    market = measure_market_drive(days=preset["market_days"], seed=seed,
                                  instances=preset["market_instances"])
    say(f"  {market['events_eliminated']} of {market['trace_points']} "
        f"events eliminated (x{market['event_reduction']:.0f}), wall "
        f"x{market['speedup']:.1f}")

    low_scale, high_scale = preset["traffic_scales"]
    say(f"traffic engine: {preset['traffic_days']:.0f} days, "
        f"{low_scale} vs {high_scale} users ...")
    traffic = measure_traffic_scaling(scales=preset["traffic_scales"],
                                      days=preset["traffic_days"])
    say(f"  {traffic['high']['requests']:.0f} requests in "
        f"{traffic['high']['wakes']} wakes (x{traffic['request_ratio']:.0f} "
        f"volume, wake ratio {traffic['wake_ratio']:.2f})")

    small_fleet, large_fleet = preset["fleet_scales"]
    say(f"fleet cell: {preset['fleet_days']:.0f} days, "
        f"{small_fleet} vs {large_fleet} VMs ...")
    fleet = measure_fleet_scaling(small_vms=small_fleet,
                                  large_vms=large_fleet,
                                  days=preset["fleet_days"], seed=seed,
                                  echo=say)
    say(f"  {fleet['large']['events']} events at {large_fleet} VMs "
        f"(event ratio {fleet['event_ratio']:.2f}, wall "
        f"x{fleet['wall_ratio']:.2f})")

    say(f"sharded fleet: {preset['shard_vms']} VMs over "
        f"{preset['shard_markets']} markets, shards "
        f"{preset['shard_counts']} ...")
    shard = measure_sharded_fleet(vms=preset["shard_vms"],
                                  days=preset["shard_days"], seed=seed,
                                  markets=preset["shard_markets"],
                                  shard_counts=preset["shard_counts"],
                                  echo=say)
    say(f"  single {shard['single']['wall_s']:.2f}s vs "
        f"{shard['sharded']['shards']} shards "
        f"{shard['sharded']['wall_s']:.2f}s (x{shard['speedup']:.2f}), "
        f"bit-identical: {shard['bit_identical']}")

    say(f"fleet mix: {preset['fleet_mix_classes']} classes at "
        f"{large_fleet} VMs, {preset['fleet_days']:.0f} days ...")
    fleet_mix = measure_fleet_mix(
        vms=large_fleet, days=preset["fleet_days"], seed=seed,
        classes=preset["fleet_mix_classes"], baseline=fleet["large"],
        digest_vms=preset["shard_vms"],
        digest_markets=preset["shard_markets"],
        shard_counts=preset["shard_counts"], echo=say)
    say(f"  {fleet_mix['mixed']['events']} events over "
        f"{fleet_mix['mixed']['flush_cohorts']} plan-groups (event ratio "
        f"{fleet_mix['event_ratio']:.2f}, wall "
        f"x{fleet_mix['wall_ratio']:.2f}), bit-identical: "
        f"{fleet_mix['bit_identical']}")

    say(f"portfolio drive: {preset['index_days']:.0f} days, "
        f"{preset['index_vms']} VMs, 1P-M vs IT-0.125 ...")
    index = measure_index_drive(days=preset["index_days"], seed=seed,
                                vms=preset["index_vms"])
    say(f"  {index['portfolio']['delivered']} of "
        f"{index['portfolio']['points']} points delivered "
        f"({100 * index['delivered_fraction']:.2f}%), "
        f"{index['extra_delivered']} over the 1P-M baseline")

    say(f"cell: 1P-M/spotcheck-lazy, {preset['cell_days']:.0f} days, "
        f"{preset['cell_vms']} VMs ...")
    cell = measure_cell(seed=seed, days=preset["cell_days"],
                        vms=preset["cell_vms"])
    say(f"  {cell['wall_s']:.2f}s")

    grid_shape = (f"{len(preset['policies'])}x{len(preset['mechanisms'])} "
                  f"grid, {preset['days']:.0f} days, {preset['vms']} VMs, "
                  f"{preset['workers']} workers")
    say(f"grid: serial vs parallel vs warm ({grid_shape}) ...")
    grid = measure_grid(policies=preset["policies"],
                        mechanisms=preset["mechanisms"], seed=seed,
                        days=preset["days"], vms=preset["vms"],
                        workers=preset["workers"])
    say(f"  serial {grid['serial_wall_s']:.2f}s  parallel "
        f"{grid['parallel_wall_s']:.2f}s (x{grid['speedup']:.2f})  warm "
        f"{grid['warm_wall_s']:.2f}s (x{grid['warm_speedup']:.2f})")

    return {
        "schema": BENCH_SCHEMA,
        "label": label,
        "smoke": bool(smoke),
        "created_unix": time.time(),
        "host": {
            "cpu_count": os.cpu_count(),
            "python": sys.version.split()[0],
        },
        "kernel": kernel,
        "market": market,
        "traffic": traffic,
        "fleet": fleet,
        "fleet_mix": fleet_mix,
        "shard": shard,
        "index": index,
        "cell": cell,
        "grid": grid,
    }


def bench_filename(label):
    safe = "".join(c if c.isalnum() or c in "-_." else "-" for c in label)
    return f"BENCH_{safe}.json"


def write_bench(payload, out_dir="."):
    """Validate and write ``BENCH_<label>.json``; returns the path."""
    validate_bench(payload)
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, bench_filename(payload["label"]))
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def _require(payload, dotted, kinds):
    node = payload
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            raise ValueError(f"bench payload missing {dotted!r}")
        node = node[part]
    if not isinstance(node, kinds) or isinstance(node, bool):
        raise ValueError(
            f"bench payload field {dotted!r} has type "
            f"{type(node).__name__}, expected {kinds}")
    return node


def validate_bench(payload):
    """Check a payload against the ``repro-bench/7`` schema.

    Raises ``ValueError`` on any missing field, wrong type, or
    non-positive timing; returns the payload for chaining.
    """
    if not isinstance(payload, dict):
        raise ValueError("bench payload must be a dict")
    if payload.get("schema") != BENCH_SCHEMA:
        raise ValueError(
            f"unknown bench schema {payload.get('schema')!r}, "
            f"expected {BENCH_SCHEMA!r}")
    _require(payload, "label", str)
    if not isinstance(payload.get("smoke"), bool):
        raise ValueError("bench payload field 'smoke' must be a bool")
    _require(payload, "created_unix", (int, float))
    _require(payload, "host.cpu_count", int)
    for field in ("kernel.events", "kernel.wall_s", "kernel.events_per_sec",
                  "market.trace_points", "market.events_eliminated",
                  "market.stepped.wall_s", "market.stepped.delivered",
                  "market.stepped.events_per_sec",
                  "market.indexed.wall_s", "market.indexed.delivered",
                  "market.indexed.events_per_sec",
                  "traffic.low.users", "traffic.low.requests",
                  "traffic.low.wakes", "traffic.low.segments",
                  "traffic.low.wall_s",
                  "traffic.high.users", "traffic.high.requests",
                  "traffic.high.wakes", "traffic.high.segments",
                  "traffic.high.wall_s",
                  "fleet.small.vms", "fleet.small.events",
                  "fleet.small.events_per_vm_hour", "fleet.small.wall_s",
                  "fleet.small.boot_wall_s", "fleet.small.steady_wall_s",
                  "fleet.small.flush_cohorts", "fleet.small.flush_flows",
                  "fleet.small.spare_wakes", "fleet.small.spare_polls",
                  "fleet.large.vms", "fleet.large.events",
                  "fleet.large.events_per_vm_hour", "fleet.large.wall_s",
                  "fleet.large.boot_wall_s", "fleet.large.steady_wall_s",
                  "fleet.large.flush_cohorts", "fleet.large.flush_flows",
                  "fleet.large.spare_wakes", "fleet.large.spare_polls",
                  "fleet_mix.classes", "fleet_mix.vms", "fleet_mix.days",
                  "fleet_mix.homogeneous.events",
                  "fleet_mix.homogeneous.steady_wall_s",
                  "fleet_mix.mixed.events", "fleet_mix.mixed.classes",
                  "fleet_mix.mixed.steady_wall_s",
                  "fleet_mix.mixed.flush_cohorts",
                  "fleet_mix.mixed.flush_flows",
                  "fleet_mix.single.shards", "fleet_mix.single.events",
                  "fleet_mix.sharded.shards", "fleet_mix.sharded.events",
                  "shard.vms", "shard.markets", "shard.days",
                  "shard.single.shards", "shard.single.wall_s",
                  "shard.single.events",
                  "shard.sharded.shards", "shard.sharded.wall_s",
                  "shard.sharded.events",
                  "index.baseline.points", "index.baseline.delivered",
                  "index.baseline.wall_s",
                  "index.portfolio.points", "index.portfolio.delivered",
                  "index.portfolio.rearms", "index.portfolio.wall_s",
                  "index.portfolio.crossings",
                  "index.portfolio.rebalance_moves",
                  "index.delivered_fraction",
                  "cell.wall_s", "cell.market_drive.points",
                  "cell.market_drive.wakes", "cell.market_drive.delivered",
                  "cell.market_drive.rearms",
                  "cell.market_drive.stale_skips",
                  "grid.cells", "grid.serial_wall_s",
                  "grid.parallel_wall_s", "grid.warm_wall_s", "grid.speedup",
                  "grid.warm_speedup", "grid.workers",
                  "grid.parallel_plan.requested", "grid.parallel_plan.planned",
                  "grid.cache.misses",
                  "grid.cache.memory_hits", "grid.cache.disk_hits",
                  "grid.cache.executed", "grid.cache.warm_disk_hits",
                  "grid.cache.warm_misses"):
        value = _require(payload, field, (int, float))
        if value < 0:
            raise ValueError(f"bench payload field {field!r} is negative")
    _require(payload, "grid.parallel_plan.reason", str)
    for field in ("kernel.events_per_sec", "grid.speedup",
                  "grid.warm_speedup", "market.event_reduction",
                  "market.speedup", "cell.market_drive.event_reduction",
                  "market.stepped.events_per_sec",
                  "market.indexed.events_per_sec",
                  "traffic.request_ratio", "traffic.wake_ratio",
                  "fleet.event_ratio", "fleet.wall_ratio",
                  "fleet_mix.event_ratio", "fleet_mix.wall_ratio",
                  "shard.speedup"):
        if _require(payload, field, (int, float)) <= 0:
            raise ValueError(f"bench payload field {field!r} must be > 0")
    _require(payload, "shard.digest", str)
    if not isinstance(payload["shard"].get("bit_identical"), bool):
        raise ValueError(
            "bench payload field 'shard.bit_identical' must be a bool")
    _require(payload, "fleet_mix.digest", str)
    if not isinstance(payload["fleet_mix"].get("bit_identical"), bool):
        raise ValueError(
            "bench payload field 'fleet_mix.bit_identical' must be a bool")
    return payload


def check_bench_floors(payload,
                       kernel_floor=KERNEL_EVENTS_PER_SEC_FLOOR,
                       market_floor=MARKET_EVENTS_PER_SEC_FLOOR,
                       fleet_event_ceiling=FLEET_EVENT_RATIO_CEILING,
                       fleet_wall_ceiling=FLEET_WALL_RATIO_CEILING,
                       mix_event_ceiling=FLEET_MIX_EVENT_RATIO_CEILING,
                       mix_wall_ceiling=FLEET_MIX_WALL_RATIO_CEILING,
                       index_ceiling=INDEX_DELIVERED_FRACTION_CEILING):
    """Hold kernel and market-drive throughput above absolute floors.

    The floors are deliberately generous (see the module constants) —
    this is a regression tripwire for order-of-magnitude collapses,
    not a performance leaderboard.  The indexed drive must also retire
    trace points at least as fast as the stepped one; it skips nearly
    all of them, so even equality signals the skipping is broken.
    Raises ``ValueError`` with every violation listed; returns the
    payload for chaining.
    """
    validate_bench(payload)
    problems = []
    kernel_rate = payload["kernel"]["events_per_sec"]
    if kernel_rate < kernel_floor:
        problems.append(
            f"kernel {kernel_rate:.0f} events/sec < floor {kernel_floor:.0f}")
    stepped_rate = payload["market"]["stepped"]["events_per_sec"]
    if stepped_rate < market_floor:
        problems.append(
            f"market stepped {stepped_rate:.0f} events/sec < floor "
            f"{market_floor:.0f}")
    indexed_rate = payload["market"]["indexed"]["events_per_sec"]
    if indexed_rate < stepped_rate:
        problems.append(
            f"market indexed {indexed_rate:.0f} events/sec slower than "
            f"stepped {stepped_rate:.0f} — event skipping is not skipping")
    traffic = payload["traffic"]
    if traffic["high"]["wakes"] != traffic["low"]["wakes"] or \
            traffic["high"]["segments"] != traffic["low"]["segments"]:
        problems.append(
            f"traffic engine wakes/segments scale with request volume: "
            f"{traffic['low']['wakes']}/{traffic['low']['segments']} at "
            f"{traffic['low']['users']:.0f} users vs "
            f"{traffic['high']['wakes']}/{traffic['high']['segments']} at "
            f"{traffic['high']['users']:.0f} users")
    if traffic["request_ratio"] < 100.0:
        problems.append(
            f"traffic scaling cells too close "
            f"(x{traffic['request_ratio']:.0f} request volume) to prove "
            f"volume independence")
    fleet = payload["fleet"]
    vm_ratio = fleet["large"]["vms"] / max(fleet["small"]["vms"], 1)
    if fleet["event_ratio"] >= fleet_event_ceiling:
        problems.append(
            f"fleet cell events scale with fleet size: "
            f"{fleet['small']['events']} events at "
            f"{fleet['small']['vms']} VMs vs {fleet['large']['events']} "
            f"at {fleet['large']['vms']} (ratio {fleet['event_ratio']:.1f} "
            f">= ceiling {fleet_event_ceiling:.0f})")
    if fleet["wall_ratio"] > fleet_wall_ceiling:
        problems.append(
            f"fleet cell wall clock scales with fleet size: "
            f"x{fleet['wall_ratio']:.1f} at x{vm_ratio:.0f} VMs "
            f"(ceiling x{fleet_wall_ceiling:.0f})")
    if fleet["large"]["events_per_vm_hour"] \
            >= fleet["small"]["events_per_vm_hour"]:
        problems.append(
            f"fleet cell events/VM-hour did not amortize: "
            f"{fleet['large']['events_per_vm_hour']:.3f} at "
            f"{fleet['large']['vms']} VMs >= "
            f"{fleet['small']['events_per_vm_hour']:.3f} at "
            f"{fleet['small']['vms']}")
    fleet_mix = payload["fleet_mix"]
    if fleet_mix["mixed"]["flush_cohorts"] < fleet_mix["classes"]:
        problems.append(
            f"fleet mix cell formed only "
            f"{fleet_mix['mixed']['flush_cohorts']} plan-groups for "
            f"{fleet_mix['classes']} workload classes — the population "
            f"is not heterogeneous, so the ratchet proves nothing")
    if fleet_mix["event_ratio"] > mix_event_ceiling:
        problems.append(
            f"heterogeneous fleet cell events scale with plan count: "
            f"{fleet_mix['mixed']['events']} events over "
            f"{fleet_mix['classes']} classes vs "
            f"{fleet_mix['homogeneous']['events']} homogeneous "
            f"(ratio {fleet_mix['event_ratio']:.2f} > ceiling "
            f"{mix_event_ceiling:.1f})")
    if fleet_mix["wall_ratio"] > mix_wall_ceiling:
        problems.append(
            f"heterogeneous fleet cell wall clock scales with plan "
            f"count: x{fleet_mix['wall_ratio']:.1f} over "
            f"{fleet_mix['classes']} classes (ceiling "
            f"x{mix_wall_ceiling:.0f})")
    if fleet_mix["bit_identical"] is not True:
        problems.append(
            f"mixed fleet cell under the SoA core is not bit-identical "
            f"across shard counts ({fleet_mix['sharded']['shards']} "
            f"shards) — the struct-of-arrays runner leaked host or "
            f"shard identity into the simulation")
    if fleet_mix["single"]["events"] != fleet_mix["sharded"]["events"]:
        problems.append(
            f"mixed sharded cell event totals diverge: "
            f"{fleet_mix['single']['events']} single-process vs "
            f"{fleet_mix['sharded']['events']} at "
            f"{fleet_mix['sharded']['shards']} shards")
    shard = payload["shard"]
    if shard["bit_identical"] is not True:
        problems.append(
            f"sharded fleet cell is not bit-identical to the "
            f"single-process cell at {shard['sharded']['shards']} shards "
            f"({shard['vms']} VMs over {shard['markets']} markets) — the "
            f"mailbox merge or a per-market seed leaked process identity")
    if shard["single"]["events"] != shard["sharded"]["events"]:
        problems.append(
            f"sharded fleet cell event totals diverge: "
            f"{shard['single']['events']} single-process vs "
            f"{shard['sharded']['events']} at "
            f"{shard['sharded']['shards']} shards")
    index = payload["index"]
    if index["delivered_fraction"] >= index_ceiling:
        problems.append(
            f"portfolio cell delivered "
            f"{index['portfolio']['delivered']} of "
            f"{index['portfolio']['points']} trace points "
            f"({index['delivered_fraction']:.3f} >= ceiling "
            f"{index_ceiling}) — rebalancing reintroduced the "
            f"per-point market drive")
    if problems:
        raise ValueError("; ".join(problems))
    return payload


def validate_bench_file(path):
    """Load and validate one ``BENCH_*.json``; returns the payload."""
    with open(path) as handle:
        return validate_bench(json.load(handle))
