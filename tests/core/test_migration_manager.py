"""Focused tests for the migration manager's flows."""

import pytest

from repro.cloud.instances import InstanceState, Market
from repro.core.config import SpotCheckConfig
from repro.virt.vm import VMState
from repro.workloads import TpcwWorkload

from tests.core.test_controller import (
    SPIKE_START,
    build,
    launch_fleet,
    quiet_trace,
    spiky_trace,
)


class TestDestinationAcquisition:
    def test_fresh_on_demand_host_by_default(self):
        env, api, controller = build(SpotCheckConfig(return_to_spot=False))
        [vm] = launch_fleet(env, controller, count=1)
        def flow():
            host, kind = yield controller.migrations.acquire_destination(vm)
            return host, kind
        host, kind = env.run(until=env.process(flow()))
        assert kind == "fresh"
        assert host.instance.market is Market.ON_DEMAND
        assert host.hypervisor.reserved == 1

    def test_pool_slot_preferred_over_fresh(self):
        env, api, controller = build(SpotCheckConfig(return_to_spot=False))
        [vm] = launch_fleet(env, controller, count=1)
        def prime():
            instance = yield api.run_instance(
                controller.slot_itype, controller.zone, Market.ON_DEMAND)
            from repro.virt.hypervisor import HostVM
            host = HostVM(env, instance, controller.slot_itype, slots=1)
            controller.pools.on_demand_pool(
                "m3.medium", "us-east-1a").add_host(host)
            return host
        primed = env.run(until=env.process(prime()))
        def flow():
            result = yield controller.migrations.acquire_destination(vm)
            return result
        host, kind = env.run(until=env.process(flow()))
        assert kind == "pool"
        assert host is primed

    def test_spare_preferred_over_pool(self):
        env, api, controller = build(SpotCheckConfig(
            hot_spares=1, return_to_spot=False))
        [vm] = launch_fleet(env, controller, count=1)
        env.run(until=env.now + 600.0)  # let the spare come up
        def flow():
            result = yield controller.migrations.acquire_destination(vm)
            return result
        host, kind = env.run(until=env.process(flow()))
        assert kind == "spare"

    def test_no_capacity_no_staging_fails(self):
        env, api, controller = build(
            SpotCheckConfig(return_to_spot=False), on_demand_capacity=0)
        [vm] = launch_fleet(env, controller, count=1)
        def flow():
            result = yield controller.migrations.acquire_destination(vm)
            return result
        from repro.core.migration_manager import MigrationError
        with pytest.raises(MigrationError):
            env.run(until=env.process(flow()))


class TestBusyLock:
    def test_concurrent_live_migrations_collapse(self):
        env, api, controller = build(SpotCheckConfig(return_to_spot=False))
        [vm] = launch_fleet(env, controller, count=1)
        source = vm.host
        first = controller.migrations.live_migrate(vm, source, cause="test")
        second = controller.migrations.live_migrate(vm, source, cause="test")
        def wait_both():
            a = yield first
            b = yield second
            return a, b
        a, b = env.run(until=env.process(wait_both()))
        # Exactly one of the two actually moved the VM.
        assert (a is None) != (b is None)
        assert controller.ledger.migration_count("test") == 1


class TestLiveFlow:
    def test_planned_live_migration_minimal_downtime(self):
        env, api, controller = build(SpotCheckConfig(return_to_spot=False))
        [vm] = launch_fleet(env, controller, count=1)
        source = vm.host
        done = controller.migrations.live_migrate(
            vm, source, cause="rebalance")
        dest = env.run(until=done)
        assert dest is not None
        assert vm.host is dest
        assert vm.volume.attached_to is dest.instance
        assert vm.eni.attached_to is dest.instance
        [migration] = controller.ledger.migrations
        assert migration.downtime_s < 1.0
        assert migration.degraded_s > 10.0  # pre-copy window

    def test_live_fits_warning_thresholds(self):
        env, api, controller = build()
        manager = controller.migrations
        from repro.workloads import profile_for
        assert manager.live_fits_warning(
            profile_for("idle", 256 * 1024 ** 2), 120.0)
        assert not manager.live_fits_warning(
            profile_for("write-storm", 4 * 1024 ** 3), 120.0)


class TestRevocationTimeline:
    def test_suspend_happens_late_in_warning(self):
        env, api, controller = build(SpotCheckConfig(return_to_spot=False))
        [vm] = launch_fleet(env, controller, count=1)
        env.run(until=SPIKE_START + 400.0)
        # Find the SUSPENDED transition in the state log.
        suspended_at = [t for t, s in vm.state_log
                        if s is VMState.SUSPENDED][-1]
        # The VM kept running for most of the 120 s warning and was
        # suspended only near the end (deadline minus the worst-case
        # detach + commit margin).
        assert SPIKE_START + 60.0 < suspended_at < SPIKE_START + 120.0

    def test_downtime_matches_state_log(self):
        env, api, controller = build(SpotCheckConfig(return_to_spot=False))
        [vm] = launch_fleet(env, controller, count=1)
        env.run(until=SPIKE_START + 600.0)
        [migration] = [m for m in controller.ledger.migrations
                       if m.cause == "revocation"]
        logged = vm.downtime_between(SPIKE_START, SPIKE_START + 600.0)
        assert logged == pytest.approx(migration.downtime_s, rel=0.01)

    def test_storm_concurrency_recorded(self):
        env, api, controller = build(SpotCheckConfig(return_to_spot=False))
        launch_fleet(env, controller, count=4)
        env.run(until=SPIKE_START + 600.0)
        revocation_migrations = [m for m in controller.ledger.migrations
                                 if m.cause == "revocation"]
        assert len(revocation_migrations) == 4
        assert all(m.concurrent == 4 for m in revocation_migrations)

    def test_source_instance_gone_after_warning(self):
        env, api, controller = build(SpotCheckConfig(return_to_spot=False))
        [vm] = launch_fleet(env, controller, count=1)
        source_instance = vm.host.instance
        env.run(until=SPIKE_START + 121.0)
        assert source_instance.state is InstanceState.TERMINATED

    def test_degradation_includes_restore_window(self):
        env, api, controller = build(SpotCheckConfig(return_to_spot=False))
        [vm] = launch_fleet(env, controller, count=1)
        env.run(until=SPIKE_START + 600.0)
        [migration] = [m for m in controller.ledger.migrations
                       if m.cause == "revocation"]
        # Lazy restore: ramp window + demand-paging window.
        assert migration.degraded_s > 20.0
