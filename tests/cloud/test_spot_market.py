"""Tests for spot markets: prices, warnings, revocations."""

import pytest

from repro.cloud.instance_types import M3_CATALOG
from repro.cloud.instances import Instance, InstanceState, Market
from repro.cloud.spot_market import PriceWatch, SpotMarket, SpotMarketplace
from repro.cloud.zones import default_region

from tests.conftest import flat_trace, step_trace

MEDIUM = M3_CATALOG.get("m3.medium")


def make_market(env, zone, steps=None, price=0.02, warning=120.0):
    trace = step_trace(steps) if steps else flat_trace(price)
    return SpotMarket(env, MEDIUM, zone, trace, warning_period=warning)


def spot_instance(env, zone, bid):
    instance = Instance(env, MEDIUM, zone, Market.SPOT, bid=bid)
    instance._mark_running()
    return instance


class TestPrices:
    def test_current_price_follows_trace(self, env, zone):
        market = make_market(env, zone, steps=[(0, 0.02), (100, 0.09)])
        assert market.current_price() == 0.02
        env.run(until=150)
        assert market.current_price() == 0.09

    def test_price_at_before_start(self, env, zone):
        market = make_market(env, zone, steps=[(10, 0.05)])
        assert market.price_at(0.0) == 0.05

    def test_price_listeners_called(self, env, zone):
        market = make_market(env, zone, steps=[(0, 0.02), (50, 0.03)])
        seen = []
        market.on_price_change(lambda m, p: seen.append((env.now, p)))
        env.run(until=100)
        assert (50.0, 0.03) in seen

    def test_empty_trace_rejected(self, env, zone):
        import numpy as np
        from repro.traces.archive import PriceTrace
        with pytest.raises(ValueError):
            PriceTrace(np.array([]), np.array([]), "m3.medium", zone.name,
                       0.07)


class TestWarningsAndRevocation:
    def test_price_crossing_warns(self, env, zone):
        market = make_market(env, zone, steps=[(0, 0.02), (1000, 0.10)])
        instance = spot_instance(env, zone, bid=0.07)
        market.register(instance)
        env.run(until=1000)
        assert instance.state is InstanceState.MARKED_FOR_TERMINATION
        assert instance.termination_notice.triggered
        assert instance.termination_notice.value == 1000 + 120

    def test_forced_termination_after_warning(self, env, zone):
        market = make_market(env, zone, steps=[(0, 0.02), (1000, 0.10)])
        instance = spot_instance(env, zone, bid=0.07)
        market.register(instance)
        env.run(until=1121)
        assert instance.state is InstanceState.TERMINATED
        assert instance.terminated_at == 1120.0

    def test_price_below_bid_never_warns(self, env, zone):
        market = make_market(env, zone, steps=[(0, 0.02), (500, 0.06)])
        instance = spot_instance(env, zone, bid=0.07)
        market.register(instance)
        env.run(until=10000)
        assert instance.state is InstanceState.RUNNING

    def test_graceful_exit_before_deadline_survives(self, env, zone):
        market = make_market(env, zone, steps=[(0, 0.02), (1000, 0.10)])
        instance = spot_instance(env, zone, bid=0.07)
        market.register(instance)
        env.run(until=1050)
        # SpotCheck relinquishes the instance before the deadline.
        instance._mark_terminated()
        market.deregister(instance)
        env.run(until=2000)
        assert instance.terminated_at == 1050.0

    def test_register_above_price_immediately_warned(self, env, zone):
        market = make_market(env, zone, price=0.10)
        instance = spot_instance(env, zone, bid=0.07)
        market.register(instance)
        assert instance.state is InstanceState.MARKED_FOR_TERMINATION

    def test_revoke_callback_invoked(self, env, zone):
        market = make_market(env, zone, steps=[(0, 0.02), (100, 0.2)])
        revoked = []
        market.set_revoke_callback(
            lambda inst: (revoked.append(inst), inst._mark_terminated()))
        instance = spot_instance(env, zone, bid=0.07)
        market.register(instance)
        env.run(until=400)
        assert revoked == [instance]

    def test_multiple_instances_all_warned_together(self, env, zone):
        market = make_market(env, zone, steps=[(0, 0.02), (600, 0.5)])
        instances = [spot_instance(env, zone, bid=0.07) for _ in range(5)]
        for instance in instances:
            market.register(instance)
        env.run(until=601)
        assert all(i.state is InstanceState.MARKED_FOR_TERMINATION
                   for i in instances)
        assert len({i.warned_at for i in instances}) == 1

    def test_wrong_market_registration_rejected(self, env, zone, region):
        market = make_market(env, zone)
        other = Instance(env, M3_CATALOG.get("m3.large"), zone, Market.SPOT,
                         bid=0.2)
        with pytest.raises(ValueError):
            market.register(other)

    def test_on_demand_registration_rejected(self, env, zone):
        market = make_market(env, zone)
        instance = Instance(env, MEDIUM, zone, Market.ON_DEMAND)
        with pytest.raises(ValueError):
            market.register(instance)


class TestMarketplace:
    def test_add_and_lookup(self, env, zone):
        marketplace = SpotMarketplace(env)
        market = marketplace.add_market(MEDIUM, zone, flat_trace(0.02))
        assert marketplace.market("m3.medium", zone.name) is market
        assert marketplace.market(MEDIUM, zone) is market

    def test_duplicate_market_rejected(self, env, zone):
        marketplace = SpotMarketplace(env)
        marketplace.add_market(MEDIUM, zone, flat_trace(0.02))
        with pytest.raises(ValueError):
            marketplace.add_market(MEDIUM, zone, flat_trace(0.03))

    def test_missing_market_raises(self, env, zone):
        with pytest.raises(KeyError):
            SpotMarketplace(env).market("m3.medium", zone.name)

    def test_len_and_iter(self, env, region):
        marketplace = SpotMarketplace(env)
        for zone in region.zones:
            marketplace.add_market(
                MEDIUM, zone, flat_trace(0.02, zone_name=zone.name))
        assert len(marketplace) == len(region.zones)
        assert {m.zone.name for m in marketplace} == \
            {z.name for z in region.zones}


class TestPriceBoundaries:
    """Exact boundary semantics of price_at/current_price."""

    def test_price_at_exactly_at_change_point(self, env, zone):
        market = make_market(env, zone, steps=[(0, 0.02), (100, 0.09)])
        # The new price takes effect at the change instant itself.
        assert market.price_at(100.0) == 0.09
        assert market.price_at(99.999999) == 0.02

    def test_price_at_after_last_point_holds(self, env, zone):
        market = make_market(env, zone, steps=[(0, 0.02), (100, 0.09)])
        assert market.price_at(1e9) == 0.09

    def test_current_price_at_change_instant(self, env, zone):
        market = make_market(env, zone, steps=[(0, 0.02), (100, 0.09)])
        env.run(until=100.0)
        assert market.current_price() == 0.09

    def test_price_before_first_point_extends_backwards(self, env, zone):
        market = make_market(env, zone, steps=[(10, 0.05), (20, 0.08)])
        assert market.price_at(0.0) == 0.05
        assert market.price_at(-5.0) == 0.05


class TestRegisterDuringSpike:
    def test_register_during_spike_warns_exactly_once(self, env, zone):
        market = make_market(
            env, zone, steps=[(0, 0.02), (100, 0.09), (200, 0.095),
                              (300, 0.01)])
        warns = []
        original = market._warn
        market._warn = lambda instance: (warns.append(instance),
                                         original(instance))[-1]
        instance = spot_instance(env, zone, bid=0.05)

        def register_mid_spike():
            yield env.timeout(150)
            market.register(instance)
        env.process(register_mid_spike())
        env.run(until=250)
        # Warned on registration; the ongoing spike (and the further
        # point at 200 still above the bid) must not warn again.
        assert warns == [instance]

    def test_warned_on_register_still_terminates(self, env, zone):
        market = make_market(env, zone, steps=[(0, 0.02), (100, 0.09)],
                             warning=120.0)

        def register_mid_spike():
            yield env.timeout(150)
            instance = spot_instance(env, zone, bid=0.05)
            market.register(instance)
            return instance
        instance = env.run(until=env.process(register_mid_spike()))
        env.run(until=271)
        assert instance.state is InstanceState.TERMINATED


class TestRevocationStorm:
    """The id-keyed instance table under concurrent deregistration."""

    def test_deregister_during_warning_fanout(self, env, zone):
        market = make_market(env, zone, steps=[(0, 0.02), (600, 0.5)])
        instances = [spot_instance(env, zone, bid=0.07) for _ in range(8)]
        for instance in instances:
            market.register(instance)

        # A revoke callback that tears down *other* instances while the
        # storm is being processed — deregistration during the warning
        # fan-out and the termination sweep must not corrupt iteration.
        def revoke(instance):
            instance._mark_terminated()
            market.deregister(instance)
            for other in list(market.instances()):
                if other is not instance and \
                        other.state is InstanceState.TERMINATED:
                    market.deregister(other)
        market.set_revoke_callback(revoke)

        env.run(until=1000)
        assert all(i.state is InstanceState.TERMINATED for i in instances)
        assert market.instances() == []

    def test_deregister_is_idempotent(self, env, zone):
        market = make_market(env, zone)
        instance = spot_instance(env, zone, bid=0.07)
        market.register(instance)
        market.deregister(instance)
        market.deregister(instance)
        assert market.instances() == []


class TestEventSkipping:
    """The threshold-indexed drive sleeps over non-crossing points."""

    def test_uninstrumented_drive_skips_every_quiet_point(self, env, zone):
        steps = [(float(i * 60), 0.02 + 0.001 * (i % 5)) for i in range(200)]
        market = make_market(env, zone, steps=steps)
        instance = spot_instance(env, zone, bid=0.5)
        market.register(instance)
        env.run()
        stats = market.drive_stats()
        assert stats["points"] == 200
        # No point ever crosses the bid: nothing is delivered at all.
        assert stats["delivered"] == 0
        assert instance.state is InstanceState.RUNNING

    def test_step_listener_pins_per_point_delivery(self, env, zone):
        steps = [(float(i * 60), 0.02) for i in range(50)]
        market = make_market(env, zone, steps=steps)
        seen = []
        market.on_price_change(lambda m, p: seen.append((m.env.now, p)))
        env.run()
        assert len(seen) == 50
        assert market.drive_stats()["delivered"] == 50

    def test_skipping_still_warns_at_crossing_time(self, env, zone):
        steps = [(float(i * 60), 0.02) for i in range(100)]
        steps[70] = (70 * 60.0, 0.9)
        market = make_market(env, zone, steps=steps, warning=120.0)
        instance = spot_instance(env, zone, bid=0.07)
        market.register(instance)
        env.run()
        assert instance.warned_at == 70 * 60.0
        assert instance.state is InstanceState.TERMINATED
        assert market.drive_stats()["delivered"] < 5

    def test_watch_fires_only_in_band(self, env, zone):
        steps = [(0, 0.02), (100, 0.08), (200, 0.03), (300, 0.09),
                 (400, 0.01)]
        market = make_market(env, zone, steps=steps)
        hits = []
        market.add_watch(PriceWatch(
            lambda m, p: hits.append((m.env.now, p)), lo=0.05))
        env.run()
        assert hits == [(100.0, 0.08), (300.0, 0.09)]

    def test_inactive_watch_does_not_wake_the_drive(self, env, zone):
        steps = [(float(i * 60), 0.02) for i in range(100)]
        market = make_market(env, zone, steps=steps)
        market.add_watch(PriceWatch(lambda m, p: None, hi=0.05,
                                    active=lambda: False))
        env.run()
        assert market.drive_stats()["delivered"] == 0

    def test_rearm_does_not_replay_stale_points(self, env, zone):
        # Regression: the price dips into the watch band at t=100 while
        # the watch gate is closed; the gate opens at t=150 (between
        # points).  The step drive evaluated t=100 under the closed
        # gate, so the rearmed drive must NOT hand the stale t=100
        # price to the watch — only the next in-band point at t=200.
        steps = [(0, 0.10), (100, 0.03), (200, 0.04), (300, 0.09)]
        market = make_market(env, zone, steps=steps)
        gate = {"open": False}
        hits = []
        market.add_watch(PriceWatch(
            lambda m, p: gate["open"] and hits.append((m.env.now, p)),
            hi=0.05, active=lambda: gate["open"]))

        def open_gate():
            yield env.timeout(150)
            gate["open"] = True
            market.rearm()
        env.process(open_gate())
        env.run()
        assert hits == [(200.0, 0.04)]
        assert market.drive_stats()["stale_skips"] >= 1

    def test_register_mid_run_lowers_the_wake_threshold(self, env, zone):
        steps = [(0, 0.02), (100, 0.06), (200, 0.02), (300, 0.06)]
        market = make_market(env, zone, steps=steps, warning=120.0)

        def late_register():
            yield env.timeout(250)
            instance = spot_instance(env, zone, bid=0.05)
            market.register(instance)
            return instance
        instance = env.run(until=env.process(late_register()))
        env.run()
        assert instance.warned_at == 300.0

    def test_delivered_count_tracks_elapsed_points(self, env, zone):
        steps = [(float(i * 100), 0.02) for i in range(10)]
        market = make_market(env, zone, steps=steps)
        assert market.delivered_count() == 0  # Drive not started yet.
        env.run(until=450)
        assert market.delivered_count() == 5  # Points at 0..400.
        env.run(until=2000)
        assert market.delivered_count() == 10


class TestPriceWatch:
    def test_band_semantics_exclusive_inclusive(self):
        watch = PriceWatch(lambda m, p: None, lo=0.05, hi=0.10)
        assert not watch.matches(0.05)
        assert watch.matches(0.050001)
        assert watch.matches(0.10)
        assert not watch.matches(0.100001)

    def test_unbounded_sides(self):
        assert PriceWatch(lambda m, p: None, lo=0.05).matches(1e9)
        assert PriceWatch(lambda m, p: None, hi=0.05).matches(-1e9)

    def test_empty_band_rejected(self):
        with pytest.raises(ValueError):
            PriceWatch(lambda m, p: None, lo=0.10, hi=0.05)
