"""The simulation environment: clock, event heap, and run loop."""

import heapq
from itertools import count

from repro.sim.errors import SimulationError
from repro.sim.events import NORMAL, URGENT, AllOf, AnyOf, Event, Timeout
from repro.sim.process import Process
from repro.sim.rng import RngRegistry

__all__ = ["Environment", "NORMAL", "URGENT"]

_heappush = heapq.heappush
_heappop = heapq.heappop


class Environment:
    """A discrete-event simulation environment.

    The environment owns the simulated clock (:attr:`now`), the event
    heap, and a registry of named seeded RNG streams so that independent
    stochastic components do not perturb each other's randomness.

    The scheduling hot path keeps module-local bindings of the ``heapq``
    functions (attribute lookups dominate once a run is pushing millions
    of events), and :class:`Timeout` self-schedules through
    :attr:`_push_heap` without the generic :meth:`schedule` indirection.

    Parameters
    ----------
    initial_time:
        Starting value of the simulated clock, in seconds.
    seed:
        Master seed for the RNG registry.
    obs:
        Optional :class:`~repro.obs.Observability` facade.  When set,
        instrumented components publish events, metrics, and spans to
        it; when ``None`` (the default) every instrumentation site
        short-circuits on a single ``is not None`` test, so an
        unobserved simulation pays nothing.
    """

    #: Heap-push binding used by the :class:`Timeout` fast path.
    _push_heap = staticmethod(_heappush)

    def __init__(self, initial_time=0.0, seed=0, obs=None):
        self._now = float(initial_time)
        self._heap = []
        self._eid = count()
        self.rng = RngRegistry(seed)
        self._active_process = None
        #: Total events processed by :meth:`step` over the environment's
        #: lifetime.  The fleet bench divides this by VM-hours to ratchet
        #: the per-VM event budget; it is never reset.
        self.events_processed = 0
        #: Observability facade, or ``None`` for uninstrumented runs.
        self.obs = None
        if obs is not None:
            obs.attach(self)

    @property
    def now(self):
        """Current simulated time, in seconds."""
        return self._now

    @property
    def active_process(self):
        """The process currently executing, if any."""
        return self._active_process

    # -- event construction helpers ------------------------------------

    def event(self):
        """Create a new pending :class:`Event`."""
        return Event(self)

    def timeout(self, delay, value=None):
        """Create an event that triggers after ``delay`` seconds."""
        return Timeout(self, delay, value)

    def process(self, generator):
        """Start a new :class:`Process` running ``generator``."""
        return Process(self, generator)

    def all_of(self, events):
        """Event that triggers when all of ``events`` have succeeded."""
        return AllOf(self, events)

    def any_of(self, events):
        """Event that triggers when any of ``events`` succeeds."""
        return AnyOf(self, events)

    # -- scheduling and execution --------------------------------------

    def schedule(self, event, delay=0.0, priority=NORMAL):
        """Place a triggered event on the heap ``delay`` seconds ahead."""
        _heappush(
            self._heap, (self._now + delay, priority, next(self._eid), event))

    def schedule_at(self, event, when, priority=NORMAL):
        """Place a triggered event on the heap at absolute time ``when``.

        Unlike :meth:`schedule`, which stores ``now + delay`` (one float
        addition whose rounding depends on the *current* clock), this
        stores ``when`` verbatim — callers that must land on an exact
        precomputed timestamp (the event-skipping spot-market drive)
        use it to reproduce the arrival times a step-by-step process
        would have accumulated.
        """
        if when < self._now:
            raise ValueError(
                f"when={when} is in the past (now={self._now})")
        _heappush(self._heap, (when, priority, next(self._eid), event))

    def timeout_at(self, when, value=None):
        """An event that triggers exactly at absolute time ``when``."""
        event = Event(self)
        event._ok = True
        event._value = value
        self.schedule_at(event, when)
        return event

    def peek(self):
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._heap[0][0] if self._heap else float("inf")

    def step(self):
        """Process the single next event on the heap.

        A failed event that no waiter consumed ("defused") re-raises
        its exception here — errors never pass silently.
        """
        if not self._heap:
            raise SimulationError("no scheduled events")
        when, _priority, _eid, event = _heappop(self._heap)
        self._now = when
        self.events_processed += 1
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)
        if event._ok is False and not event._defused:
            raise event._value

    def run(self, until=None):
        """Run the simulation.

        Parameters
        ----------
        until:
            ``None`` runs until the heap drains.  A number runs until the
            clock reaches that time.  An :class:`Event` runs until that
            event has been processed and returns its value (re-raising
            its exception if it failed).
        """
        heap = self._heap
        if until is None:
            step = self.step
            while heap:
                step()
            return None
        if isinstance(until, Event):
            return self._run_until_event(until)
        deadline = float(until)
        if deadline < self._now:
            raise ValueError(
                f"until={deadline} is in the past (now={self._now})")
        step = self.step
        while heap and heap[0][0] <= deadline:
            step()
        self._now = deadline
        return None

    def _run_until_event(self, until):
        done = []
        if until.callbacks is None:
            done.append(until)
        else:
            until.callbacks.append(done.append)
        heap = self._heap
        step = self.step
        while not done:
            if not heap:
                raise SimulationError(
                    "event heap drained before the awaited event triggered")
            step()
        if until._ok is False:
            raise until._value
        return until._value
