"""Tests for the experiment renderers and the report runner."""

import pytest

from repro.experiments.render import RENDERERS
from repro.experiments.runner import HEADER


class TestRendererRegistry:
    def test_covers_every_evaluation_artifact(self):
        assert set(RENDERERS) == {
            "fig1", "table1", "fig6", "fig7", "fig8", "fig9",
            "fig10", "fig11", "fig12", "table3",
        }

    @pytest.mark.parametrize("name", ["fig7", "fig8", "fig9", "table1"])
    def test_fast_renderers_produce_tables(self, name):
        title, text, notes = RENDERERS[name]()
        assert title
        assert "---" in text  # table separator
        assert notes

    def test_fig1_table_includes_peak(self):
        _title, text, notes = RENDERERS["fig1"]()
        import re
        prices = [float(match) for match in
                  re.findall(r"(\d+\.\d+)\s*$", text, re.MULTILINE)]
        peak = float(re.search(r"peak \$(\d+\.\d+)", notes).group(1))
        assert max(prices) == pytest.approx(peak, abs=0.01)


class TestRunnerHeader:
    def test_header_formats(self):
        text = HEADER.format(days=183.0, vms=40, seed=11)
        assert "183 simulated days" in text
        assert "seed 11" in text
